/**
 * @file
 * Interactive design-space exploration from the command line.
 *
 *   $ ./examples/explore_predictors [spec [spec ...]]
 *   $ ./examples/explore_predictors --suite avg \
 *         btb2bc "twolevel:p=3,table=assoc4:1024" \
 *         "hybrid:p1=3,p2=1,table=assoc4:512"
 *
 * Each spec string is parsed by the predictor factory (see
 * core/factory.hh for the grammar) and evaluated over a benchmark
 * suite, printing a per-benchmark and group table like the paper's.
 *
 * Options:
 *   --suite avg|full|<name>[,<name>...]   benchmarks to run
 *   --csv=FILE                            also write CSV
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "sim/suite_runner.hh"

using namespace ibp;

int
main(int argc, char **argv)
{
    std::vector<std::string> specs;
    std::string suite = "avg";
    std::string csv_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--suite=", 0) == 0) {
            suite = arg.substr(8);
        } else if (arg == "--suite" && i + 1 < argc) {
            suite = argv[++i];
        } else if (arg.rfind("--csv=", 0) == 0) {
            csv_path = arg.substr(6);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--suite avg|full|names] [--csv=FILE] "
                "[spec ...]\n"
                "spec examples:\n"
                "  btb | btb2bc\n"
                "  twolevel:p=3,table=assoc4:1024\n"
                "  twolevel:p=8,precision=full,table=unconstrained\n"
                "  hybrid:p1=3,p2=7,table=tagless:4096\n",
                argv[0]);
            return 0;
        } else {
            specs.push_back(arg);
        }
    }

    if (specs.empty()) {
        specs = {"btb2bc", "twolevel:p=3,table=assoc4:1024",
                 "hybrid:p1=3,p2=1,table=assoc4:512"};
    }

    // Resolve the benchmark list.
    std::vector<std::string> benchmarks;
    if (suite == "avg") {
        benchmarks = benchmarkGroups().avg;
    } else if (suite == "full") {
        benchmarks = benchmarkGroups().avg;
        const auto &infrequent = benchmarkGroups().infrequent;
        benchmarks.insert(benchmarks.end(), infrequent.begin(),
                          infrequent.end());
    } else {
        std::stringstream stream(suite);
        std::string name;
        while (std::getline(stream, name, ','))
            benchmarks.push_back(name);
    }

    SuiteRunner runner(benchmarks);
    std::vector<SweepColumn> columns;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        columns.push_back({"#" + std::to_string(i + 1),
                           [spec = specs[i]]() {
                               return makePredictorFromSpec(spec);
                           }});
        std::printf("#%zu = %s\n", i + 1, specs[i].c_str());
    }
    std::printf("\n");

    const GridResult grid = runner.run(columns);
    const ResultTable table = runner.benchmarkTable(
        "Misprediction rates (%)", grid, columns);
    table.print();
    if (!csv_path.empty()) {
        table.writeCsv(csv_path);
        std::printf("csv written to %s\n", csv_path.c_str());
    }
    return 0;
}
