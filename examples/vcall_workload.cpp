/**
 * @file
 * Domain scenario: sizing an indirect-branch predictor for a
 * virtual-call-heavy C++ server.
 *
 * Builds a *custom* workload directly from ModelKnobs (rather than
 * the calibrated paper suite): a large polymorphic codebase that
 * dispatches on data-driven object streams, like the OO programs
 * motivating the paper's introduction. Then answers the practical
 * question the paper's section 8 raises: for a given transistor
 * budget (total table entries), which organisation should you build?
 *
 *   $ ./examples/vcall_workload [entries]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/factory.hh"
#include "sim/simulator.hh"
#include "synth/program_model.hh"
#include "util/format.hh"

using namespace ibp;

int
main(int argc, char **argv)
{
    const std::uint64_t budget =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
    if (budget < 64 || !isPowerOfTwo(budget)) {
        std::fprintf(stderr,
                     "entry budget must be a power of two >= 64\n");
        return 1;
    }

    // A virtual-call-heavy application: many polymorphic sites,
    // strongly data-driven (each request dispatches over a fresh
    // object graph), moderate phase behaviour (request mix drifts).
    ModelKnobs knobs;
    knobs.numSites = 400;
    knobs.siteZipfAlpha = 1.1;
    knobs.monoFraction = 0.30;
    knobs.dominance = 0.55;
    knobs.dataDrivenFraction = 0.35;
    knobs.predictability = 0.995;
    knobs.phasePeriod = 60000;
    knobs.phaseMutation = 0.10;
    knobs.virtualCallFraction = 0.9;

    ProgramModel model(knobs, 0xC0FFEE);
    GeneratorOptions options;
    options.events = 400000;
    const Trace trace = model.generate(options, "vcall-server");

    std::printf("workload: %llu virtual-call-heavy indirect "
                "branches, %llu static sites\n\n",
                static_cast<unsigned long long>(trace.size()),
                static_cast<unsigned long long>(knobs.numSites));

    ResultTable table("Predictor choices at a " +
                          std::to_string(budget) +
                          "-entry budget",
                      "design");
    table.addColumn("miss%");
    table.addColumn("entries");

    const auto evaluate = [&](const std::string &label,
                              std::unique_ptr<IndirectPredictor>
                                  predictor) {
        const SimResult result = simulate(*predictor, trace);
        const unsigned row = table.addRow(label);
        table.set(row, 0, result.missPercent());
        table.set(row, 1,
                  static_cast<double>(result.tableCapacity));
    };

    evaluate("btb-2bc (status quo)",
             std::make_unique<BtbPredictor>(
                 TableSpec::setAssoc(budget, 4), true));
    evaluate("two-level tagless p=3",
             std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::tagless(budget))));
    evaluate("two-level 4-way p=3",
             std::make_unique<TwoLevelPredictor>(paperTwoLevel(
                 3, TableSpec::setAssoc(budget, 4))));
    evaluate("two-level 4-way p=6",
             std::make_unique<TwoLevelPredictor>(paperTwoLevel(
                 6, TableSpec::setAssoc(budget, 4))));
    evaluate("hybrid 4-way p=3+1",
             std::make_unique<HybridPredictor>(paperHybrid(
                 3, 1, TableSpec::setAssoc(budget / 2, 4))));
    evaluate("hybrid 4-way p=6+2",
             std::make_unique<HybridPredictor>(paperHybrid(
                 6, 2, TableSpec::setAssoc(budget / 2, 4))));
    evaluate("ideal (unconstrained p=6)",
             std::make_unique<TwoLevelPredictor>(
                 unconstrainedTwoLevel(6)));

    table.print();
    std::printf("Rule of thumb from the paper: above ~1K entries, "
                "spend the budget on a short+long hybrid rather than "
                "more associativity or a bigger BTB.\n");
    return 0;
}
