/**
 * @file
 * Quickstart: build predictors, run them on a synthetic benchmark,
 * and print misprediction rates.
 *
 *   $ ./examples/quickstart [benchmark]
 *
 * Demonstrates the three predictor families of the paper on one
 * benchmark trace: a BTB, a BTB with the two-bit-counter update rule,
 * an unconstrained two-level predictor, a practical 1K-entry 4-way
 * two-level predictor, and the paper's best hybrid.
 */

#include <cstdio>
#include <string>

#include "core/btb.hh"
#include "core/factory.hh"
#include "core/hybrid.hh"
#include "core/two_level.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "porky";

    // 1. Obtain a trace. Here we generate a synthetic benchmark from
    //    the built-in suite; loadTrace() reads recorded traces.
    const ibp::Trace trace = ibp::generateBenchmarkTrace(benchmark);
    std::printf("benchmark %-8s  %llu indirect branches\n\n",
                trace.name().c_str(),
                static_cast<unsigned long long>(
                    trace.countPredictedIndirect()));

    // 2. Build predictors. Factory helpers encode the paper's
    //    converged defaults (global history, per-address tables,
    //    reverse interleaving, xor key mixing, 2bc update).
    ibp::BtbPredictor btb;
    ibp::BtbPredictor btb2bc(ibp::TableSpec::unconstrained(), true);
    ibp::TwoLevelPredictor ideal(ibp::unconstrainedTwoLevel(6));
    ibp::TwoLevelPredictor practical(
        ibp::paperTwoLevel(3, ibp::TableSpec::setAssoc(1024, 4)));
    ibp::HybridPredictor hybrid(ibp::HybridConfig::twoComponent(
        ibp::paperTwoLevel(3, ibp::TableSpec::setAssoc(512, 4)),
        ibp::paperTwoLevel(1, ibp::TableSpec::setAssoc(512, 4))));

    // 3. Simulate and report.
    const auto report = [&](ibp::IndirectPredictor &predictor) {
        const ibp::SimResult result = ibp::simulate(predictor, trace);
        std::printf("%-48s miss %6.2f%%  (%llu/%llu)\n",
                    predictor.name().c_str(), result.missPercent(),
                    static_cast<unsigned long long>(result.misses),
                    static_cast<unsigned long long>(result.branches));
    };

    report(btb);
    report(btb2bc);
    report(ideal);
    report(practical);
    report(hybrid);
    return 0;
}
