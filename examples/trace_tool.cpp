/**
 * @file
 * Trace utility: generate, convert and characterise branch traces.
 *
 *   $ ./examples/trace_tool gen <benchmark> <out.{ibpt,txt}> [--cond]
 *   $ ./examples/trace_tool stats <trace-file-or-benchmark>
 *   $ ./examples/trace_tool convert <in> <out>
 *   $ ./examples/trace_tool run <trace-or-benchmark> <spec>
 *
 * ".ibpt" files use the compact binary format; any other extension
 * is the line-oriented text format, which external tools (Pin /
 * ChampSim converters) can produce easily.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/factory.hh"
#include "robust/error.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

using namespace ibp;

namespace {

bool
isKnownBenchmark(const std::string &name)
{
    for (const auto &profile : benchmarkSuite()) {
        if (profile.name == name)
            return true;
    }
    return false;
}

Trace
obtainTrace(const std::string &source)
{
    if (isKnownBenchmark(source))
        return generateBenchmarkTrace(source);
    Result<Trace> loaded = loadTrace(source);
    if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.error().message.c_str());
        std::exit(1);
    }
    return std::move(loaded).value();
}

void
requireOk(const Result<void> &result)
{
    if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.error().message.c_str());
        std::exit(1);
    }
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  %s gen <benchmark> <out> [--cond]\n"
        "  %s stats <trace-file-or-benchmark>\n"
        "  %s convert <in> <out>\n"
        "  %s run <trace-or-benchmark> <predictor-spec>\n",
        argv0, argv0, argv0, argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage(argv[0]);
    const std::string command = argv[1];

    if (command == "gen" && argc >= 4) {
        const bool with_cond =
            argc >= 5 && std::strcmp(argv[4], "--cond") == 0;
        const Trace trace =
            generateBenchmarkTrace(argv[2], with_cond);
        requireOk(saveTrace(trace, argv[3]));
        std::printf("wrote %zu records to %s\n", trace.size(),
                    argv[3]);
        return 0;
    }

    if (command == "stats") {
        const Trace trace = obtainTrace(argv[2]);
        const TraceStats stats = computeTraceStats(trace);
        std::printf("trace:          %s\n", stats.name.c_str());
        std::printf("records:        %llu\n",
                    static_cast<unsigned long long>(
                        stats.totalRecords));
        std::printf("indirect:       %llu\n",
                    static_cast<unsigned long long>(
                        stats.indirectBranches));
        std::printf("conditional:    %llu (%.1f per indirect)\n",
                    static_cast<unsigned long long>(
                        stats.conditionalBranches),
                    stats.condPerIndirect);
        std::printf("returns:        %llu\n",
                    static_cast<unsigned long long>(stats.returns));
        std::printf("virtual calls:  %.1f%%\n",
                    100.0 * stats.virtualCallFraction);
        std::printf("active sites:   90%%:%u 95%%:%u 99%%:%u "
                    "100%%:%u\n",
                    stats.activeSites90, stats.activeSites95,
                    stats.activeSites99, stats.activeSites100);
        std::printf("polymorphism:   %.2f targets/site "
                    "(execution-weighted)\n",
                    stats.meanPolymorphism);
        std::printf("hottest sites:\n");
        for (std::size_t i = 0;
             i < std::min<std::size_t>(5, stats.sites.size()); ++i) {
            const SiteStats &site = stats.sites[i];
            std::printf("  0x%08x  %9llu execs  %3u targets  "
                        "dominant %.0f%%\n",
                        site.pc,
                        static_cast<unsigned long long>(
                            site.executions),
                        site.distinctTargets,
                        100.0 * site.dominantTargetShare);
        }
        return 0;
    }

    if (command == "convert" && argc >= 4) {
        requireOk(saveTrace(obtainTrace(argv[2]), argv[3]));
        std::printf("converted %s -> %s\n", argv[2], argv[3]);
        return 0;
    }

    if (command == "run" && argc >= 4) {
        const Trace trace = obtainTrace(argv[2]);
        Result<std::unique_ptr<IndirectPredictor>> made =
            tryMakePredictorFromSpec(argv[3]);
        if (!made.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         made.error().message.c_str());
            return 1;
        }
        const auto predictor = std::move(made).value();
        const SimResult result = simulate(*predictor, trace);
        std::printf("%s on %s: %.2f%% misprediction "
                    "(%llu/%llu), %llu/%llu entries used\n",
                    result.predictor.c_str(),
                    result.benchmark.c_str(), result.missPercent(),
                    static_cast<unsigned long long>(result.misses),
                    static_cast<unsigned long long>(result.branches),
                    static_cast<unsigned long long>(
                        result.tableOccupancy),
                    static_cast<unsigned long long>(
                        result.tableCapacity));
        return 0;
    }

    return usage(argv[0]);
}
