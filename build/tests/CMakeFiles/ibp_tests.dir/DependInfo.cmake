
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/btb_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/btb_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/btb_test.cc.o.d"
  "/root/repo/tests/core/cond_predictor_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/cond_predictor_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/cond_predictor_test.cc.o.d"
  "/root/repo/tests/core/extensions_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/extensions_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/extensions_test.cc.o.d"
  "/root/repo/tests/core/factory_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/factory_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/factory_test.cc.o.d"
  "/root/repo/tests/core/history_register_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/history_register_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/history_register_test.cc.o.d"
  "/root/repo/tests/core/hybrid_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/hybrid_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/hybrid_test.cc.o.d"
  "/root/repo/tests/core/pattern_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/pattern_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/pattern_test.cc.o.d"
  "/root/repo/tests/core/tables_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/tables_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/tables_test.cc.o.d"
  "/root/repo/tests/core/two_level_test.cc" "tests/CMakeFiles/ibp_tests.dir/core/two_level_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/core/two_level_test.cc.o.d"
  "/root/repo/tests/integration/calibration_test.cc" "tests/CMakeFiles/ibp_tests.dir/integration/calibration_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/integration/calibration_test.cc.o.d"
  "/root/repo/tests/integration/paper_properties_test.cc" "tests/CMakeFiles/ibp_tests.dir/integration/paper_properties_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/integration/paper_properties_test.cc.o.d"
  "/root/repo/tests/property/sweep_property_test.cc" "tests/CMakeFiles/ibp_tests.dir/property/sweep_property_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/property/sweep_property_test.cc.o.d"
  "/root/repo/tests/sim/simulator_test.cc" "tests/CMakeFiles/ibp_tests.dir/sim/simulator_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/sim/simulator_test.cc.o.d"
  "/root/repo/tests/sim/suite_runner_test.cc" "tests/CMakeFiles/ibp_tests.dir/sim/suite_runner_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/sim/suite_runner_test.cc.o.d"
  "/root/repo/tests/synth/generator_test.cc" "tests/CMakeFiles/ibp_tests.dir/synth/generator_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/synth/generator_test.cc.o.d"
  "/root/repo/tests/trace/trace_stats_test.cc" "tests/CMakeFiles/ibp_tests.dir/trace/trace_stats_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/trace/trace_stats_test.cc.o.d"
  "/root/repo/tests/trace/trace_test.cc" "tests/CMakeFiles/ibp_tests.dir/trace/trace_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/trace/trace_test.cc.o.d"
  "/root/repo/tests/util/bits_test.cc" "tests/CMakeFiles/ibp_tests.dir/util/bits_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/util/bits_test.cc.o.d"
  "/root/repo/tests/util/format_test.cc" "tests/CMakeFiles/ibp_tests.dir/util/format_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/util/format_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/ibp_tests.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/sat_counter_test.cc" "tests/CMakeFiles/ibp_tests.dir/util/sat_counter_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/util/sat_counter_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/ibp_tests.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/ibp_tests.dir/util/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ibp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ibp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
