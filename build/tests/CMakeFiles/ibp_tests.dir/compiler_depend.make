# Empty compiler generated dependencies file for ibp_tests.
# This may be replaced when dependencies are built.
