# Empty dependencies file for abl_variations.
# This may be replaced when dependencies are built.
