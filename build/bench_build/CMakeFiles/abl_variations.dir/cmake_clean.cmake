file(REMOVE_RECURSE
  "../bench/abl_variations"
  "../bench/abl_variations.pdb"
  "CMakeFiles/abl_variations.dir/abl_variations.cc.o"
  "CMakeFiles/abl_variations.dir/abl_variations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
