file(REMOVE_RECURSE
  "../bench/fig05_history_sharing"
  "../bench/fig05_history_sharing.pdb"
  "CMakeFiles/fig05_history_sharing.dir/fig05_history_sharing.cc.o"
  "CMakeFiles/fig05_history_sharing.dir/fig05_history_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_history_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
