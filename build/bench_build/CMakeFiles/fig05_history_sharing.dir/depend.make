# Empty dependencies file for fig05_history_sharing.
# This may be replaced when dependencies are built.
