
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05_history_sharing.cc" "bench_build/CMakeFiles/fig05_history_sharing.dir/fig05_history_sharing.cc.o" "gcc" "bench_build/CMakeFiles/fig05_history_sharing.dir/fig05_history_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ibp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ibp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
