# Empty compiler generated dependencies file for fig18_best_predictors.
# This may be replaced when dependencies are built.
