file(REMOVE_RECURSE
  "../bench/fig18_best_predictors"
  "../bench/fig18_best_predictors.pdb"
  "CMakeFiles/fig18_best_predictors.dir/fig18_best_predictors.cc.o"
  "CMakeFiles/fig18_best_predictors.dir/fig18_best_predictors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_best_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
