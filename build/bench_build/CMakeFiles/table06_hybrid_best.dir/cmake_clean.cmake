file(REMOVE_RECURSE
  "../bench/table06_hybrid_best"
  "../bench/table06_hybrid_best.pdb"
  "CMakeFiles/table06_hybrid_best.dir/table06_hybrid_best.cc.o"
  "CMakeFiles/table06_hybrid_best.dir/table06_hybrid_best.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_hybrid_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
