# Empty dependencies file for table06_hybrid_best.
# This may be replaced when dependencies are built.
