# Empty compiler generated dependencies file for intro_overhead.
# This may be replaced when dependencies are built.
