file(REMOVE_RECURSE
  "../bench/intro_overhead"
  "../bench/intro_overhead.pdb"
  "CMakeFiles/intro_overhead.dir/intro_overhead.cc.o"
  "CMakeFiles/intro_overhead.dir/intro_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
