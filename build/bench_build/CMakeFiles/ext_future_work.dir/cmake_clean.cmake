file(REMOVE_RECURSE
  "../bench/ext_future_work"
  "../bench/ext_future_work.pdb"
  "CMakeFiles/ext_future_work.dir/ext_future_work.cc.o"
  "CMakeFiles/ext_future_work.dir/ext_future_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
