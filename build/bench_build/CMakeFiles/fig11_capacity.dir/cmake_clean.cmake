file(REMOVE_RECURSE
  "../bench/fig11_capacity"
  "../bench/fig11_capacity.pdb"
  "CMakeFiles/fig11_capacity.dir/fig11_capacity.cc.o"
  "CMakeFiles/fig11_capacity.dir/fig11_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
