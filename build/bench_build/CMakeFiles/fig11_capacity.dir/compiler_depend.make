# Empty compiler generated dependencies file for fig11_capacity.
# This may be replaced when dependencies are built.
