# Empty compiler generated dependencies file for table01_benchmarks.
# This may be replaced when dependencies are built.
