file(REMOVE_RECURSE
  "../bench/table01_benchmarks"
  "../bench/table01_benchmarks.pdb"
  "CMakeFiles/table01_benchmarks.dir/table01_benchmarks.cc.o"
  "CMakeFiles/table01_benchmarks.dir/table01_benchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
