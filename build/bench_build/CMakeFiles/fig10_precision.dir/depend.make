# Empty dependencies file for fig10_precision.
# This may be replaced when dependencies are built.
