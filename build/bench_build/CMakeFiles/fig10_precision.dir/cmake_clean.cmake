file(REMOVE_RECURSE
  "../bench/fig10_precision"
  "../bench/fig10_precision.pdb"
  "CMakeFiles/fig10_precision.dir/fig10_precision.cc.o"
  "CMakeFiles/fig10_precision.dir/fig10_precision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
