file(REMOVE_RECURSE
  "../bench/fig02_btb"
  "../bench/fig02_btb.pdb"
  "CMakeFiles/fig02_btb.dir/fig02_btb.cc.o"
  "CMakeFiles/fig02_btb.dir/fig02_btb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
