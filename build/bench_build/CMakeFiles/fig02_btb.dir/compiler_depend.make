# Empty compiler generated dependencies file for fig02_btb.
# This may be replaced when dependencies are built.
