# Empty dependencies file for ext_related_work.
# This may be replaced when dependencies are built.
