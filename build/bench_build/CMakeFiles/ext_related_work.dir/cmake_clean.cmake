file(REMOVE_RECURSE
  "../bench/ext_related_work"
  "../bench/ext_related_work.pdb"
  "CMakeFiles/ext_related_work.dir/ext_related_work.cc.o"
  "CMakeFiles/ext_related_work.dir/ext_related_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
