file(REMOVE_RECURSE
  "../bench/fig09_path_length"
  "../bench/fig09_path_length.pdb"
  "CMakeFiles/fig09_path_length.dir/fig09_path_length.cc.o"
  "CMakeFiles/fig09_path_length.dir/fig09_path_length.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
