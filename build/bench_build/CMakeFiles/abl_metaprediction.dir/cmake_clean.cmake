file(REMOVE_RECURSE
  "../bench/abl_metaprediction"
  "../bench/abl_metaprediction.pdb"
  "CMakeFiles/abl_metaprediction.dir/abl_metaprediction.cc.o"
  "CMakeFiles/abl_metaprediction.dir/abl_metaprediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_metaprediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
