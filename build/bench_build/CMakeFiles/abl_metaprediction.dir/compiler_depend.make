# Empty compiler generated dependencies file for abl_metaprediction.
# This may be replaced when dependencies are built.
