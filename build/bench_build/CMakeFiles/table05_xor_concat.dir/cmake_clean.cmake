file(REMOVE_RECURSE
  "../bench/table05_xor_concat"
  "../bench/table05_xor_concat.pdb"
  "CMakeFiles/table05_xor_concat.dir/table05_xor_concat.cc.o"
  "CMakeFiles/table05_xor_concat.dir/table05_xor_concat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_xor_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
