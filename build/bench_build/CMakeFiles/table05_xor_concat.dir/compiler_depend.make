# Empty compiler generated dependencies file for table05_xor_concat.
# This may be replaced when dependencies are built.
