# Empty compiler generated dependencies file for fig07_table_sharing.
# This may be replaced when dependencies are built.
