file(REMOVE_RECURSE
  "../bench/fig07_table_sharing"
  "../bench/fig07_table_sharing.pdb"
  "CMakeFiles/fig07_table_sharing.dir/fig07_table_sharing.cc.o"
  "CMakeFiles/fig07_table_sharing.dir/fig07_table_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_table_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
