# Empty compiler generated dependencies file for tableA1_appendix.
# This may be replaced when dependencies are built.
