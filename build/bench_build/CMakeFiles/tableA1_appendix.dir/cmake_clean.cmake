file(REMOVE_RECURSE
  "../bench/tableA1_appendix"
  "../bench/tableA1_appendix.pdb"
  "CMakeFiles/tableA1_appendix.dir/tableA1_appendix.cc.o"
  "CMakeFiles/tableA1_appendix.dir/tableA1_appendix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableA1_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
