file(REMOVE_RECURSE
  "../bench/fig12_interleaving"
  "../bench/fig12_interleaving.pdb"
  "CMakeFiles/fig12_interleaving.dir/fig12_interleaving.cc.o"
  "CMakeFiles/fig12_interleaving.dir/fig12_interleaving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
