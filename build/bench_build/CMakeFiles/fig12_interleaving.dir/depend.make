# Empty dependencies file for fig12_interleaving.
# This may be replaced when dependencies are built.
