# Empty dependencies file for fig17_hybrid_grid.
# This may be replaced when dependencies are built.
