file(REMOVE_RECURSE
  "../bench/fig17_hybrid_grid"
  "../bench/fig17_hybrid_grid.pdb"
  "CMakeFiles/fig17_hybrid_grid.dir/fig17_hybrid_grid.cc.o"
  "CMakeFiles/fig17_hybrid_grid.dir/fig17_hybrid_grid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_hybrid_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
