# Empty dependencies file for fig16_associativity.
# This may be replaced when dependencies are built.
