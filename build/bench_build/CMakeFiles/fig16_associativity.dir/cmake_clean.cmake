file(REMOVE_RECURSE
  "../bench/fig16_associativity"
  "../bench/fig16_associativity.pdb"
  "CMakeFiles/fig16_associativity.dir/fig16_associativity.cc.o"
  "CMakeFiles/fig16_associativity.dir/fig16_associativity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
