file(REMOVE_RECURSE
  "CMakeFiles/ibp_core.dir/btb.cc.o"
  "CMakeFiles/ibp_core.dir/btb.cc.o.d"
  "CMakeFiles/ibp_core.dir/cascaded.cc.o"
  "CMakeFiles/ibp_core.dir/cascaded.cc.o.d"
  "CMakeFiles/ibp_core.dir/cond_predictor.cc.o"
  "CMakeFiles/ibp_core.dir/cond_predictor.cc.o.d"
  "CMakeFiles/ibp_core.dir/factory.cc.o"
  "CMakeFiles/ibp_core.dir/factory.cc.o.d"
  "CMakeFiles/ibp_core.dir/hybrid.cc.o"
  "CMakeFiles/ibp_core.dir/hybrid.cc.o.d"
  "CMakeFiles/ibp_core.dir/ittage.cc.o"
  "CMakeFiles/ibp_core.dir/ittage.cc.o.d"
  "CMakeFiles/ibp_core.dir/next_branch.cc.o"
  "CMakeFiles/ibp_core.dir/next_branch.cc.o.d"
  "CMakeFiles/ibp_core.dir/pattern.cc.o"
  "CMakeFiles/ibp_core.dir/pattern.cc.o.d"
  "CMakeFiles/ibp_core.dir/set_assoc_table.cc.o"
  "CMakeFiles/ibp_core.dir/set_assoc_table.cc.o.d"
  "CMakeFiles/ibp_core.dir/shared_hybrid.cc.o"
  "CMakeFiles/ibp_core.dir/shared_hybrid.cc.o.d"
  "CMakeFiles/ibp_core.dir/table_spec.cc.o"
  "CMakeFiles/ibp_core.dir/table_spec.cc.o.d"
  "CMakeFiles/ibp_core.dir/target_cache.cc.o"
  "CMakeFiles/ibp_core.dir/target_cache.cc.o.d"
  "CMakeFiles/ibp_core.dir/two_level.cc.o"
  "CMakeFiles/ibp_core.dir/two_level.cc.o.d"
  "libibp_core.a"
  "libibp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
