# Empty dependencies file for ibp_core.
# This may be replaced when dependencies are built.
