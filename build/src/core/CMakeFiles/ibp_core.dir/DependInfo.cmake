
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/btb.cc" "src/core/CMakeFiles/ibp_core.dir/btb.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/btb.cc.o.d"
  "/root/repo/src/core/cascaded.cc" "src/core/CMakeFiles/ibp_core.dir/cascaded.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/cascaded.cc.o.d"
  "/root/repo/src/core/cond_predictor.cc" "src/core/CMakeFiles/ibp_core.dir/cond_predictor.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/cond_predictor.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/ibp_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/factory.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/ibp_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/ittage.cc" "src/core/CMakeFiles/ibp_core.dir/ittage.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/ittage.cc.o.d"
  "/root/repo/src/core/next_branch.cc" "src/core/CMakeFiles/ibp_core.dir/next_branch.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/next_branch.cc.o.d"
  "/root/repo/src/core/pattern.cc" "src/core/CMakeFiles/ibp_core.dir/pattern.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/pattern.cc.o.d"
  "/root/repo/src/core/set_assoc_table.cc" "src/core/CMakeFiles/ibp_core.dir/set_assoc_table.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/set_assoc_table.cc.o.d"
  "/root/repo/src/core/shared_hybrid.cc" "src/core/CMakeFiles/ibp_core.dir/shared_hybrid.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/shared_hybrid.cc.o.d"
  "/root/repo/src/core/table_spec.cc" "src/core/CMakeFiles/ibp_core.dir/table_spec.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/table_spec.cc.o.d"
  "/root/repo/src/core/target_cache.cc" "src/core/CMakeFiles/ibp_core.dir/target_cache.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/target_cache.cc.o.d"
  "/root/repo/src/core/two_level.cc" "src/core/CMakeFiles/ibp_core.dir/two_level.cc.o" "gcc" "src/core/CMakeFiles/ibp_core.dir/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
