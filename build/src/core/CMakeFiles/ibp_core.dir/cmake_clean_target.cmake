file(REMOVE_RECURSE
  "libibp_core.a"
)
