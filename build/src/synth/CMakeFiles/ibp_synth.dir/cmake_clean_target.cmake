file(REMOVE_RECURSE
  "libibp_synth.a"
)
