# Empty compiler generated dependencies file for ibp_synth.
# This may be replaced when dependencies are built.
