file(REMOVE_RECURSE
  "CMakeFiles/ibp_synth.dir/benchmark_suite.cc.o"
  "CMakeFiles/ibp_synth.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/ibp_synth.dir/program_model.cc.o"
  "CMakeFiles/ibp_synth.dir/program_model.cc.o.d"
  "libibp_synth.a"
  "libibp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
