
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/benchmark_suite.cc" "src/synth/CMakeFiles/ibp_synth.dir/benchmark_suite.cc.o" "gcc" "src/synth/CMakeFiles/ibp_synth.dir/benchmark_suite.cc.o.d"
  "/root/repo/src/synth/program_model.cc" "src/synth/CMakeFiles/ibp_synth.dir/program_model.cc.o" "gcc" "src/synth/CMakeFiles/ibp_synth.dir/program_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
