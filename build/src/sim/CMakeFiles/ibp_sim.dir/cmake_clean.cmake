file(REMOVE_RECURSE
  "CMakeFiles/ibp_sim.dir/experiment.cc.o"
  "CMakeFiles/ibp_sim.dir/experiment.cc.o.d"
  "CMakeFiles/ibp_sim.dir/simulator.cc.o"
  "CMakeFiles/ibp_sim.dir/simulator.cc.o.d"
  "CMakeFiles/ibp_sim.dir/suite_runner.cc.o"
  "CMakeFiles/ibp_sim.dir/suite_runner.cc.o.d"
  "libibp_sim.a"
  "libibp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
