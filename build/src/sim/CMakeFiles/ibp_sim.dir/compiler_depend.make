# Empty compiler generated dependencies file for ibp_sim.
# This may be replaced when dependencies are built.
