file(REMOVE_RECURSE
  "libibp_util.a"
)
