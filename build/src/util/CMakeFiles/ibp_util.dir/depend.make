# Empty dependencies file for ibp_util.
# This may be replaced when dependencies are built.
