file(REMOVE_RECURSE
  "CMakeFiles/ibp_util.dir/format.cc.o"
  "CMakeFiles/ibp_util.dir/format.cc.o.d"
  "CMakeFiles/ibp_util.dir/logging.cc.o"
  "CMakeFiles/ibp_util.dir/logging.cc.o.d"
  "CMakeFiles/ibp_util.dir/rng.cc.o"
  "CMakeFiles/ibp_util.dir/rng.cc.o.d"
  "CMakeFiles/ibp_util.dir/stats.cc.o"
  "CMakeFiles/ibp_util.dir/stats.cc.o.d"
  "libibp_util.a"
  "libibp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
