# Empty compiler generated dependencies file for ibp_trace.
# This may be replaced when dependencies are built.
