file(REMOVE_RECURSE
  "libibp_trace.a"
)
