file(REMOVE_RECURSE
  "CMakeFiles/ibp_trace.dir/trace.cc.o"
  "CMakeFiles/ibp_trace.dir/trace.cc.o.d"
  "CMakeFiles/ibp_trace.dir/trace_io.cc.o"
  "CMakeFiles/ibp_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/ibp_trace.dir/trace_stats.cc.o"
  "CMakeFiles/ibp_trace.dir/trace_stats.cc.o.d"
  "libibp_trace.a"
  "libibp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
