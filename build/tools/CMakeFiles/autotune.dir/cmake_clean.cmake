file(REMOVE_RECURSE
  "CMakeFiles/autotune.dir/autotune.cc.o"
  "CMakeFiles/autotune.dir/autotune.cc.o.d"
  "autotune"
  "autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
