# Empty dependencies file for debug_sites.
# This may be replaced when dependencies are built.
