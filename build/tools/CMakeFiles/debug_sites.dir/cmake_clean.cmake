file(REMOVE_RECURSE
  "CMakeFiles/debug_sites.dir/debug_sites.cc.o"
  "CMakeFiles/debug_sites.dir/debug_sites.cc.o.d"
  "debug_sites"
  "debug_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
