# Empty compiler generated dependencies file for debug_sites.
# This may be replaced when dependencies are built.
