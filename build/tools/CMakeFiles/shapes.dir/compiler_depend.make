# Empty compiler generated dependencies file for shapes.
# This may be replaced when dependencies are built.
