file(REMOVE_RECURSE
  "CMakeFiles/shapes.dir/shapes.cc.o"
  "CMakeFiles/shapes.dir/shapes.cc.o.d"
  "shapes"
  "shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
