file(REMOVE_RECURSE
  "CMakeFiles/explore_predictors.dir/explore_predictors.cpp.o"
  "CMakeFiles/explore_predictors.dir/explore_predictors.cpp.o.d"
  "explore_predictors"
  "explore_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
