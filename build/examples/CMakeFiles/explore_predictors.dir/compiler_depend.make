# Empty compiler generated dependencies file for explore_predictors.
# This may be replaced when dependencies are built.
