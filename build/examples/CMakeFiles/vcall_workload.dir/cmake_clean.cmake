file(REMOVE_RECURSE
  "CMakeFiles/vcall_workload.dir/vcall_workload.cpp.o"
  "CMakeFiles/vcall_workload.dir/vcall_workload.cpp.o.d"
  "vcall_workload"
  "vcall_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcall_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
