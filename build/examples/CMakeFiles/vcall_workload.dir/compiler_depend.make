# Empty compiler generated dependencies file for vcall_workload.
# This may be replaced when dependencies are built.
