/**
 * @file
 * Differential tests of the fused sweep kernel: a grid run through
 * the phase-1 fused engine (shared trace traversal + shared
 * first-level histories, SweepKernel) must produce exactly the
 * counters the per-cell isolated path produces, for every predictor
 * family, at any thread count. Also covers the phase-1 -> phase-2
 * fallback (injected "fused"-site faults, sim-armed injectors) and
 * the scheduler-determinism guarantee (identical tables and
 * checkpoint journals across thread counts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cascaded.hh"
#include "core/factory.hh"
#include "core/ittage.hh"
#include "core/shared_hybrid.hh"
#include "core/sweep_kernel.hh"
#include "core/target_cache.hh"
#include "core/two_level.hh"
#include "robust/fault_injection.hh"
#include "sim/suite_runner.hh"
#include "trace/trace_cache.hh"

namespace ibp {
namespace {

class FusedKernelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        TraceCache::configureGlobal("");
        FaultInjector::configureGlobal("");
    }
    void
    TearDown() override
    {
        FaultInjector::configureGlobal("");
        TraceCache::configureGlobal("");
        unsetenv("IBP_EVENTS");
        unsetenv("IBP_THREADS");
    }
};

/**
 * One column per predictor family and per fusion-relevant code path:
 * BTBs (never join a kernel), limited-precision two-level predictors
 * at two path lengths of the SAME history group (the scatter-mask
 * fast path must serve both depths from one compressed-target
 * cache), full-precision and per-branch (s=2) variants (separate
 * groups / builder path), the fold compressor and a concat key mix
 * (non-BitSelect assembly over the shared buffer), history elements
 * beyond TargetOnly, conditional-target history, hybrids (every
 * component joins), and the extension families (cascaded, ITTAGE,
 * target cache, shared hybrid) which decline the kernel but still
 * ride the shared traversal.
 */
std::vector<SweepColumn>
fusedColumns()
{
    const auto spec = [](const std::string &text) {
        return [text]() { return makePredictorFromSpec(text); };
    };
    return {
        {"btb", spec("btb")},
        {"btb2bc", spec("btb2bc")},
        {"2lev-p2", spec("twolevel:p=2,table=assoc4:1024")},
        {"2lev-p6", spec("twolevel:p=6,table=assoc4:1024")},
        {"uncon-p4", spec("twolevel:p=4,table=unconstrained")},
        {"perbranch", spec("twolevel:p=4,table=assoc2:1024,s=2")},
        {"fold", spec("twolevel:p=8,table=tagless:4096,"
                      "compressor=fold")},
        {"pingpong-cat",
         spec("twolevel:p=4,table=assoc2:2048,interleave=pingpong,"
              "mix=concat")},
        {"hybrid", spec("hybrid:p1=3,p2=7,table=assoc4:1024,conf=2")},
        {"hybrid-sel",
         spec("hybrid:p1=3,p2=7,table=assoc2:1024,meta=selector")},
        {"targetaddr",
         []() {
             TwoLevelConfig config =
                 paperTwoLevel(3, TableSpec::setAssoc(1024, 4));
             config.historyElement = HistoryElement::TargetAndAddress;
             return std::make_unique<TwoLevelPredictor>(config);
         }},
        {"condtargets",
         []() {
             TwoLevelConfig config =
                 paperTwoLevel(4, TableSpec::setAssoc(1024, 4));
             config.includeConditionalTargets = true;
             return std::make_unique<TwoLevelPredictor>(config);
         }},
        {"cascaded",
         []() {
             return std::make_unique<CascadedPredictor>(
                 CascadedConfig::classic(1024));
         }},
        {"ittage",
         []() {
             return std::make_unique<IttagePredictor>(IttageConfig{});
         }},
        {"targetcache",
         []() {
             return std::make_unique<TargetCachePredictor>(
                 TargetCacheConfig{});
         }},
        {"sharedhybrid",
         []() {
             return std::make_unique<SharedHybridPredictor>(
                 SharedHybridConfig{});
         }},
    };
}

void
expectSameGrid(const SuiteRunner &runner,
               const std::vector<SweepColumn> &columns,
               const GridResult &fused, const GridResult &reference)
{
    EXPECT_EQ(fused.failures().size(), reference.failures().size());
    for (const auto &column : columns) {
        for (const auto &name : runner.benchmarks()) {
            ASSERT_TRUE(fused.has(column.label, name));
            ASSERT_TRUE(reference.has(column.label, name));
            // Bit-identical, not approximately equal: the fused
            // engine must count the same branches the same way.
            EXPECT_EQ(fused.get(column.label, name),
                      reference.get(column.label, name))
                << column.label << " x " << name;
        }
    }
}

TEST_F(FusedKernelTest, KernelRunMatchesSoloRunsBitForBit)
{
    // Engine-level differential, no SuiteRunner scheduling involved:
    // simulateMany with a SweepKernel versus per-predictor
    // simulate(), on the same trace (conditionals included so the
    // conditional-history paths are exercised).
    SuiteRunner runner({"idl"}, /*emitConditionals=*/true);
    const Trace &trace = runner.trace("idl");
    const auto columns = fusedColumns();

    std::vector<std::unique_ptr<IndirectPredictor>> predictors;
    std::vector<IndirectPredictor *> raw;
    for (const auto &column : columns) {
        predictors.push_back(column.make());
        raw.push_back(predictors.back().get());
    }
    SweepKernel kernel;
    for (IndirectPredictor *predictor : raw)
        kernel.tryJoin(*predictor);
    kernel.finalize();
    EXPECT_GT(kernel.joinedPredictors(), 0u);
    EXPECT_GT(kernel.declinedPredictors(), 0u);
    EXPECT_GT(kernel.groupCount(), 1u);

    SimOptions options;
    options.kernel = &kernel;
    const std::vector<SimResult> many =
        simulateMany(raw, trace, options);
    ASSERT_EQ(many.size(), columns.size());

    for (std::size_t i = 0; i < columns.size(); ++i) {
        auto fresh = columns[i].make();
        const SimResult one = simulate(*fresh, trace);
        EXPECT_EQ(many[i].branches, one.branches) << columns[i].label;
        EXPECT_EQ(many[i].misses, one.misses) << columns[i].label;
        EXPECT_EQ(many[i].noPrediction, one.noPrediction)
            << columns[i].label;
        EXPECT_EQ(many[i].tableOccupancy, one.tableOccupancy)
            << columns[i].label;
        EXPECT_EQ(many[i].tableCapacity, one.tableCapacity)
            << columns[i].label;
        EXPECT_TRUE(many[i].sharedTraversal);
        EXPECT_GE(many[i].groupSeconds, many[i].seconds);
    }
}

TEST_F(FusedKernelTest, DedupedReplicasMatchSoloRunsBitForBit)
{
    // A fig17-style row: several hybrids share their first component
    // (equal TwoLevelConfig), and two columns are fully identical.
    // The kernel dedupes those into replicas that mirror one
    // primary's per-record predictions instead of simulating their
    // own tables - every counter, including table occupancy, must
    // still match a solo run of each column exactly.
    SuiteRunner runner({"idl"}, /*emitConditionals=*/true);
    const Trace &trace = runner.trace("idl");
    const auto spec = [](const std::string &text) {
        return [text]() { return makePredictorFromSpec(text); };
    };
    const std::vector<SweepColumn> columns = {
        {"h5", spec("hybrid:p1=3,p2=5,table=assoc4:1024,conf=2")},
        {"h7", spec("hybrid:p1=3,p2=7,table=assoc4:1024,conf=2")},
        {"h7-dup", spec("hybrid:p1=3,p2=7,table=assoc4:1024,conf=2")},
        {"solo6", spec("twolevel:p=6,table=assoc4:1024")},
        {"solo6-dup", spec("twolevel:p=6,table=assoc4:1024")},
    };

    std::vector<std::unique_ptr<IndirectPredictor>> predictors;
    std::vector<IndirectPredictor *> raw;
    for (const auto &column : columns) {
        predictors.push_back(column.make());
        raw.push_back(predictors.back().get());
    }
    SweepKernel kernel;
    for (IndirectPredictor *predictor : raw)
        kernel.tryJoin(*predictor);
    kernel.finalize();
    // h7/h7-dup first components mirror h5's, h7-dup's second mirrors
    // h7's, and solo6-dup mirrors solo6: at least four replicas.
    EXPECT_GE(kernel.dedupedPredictors(), 4u);

    SimOptions options;
    options.kernel = &kernel;
    const std::vector<SimResult> many =
        simulateMany(raw, trace, options);
    ASSERT_EQ(many.size(), columns.size());

    for (std::size_t i = 0; i < columns.size(); ++i) {
        auto fresh = columns[i].make();
        const SimResult one = simulate(*fresh, trace);
        EXPECT_EQ(many[i].branches, one.branches) << columns[i].label;
        EXPECT_EQ(many[i].misses, one.misses) << columns[i].label;
        EXPECT_EQ(many[i].noPrediction, one.noPrediction)
            << columns[i].label;
        EXPECT_EQ(many[i].tableOccupancy, one.tableOccupancy)
            << columns[i].label;
        EXPECT_EQ(many[i].tableCapacity, one.tableCapacity)
            << columns[i].label;
    }

    // The grid path surfaces the dedup count in the run telemetry,
    // and it survives the JSON round-trip.
    setenv("IBP_THREADS", "1", 1);
    SuiteRunner grid_runner({"idl"}, /*emitConditionals=*/true);
    RunSession session;
    RunMetrics metrics;
    session.metrics = &metrics;
    const GridResult fused = grid_runner.run(columns, session);

    RunSession per_cell;
    per_cell.singlePass = false;
    const GridResult reference = grid_runner.run(columns, per_cell);
    expectSameGrid(grid_runner, columns, fused, reference);

    ASSERT_TRUE(metrics.hasSweepKernel());
    const SweepKernelStats sweep = metrics.sweepKernel();
    EXPECT_GE(sweep.predictorsDeduped, 4u);
    const RunMetrics reloaded = RunMetrics::fromJson(metrics.toJson());
    EXPECT_EQ(reloaded.sweepKernel().predictorsDeduped,
              sweep.predictorsDeduped);
}

TEST_F(FusedKernelTest, FusedGridMatchesPerCellGridSingleThread)
{
    setenv("IBP_THREADS", "1", 1);
    SuiteRunner runner({"idl", "perl", "self"},
                       /*emitConditionals=*/true);
    const auto columns = fusedColumns();

    RunSession per_cell;
    per_cell.singlePass = false;
    const GridResult reference = runner.run(columns, per_cell);

    RunSession fused_session;
    RunMetrics metrics;
    fused_session.metrics = &metrics;
    const GridResult fused = runner.run(columns, fused_session);

    expectSameGrid(runner, columns, fused, reference);

    // Telemetry: every chunk fused, none fell back, and the kernel
    // bound the two-level/hybrid members while the extension
    // families declined.
    ASSERT_TRUE(metrics.hasSweepKernel());
    const SweepKernelStats sweep = metrics.sweepKernel();
    EXPECT_GT(sweep.groupsFused, 0u);
    EXPECT_EQ(sweep.groupsPerCell, 0u);
    EXPECT_GT(sweep.predictorsBound, 0u);
    EXPECT_GT(sweep.predictorsUnbound, 0u);

    // Fused cells carry the synthetic-seconds marker and the real
    // group wall time.
    for (const CellMetrics &cell : metrics.cells()) {
        EXPECT_TRUE(cell.secondsSynthetic) << cell.column;
        EXPECT_GE(cell.groupSeconds, cell.seconds) << cell.column;
    }

    // The telemetry round-trips through the JSON artifact.
    const RunMetrics reloaded = RunMetrics::fromJson(metrics.toJson());
    ASSERT_TRUE(reloaded.hasSweepKernel());
    EXPECT_EQ(reloaded.sweepKernel().groupsFused, sweep.groupsFused);
    EXPECT_EQ(reloaded.sweepKernel().predictorsBound,
              sweep.predictorsBound);
    ASSERT_FALSE(reloaded.cells().empty());
    EXPECT_TRUE(reloaded.cells()[0].secondsSynthetic);
}

TEST_F(FusedKernelTest, FusedGridMatchesAcrossThreadCounts)
{
    const auto columns = fusedColumns();

    setenv("IBP_THREADS", "8", 1);
    SuiteRunner parallel({"idl", "perl"}, /*emitConditionals=*/true);
    RunSession parallel_session;
    const GridResult fused = parallel.run(columns, parallel_session);

    setenv("IBP_THREADS", "1", 1);
    SuiteRunner serial({"idl", "perl"}, /*emitConditionals=*/true);
    RunSession serial_session;
    serial_session.singlePass = false;
    const GridResult reference = serial.run(columns, serial_session);

    expectSameGrid(serial, columns, fused, reference);
}

TEST_F(FusedKernelTest, InjectedFusedFaultFallsBackPerCell)
{
    // A fault injected at the "fused" site kills every phase-1 chunk;
    // phase 2 must re-run the cells per-cell with bit-identical
    // results and ZERO failure records (the fallback is recovery,
    // not failure).
    SuiteRunner runner({"idl", "self"});
    const auto columns = fusedColumns();

    const GridResult clean = runner.run(columns);

    FaultInjector::configureGlobal("fused:1.0");
    RunMetrics metrics;
    RunSession session;
    session.metrics = &metrics;
    const GridResult faulted = runner.run(columns, session);
    FaultInjector::configureGlobal("");

    EXPECT_FALSE(faulted.partial());
    expectSameGrid(runner, columns, faulted, clean);
    EXPECT_EQ(metrics.failureCount(), 0u);
    EXPECT_EQ(metrics.cellCount(),
              columns.size() * runner.benchmarks().size());

    ASSERT_TRUE(metrics.hasSweepKernel());
    const SweepKernelStats sweep = metrics.sweepKernel();
    EXPECT_EQ(sweep.groupsFused, 0u);
    EXPECT_GT(sweep.fallbackInjected, 0u);
    EXPECT_EQ(sweep.groupsPerCell, sweep.fallbackInjected);
}

TEST_F(FusedKernelTest, SimArmedInjectorForcesPerCellAccounting)
{
    // Arming the "sim" site must disable phase 1 wholesale: sim
    // faults are defined per (cell, attempt), which only the
    // per-cell path can honour. Heavy transient faulting then
    // retries away without perturbing results.
    SuiteRunner runner({"idl", "self"});
    const std::vector<SweepColumn> columns = {
        {"btb", []() { return makePredictorFromSpec("btb"); }},
        {"2lev",
         []() {
             return makePredictorFromSpec(
                 "twolevel:p=3,table=assoc4:1024");
         }},
    };
    const GridResult clean = runner.run(columns);

    FaultInjector::configureGlobal("sim:0.5,seed=11");
    RunMetrics metrics;
    RunSession session;
    session.metrics = &metrics;
    session.retry.maxAttempts = 8;
    session.retry.initialBackoffSeconds = 0.0;
    const GridResult faulted = runner.run(columns, session);
    FaultInjector::configureGlobal("");

    EXPECT_FALSE(faulted.partial());
    expectSameGrid(runner, columns, faulted, clean);
    ASSERT_TRUE(metrics.hasSweepKernel());
    const SweepKernelStats sweep = metrics.sweepKernel();
    EXPECT_EQ(sweep.groupsFused, 0u);
    EXPECT_EQ(sweep.fallbackInjectorArmed, 2u); // one per benchmark
    EXPECT_EQ(sweep.groupsPerCell, 2u);
}

TEST_F(FusedKernelTest, FactoryErrorInChunkFallsBackAndIsolates)
{
    // A throwing factory poisons its whole phase-1 chunk (the fused
    // engine can't build the member set), but phase 2 isolation must
    // still complete every healthy cell and record exactly the bad
    // column's failures.
    SuiteRunner runner({"idl"});
    const std::vector<SweepColumn> columns = {
        {"good", []() { return makePredictorFromSpec("btb"); }},
        {"bad",
         []() -> std::unique_ptr<IndirectPredictor> {
             throw RunException(
                 RunError::permanent("factory exploded"));
         }},
    };
    RunMetrics metrics;
    RunSession session;
    session.metrics = &metrics;
    session.retry.maxAttempts = 2;
    session.retry.initialBackoffSeconds = 0.0;
    const GridResult grid = runner.run(columns, session);

    EXPECT_TRUE(grid.has("good", "idl"));
    EXPECT_FALSE(grid.has("bad", "idl"));
    ASSERT_EQ(grid.failures().size(), 1u);
    EXPECT_EQ(grid.failures()[0].column, "bad");
    EXPECT_EQ(grid.failures()[0].kind, ErrorKind::Permanent);
    EXPECT_NE(grid.failures()[0].error.find("factory exploded"),
              std::string::npos);

    ASSERT_TRUE(metrics.hasSweepKernel());
    const SweepKernelStats sweep = metrics.sweepKernel();
    EXPECT_EQ(sweep.fallbackFactory, sweep.groupsPerCell);
    EXPECT_GT(sweep.fallbackFactory, 0u);
}

/** The journal's cell lines, sorted (completion order is
 *  scheduling-dependent; content must not be). */
std::vector<std::string>
sortedJournalLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

TEST_F(FusedKernelTest, SchedulerIsDeterministicAcrossThreadCounts)
{
    // Satellite: IBP_THREADS=1, 2 and 8 must produce identical
    // result tables AND identical (order-normalised) checkpoint
    // journals - work stealing may reorder completion, never change
    // values.
    const auto columns = fusedColumns();
    CheckpointMeta meta;
    meta.slug = "determinism";
    meta.gitSha = "sha";
    meta.eventScale = 0.05;
    meta.quick = false;

    std::vector<std::string> rendered;
    std::vector<std::vector<std::string>> journals;
    for (const char *threads : {"1", "2", "8"}) {
        setenv("IBP_THREADS", threads, 1);
        const std::string path = testing::TempDir() +
                                 "/ibp_determinism_" + threads +
                                 ".jsonl";
        std::remove(path.c_str());
        SuiteRunner runner({"idl", "perl"},
                           /*emitConditionals=*/true);
        auto journal = CheckpointJournal::open(path, meta);
        ASSERT_TRUE(journal.ok());
        RunSession session;
        session.checkpoint = journal.value().get();
        const GridResult grid = runner.run(columns, session);
        EXPECT_FALSE(grid.partial());

        rendered.push_back(
            runner.benchmarkTable("determinism", grid, columns)
                .toCsv());
        journals.push_back(sortedJournalLines(path));
        std::remove(path.c_str());
    }
    EXPECT_EQ(rendered[0], rendered[1]);
    EXPECT_EQ(rendered[0], rendered[2]);
    EXPECT_EQ(journals[0], journals[1]);
    EXPECT_EQ(journals[0], journals[2]);
}

} // namespace
} // namespace ibp
