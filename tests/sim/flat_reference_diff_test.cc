/**
 * @file
 * Differential tests of the flat-table predictor engine against the
 * retained reference implementations. TableImpl::Reference selects
 * the seed's node-based storage (unordered_map tables, list-based
 * LRU, per-set history maps, hybrid selector map) AND the seed's
 * bit-by-bit pattern interleaving; TableImpl::Flat selects the
 * open-addressing FlatMap engine with precomputed scatter masks.
 * Every SimResult counter — branches, misses, noPrediction,
 * tableOccupancy, tableCapacity — must be bit-identical between the
 * two, for every predictor family, at any thread count. These tests
 * are what lets the throughput comparison in bench/micro_throughput
 * claim a speedup over "the same predictor": the counters prove the
 * two engines are the same function.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "core/next_branch.hh"
#include "core/pattern.hh"
#include "core/table_spec.hh"
#include "sim/suite_runner.hh"
#include "trace/trace_cache.hh"

namespace ibp {
namespace {

class FlatReferenceDiffTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        TraceCache::configureGlobal("");
        _initial = tableImplementation();
    }
    void
    TearDown() override
    {
        setTableImplementation(_initial);
        TraceCache::configureGlobal("");
        unsetenv("IBP_EVENTS");
        unsetenv("IBP_THREADS");
    }

  private:
    TableImpl _initial = TableImpl::Flat;
};

/**
 * One column per ported structure: BTB over the unconstrained map,
 * BTB over the intrusive-LRU fully associative table, two-level
 * predictors over tagless / set-associative / fully associative /
 * unconstrained second levels (the Figure 18 mix), per-branch
 * history sharing (s=2, the per-set history map and its memo), every
 * interleave kind plus the fold compressor (the scatter-mask
 * assembly), and a hybrid with each meta scheme (the selector map).
 */
std::vector<SweepColumn>
diverseColumns()
{
    const auto spec = [](const std::string &text) {
        return [text]() { return makePredictorFromSpec(text); };
    };
    return {
        {"btb", spec("btb")},
        {"btb-lru", spec("btb2bc:table=fullassoc:512")},
        {"tagless", spec("twolevel:p=3,table=tagless:1024")},
        {"assoc4", spec("twolevel:p=3,table=assoc4:1024")},
        {"fullassoc", spec("twolevel:p=3,table=fullassoc:256")},
        {"uncon-p6", spec("twolevel:p=6,table=unconstrained")},
        {"perbranch", spec("twolevel:p=4,table=assoc2:1024,s=2")},
        {"straight",
         spec("twolevel:p=3,table=tagless:2048,interleave=straight")},
        {"pingpong-cat",
         spec("twolevel:p=4,table=assoc2:2048,interleave=pingpong,"
              "mix=concat")},
        {"fold", spec("twolevel:p=8,table=tagless:4096,"
                      "compressor=fold")},
        {"hybrid", spec("hybrid:p1=3,p2=7,table=assoc4:1024,conf=2")},
        {"hybrid-sel",
         spec("hybrid:p1=3,p2=7,table=assoc2:1024,meta=selector")},
    };
}

void
expectSameGrid(const SuiteRunner &runner,
               const std::vector<SweepColumn> &columns,
               const GridResult &flat, const GridResult &reference)
{
    EXPECT_EQ(flat.failures().size(), reference.failures().size());
    for (const auto &column : columns) {
        for (const auto &name : runner.benchmarks()) {
            ASSERT_TRUE(flat.has(column.label, name));
            ASSERT_TRUE(reference.has(column.label, name));
            // Bit-identical, not approximately equal: every counter
            // in the SimResult must agree.
            EXPECT_EQ(flat.get(column.label, name),
                      reference.get(column.label, name))
                << column.label << " x " << name;
        }
    }
}

/** Run the full sweep under one table implementation. The toggle is
 *  captured at predictor construction, so it must be set before
 *  run() invokes the column factories. */
GridResult
runGrid(SuiteRunner &runner, const std::vector<SweepColumn> &columns,
        TableImpl impl)
{
    setTableImplementation(impl);
    RunSession session;
    return runner.run(columns, session);
}

TEST_F(FlatReferenceDiffTest, GridsMatchBitForBitSingleThread)
{
    setenv("IBP_THREADS", "1", 1);
    SuiteRunner runner({"idl", "perl", "self"});
    const auto columns = diverseColumns();
    const GridResult flat = runGrid(runner, columns, TableImpl::Flat);
    const GridResult reference =
        runGrid(runner, columns, TableImpl::Reference);
    expectSameGrid(runner, columns, flat, reference);
}

TEST_F(FlatReferenceDiffTest, GridsMatchAcrossThreadCounts)
{
    // Flat engine on the parallel path vs reference engine on the
    // serial path: divergence in either the engine or the threading
    // shows up as a counter mismatch.
    const auto columns = diverseColumns();

    setenv("IBP_THREADS", "8", 1);
    SuiteRunner parallel({"idl", "perl"});
    const GridResult flat =
        runGrid(parallel, columns, TableImpl::Flat);

    setenv("IBP_THREADS", "1", 1);
    SuiteRunner serial({"idl", "perl"});
    const GridResult reference =
        runGrid(serial, columns, TableImpl::Reference);

    expectSameGrid(serial, columns, flat, reference);
}

TEST_F(FlatReferenceDiffTest, PatternAssemblyMatchesReference)
{
    // Unit-level differential of the scatter-mask assembly: for every
    // interleave kind and both compressors, a builder constructed
    // under Flat must produce exactly the pattern the seed's
    // bit-by-bit loop produces for the same random history.
    std::mt19937_64 rng(0x9a77e12);
    for (const InterleaveKind interleave :
         {InterleaveKind::Concat, InterleaveKind::Straight,
          InterleaveKind::Reverse, InterleaveKind::PingPong}) {
        for (const CompressorKind compressor :
             {CompressorKind::BitSelect, CompressorKind::FoldXor}) {
            for (const unsigned p : {1u, 3u, 8u, 24u}) {
                PatternSpec spec;
                spec.pathLength = p;
                spec.interleave = interleave;
                spec.compressor = compressor;

                setTableImplementation(TableImpl::Flat);
                const PatternBuilder flat(spec);
                setTableImplementation(TableImpl::Reference);
                const PatternBuilder reference(spec);

                HistoryBuffer history(p);
                for (int round = 0; round < 64; ++round) {
                    history.push(static_cast<Addr>(rng()));
                    EXPECT_EQ(flat.assemblePattern(history),
                              reference.assemblePattern(history))
                        << toString(interleave) << '/'
                        << toString(compressor) << " p=" << p;
                }
            }
        }
    }
}

TEST_F(FlatReferenceDiffTest, NextBranchPredictorMatchesReference)
{
    // The next-branch extension stores (target, next PC) entries in
    // the toggled map; drive both engines through an irregular
    // call-chain workload and require identical predictions.
    const auto drive = [](TableImpl impl) {
        setTableImplementation(impl);
        NextBranchPredictor predictor(3);
        std::mt19937 rng(0x5eed);
        std::vector<std::uint64_t> observations;
        Addr pc = 0x1000;
        for (int i = 0; i < 20000; ++i) {
            const Addr target = 0xA000 + (rng() % 37) * 4;
            const Addr next_pc = 0x1000 + (rng() % 53) * 4;
            const NextBranchPrediction guess = predictor.predict(pc);
            observations.push_back(
                guess.valid
                    ? (std::uint64_t{guess.target} << 32 |
                       guess.nextPc)
                    : ~std::uint64_t{0});
            predictor.update(pc, target, next_pc);
            pc = next_pc;
        }
        observations.push_back(predictor.entries());
        return observations;
    };
    EXPECT_EQ(drive(TableImpl::Flat), drive(TableImpl::Reference));
}

} // namespace
} // namespace ibp
