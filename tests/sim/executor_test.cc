/**
 * @file
 * Unit tests of the persistent work-stealing executor: batch
 * completion, deferred-work accounting, nested spawns (tasks
 * spawning into their own batch), pool resizing up and down, inline
 * degradation at zero workers, and worker-index reporting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "sim/executor.hh"

namespace ibp {
namespace {

TEST(ExecutorTest, BatchRunsEveryTask)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(4);
    std::atomic<int> count{0};
    {
        Executor::Batch batch(executor);
        for (int i = 0; i < 200; ++i)
            batch.spawn([&count]() {
                count.fetch_add(1, std::memory_order_relaxed);
            });
        batch.wait();
        EXPECT_EQ(count.load(), 200);
    }
}

TEST(ExecutorTest, TasksRunOnPoolWorkers)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(4);
    EXPECT_EQ(executor.workerCount(), 4u);
    EXPECT_EQ(Executor::currentWorkerIndex(), -1); // off-pool caller

    std::mutex mutex;
    std::set<int> indexes;
    Executor::Batch batch(executor);
    for (int i = 0; i < 64; ++i) {
        batch.spawn([&]() {
            const int index = Executor::currentWorkerIndex();
            // Busy a moment so several workers get to participate.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            std::lock_guard<std::mutex> lock(mutex);
            indexes.insert(index);
        });
    }
    batch.wait();
    ASSERT_FALSE(indexes.empty());
    for (const int index : indexes) {
        EXPECT_GE(index, 0);
        EXPECT_LT(index, 4);
    }
}

TEST(ExecutorTest, NestedSpawnsJoinTheSameBatch)
{
    // A task may split itself and spawn the halves into its own
    // batch (how fused chunks split on idle); wait() must cover the
    // children too.
    Executor &executor = Executor::global();
    executor.ensureWorkers(4);
    std::atomic<int> count{0};
    Executor::Batch batch(executor);
    for (int i = 0; i < 8; ++i) {
        batch.spawn([&]() {
            count.fetch_add(1, std::memory_order_relaxed);
            for (int child = 0; child < 4; ++child) {
                batch.spawn([&count]() {
                    count.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    batch.wait();
    EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ExecutorTest, DeferredWorkGatesWait)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(2);
    std::atomic<bool> ran{false};
    Executor::Batch batch(executor);
    batch.defer();
    // wait() must not return while the deferred slot is unresolved;
    // resolve it from another thread after a delay and require the
    // task's effect to be visible after wait().
    std::thread resolver([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        batch.spawnDeferred([&ran]() { ran.store(true); });
    });
    batch.wait();
    EXPECT_TRUE(ran.load());
    resolver.join();
}

TEST(ExecutorTest, CancelledDeferredWorkReleasesWait)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(2);
    Executor::Batch batch(executor);
    batch.defer();
    batch.defer();
    batch.cancelDeferred();
    batch.cancelDeferred();
    batch.wait(); // would hang if cancel didn't release the slots
}

TEST(ExecutorTest, ResizeUpAndDownKeepsExecuting)
{
    Executor &executor = Executor::global();
    for (const unsigned count : {1u, 8u, 2u, 4u}) {
        executor.ensureWorkers(count);
        EXPECT_EQ(executor.workerCount(), count);
        std::atomic<int> done{0};
        Executor::Batch batch(executor);
        for (int i = 0; i < 50; ++i)
            batch.spawn([&done]() {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        batch.wait();
        EXPECT_EQ(done.load(), 50);
    }
}

TEST(ExecutorTest, ZeroWorkersDegradesToInline)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(0);
    EXPECT_EQ(executor.workerCount(), 0u);
    bool ran = false;
    Executor::Batch batch(executor);
    // With no workers the spawn runs inline on this thread, so the
    // effect is visible immediately, before wait().
    batch.spawn([&ran]() {
        ran = true;
        EXPECT_EQ(Executor::currentWorkerIndex(), -1);
    });
    EXPECT_TRUE(ran);
    batch.wait();
    executor.ensureWorkers(2); // restore a pool for later tests
}

TEST(ExecutorTest, ManySmallBatchesDrainCompletely)
{
    // Regression guard for lost-wakeup bugs: many tiny batches in a
    // row, each must drain; a single missed notify deadlocks here.
    Executor &executor = Executor::global();
    executor.ensureWorkers(4);
    for (int round = 0; round < 200; ++round) {
        std::atomic<int> count{0};
        Executor::Batch batch(executor);
        for (int i = 0; i < 4; ++i)
            batch.spawn([&count]() {
                count.fetch_add(1, std::memory_order_relaxed);
            });
        batch.wait();
        ASSERT_EQ(count.load(), 4) << "round " << round;
    }
}

TEST(ExecutorTest, DrainWaitsForQueuedAndNestedWork)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(4);
    std::atomic<int> finished{0};
    Executor::Batch batch(executor);
    for (int i = 0; i < 32; ++i) {
        batch.spawn([&]() {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            // Nested children submitted from inside a running task
            // must also gate drain(): the ledger counts them the
            // moment they are spawned, before the parent finishes.
            batch.spawn([&]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                finished.fetch_add(1, std::memory_order_relaxed);
            });
            finished.fetch_add(1, std::memory_order_relaxed);
        });
    }
    executor.drain();
    EXPECT_EQ(executor.outstandingTasks(), 0u);
    EXPECT_EQ(finished.load(), 64);
    batch.wait();
}

TEST(ExecutorTest, DrainReturnsImmediatelyWhenIdle)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(2);
    executor.drain(); // settle anything left over from other tests
    const auto start = std::chrono::steady_clock::now();
    executor.drain();
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(seconds, 0.5);
    EXPECT_EQ(executor.outstandingTasks(), 0u);
}

TEST(ExecutorTest, IdleWaitTimesOutOnBlockedWork)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(2);
    std::mutex gate;
    gate.lock();
    Executor::Batch batch(executor);
    batch.spawn([&gate]() {
        std::lock_guard<std::mutex> hold(gate); // parked until unlock
    });
    EXPECT_FALSE(executor.idleWait(0.05));
    EXPECT_GT(executor.outstandingTasks(), 0u);
    gate.unlock();
    EXPECT_TRUE(executor.idleWait(10.0));
    EXPECT_EQ(executor.outstandingTasks(), 0u);
    batch.wait();
}

TEST(ExecutorTest, DrainCoversInlineExecution)
{
    Executor &executor = Executor::global();
    executor.ensureWorkers(0); // inline degradation path
    std::atomic<int> count{0};
    {
        Executor::Batch batch(executor);
        for (int i = 0; i < 8; ++i)
            batch.spawn([&]() { ++count; });
        batch.wait();
    }
    executor.drain();
    EXPECT_EQ(count.load(), 8);
    EXPECT_EQ(executor.outstandingTasks(), 0u);
    executor.ensureWorkers(4);
}

} // namespace
} // namespace ibp
