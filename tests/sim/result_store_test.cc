/**
 * @file
 * Tests of the content-addressed result store (sim/result_store.hh)
 * and its SuiteRunner integration: store/load round trips,
 * quarantine of corrupt and foreign entries, warm grid re-runs that
 * load every cell bit-identically, incremental re-simulation when
 * only one configuration changes, simulator-version invalidation,
 * the fault-injection bypass, and the checkpoint-journal interplay
 * (restored cells written back exactly once, never counted as hits).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "core/spec_codec.hh"
#include "robust/fault_injection.hh"
#include "sim/result_store.hh"
#include "sim/spec_columns.hh"
#include "sim/suite_runner.hh"

namespace ibp {
namespace {

namespace fs = std::filesystem;

class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        unsetenv("IBP_RESULT_STORE_VERSION");
        _dir = testing::TempDir() + "/ibp_result_store_test";
        fs::remove_all(_dir);
    }
    void
    TearDown() override
    {
        ResultStore::configureGlobal("");
        FaultInjector::configureGlobal("");
        unsetenv("IBP_RESULT_STORE_VERSION");
        unsetenv("IBP_EVENTS");
        fs::remove_all(_dir);
    }

    StoredResult
    sampleResult() const
    {
        StoredResult result;
        result.benchmark = "idl";
        result.predictor = "twolevel-p3";
        result.branches = 12345;
        result.misses = 678;
        result.noPrediction = 9;
        result.tableOccupancy = 512;
        result.tableCapacity = 1024;
        result.seconds = 0.25;
        result.groupSeconds = 0.5;
        result.sharedTraversal = true;
        result.missPercent = 100.0 * 678 / 12345;
        return result;
    }

    std::string _dir;
};

TEST_F(ResultStoreTest, StoreLoadRoundTrip)
{
    ResultStore store(_dir);
    const StoredResult written = sampleResult();
    ASSERT_TRUE(store.store("cell-1", written).ok());
    ASSERT_TRUE(store.contains("cell-1"));

    const auto loaded = store.load("cell-1");
    ASSERT_EQ(loaded.status, ResultStore::LoadStatus::Hit);
    const StoredResult &read = loaded.result;
    EXPECT_EQ(read.benchmark, written.benchmark);
    EXPECT_EQ(read.predictor, written.predictor);
    EXPECT_TRUE(read.hasCounters);
    EXPECT_EQ(read.branches, written.branches);
    EXPECT_EQ(read.misses, written.misses);
    EXPECT_EQ(read.noPrediction, written.noPrediction);
    EXPECT_EQ(read.tableOccupancy, written.tableOccupancy);
    EXPECT_EQ(read.tableCapacity, written.tableCapacity);
    EXPECT_EQ(read.seconds, written.seconds);
    EXPECT_EQ(read.groupSeconds, written.groupSeconds);
    EXPECT_EQ(read.sharedTraversal, written.sharedTraversal);
    // Bit-identical, not merely close: the grid value a warm run
    // serves is exactly the double the cold run computed.
    EXPECT_EQ(read.missPercent, written.missPercent);
}

TEST_F(ResultStoreTest, AbsentKeyIsAMiss)
{
    ResultStore store(_dir);
    EXPECT_FALSE(store.contains("nope"));
    EXPECT_EQ(store.load("nope").status,
              ResultStore::LoadStatus::Miss);
}

TEST_F(ResultStoreTest, GarbageEntryIsQuarantinedOnce)
{
    ResultStore store(_dir);
    fs::create_directories(_dir);
    {
        std::ofstream out(store.pathFor("bad"));
        out << "{ not json at all";
    }
    EXPECT_EQ(store.load("bad").status,
              ResultStore::LoadStatus::Invalidated);
    EXPECT_TRUE(fs::exists(store.pathFor("bad") + ".corrupt"));
    // The quarantine removed the entry, so the next probe is a
    // clean miss (and the cell re-simulates, not re-quarantines).
    EXPECT_EQ(store.load("bad").status,
              ResultStore::LoadStatus::Miss);
}

TEST_F(ResultStoreTest, TamperedPayloadFailsTheChecksum)
{
    ResultStore store(_dir);
    ASSERT_TRUE(store.store("cell", sampleResult()).ok());

    std::string text;
    {
        std::ifstream in(store.pathFor("cell"));
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    const auto pos = text.find("\"idl\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 5, "\"gcc\"");
    {
        std::ofstream out(store.pathFor("cell"));
        out << text;
    }

    EXPECT_EQ(store.load("cell").status,
              ResultStore::LoadStatus::Invalidated);
    EXPECT_TRUE(fs::exists(store.pathFor("cell") + ".corrupt"));
}

TEST_F(ResultStoreTest, ForeignKeyEchoIsQuarantined)
{
    ResultStore store(_dir);
    ASSERT_TRUE(store.store("cell-a", sampleResult()).ok());
    // A byte-perfect entry copied under the wrong name (e.g. a
    // hand-mangled store directory) must not be served.
    fs::copy_file(store.pathFor("cell-a"), store.pathFor("cell-b"));
    EXPECT_EQ(store.load("cell-b").status,
              ResultStore::LoadStatus::Invalidated);
    EXPECT_EQ(store.load("cell-a").status,
              ResultStore::LoadStatus::Hit);
}

TEST_F(ResultStoreTest, CellKeySeparatesSpecsAndVersions)
{
    const std::uint64_t spec_a =
        specHash(paperTwoLevel(3, TableSpec::setAssoc(256, 4)));
    const std::uint64_t spec_b =
        specHash(paperTwoLevel(4, TableSpec::setAssoc(256, 4)));
    const std::string key_a = ResultStore::cellKey("idl-16", spec_a);
    EXPECT_EQ(key_a, ResultStore::cellKey("idl-16", spec_a));
    EXPECT_NE(key_a, ResultStore::cellKey("idl-16", spec_b));
    EXPECT_NE(key_a, ResultStore::cellKey("gcc-16", spec_a));

    setenv("IBP_RESULT_STORE_VERSION", "999", 1);
    EXPECT_NE(ResultStore::cellKey("idl-16", spec_a), key_a);
    unsetenv("IBP_RESULT_STORE_VERSION");
    EXPECT_EQ(ResultStore::cellKey("idl-16", spec_a), key_a);
}

std::vector<SweepColumn>
keyedColumns()
{
    std::vector<SweepColumn> columns;
    columns.push_back(specColumn(
        "p3", paperTwoLevel(3, TableSpec::setAssoc(256, 4))));
    columns.push_back(
        btbColumn("btb", TableSpec::unconstrained(), true));
    return columns;
}

TEST_F(ResultStoreTest, WarmRerunServesEveryCellBitIdentically)
{
    ResultStore::configureGlobal(_dir);
    SuiteRunner runner({"idl", "self"});
    const auto columns = keyedColumns();

    RunMetrics cold_metrics;
    const GridResult cold = runner.run(columns, &cold_metrics);
    ASSERT_TRUE(cold_metrics.hasResultStore());
    EXPECT_EQ(cold_metrics.resultStore().hits, 0u);
    EXPECT_EQ(cold_metrics.resultStore().misses, 4u);
    EXPECT_EQ(cold_metrics.resultStore().stores, 4u);

    RunMetrics warm_metrics;
    const GridResult warm = runner.run(columns, &warm_metrics);
    ASSERT_TRUE(warm_metrics.hasResultStore());
    EXPECT_EQ(warm_metrics.resultStore().hits, 4u);
    EXPECT_EQ(warm_metrics.resultStore().misses, 0u);
    EXPECT_EQ(warm_metrics.resultStore().invalidated, 0u);
    EXPECT_EQ(warm_metrics.resultStore().stores, 0u);
    // Restored counters still feed cell telemetry.
    EXPECT_EQ(warm_metrics.cellCount(), 4u);
    EXPECT_EQ(warm_metrics.totalBranches(),
              cold_metrics.totalBranches());

    for (const auto &column : columns) {
        for (const auto &name : runner.benchmarks()) {
            ASSERT_TRUE(warm.has(column.label, name));
            EXPECT_EQ(warm.get(column.label, name),
                      cold.get(column.label, name));
        }
    }
}

TEST_F(ResultStoreTest, OnlyChangedConfigurationsResimulate)
{
    ResultStore::configureGlobal(_dir);
    SuiteRunner runner({"idl", "self"});

    std::vector<SweepColumn> first;
    first.push_back(specColumn(
        "p3", paperTwoLevel(3, TableSpec::setAssoc(256, 4))));
    runner.run(first);

    // Add one new configuration: the old column's cells load, only
    // the new one simulates (incremental grid re-simulation).
    std::vector<SweepColumn> extended = first;
    extended.push_back(specColumn(
        "p5", paperTwoLevel(5, TableSpec::setAssoc(256, 4))));
    RunMetrics metrics;
    runner.run(extended, &metrics);
    EXPECT_EQ(metrics.resultStore().hits, 2u);
    EXPECT_EQ(metrics.resultStore().misses, 2u);
    EXPECT_EQ(metrics.resultStore().stores, 2u);
}

TEST_F(ResultStoreTest, VersionBumpInvalidatesTheWholeStore)
{
    ResultStore::configureGlobal(_dir);
    SuiteRunner runner({"idl", "self"});
    const auto columns = keyedColumns();
    runner.run(columns);

    // A simulator-version change mints different cell keys: every
    // warm entry misses cleanly (not quarantined - the old files
    // are simply never consulted again).
    setenv("IBP_RESULT_STORE_VERSION", "2", 1);
    RunMetrics bumped;
    runner.run(columns, &bumped);
    EXPECT_EQ(bumped.resultStore().hits, 0u);
    EXPECT_EQ(bumped.resultStore().misses, 4u);
    EXPECT_EQ(bumped.resultStore().invalidated, 0u);
    unsetenv("IBP_RESULT_STORE_VERSION");

    RunMetrics warm;
    runner.run(columns, &warm);
    EXPECT_EQ(warm.resultStore().hits, 4u);
}

TEST_F(ResultStoreTest, ArmedInjectorBypassesTheStore)
{
    ResultStore::configureGlobal(_dir);
    SuiteRunner runner({"idl"});
    const auto columns = keyedColumns();
    runner.run(columns);
    const auto entries_after_cold =
        std::distance(fs::directory_iterator(_dir),
                      fs::directory_iterator{});

    // Any armed injector (even at probability zero) must force real
    // simulation and keep the store untouched: injected faults have
    // to reach the simulator, and a faulted run must never pollute
    // the store.
    FaultInjector::configureGlobal("sim:0.0,seed=1");
    RunMetrics metrics;
    const GridResult faulted = runner.run(columns, &metrics);
    FaultInjector::configureGlobal("");

    EXPECT_FALSE(metrics.hasResultStore());
    EXPECT_TRUE(faulted.has("p3", "idl"));
    EXPECT_EQ(std::distance(fs::directory_iterator(_dir),
                            fs::directory_iterator{}),
              entries_after_cold);
}

TEST_F(ResultStoreTest, UnkeyedColumnsAlwaysSimulate)
{
    ResultStore::configureGlobal(_dir);
    SuiteRunner runner({"idl"});
    const std::vector<SweepColumn> columns = {
        {"handrolled", []() {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::setAssoc(256, 4)));
         }}};
    RunMetrics first;
    runner.run(columns, &first);
    RunMetrics second;
    runner.run(columns, &second);
    // The store was armed (telemetry present) but an unkeyed column
    // neither probes nor populates it.
    ASSERT_TRUE(second.hasResultStore());
    EXPECT_EQ(second.resultStore().hits, 0u);
    EXPECT_EQ(second.resultStore().misses, 0u);
    EXPECT_EQ(second.resultStore().stores, 0u);
}

TEST_F(ResultStoreTest, JournalRestoredCellsWriteBackExactlyOnce)
{
    const std::string journal_path = _dir + "-journal.ckpt";
    fs::remove(journal_path);
    CheckpointMeta meta;
    meta.slug = "result-store-test";
    meta.gitSha = "test";
    meta.eventScale = 0.05;
    meta.quick = false;

    SuiteRunner runner({"idl", "self"});
    const auto columns = keyedColumns();

    // Phase 1: journal armed, store disabled - the classic
    // checkpointed sweep.
    GridResult original;
    {
        ResultStore::configureGlobal("");
        auto journal = CheckpointJournal::open(journal_path, meta);
        ASSERT_TRUE(journal.ok());
        RunSession session;
        session.checkpoint = journal.value().get();
        original = runner.run(columns, session);
    }

    // Phase 2: resume from the journal with a store armed. Every
    // cell restores from the journal - NOT a store hit - and is
    // written back into the store exactly once.
    {
        ResultStore::configureGlobal(_dir);
        auto journal = CheckpointJournal::open(journal_path, meta);
        ASSERT_TRUE(journal.ok());
        EXPECT_EQ(journal.value()->restoredCells(), 4u);
        RunMetrics metrics;
        RunSession session;
        session.metrics = &metrics;
        session.checkpoint = journal.value().get();
        runner.run(columns, session);
        EXPECT_EQ(metrics.resultStore().journalWritebacks, 4u);
        EXPECT_EQ(metrics.resultStore().hits, 0u);
        EXPECT_EQ(metrics.resultStore().misses, 0u);
        EXPECT_EQ(metrics.resultStore().stores, 0u);
    }

    // Phase 3: resume AGAIN with the same journal - the store
    // already holds every cell, so nothing is double-written (and
    // nothing is double-counted as a hit).
    {
        auto journal = CheckpointJournal::open(journal_path, meta);
        ASSERT_TRUE(journal.ok());
        RunMetrics metrics;
        RunSession session;
        session.metrics = &metrics;
        session.checkpoint = journal.value().get();
        runner.run(columns, session);
        EXPECT_EQ(metrics.resultStore().journalWritebacks, 0u);
        EXPECT_EQ(metrics.resultStore().hits, 0u);
    }

    // Phase 4: a journal-less warm re-run serves the written-back
    // cells from the store, values identical to the original sweep.
    {
        RunMetrics metrics;
        const GridResult warm = runner.run(columns, &metrics);
        EXPECT_EQ(metrics.resultStore().hits, 4u);
        EXPECT_EQ(metrics.resultStore().misses, 0u);
        // Written back from the journal, these entries carry no
        // counters - the grid value is authoritative, telemetry
        // records no synthetic cells.
        EXPECT_EQ(metrics.cellCount(), 0u);
        for (const auto &column : columns) {
            for (const auto &name : runner.benchmarks()) {
                EXPECT_EQ(warm.get(column.label, name),
                          original.get(column.label, name));
            }
        }
    }
    fs::remove(journal_path);
}

} // namespace
} // namespace ibp
