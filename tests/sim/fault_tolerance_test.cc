/**
 * @file
 * Fault-tolerance tests of the suite runner: cell isolation, retry
 * of injected transient faults, partial grids and their degraded
 * averages/tables, trace-generation failures, checkpoint/resume
 * reproduction, and watchdog cancellation.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/btb.hh"
#include "robust/fault_injection.hh"
#include "sim/suite_runner.hh"

namespace ibp {
namespace {

class FaultToleranceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        FaultInjector::configureGlobal("");
    }
    void
    TearDown() override
    {
        FaultInjector::configureGlobal("");
        unsetenv("IBP_EVENTS");
    }
};

SweepColumn
btbColumn(const std::string &label)
{
    return {label, []() {
                return std::make_unique<BtbPredictor>(
                    TableSpec::unconstrained(), true);
            }};
}

RunSession
fastSession(RunMetrics *metrics = nullptr)
{
    RunSession session;
    session.metrics = metrics;
    session.retry.maxAttempts = 8;
    session.retry.initialBackoffSeconds = 0.0;
    return session;
}

TEST_F(FaultToleranceTest, InjectedTransientFaultsAreRetriedAway)
{
    SuiteRunner runner({"idl", "self"});
    const std::vector<SweepColumn> columns = {btbColumn("btb")};

    const GridResult clean = runner.run(columns);

    // Heavy transient faulting: with 8 attempts and per-attempt
    // re-rolls every cell still completes (decisions are a pure
    // hash, so this is deterministic, not flaky).
    FaultInjector::configureGlobal("sim:0.5,seed=11");
    RunMetrics metrics;
    RunSession session = fastSession(&metrics);
    const GridResult faulted = runner.run(columns, session);
    FaultInjector::configureGlobal("");

    EXPECT_FALSE(faulted.partial());
    for (const auto &name : runner.benchmarks()) {
        ASSERT_TRUE(faulted.has("btb", name));
        // Retries must not perturb the simulation itself.
        EXPECT_EQ(faulted.get("btb", name), clean.get("btb", name));
    }
    EXPECT_EQ(metrics.failureCount(), 0u);
    EXPECT_EQ(metrics.cellCount(), 2u);
}

TEST_F(FaultToleranceTest, PermanentFaultsFailOnlyTheirCells)
{
    SuiteRunner runner({"idl", "self"});
    // A predictor factory that always fails: every cell of this
    // column fails permanently while the healthy column completes.
    const std::vector<SweepColumn> columns = {
        btbColumn("good"),
        {"bad",
         []() -> std::unique_ptr<IndirectPredictor> {
             throw RunException(
                 RunError::permanent("factory exploded"));
         }},
    };
    RunMetrics metrics;
    RunSession session = fastSession(&metrics);
    const GridResult grid = runner.run(columns, session);

    EXPECT_TRUE(grid.partial());
    EXPECT_EQ(grid.failures().size(), 2u);
    for (const auto &name : runner.benchmarks()) {
        EXPECT_TRUE(grid.has("good", name));
        EXPECT_FALSE(grid.has("bad", name));
    }
    for (const auto &failure : grid.failures()) {
        EXPECT_EQ(failure.column, "bad");
        EXPECT_EQ(failure.kind, ErrorKind::Permanent);
        EXPECT_NE(failure.error.find("factory exploded"),
                  std::string::npos);
    }
    EXPECT_EQ(metrics.failureCount(), 2u);
    EXPECT_EQ(metrics.cellCount(), 2u); // only the good column

    // Averages degrade: present members only, NaN when none left.
    EXPECT_EQ(grid.presentCount("bad", {"idl", "self"}), 0u);
    EXPECT_TRUE(std::isnan(grid.average("bad", {"idl", "self"})));
    EXPECT_EQ(grid.presentCount("good", {"idl", "self"}), 2u);
    EXPECT_FALSE(std::isnan(grid.average("good", {"idl", "self"})));

    // Rendering keeps the failed cells blank instead of crashing.
    const ResultTable table =
        runner.benchmarkTable("partial", grid, columns);
    EXPECT_TRUE(table.get("idl", "good").has_value());
    EXPECT_FALSE(table.get("idl", "bad").has_value());
}

TEST_F(FaultToleranceTest, ExhaustedTransientFaultRecordsAttempts)
{
    SuiteRunner runner({"idl"});
    FaultInjector::configureGlobal("sim:1.0"); // never clears
    RunMetrics metrics;
    RunSession session = fastSession(&metrics);
    session.retry.maxAttempts = 3;
    const GridResult grid = runner.run({btbColumn("btb")}, session);
    FaultInjector::configureGlobal("");

    ASSERT_EQ(grid.failures().size(), 1u);
    EXPECT_EQ(grid.failures()[0].attempts, 3u);
    EXPECT_EQ(grid.failures()[0].kind, ErrorKind::Transient);
    ASSERT_EQ(metrics.failureCount(), 1u);
    EXPECT_EQ(metrics.failures()[0].attempts, 3u);
}

TEST_F(FaultToleranceTest, TraceGenerationFailureDegradesSuite)
{
    FaultInjector::configureGlobal("trace:1.0:permanent");
    SuiteRunner runner({"idl", "self"});
    FaultInjector::configureGlobal("");

    // The names survive but no traces do.
    EXPECT_EQ(runner.benchmarks().size(), 2u);
    EXPECT_EQ(runner.failedBenchmarks().size(), 2u);

    RunMetrics metrics;
    RunSession session = fastSession(&metrics);
    const GridResult grid = runner.run({btbColumn("btb")}, session);
    EXPECT_TRUE(grid.partial());
    EXPECT_EQ(grid.failures().size(), 2u);
    EXPECT_EQ(metrics.failureCount(), 2u);
    EXPECT_EQ(metrics.cellCount(), 0u);
}

TEST_F(FaultToleranceTest, CheckpointResumeReproducesBitForBit)
{
    const std::string path =
        testing::TempDir() + "/ibp_ft_resume.jsonl";
    std::remove(path.c_str());
    CheckpointMeta meta;
    meta.slug = "test";
    meta.gitSha = "sha";
    meta.eventScale = 0.05;
    meta.quick = false;

    SuiteRunner runner({"idl", "self"});
    const std::vector<SweepColumn> columns = {btbColumn("a"),
                                              btbColumn("b")};

    GridResult first;
    {
        auto journal = CheckpointJournal::open(path, meta);
        ASSERT_TRUE(journal.ok());
        RunMetrics metrics;
        RunSession session = fastSession(&metrics);
        session.checkpoint = journal.value().get();
        // Two grids with identical labels, like fig11's row sweeps.
        first = runner.run(columns, session);
        runner.run(columns, session);
        EXPECT_EQ(metrics.cellCount(), 8u);
    }

    // "Crash" and resume: every cell must come back from the journal
    // (zero simulations) with bit-identical rates.
    {
        auto journal = CheckpointJournal::open(path, meta);
        ASSERT_TRUE(journal.ok());
        EXPECT_EQ(journal.value()->restoredCells(), 8u);
        RunMetrics metrics;
        RunSession session = fastSession(&metrics);
        session.checkpoint = journal.value().get();
        const GridResult resumed = runner.run(columns, session);
        EXPECT_EQ(metrics.cellCount(), 0u);
        for (const auto &column : columns) {
            for (const auto &name : runner.benchmarks()) {
                ASSERT_TRUE(resumed.has(column.label, name));
                EXPECT_EQ(resumed.get(column.label, name),
                          first.get(column.label, name));
            }
        }
    }
}

TEST_F(FaultToleranceTest, PartialCheckpointOnlySkipsJournalledCells)
{
    const std::string path =
        testing::TempDir() + "/ibp_ft_partial.jsonl";
    std::remove(path.c_str());
    CheckpointMeta meta;
    meta.slug = "test";
    meta.gitSha = "sha";
    meta.eventScale = 0.05;
    meta.quick = false;

    SuiteRunner runner({"idl", "self"});
    const std::vector<SweepColumn> columns = {btbColumn("btb")};
    const GridResult reference = runner.run(columns);

    // Pre-seed the journal with one cell carrying a sentinel value:
    // resume must trust the journal for that cell and simulate the
    // other.
    {
        auto journal = CheckpointJournal::open(path, meta);
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(
            journal.value()->append({0, "btb", "idl", 99.5}).ok());
    }
    auto journal = CheckpointJournal::open(path, meta);
    ASSERT_TRUE(journal.ok());
    RunMetrics metrics;
    RunSession session = fastSession(&metrics);
    session.checkpoint = journal.value().get();
    const GridResult grid = runner.run(columns, session);
    EXPECT_EQ(metrics.cellCount(), 1u); // only "self" simulated
    EXPECT_EQ(grid.get("btb", "idl"), 99.5);
    EXPECT_EQ(grid.get("btb", "self"),
              reference.get("btb", "self"));
}

/** Enough records to comfortably cross the cancellation poll period. */
Trace
longTrace(const std::string &name)
{
    Trace trace(name);
    for (unsigned i = 0; i < 40000; ++i) {
        trace.append({0x1000 + (i % 64) * 4, 0x2000 + (i % 8) * 16,
                      BranchKind::IndirectCall, true});
    }
    return trace;
}

TEST_F(FaultToleranceTest, SimulateHonoursCancellationToken)
{
    const Trace trace = longTrace("cancel-me");
    BtbPredictor predictor(TableSpec::unconstrained(), true);
    CancelToken token;
    token.armed = 1;
    token.requested.store(1);
    SimOptions options;
    options.cancel = &token;
    try {
        simulate(predictor, trace, options);
        FAIL() << "cancelled simulation completed";
    } catch (const RunException &exception) {
        EXPECT_EQ(exception.error().kind, ErrorKind::Timeout);
        EXPECT_NE(exception.error().message.find("watchdog"),
                  std::string::npos);
    }
}

TEST_F(FaultToleranceTest, StaleCancelRequestDoesNotKillNextAttempt)
{
    // Regression test for the stale-cancel race: the watchdog decides
    // to cancel attempt N, but its request lands after the worker has
    // already finished N and armed attempt N+1. With the old plain
    // cancel flag that request killed the healthy new attempt; the
    // epoch-tagged token must ignore it because it names a dead
    // epoch.
    const Trace trace = longTrace("stale-cancel");
    BtbPredictor predictor(TableSpec::unconstrained(), true);
    CancelToken token;
    token.armed = 2;           // attempt N+1 is running...
    token.requested.store(1);  // ...the request targets attempt N.
    EXPECT_FALSE(token.cancelled());
    SimOptions options;
    options.cancel = &token;
    EXPECT_NO_THROW(simulate(predictor, trace, options));

    // A request that names the running epoch still cancels it.
    token.requested.store(2);
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(simulate(predictor, trace, options), RunException);

    // An idle token (nothing armed) never reports cancelled, no
    // matter what stale request it carries.
    token.armed = 0;
    EXPECT_FALSE(token.cancelled());
}

TEST_F(FaultToleranceTest, WatchdogCancelsOverDeadlineCells)
{
    // A predictor slow enough that the cell blows its deadline long
    // before the trace ends; the watchdog must cancel it and record
    // a timeout failure rather than hang the sweep.
    class SlowPredictor : public IndirectPredictor
    {
      public:
        Prediction
        predict(Addr) override
        {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            return {};
        }
        void update(Addr, Addr) override {}
        void reset() override {}
        std::string name() const override { return "slow"; }
        std::uint64_t tableCapacity() const override { return 0; }
        std::uint64_t tableOccupancy() const override { return 0; }
    };

    SuiteRunner runner({"idl"});
    if (runner.trace("idl").countPredictedIndirect() < 2000)
        GTEST_SKIP() << "trace too small to outlast the watchdog";

    RunMetrics metrics;
    RunSession session = fastSession(&metrics);
    session.retry.maxAttempts = 1;
    session.retry.cellDeadlineSeconds = 0.05;
    const GridResult grid = runner.run(
        {{"slow", []() { return std::make_unique<SlowPredictor>(); }}},
        session);
    ASSERT_EQ(grid.failures().size(), 1u);
    EXPECT_EQ(grid.failures()[0].kind, ErrorKind::Timeout);
}

TEST_F(FaultToleranceTest, LegacyRunOverloadStillWorks)
{
    SuiteRunner runner({"idl"});
    RunMetrics metrics;
    const GridResult grid =
        runner.run({btbColumn("btb")}, &metrics);
    EXPECT_TRUE(grid.has("btb", "idl"));
    EXPECT_FALSE(grid.partial());
    EXPECT_EQ(metrics.cellCount(), 1u);
}

} // namespace
} // namespace ibp
