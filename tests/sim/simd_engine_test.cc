/**
 * @file
 * Differential tests of the SIMD/SoA batch engine: the block-based
 * traversal with the batched lane engine must produce bit-identical
 * SimResult counters whether the process dispatches vectorized or
 * forced-scalar (IBP_SIMD=off), and whether the trace is consumed
 * zero-copy from v3 columnar storage or transposed block-by-block
 * from record storage (including a v2-pinned `.ibpm` file, the
 * migration case a warm pre-v3 cache presents).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "core/simd.hh"
#include "core/sweep_kernel.hh"
#include "core/target_cache.hh"
#include "sim/spec_columns.hh"
#include "sim/suite_runner.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_mmap.hh"

namespace ibp {
namespace {

/** Force a dispatch level for one scope, restoring on exit. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : _saved(simdLevel())
    {
        setSimdLevelForTest(level);
    }
    ~ScopedSimdLevel() { setSimdLevelForTest(_saved); }

  private:
    SimdLevel _saved;
};

class SimdEngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        TraceCache::configureGlobal("");
    }
    void
    TearDown() override
    {
        TraceCache::configureGlobal("");
        unsetenv("IBP_EVENTS");
        unsetenv("IBP_TRACE_FORMAT");
    }
};

/**
 * Columns chosen to push every engine partition: paper-configured
 * global-history rows (the incremental-pattern lane path), hybrids
 * with shared and deduplicated components, a per-branch (s=2)
 * variant and an unconstrained table (FlatMap probes), plus a BTB
 * and an extension family that decline the kernel and ride the
 * generic record-at-a-time path.
 */
std::vector<SweepColumn>
engineColumns()
{
    const auto spec = [](const std::string &text) {
        return [text]() { return makePredictorFromSpec(text); };
    };
    return {
        {"btb", spec("btb")},
        specColumn("paper-p3",
                   paperTwoLevel(3, TableSpec::setAssoc(4096, 4))),
        specColumn("paper-h5",
                   paperHybrid(3, 5, TableSpec::setAssoc(2048, 4))),
        specColumn("paper-h9",
                   paperHybrid(3, 9, TableSpec::setAssoc(2048, 4))),
        specColumn("paper-h9-dup",
                   paperHybrid(3, 9, TableSpec::setAssoc(2048, 4))),
        {"perbranch", spec("twolevel:p=4,table=assoc2:1024,s=2")},
        {"uncon-p4", spec("twolevel:p=4,table=unconstrained")},
        {"targetcache",
         []() {
             return std::make_unique<TargetCachePredictor>(
                 TargetCacheConfig{});
         }},
    };
}

/** simulateMany over @p trace with a fused kernel, fresh predictors,
 *  filling @p traversal when non-null. */
std::vector<SimResult>
runEngine(const std::vector<SweepColumn> &columns, const Trace &trace,
          TraversalStats *traversal = nullptr)
{
    std::vector<std::unique_ptr<IndirectPredictor>> predictors;
    std::vector<IndirectPredictor *> raw;
    for (const auto &column : columns) {
        predictors.push_back(column.make());
        raw.push_back(predictors.back().get());
    }
    SweepKernel kernel;
    for (IndirectPredictor *predictor : raw)
        kernel.tryJoin(*predictor);
    kernel.finalize();
    SimOptions options;
    options.kernel = &kernel;
    options.traversal = traversal;
    return simulateMany(raw, trace, options);
}

void
expectSameResults(const std::vector<SweepColumn> &columns,
                  const std::vector<SimResult> &a,
                  const std::vector<SimResult> &b)
{
    ASSERT_EQ(a.size(), columns.size());
    ASSERT_EQ(b.size(), columns.size());
    for (std::size_t i = 0; i < columns.size(); ++i) {
        EXPECT_EQ(a[i].branches, b[i].branches) << columns[i].label;
        EXPECT_EQ(a[i].misses, b[i].misses) << columns[i].label;
        EXPECT_EQ(a[i].noPrediction, b[i].noPrediction)
            << columns[i].label;
        EXPECT_EQ(a[i].tableOccupancy, b[i].tableOccupancy)
            << columns[i].label;
        EXPECT_EQ(a[i].tableCapacity, b[i].tableCapacity)
            << columns[i].label;
    }
}

TEST_F(SimdEngineTest, ForcedScalarMatchesVectorDispatchBitForBit)
{
    SuiteRunner runner({"idl"}, /*emitConditionals=*/true);
    const Trace &trace = runner.trace("idl");
    const auto columns = engineColumns();

    // Predictors capture dispatch decisions at construction (FlatMap
    // probe widths, the PDEP scatter), so each run builds its own
    // under the level it tests.
    const std::vector<SimResult> vectorized =
        runEngine(columns, trace);

    ScopedSimdLevel scalar(SimdLevel::Scalar);
    const std::vector<SimResult> forced_off =
        runEngine(columns, trace);
    expectSameResults(columns, vectorized, forced_off);

    // And the scalar engine still matches the per-predictor
    // reference oracle, closing the loop back to simulate().
    for (std::size_t i = 0; i < columns.size(); ++i) {
        auto fresh = columns[i].make();
        const SimResult one = simulate(*fresh, trace);
        EXPECT_EQ(forced_off[i].misses, one.misses)
            << columns[i].label;
        EXPECT_EQ(forced_off[i].branches, one.branches)
            << columns[i].label;
    }
}

TEST_F(SimdEngineTest, ColumnarTraceMatchesRecordStorageBitForBit)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    SuiteRunner runner({"idl"}, /*emitConditionals=*/true);
    const Trace &trace = runner.trace("idl");
    const auto columns = engineColumns();

    const std::string dir =
        testing::TempDir() + "/ibp_simd_engine_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/trace.ibpm";
    ASSERT_TRUE(saveTraceMmap(trace, path).ok());
    const auto loaded = loadTraceMmap(path);
    ASSERT_TRUE(loaded.ok());
    const Trace &columnar = loaded.value();
    ASSERT_TRUE(columnar.isColumnar());
    ASSERT_EQ(columnar, trace);

    TraversalStats from_records;
    const std::vector<SimResult> transposed =
        runEngine(columns, trace, &from_records);
    TraversalStats from_columns;
    const std::vector<SimResult> zero_copy =
        runEngine(columns, columnar, &from_columns);
    expectSameResults(columns, transposed, zero_copy);

    // The telemetry must show the two storage forms took the two
    // distinct feed paths while the results above stayed identical.
    EXPECT_GT(from_records.transposedBlocks, 0u);
    EXPECT_EQ(from_records.columnarBlocks, 0u);
    EXPECT_GT(from_columns.columnarBlocks, 0u);
    EXPECT_EQ(from_columns.transposedBlocks, 0u);
    EXPECT_GT(from_columns.laneColumns, 0u);
    EXPECT_GT(from_columns.laneMachines, 0u);
    EXPECT_GT(from_columns.genericColumns, 0u);
    EXPECT_EQ(from_columns.laneColumns, from_records.laneColumns);
    EXPECT_EQ(from_columns.laneMachines, from_records.laneMachines);

    std::filesystem::remove_all(dir);
}

TEST_F(SimdEngineTest, V2PinnedTraceServesIdentically)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    SuiteRunner runner({"idl"}, /*emitConditionals=*/true);
    const Trace &trace = runner.trace("idl");
    const auto columns = engineColumns();

    const std::string dir =
        testing::TempDir() + "/ibp_simd_v2pin_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/trace-v2.ibpm";

    // A warm cache written before the columnar format: the v2 writer
    // pin produces exactly what such a cache holds.
    setenv("IBP_TRACE_FORMAT", "v2", 1);
    ASSERT_TRUE(saveTraceMmap(trace, path).ok());
    unsetenv("IBP_TRACE_FORMAT");

    const auto loaded = loadTraceMmap(path);
    ASSERT_TRUE(loaded.ok());
    const Trace &v2 = loaded.value();
    EXPECT_FALSE(v2.isColumnar());
    EXPECT_EQ(v2.readPath(), TraceReadPath::Mmap);
    ASSERT_EQ(v2, trace);

    const std::vector<SimResult> from_v2 = runEngine(columns, v2);
    const std::vector<SimResult> from_records =
        runEngine(columns, trace);
    expectSameResults(columns, from_v2, from_records);

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ibp
