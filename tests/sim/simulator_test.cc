/**
 * @file
 * Tests of the trace-driven simulator: miss accounting, exclusion of
 * returns, conditional pass-through, warm-up windows and per-site
 * statistics.
 */

#include <gtest/gtest.h>

#include "core/btb.hh"
#include "sim/simulator.hh"

namespace ibp {
namespace {

/** A predictor that always predicts a fixed target. */
class FixedPredictor : public IndirectPredictor
{
  public:
    explicit FixedPredictor(Addr target) : _target(target) {}

    Prediction
    predict(Addr) override
    {
        return Prediction{true, _target, 0};
    }
    void update(Addr, Addr) override {}
    void
    observeConditional(Addr, bool, Addr) override
    {
        ++conditionalsSeen;
    }
    void reset() override {}
    std::string name() const override { return "fixed"; }
    std::uint64_t tableCapacity() const override { return 0; }
    std::uint64_t tableOccupancy() const override { return 0; }

    unsigned conditionalsSeen = 0;

  private:
    Addr _target;
};

Trace
mixedTrace()
{
    Trace trace("mixed");
    trace.append({0x100, 0xA0, BranchKind::IndirectCall, true});
    trace.append({0x104, 0x108, BranchKind::Conditional, true});
    trace.append({0x100, 0xB0, BranchKind::IndirectJump, true});
    trace.append({0x200, 0xA0, BranchKind::IndirectSwitch, true});
    trace.append({0x300, 0x90, BranchKind::Return, true});
    trace.append({0x100, 0xA0, BranchKind::IndirectCall, true});
    return trace;
}

TEST(Simulator, CountsOnlyPredictedIndirectBranches)
{
    FixedPredictor predictor(0xA0);
    const SimResult result = simulate(predictor, mixedTrace());
    EXPECT_EQ(result.branches, 4u); // returns & conditionals excluded
    EXPECT_EQ(result.misses, 1u);   // only the 0xB0 jump
    EXPECT_EQ(result.noPrediction, 0u);
    EXPECT_NEAR(result.missPercent(), 25.0, 1e-9);
}

TEST(Simulator, ForwardsConditionalsToThePredictor)
{
    FixedPredictor predictor(0xA0);
    simulate(predictor, mixedTrace());
    EXPECT_EQ(predictor.conditionalsSeen, 1u);
}

TEST(Simulator, ColdMissesCountAsNoPrediction)
{
    BtbPredictor btb;
    const SimResult result = simulate(btb, mixedTrace());
    // 0x100 cold, then B0 vs stored A0 (miss, replaced), 0x200
    // cold, and the final 0x100->A0 misses against the stored B0.
    EXPECT_EQ(result.branches, 4u);
    EXPECT_EQ(result.misses, 4u);
    EXPECT_EQ(result.noPrediction, 2u);
}

TEST(Simulator, WarmupWindowExcludesEarlyBranches)
{
    FixedPredictor predictor(0xA0);
    SimOptions options;
    options.warmupBranches = 2;
    const SimResult result =
        simulate(predictor, mixedTrace(), options);
    EXPECT_EQ(result.branches, 2u); // the switch and the last call
    EXPECT_EQ(result.misses, 0u);
}

TEST(Simulator, PerSiteStatsBreakDownMisses)
{
    BtbPredictor btb;
    SiteMissStats sites;
    simulate(btb, mixedTrace(), {}, &sites);
    EXPECT_EQ(sites.executions(0x100), 3u);
    EXPECT_EQ(sites.executions(0x200), 1u);
    EXPECT_EQ(sites.misses(0x100), 3u);
    EXPECT_EQ(sites.misses(0x200), 1u);
    EXPECT_EQ(sites.executions(0xdead), 0u); // absent site reads 0
}

TEST(Simulator, ResultCarriesNamesAndOccupancy)
{
    BtbPredictor btb;
    const SimResult result = simulate(btb, mixedTrace());
    EXPECT_EQ(result.benchmark, "mixed");
    EXPECT_EQ(result.predictor, "btb");
    EXPECT_EQ(result.tableOccupancy, 2u);
}

TEST(Simulator, EmptyTraceYieldsZeroRates)
{
    BtbPredictor btb;
    const SimResult result = simulate(btb, Trace("empty"));
    EXPECT_EQ(result.branches, 0u);
    EXPECT_EQ(result.missPercent(), 0.0);
}

TEST(Simulator, UtilisationIsOccupancyOverCapacity)
{
    BtbPredictor btb(TableSpec::setAssoc(8, 1), false);
    const SimResult result = simulate(btb, mixedTrace());
    EXPECT_EQ(result.tableCapacity, 8u);
    EXPECT_NEAR(result.utilisation(),
                static_cast<double>(result.tableOccupancy) / 8.0,
                1e-12);
}

} // namespace
} // namespace ibp
