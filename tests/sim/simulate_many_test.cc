/**
 * @file
 * Differential tests of the single-pass multi-predictor engine:
 * simulateMany() must produce exactly the counters per-predictor
 * simulate() produces, and a SuiteRunner sweep must fill the same
 * grid whether the single-pass phase is on or off, with any thread
 * count. Also covers the SuiteRunner side of the trace cache: a warm
 * cache must satisfy construction with zero generator runs and a
 * byte-identical trace.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "core/factory.hh"
#include "sim/suite_runner.hh"
#include "trace/trace_cache.hh"

namespace ibp {
namespace {

class SimulateManyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        TraceCache::configureGlobal("");
    }
    void
    TearDown() override
    {
        TraceCache::configureGlobal("");
        unsetenv("IBP_EVENTS");
        unsetenv("IBP_THREADS");
    }
};

/** A diverse sweep: different families, table shapes and history
 * depths, so a divergence in any predictor-facing code path shows. */
std::vector<SweepColumn>
diverseColumns()
{
    const auto spec = [](const std::string &text) {
        return [text]() { return makePredictorFromSpec(text); };
    };
    return {
        {"btb", spec("btb")},
        {"btb2bc", spec("btb2bc")},
        {"2lev-p3", spec("twolevel:p=3,table=assoc4:1024")},
        {"2lev-p8", spec("twolevel:p=8,table=unconstrained")},
        {"hybrid", spec("hybrid:p1=3,p2=7,table=assoc2:2048,conf=2")},
    };
}

void
expectSameResult(const SimResult &many, const SimResult &one)
{
    EXPECT_EQ(many.benchmark, one.benchmark);
    EXPECT_EQ(many.predictor, one.predictor);
    EXPECT_EQ(many.branches, one.branches);
    EXPECT_EQ(many.misses, one.misses);
    EXPECT_EQ(many.noPrediction, one.noPrediction);
    EXPECT_EQ(many.tableOccupancy, one.tableOccupancy);
    EXPECT_EQ(many.tableCapacity, one.tableCapacity);
}

TEST_F(SimulateManyTest, MatchesSimulateBitForBit)
{
    SuiteRunner runner({"idl"});
    const Trace &trace = runner.trace("idl");
    const auto columns = diverseColumns();

    std::vector<std::unique_ptr<IndirectPredictor>> predictors;
    std::vector<IndirectPredictor *> raw;
    for (const auto &column : columns) {
        predictors.push_back(column.make());
        raw.push_back(predictors.back().get());
    }
    const std::vector<SimResult> many = simulateMany(raw, trace);
    ASSERT_EQ(many.size(), columns.size());

    for (std::size_t i = 0; i < columns.size(); ++i) {
        auto fresh = columns[i].make();
        const SimResult one = simulate(*fresh, trace);
        expectSameResult(many[i], one);
        EXPECT_GT(many[i].branches, 0u);
    }
}

TEST_F(SimulateManyTest, HonoursWarmupWindow)
{
    SuiteRunner runner({"idl"});
    const Trace &trace = runner.trace("idl");
    SimOptions options;
    options.warmupBranches = 500;

    auto many_predictor = makePredictorFromSpec("btb2bc");
    IndirectPredictor *raw = many_predictor.get();
    const auto many = simulateMany({&raw, 1}, trace, options);
    auto one_predictor = makePredictorFromSpec("btb2bc");
    const SimResult one = simulate(*one_predictor, trace, options);
    ASSERT_EQ(many.size(), 1u);
    expectSameResult(many[0], one);
}

TEST_F(SimulateManyTest, EmptySpanReturnsEmpty)
{
    SuiteRunner runner({"idl"});
    EXPECT_TRUE(simulateMany({}, runner.trace("idl")).empty());
}

void
expectSameGrid(const SuiteRunner &runner,
               const std::vector<SweepColumn> &columns,
               const GridResult &a, const GridResult &b)
{
    EXPECT_EQ(a.failures().size(), b.failures().size());
    for (const auto &column : columns) {
        for (const auto &name : runner.benchmarks()) {
            ASSERT_TRUE(a.has(column.label, name));
            ASSERT_TRUE(b.has(column.label, name));
            // Bit-identical, not approximately equal: the engines
            // must count the same branches the same way.
            EXPECT_EQ(a.get(column.label, name),
                      b.get(column.label, name))
                << column.label << " x " << name;
        }
    }
}

TEST_F(SimulateManyTest, SinglePassGridMatchesPerCellGrid)
{
    SuiteRunner runner({"idl", "perl", "self"});
    const auto columns = diverseColumns();

    RunSession per_cell;
    per_cell.singlePass = false;
    const GridResult reference = runner.run(columns, per_cell);

    RunSession single_pass;
    single_pass.singlePass = true;
    RunMetrics metrics;
    single_pass.metrics = &metrics;
    const GridResult fast = runner.run(columns, single_pass);

    expectSameGrid(runner, columns, reference, fast);
    EXPECT_EQ(metrics.cellCount(),
              columns.size() * runner.benchmarks().size());
}

TEST_F(SimulateManyTest, SinglePassGridMatchesAcrossThreadCounts)
{
    const auto columns = diverseColumns();

    setenv("IBP_THREADS", "1", 1);
    SuiteRunner serial({"idl", "perl"});
    RunSession serial_session;
    const GridResult one_thread = serial.run(columns, serial_session);

    setenv("IBP_THREADS", "8", 1);
    SuiteRunner parallel({"idl", "perl"});
    RunSession parallel_session;
    const GridResult many_threads =
        parallel.run(columns, parallel_session);

    expectSameGrid(serial, columns, one_thread, many_threads);
}

TEST_F(SimulateManyTest, WarmTraceCacheSkipsGeneration)
{
    const std::string dir =
        testing::TempDir() + "/ibp_warm_cache_test";
    std::filesystem::remove_all(dir);
    TraceCache::configureGlobal(dir);

    SuiteRunner cold({"idl", "perl"});
    EXPECT_EQ(cold.traceSourceStats().generated, 2u);
    EXPECT_EQ(cold.traceSourceStats().cacheHits, 0u);

    SuiteRunner warm({"idl", "perl"});
    EXPECT_EQ(warm.traceSourceStats().generated, 0u)
        << "a warm cache must perform zero trace generation";
    EXPECT_EQ(warm.traceSourceStats().cacheHits, 2u);
    for (const auto &name : cold.benchmarks()) {
        // Cached traces are byte-identical to generated ones (the
        // binary format round-trips every field).
        EXPECT_EQ(warm.trace(name), cold.trace(name));
        EXPECT_EQ(warm.trace(name).seed(), cold.trace(name).seed());
        EXPECT_EQ(warm.trace(name).name(), name);
    }

    // The sweep over cached traces still produces the exact grid.
    const auto columns = diverseColumns();
    RunSession cold_session;
    RunSession warm_session;
    RunMetrics warm_metrics;
    warm_session.metrics = &warm_metrics;
    const GridResult cold_grid = cold.run(columns, cold_session);
    const GridResult warm_grid = warm.run(columns, warm_session);
    expectSameGrid(cold, columns, cold_grid, warm_grid);

    // run() publishes the trace-source counters exactly once.
    EXPECT_TRUE(warm_metrics.hasTraceSource());
    EXPECT_EQ(warm_metrics.tracesGenerated(), 0u);
    EXPECT_EQ(warm_metrics.traceCacheHits(), 2u);
    warm.run(columns, warm_session);
    EXPECT_EQ(warm_metrics.traceCacheHits(), 2u);

    TraceCache::configureGlobal("");
    std::filesystem::remove_all(dir);
}

TEST_F(SimulateManyTest, EventScaleChangeMissesTheCache)
{
    const std::string dir =
        testing::TempDir() + "/ibp_scale_cache_test";
    std::filesystem::remove_all(dir);
    TraceCache::configureGlobal(dir);

    SuiteRunner cold({"idl"});
    EXPECT_EQ(cold.traceSourceStats().generated, 1u);

    // A different event scale changes the content address, so the
    // stale entry must not be served.
    setenv("IBP_EVENTS", "0.10", 1);
    SuiteRunner rescaled({"idl"});
    EXPECT_EQ(rescaled.traceSourceStats().generated, 1u);
    EXPECT_EQ(rescaled.traceSourceStats().cacheHits, 0u);
    EXPECT_GT(rescaled.trace("idl").size(), cold.trace("idl").size());

    TraceCache::configureGlobal("");
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ibp
