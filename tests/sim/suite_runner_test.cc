/**
 * @file
 * Tests of the suite runner: trace caching, parallel grid execution,
 * group averaging and table rendering. Uses tiny event counts via
 * the IBP_EVENTS scale to stay fast.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/btb.hh"
#include "sim/suite_runner.hh"

namespace ibp {
namespace {

class SuiteRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setenv("IBP_EVENTS", "0.05", 1); }
    void TearDown() override { unsetenv("IBP_EVENTS"); }
};

TEST_F(SuiteRunnerTest, LoadsRequestedTraces)
{
    SuiteRunner runner({"idl", "gcc"});
    EXPECT_EQ(runner.benchmarks().size(), 2u);
    EXPECT_GT(runner.trace("idl").size(), 1000u);
    EXPECT_EQ(runner.trace("gcc").name(), "gcc");
}

TEST_F(SuiteRunnerTest, GridResultStoresAndAverages)
{
    GridResult grid;
    grid.set("col", "a", 10.0);
    grid.set("col", "b", 20.0);
    EXPECT_TRUE(grid.has("col", "a"));
    EXPECT_FALSE(grid.has("col", "c"));
    EXPECT_DOUBLE_EQ(grid.get("col", "b"), 20.0);
    EXPECT_DOUBLE_EQ(grid.average("col", {"a", "b"}), 15.0);
}

TEST_F(SuiteRunnerTest, RunFillsEveryCell)
{
    SuiteRunner runner({"idl", "perl"});
    const std::vector<SweepColumn> columns = {
        {"btb",
         []() {
             return std::make_unique<BtbPredictor>(
                 TableSpec::unconstrained(), false);
         }},
        {"btb2bc",
         []() {
             return std::make_unique<BtbPredictor>(
                 TableSpec::unconstrained(), true);
         }},
    };
    const GridResult grid = runner.run(columns);
    for (const auto &column : columns) {
        for (const auto &name : runner.benchmarks()) {
            ASSERT_TRUE(grid.has(column.label, name));
            const double rate = grid.get(column.label, name);
            EXPECT_GE(rate, 0.0);
            EXPECT_LE(rate, 100.0);
        }
    }
}

TEST_F(SuiteRunnerTest, RunIsDeterministic)
{
    SuiteRunner runner({"idl"});
    const SweepColumn column{"btb", []() {
                                 return std::make_unique<BtbPredictor>(
                                     TableSpec::unconstrained(),
                                     true);
                             }};
    const double first = runner.run({column}).get("btb", "idl");
    const double second = runner.run({column}).get("btb", "idl");
    EXPECT_EQ(first, second);
}

TEST_F(SuiteRunnerTest, CoveredGroupsRequireFullMembership)
{
    SuiteRunner partial({"idl", "jhm"});
    EXPECT_TRUE(partial.coveredGroups().empty());

    SuiteRunner oo(benchmarkGroups().oo);
    const auto covered = oo.coveredGroups();
    ASSERT_EQ(covered.size(), 1u);
    EXPECT_EQ(covered[0].first, "AVG-OO");
}

TEST_F(SuiteRunnerTest, TablesCarryGroupAndBenchmarkRows)
{
    SuiteRunner runner(benchmarkGroups().oo);
    const std::vector<SweepColumn> columns = {
        {"btb", []() {
             return std::make_unique<BtbPredictor>(
                 TableSpec::unconstrained(), true);
         }}};
    const GridResult grid = runner.run(columns);
    const ResultTable groups =
        runner.groupTable("g", grid, columns);
    EXPECT_EQ(groups.numRows(), 1u); // AVG-OO only
    const ResultTable both =
        runner.benchmarkTable("b", grid, columns);
    EXPECT_EQ(both.numRows(), 1u + 9u);
    // The group row must equal the mean of the member rows.
    double sum = 0;
    for (unsigned r = 1; r < both.numRows(); ++r)
        sum += *both.get(r, 0);
    EXPECT_NEAR(*both.get(0, 0), sum / 9.0, 1e-9);
}

TEST_F(SuiteRunnerTest, EventScaleEnvIsHonoured)
{
    EXPECT_NEAR(eventScale(), 0.05, 1e-12);
    setenv("IBP_EVENTS", "bogus", 1);
    EXPECT_EQ(eventScale(), 1.0);
    setenv("IBP_EVENTS", "5000", 1);
    EXPECT_EQ(eventScale(), 100.0); // clamped
}

TEST_F(SuiteRunnerTest, ThreadsEnvIsHonouredAndClamped)
{
    const char *saved = std::getenv("IBP_THREADS");
    const std::string restore = saved ? saved : "";
    setenv("IBP_THREADS", "3", 1);
    EXPECT_EQ(simulationThreads(), 3u);
    setenv("IBP_THREADS", "0", 1); // clamped to >= 1
    EXPECT_EQ(simulationThreads(), 1u);
    setenv("IBP_THREADS", "-5", 1);
    EXPECT_EQ(simulationThreads(), 1u);
    if (saved)
        setenv("IBP_THREADS", restore.c_str(), 1);
    else
        unsetenv("IBP_THREADS");
    EXPECT_GE(simulationThreads(), 1u);
}

TEST_F(SuiteRunnerTest, RunCollectsMetrics)
{
    SuiteRunner runner({"idl", "perl"});
    const std::vector<SweepColumn> columns = {
        {"btb", []() {
             return std::make_unique<BtbPredictor>(
                 TableSpec::unconstrained(), true);
         }}};
    RunMetrics metrics;
    runner.run(columns, &metrics);
    EXPECT_EQ(metrics.cellCount(), 2u); // 1 column x 2 benchmarks
    EXPECT_GT(metrics.totalBranches(), 0u);
    EXPECT_GT(metrics.runSeconds(), 0.0);
    EXPECT_GT(metrics.branchesPerSecond(), 0.0);
    EXPECT_GT(metrics.peakTableOccupancy(), 0u);
    EXPECT_GE(metrics.threads(), 1u);
    for (const auto &cell : metrics.cells()) {
        EXPECT_EQ(cell.column, "btb");
        EXPECT_GT(cell.branches, 0u);
    }
}

TEST_F(SuiteRunnerTest, BenchmarkSuiteHasSeventeenPrograms)
{
    EXPECT_EQ(benchmarkSuite().size(), 17u);
    const auto &groups = benchmarkGroups();
    EXPECT_EQ(groups.avg.size(), 13u);
    EXPECT_EQ(groups.oo.size(), 9u);
    EXPECT_EQ(groups.c.size(), 4u);
    EXPECT_EQ(groups.avg100.size(), 6u);
    EXPECT_EQ(groups.avg200.size(), 7u);
    EXPECT_EQ(groups.infrequent.size(), 4u);
}

TEST_F(SuiteRunnerTest, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(benchmarkProfile("nonesuch"), "unknown benchmark");
}

} // namespace
} // namespace ibp
