/**
 * @file
 * Tests of the four second-level table organisations: unconstrained,
 * bounded fully-associative LRU, set-associative, tagless.
 */

#include <gtest/gtest.h>

#include "core/fully_assoc_table.hh"
#include "core/set_assoc_table.hh"
#include "core/table_spec.hh"
#include "core/tagless_table.hh"
#include "core/unconstrained_table.hh"

namespace ibp {
namespace {

void
install(TargetTable &table, std::uint64_t key_bits, Addr target)
{
    bool replaced = false;
    TableEntry &entry = table.access(makeExactKey(key_bits), replaced);
    entry.target = target;
    entry.valid = true;
}

TEST(UnconstrainedTable, NeverEvicts)
{
    UnconstrainedTable table;
    for (std::uint64_t k = 0; k < 10000; ++k)
        install(table, k, static_cast<Addr>(k * 4));
    EXPECT_EQ(table.occupancy(), 10000u);
    EXPECT_EQ(table.capacity(), 0u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        const TableEntry *entry = table.probe(makeExactKey(k));
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(entry->target, k * 4);
    }
}

TEST(UnconstrainedTable, ProbeMissesUnknownKeys)
{
    UnconstrainedTable table;
    EXPECT_EQ(table.probe(makeExactKey(7)), nullptr);
    install(table, 7, 0x40);
    EXPECT_NE(table.probe(makeExactKey(7)), nullptr);
    EXPECT_EQ(table.probe(makeExactKey(8)), nullptr);
}

TEST(UnconstrainedTable, DistinguishesHighKeyHalf)
{
    UnconstrainedTable table;
    bool replaced = false;
    table.access(Key{1, 0}, replaced).valid = true;
    EXPECT_EQ(table.probe(Key{1, 1}), nullptr);
    EXPECT_NE(table.probe(Key{1, 0}), nullptr);
}

TEST(FullyAssocTable, EvictsLeastRecentlyUsed)
{
    FullyAssocTable table(3);
    install(table, 1, 0x10);
    install(table, 2, 0x20);
    install(table, 3, 0x30);
    // Touch key 1 so key 2 becomes LRU.
    bool replaced = false;
    table.access(makeExactKey(1), replaced);
    EXPECT_FALSE(replaced);
    install(table, 4, 0x40); // evicts 2
    EXPECT_NE(table.probe(makeExactKey(1)), nullptr);
    EXPECT_EQ(table.probe(makeExactKey(2)), nullptr);
    EXPECT_NE(table.probe(makeExactKey(3)), nullptr);
    EXPECT_NE(table.probe(makeExactKey(4)), nullptr);
    EXPECT_EQ(table.occupancy(), 3u);
}

TEST(FullyAssocTable, ProbeDoesNotTouchRecency)
{
    FullyAssocTable table(2);
    install(table, 1, 0x10);
    install(table, 2, 0x20);
    // Probing key 1 must NOT protect it.
    table.probe(makeExactKey(1));
    install(table, 3, 0x30); // still evicts 1 (the LRU)
    EXPECT_EQ(table.probe(makeExactKey(1)), nullptr);
    EXPECT_NE(table.probe(makeExactKey(2)), nullptr);
}

TEST(FullyAssocTable, ReplacementResetsEntryState)
{
    FullyAssocTable table(1);
    bool replaced = false;
    TableEntry &first = table.access(makeExactKey(1), replaced);
    EXPECT_TRUE(replaced);
    first.valid = true;
    first.target = 0x10;
    first.confidence.increment();
    TableEntry &second = table.access(makeExactKey(2), replaced);
    EXPECT_TRUE(replaced);
    EXPECT_FALSE(second.valid);
    EXPECT_EQ(second.confidence.value(), 0u);
}

TEST(SetAssocTable, IndexAndTagSplit)
{
    SetAssocTable table(64, 4); // 16 sets -> 4 index bits
    EXPECT_EQ(table.sets(), 16u);
    EXPECT_EQ(table.indexOf(makeExactKey(0x35)), 0x5u);
    EXPECT_EQ(table.indexOf(makeExactKey(0x45)), 0x5u);
    EXPECT_NE(table.tagOf(makeExactKey(0x35)),
              table.tagOf(makeExactKey(0x45)));
}

TEST(SetAssocTable, ConflictEvictionWithinSet)
{
    SetAssocTable table(4, 2); // 2 sets, 2 ways
    // Keys 0, 2, 4 map to set 0.
    install(table, 0, 0x10);
    install(table, 2, 0x20);
    install(table, 4, 0x30); // evicts key 0 (LRU of set 0)
    EXPECT_EQ(table.probe(makeExactKey(0)), nullptr);
    EXPECT_NE(table.probe(makeExactKey(2)), nullptr);
    EXPECT_NE(table.probe(makeExactKey(4)), nullptr);
    // Set 1 is unaffected.
    install(table, 1, 0x40);
    EXPECT_NE(table.probe(makeExactKey(1)), nullptr);
}

TEST(SetAssocTable, LruWithinSetRespectsTouches)
{
    SetAssocTable table(4, 2);
    install(table, 0, 0x10);
    install(table, 2, 0x20);
    bool replaced = false;
    table.access(makeExactKey(0), replaced); // touch 0
    EXPECT_FALSE(replaced);
    install(table, 4, 0x30); // evicts 2
    EXPECT_NE(table.probe(makeExactKey(0)), nullptr);
    EXPECT_EQ(table.probe(makeExactKey(2)), nullptr);
}

TEST(SetAssocTable, OneWayIsDirectMappedWithTags)
{
    SetAssocTable table(4, 1);
    install(table, 0, 0x10);
    // Same index, different tag: probe must miss (unlike tagless).
    EXPECT_EQ(table.probe(makeExactKey(4)), nullptr);
    install(table, 4, 0x20);
    EXPECT_EQ(table.probe(makeExactKey(0)), nullptr);
}

TEST(SetAssocTable, FullPrecisionKeysUseHighHalf)
{
    SetAssocTable table(16, 4);
    bool replaced = false;
    TableEntry &entry = table.access(Key{5, 111}, replaced);
    entry.valid = true;
    entry.target = 0x40;
    // Same low bits, different high half -> tag mismatch.
    EXPECT_EQ(table.probe(Key{5, 222}), nullptr);
    EXPECT_NE(table.probe(Key{5, 111}), nullptr);
}

TEST(TaglessTable, AliasesSilently)
{
    TaglessTable table(8); // 3 index bits
    install(table, 1, 0x10);
    // Key 9 aliases to slot 1: probe returns the alien entry.
    const TableEntry *alias = table.probe(makeExactKey(9));
    ASSERT_NE(alias, nullptr);
    EXPECT_EQ(alias->target, 0x10u);
    // access() on the alias is NOT a replacement (slot is valid).
    bool replaced = true;
    table.access(makeExactKey(9), replaced);
    EXPECT_FALSE(replaced);
}

TEST(TaglessTable, ColdSlotProbesMiss)
{
    TaglessTable table(8);
    EXPECT_EQ(table.probe(makeExactKey(3)), nullptr);
    EXPECT_EQ(table.occupancy(), 0u);
}

TEST(TaglessTable, OccupancyCountsValidSlots)
{
    TaglessTable table(8);
    install(table, 0, 0x10);
    install(table, 1, 0x20);
    install(table, 9, 0x30); // aliases slot 1; no growth
    EXPECT_EQ(table.occupancy(), 2u);
    EXPECT_EQ(table.capacity(), 8u);
}

TEST(TableSpec, FactoryBuildsEveryKind)
{
    EXPECT_EQ(makeTable(TableSpec::unconstrained())->name(),
              "unconstrained");
    EXPECT_EQ(makeTable(TableSpec::fullyAssoc(64))->name(),
              "fullassoc");
    EXPECT_EQ(makeTable(TableSpec::setAssoc(64, 4))->name(), "assoc4");
    EXPECT_EQ(makeTable(TableSpec::tagless(64))->name(), "tagless");
}

TEST(TableSpec, DescribeIsStable)
{
    EXPECT_EQ(TableSpec::unconstrained().describe(), "unconstrained");
    EXPECT_EQ(TableSpec::setAssoc(1024, 4).describe(), "assoc4-1024");
    EXPECT_EQ(TableSpec::tagless(512).describe(), "tagless-512");
    EXPECT_EQ(TableSpec::fullyAssoc(256).describe(), "fullassoc-256");
}

TEST(TableSpec, ValidationRejectsBadShapes)
{
    EXPECT_DEATH(makeTable(TableSpec::tagless(100)), "power of two");
    EXPECT_DEATH(makeTable(TableSpec::setAssoc(100, 3)),
                 "not divisible|not a power of two|not a multiple");
}

TEST(AllTables, ResetClearsEverything)
{
    for (const TableSpec &spec :
         {TableSpec::unconstrained(), TableSpec::fullyAssoc(16),
          TableSpec::setAssoc(16, 2), TableSpec::tagless(16)}) {
        auto table = makeTable(spec);
        install(*table, 3, 0x30);
        EXPECT_GT(table->occupancy(), 0u) << spec.describe();
        table->reset();
        EXPECT_EQ(table->occupancy(), 0u) << spec.describe();
        EXPECT_EQ(table->probe(makeExactKey(3)), nullptr)
            << spec.describe();
    }
}

} // namespace
} // namespace ibp
