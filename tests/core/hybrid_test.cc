/**
 * @file
 * Tests of hybrid predictors (section 6): confidence metaprediction,
 * tie-breaking, fallback on component misses, the BPST selector
 * alternative, and the short+long complementarity the paper builds
 * on.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/hybrid.hh"
#include "util/rng.hh"

namespace ibp {
namespace {

HybridConfig
unconstrainedHybrid(unsigned p1, unsigned p2)
{
    return HybridConfig::twoComponent(unconstrainedTwoLevel(p1),
                                      unconstrainedTwoLevel(p2));
}

TEST(Hybrid, RequiresTwoComponents)
{
    HybridConfig config;
    config.components = {unconstrainedTwoLevel(1)};
    EXPECT_DEATH(HybridPredictor{config}, ">= 2 components");
}

TEST(Hybrid, ColdStartHasNoPrediction)
{
    HybridPredictor hybrid(unconstrainedHybrid(1, 3));
    EXPECT_FALSE(hybrid.predict(0x100).valid);
    EXPECT_EQ(hybrid.lastChosen(), -1);
}

TEST(Hybrid, UsesTheOnlyComponentWithAPrediction)
{
    // After one update both components have entries for the next
    // occurrence of the same pattern; craft a case where only the
    // short component hits: change history so the long pattern is
    // fresh but the short one repeats.
    HybridPredictor hybrid(unconstrainedHybrid(0, 2));
    // Train p=0 entry for the site.
    hybrid.update(0x100, 0xA0);
    hybrid.update(0x200, 0xB0); // history now B0, A0
    hybrid.update(0x300, 0xC0); // history now C0, B0
    // p=0 component predicts A0 regardless of the (fresh) history;
    // the p=2 component has never seen (0x100, [C0 B0]).
    const Prediction prediction = hybrid.predict(0x100);
    ASSERT_TRUE(prediction.valid);
    EXPECT_EQ(prediction.target, 0xA0u);
    EXPECT_EQ(hybrid.lastChosen(), 0);
}

TEST(Hybrid, ConfidencePicksTheAccurateComponent)
{
    // Period-4 cycle with a repeated target: p=1 is ambiguous after
    // A, p=3 learns perfectly. Confidence must migrate to p=3.
    HybridPredictor hybrid(unconstrainedHybrid(1, 3));
    const Addr cycle[] = {0xA0, 0xB0, 0xA0, 0xC0};
    int late_misses = 0;
    for (int i = 0; i < 600; ++i) {
        const Addr actual = cycle[i % 4];
        const bool hit = hybrid.predict(0x100).correctFor(actual);
        if (i >= 200)
            late_misses += hit ? 0 : 1;
        hybrid.update(0x100, actual);
    }
    EXPECT_EQ(late_misses, 0);
}

TEST(Hybrid, TieBreakPrefersTheFirstComponent)
{
    // Both components learn the same monomorphic branch and reach
    // equal confidence; the first listed must be chosen.
    HybridPredictor hybrid(unconstrainedHybrid(1, 2));
    for (int i = 0; i < 20; ++i) {
        hybrid.predict(0x100);
        hybrid.update(0x100, 0xA0);
    }
    ASSERT_TRUE(hybrid.predict(0x100).valid);
    EXPECT_EQ(hybrid.lastChosen(), 0);
}

TEST(Hybrid, HybridMatchesBestComponentOnEasyStreams)
{
    // On a stream both components predict perfectly, the hybrid must
    // not lose accuracy to metaprediction churn.
    HybridPredictor hybrid(unconstrainedHybrid(1, 3));
    int misses = 0;
    for (int i = 0; i < 400; ++i) {
        const bool hit = hybrid.predict(0x100).correctFor(0xA0);
        if (i > 2)
            misses += hit ? 0 : 1;
        hybrid.update(0x100, 0xA0);
    }
    EXPECT_EQ(misses, 0);
}

TEST(Hybrid, ShortPlusLongBeatsLongAloneAcrossPhaseChange)
{
    // Phase 1: period-1 behaviour (everything learns). Then the
    // pattern changes: short components relearn in O(patterns_short)
    // while the long component relearns slowly. This is the
    // section 6 motivation for hybrids.
    const auto run = [](IndirectPredictor &predictor) {
        Rng rng(7);
        int post_change_misses = 0;
        Addr phase_salt = 0;
        for (int i = 0; i < 3000; ++i) {
            if (i == 1500)
                phase_salt = 0x5550;
            // Period-6 global pattern over 3 sites.
            const Addr pc = 0x100 + 4 * (i % 3);
            const Addr actual =
                0xA0 + 0x10 * ((i + i / 6) % 6) + phase_salt;
            const bool hit = predictor.predict(pc).correctFor(actual);
            if (i >= 1500 && i < 2100)
                post_change_misses += hit ? 0 : 1;
            predictor.update(pc, actual);
        }
        return post_change_misses;
    };

    TwoLevelPredictor long_only(unconstrainedTwoLevel(10));
    HybridPredictor hybrid(unconstrainedHybrid(2, 10));
    const int long_misses = run(long_only);
    const int hybrid_misses = run(hybrid);
    EXPECT_LT(hybrid_misses, long_misses);
}

TEST(Hybrid, SelectorModeTracksTheBetterComponent)
{
    HybridConfig config = unconstrainedHybrid(1, 3);
    config.meta = MetaKind::Selector;
    HybridPredictor hybrid(config);
    const Addr cycle[] = {0xA0, 0xB0, 0xA0, 0xC0};
    int late_misses = 0;
    for (int i = 0; i < 800; ++i) {
        const Addr actual = cycle[i % 4];
        const bool hit = hybrid.predict(0x100).correctFor(actual);
        if (i >= 400)
            late_misses += hit ? 0 : 1;
        hybrid.update(0x100, actual);
    }
    // The per-branch selector converges to the p=3 component.
    EXPECT_LT(late_misses, 40);
}

TEST(Hybrid, SelectorRequiresExactlyTwoComponents)
{
    HybridConfig config;
    config.components = {unconstrainedTwoLevel(1),
                         unconstrainedTwoLevel(2),
                         unconstrainedTwoLevel(3)};
    config.meta = MetaKind::Selector;
    EXPECT_DEATH(HybridPredictor{config}, "exactly 2");
}

TEST(Hybrid, ThreeComponentsWorkWithConfidence)
{
    HybridConfig config;
    config.components = {unconstrainedTwoLevel(1),
                         unconstrainedTwoLevel(4),
                         unconstrainedTwoLevel(8)};
    HybridPredictor hybrid(config);
    EXPECT_EQ(hybrid.numComponents(), 3u);
    const Addr cycle[] = {0xA0, 0xB0, 0xA0, 0xC0, 0xA0, 0xD0};
    int late_misses = 0;
    for (int i = 0; i < 900; ++i) {
        const Addr actual = cycle[i % 6];
        const bool hit = hybrid.predict(0x100).correctFor(actual);
        if (i >= 300)
            late_misses += hit ? 0 : 1;
        hybrid.update(0x100, actual);
    }
    EXPECT_EQ(late_misses, 0);
}

TEST(Hybrid, CapacityIsTheComponentSum)
{
    HybridPredictor bounded(paperHybrid(
        3, 1, TableSpec::setAssoc(512, 4)));
    EXPECT_EQ(bounded.tableCapacity(), 1024u);
    HybridPredictor unbounded(unconstrainedHybrid(1, 2));
    EXPECT_EQ(unbounded.tableCapacity(), 0u);
}

TEST(Hybrid, ResetForgetsEverything)
{
    HybridPredictor hybrid(unconstrainedHybrid(1, 3));
    for (int i = 0; i < 10; ++i)
        hybrid.update(0x100, 0xA0);
    hybrid.reset();
    EXPECT_FALSE(hybrid.predict(0x100).valid);
    EXPECT_EQ(hybrid.tableOccupancy(), 0u);
}

TEST(Hybrid, ConfidenceWidthIsApplied)
{
    HybridConfig config = unconstrainedHybrid(1, 3);
    config.confidenceBits = 4;
    HybridPredictor hybrid(config);
    for (int i = 0; i < 40; ++i) {
        hybrid.predict(0x100);
        hybrid.update(0x100, 0xA0);
    }
    // A 4-bit counter can reach 15.
    EXPECT_GE(hybrid.predict(0x100).confidence, 10);
}

} // namespace
} // namespace ibp
