/**
 * @file
 * Tests of the predictor factory helpers and the textual spec parser
 * used by the explore_predictors example.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"

namespace ibp {
namespace {

TEST(Factory, PaperTwoLevelDefaults)
{
    const TwoLevelConfig config =
        paperTwoLevel(3, TableSpec::setAssoc(1024, 4));
    EXPECT_EQ(config.pattern.pathLength, 3u);
    EXPECT_EQ(config.pattern.precision, PrecisionMode::Limited);
    EXPECT_EQ(config.pattern.resolvedBitsPerTarget(), 8u);
    EXPECT_EQ(config.pattern.lowBit, 2u);
    EXPECT_EQ(config.pattern.interleave, InterleaveKind::Reverse);
    EXPECT_EQ(config.pattern.keyMix, KeyMix::Xor);
    EXPECT_EQ(config.pattern.tableSharing, 2u);
    EXPECT_EQ(config.historySharing, 32u);
    EXPECT_TRUE(config.hysteresis);
}

TEST(Factory, UnconstrainedTwoLevelDefaults)
{
    const TwoLevelConfig config = unconstrainedTwoLevel(8);
    EXPECT_EQ(config.pattern.precision, PrecisionMode::Full);
    EXPECT_EQ(config.table.kind, TableKind::Unconstrained);
    EXPECT_EQ(config.historySharing, 32u);
}

TEST(Factory, PaperHybridBuildsTwoComponents)
{
    const HybridConfig config =
        paperHybrid(3, 1, TableSpec::setAssoc(512, 4));
    ASSERT_EQ(config.components.size(), 2u);
    EXPECT_EQ(config.components[0].pattern.pathLength, 3u);
    EXPECT_EQ(config.components[1].pattern.pathLength, 1u);
    EXPECT_EQ(config.meta, MetaKind::Confidence);
}

TEST(Factory, ParseTableSpecs)
{
    EXPECT_EQ(parseTableSpec("unconstrained").kind,
              TableKind::Unconstrained);
    const TableSpec assoc = parseTableSpec("assoc4:1024");
    EXPECT_EQ(assoc.kind, TableKind::SetAssoc);
    EXPECT_EQ(assoc.entries, 1024u);
    EXPECT_EQ(assoc.ways, 4u);
    const TableSpec tagless = parseTableSpec("tagless:512");
    EXPECT_EQ(tagless.kind, TableKind::Tagless);
    EXPECT_EQ(tagless.entries, 512u);
    const TableSpec full = parseTableSpec("fullassoc:256");
    EXPECT_EQ(full.kind, TableKind::FullyAssoc);
}

TEST(Factory, ParseTableSpecRejectsJunk)
{
    // Bad specs are recoverable errors, not process aborts: a sweep
    // must be able to fail just the cell whose factory is broken.
    EXPECT_THROW(parseTableSpec("hash:99"), RunException);
    EXPECT_THROW(parseTableSpec("assoc4"), RunException);
    EXPECT_THROW(parseTableSpec("assoc4:zero"), RunException);
    const auto error = tryMakePredictorFromSpec("btb2bc:table=hash:9");
    ASSERT_FALSE(error.ok());
    EXPECT_EQ(error.error().kind, ErrorKind::Permanent);
    EXPECT_NE(error.error().message.find("unknown kind"),
              std::string::npos);
}

TEST(Factory, SpecParserBuildsBtbs)
{
    EXPECT_EQ(makePredictorFromSpec("btb")->name(), "btb");
    EXPECT_EQ(makePredictorFromSpec("btb2bc")->name(), "btb-2bc");
    const auto bounded =
        makePredictorFromSpec("btb2bc:table=fullassoc:256");
    EXPECT_EQ(bounded->tableCapacity(), 256u);
}

TEST(Factory, SpecParserBuildsTwoLevel)
{
    const auto predictor =
        makePredictorFromSpec("twolevel:p=3,table=assoc4:1024");
    EXPECT_EQ(predictor->tableCapacity(), 1024u);
    EXPECT_NE(predictor->name().find("p=3"), std::string::npos);

    const auto full = makePredictorFromSpec(
        "twolevel:p=8,precision=full,table=unconstrained");
    EXPECT_EQ(full->tableCapacity(), 0u);
    EXPECT_NE(full->name().find("full"), std::string::npos);
}

TEST(Factory, SpecParserHonoursKeyOptions)
{
    const auto predictor = makePredictorFromSpec(
        "twolevel:p=4,table=tagless:512,interleave=concat,"
        "mix=concat,b=2,2bc=0");
    const std::string name = predictor->name();
    EXPECT_NE(name.find("concat"), std::string::npos);
    EXPECT_NE(name.find("b=2"), std::string::npos);
    EXPECT_NE(name.find("no2bc"), std::string::npos);
}

TEST(Factory, SpecParserBuildsHybrids)
{
    const auto hybrid = makePredictorFromSpec(
        "hybrid:p1=3,p2=7,table=assoc2:2048");
    EXPECT_EQ(hybrid->tableCapacity(), 4096u);
    EXPECT_NE(hybrid->name().find("hybrid"), std::string::npos);

    const auto selector = makePredictorFromSpec(
        "hybrid:p1=1,p2=5,table=assoc4:512,meta=selector");
    EXPECT_NE(selector->name().find("selector"), std::string::npos);
}

TEST(Factory, SpecParserRejectsUnknownKind)
{
    EXPECT_THROW(makePredictorFromSpec("oracle"), RunException);
    const auto result = tryMakePredictorFromSpec("oracle");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("unknown predictor"),
              std::string::npos);
}

TEST(Factory, ParsedPredictorsActuallyPredict)
{
    for (const char *spec :
         {"btb", "btb2bc", "twolevel:p=2,table=assoc4:256",
          "twolevel:p=3,table=tagless:256",
          "hybrid:p1=1,p2=4,table=assoc2:256"}) {
        const auto predictor = makePredictorFromSpec(spec);
        predictor->update(0x100, 0xA0);
        predictor->update(0x100, 0xA0);
        SUCCEED() << spec;
    }
}

} // namespace
} // namespace ibp
