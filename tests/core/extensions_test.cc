/**
 * @file
 * Tests of the extension predictors: Target Cache [CHP97], the
 * cascaded/PPM-style predictor, the ITTAGE-style predictor, the
 * shared-table hybrid with chosen counters (section 8.1), and
 * next-branch prediction (section 8.1).
 */

#include <gtest/gtest.h>

#include "core/cascaded.hh"
#include "core/ittage.hh"
#include "core/next_branch.hh"
#include "core/shared_hybrid.hh"
#include "core/target_cache.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

namespace ibp {
namespace {

const Trace &
extTrace()
{
    static const Trace trace = [] {
        GeneratorOptions options;
        options.events = 20000;
        return generateTrace(benchmarkProfile("porky"), options);
    }();
    return trace;
}

TEST(TargetCache, ShiftsConditionalHistory)
{
    TargetCachePredictor predictor(TargetCacheConfig{});
    EXPECT_EQ(predictor.historyBits(), 0u);
    predictor.observeConditional(0x10, true, 0x20);
    predictor.observeConditional(0x10, false, 0x20);
    predictor.observeConditional(0x10, true, 0x20);
    EXPECT_EQ(predictor.historyBits() & 0x7, 0b101u);
}

TEST(TargetCache, LearnsConditionalCorrelatedTargets)
{
    // Target is A after a taken conditional, B after not-taken.
    TargetCacheConfig config;
    config.historyBits = 4;
    TargetCachePredictor predictor(config);
    int late_misses = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = i % 2 == 0;
        predictor.observeConditional(0x50, taken, 0x60);
        const Addr actual = taken ? 0xA0 : 0xB0;
        if (i > 40 && !predictor.predict(0x100).correctFor(actual))
            ++late_misses;
        predictor.update(0x100, actual);
    }
    EXPECT_EQ(late_misses, 0);
}

TEST(TargetCache, ABtbCannotLearnThatStream)
{
    // Sanity companion to the test above: without conditional
    // history the alternation is 50% missable.
    TargetCacheConfig config;
    config.historyBits = 0 + 1; // effectively address-only hashing
    config.historyBits = 1;
    TargetCachePredictor predictor(config);
    int late_misses = 0;
    for (int i = 0; i < 400; ++i) {
        const Addr actual = (i % 2 == 0) ? 0xA0 : 0xB0;
        if (i > 40 && !predictor.predict(0x100).correctFor(actual))
            ++late_misses;
        predictor.update(0x100, actual);
        // No conditional branches observed at all.
    }
    EXPECT_GT(late_misses, 100);
}

TEST(TargetCache, RunsOnRealTraces)
{
    TargetCachePredictor predictor(TargetCacheConfig{});
    const SimResult result = simulate(predictor, extTrace());
    EXPECT_GT(result.branches, 0u);
    EXPECT_LE(result.missPercent(), 100.0);
}

TEST(Cascaded, ClassicConfigSplitsTheBudget)
{
    CascadedPredictor predictor(CascadedConfig::classic(1024));
    EXPECT_EQ(predictor.tableCapacity(), 1024u);
}

TEST(Cascaded, StagesMustHaveIncreasingPaths)
{
    CascadedConfig config;
    config.stages = {CascadeStage{3, TableSpec::setAssoc(64, 4)},
                     CascadeStage{1, TableSpec::setAssoc(64, 4)}};
    EXPECT_DEATH(CascadedPredictor{config}, "increasing");
}

TEST(Cascaded, LongestHittingStageProvides)
{
    CascadedPredictor predictor(CascadedConfig::classic(1024));
    // Period-3 distinct cycle: the long stage should take over.
    const Addr cycle[] = {0xA0, 0xB0, 0xC0};
    int late_misses = 0;
    for (int i = 0; i < 600; ++i) {
        const Addr actual = cycle[i % 3];
        const bool hit = predictor.predict(0x100).correctFor(actual);
        if (i >= 300)
            late_misses += hit ? 0 : 1;
        predictor.update(0x100, actual);
    }
    EXPECT_LE(late_misses, 2);
    EXPECT_GE(predictor.lastStage(), 1);
}

TEST(Cascaded, FilterKeepsEasyBranchesOutOfLongStages)
{
    CascadedConfig filtered = CascadedConfig::classic(1024);
    CascadedConfig unfiltered = CascadedConfig::classic(1024);
    unfiltered.filterAllocation = false;
    CascadedPredictor with_filter(filtered);
    CascadedPredictor without_filter(unfiltered);
    // A monomorphic branch: stage 0 handles it after warm-up.
    for (int i = 0; i < 50; ++i) {
        with_filter.predict(0x100);
        with_filter.update(0x100, 0xA0);
        without_filter.predict(0x100);
        without_filter.update(0x100, 0xA0);
    }
    // The filtered cascade allocated (almost) nothing beyond the
    // first stage; the unfiltered one spread into all stages.
    EXPECT_LT(with_filter.tableOccupancy(),
              without_filter.tableOccupancy());
}

TEST(Cascaded, RunsOnRealTracesAndBeatsItsFirstStage)
{
    CascadedPredictor cascade(CascadedConfig::classic(2048));
    const double cascade_rate =
        simulate(cascade, extTrace()).missPercent();
    // Its own p=0 first stage alone, at the full budget.
    CascadedConfig btb_only;
    btb_only.stages = {CascadeStage{0, TableSpec::setAssoc(2048, 4)}};
    CascadedPredictor first_stage(btb_only);
    const double first_rate =
        simulate(first_stage, extTrace()).missPercent();
    EXPECT_LT(cascade_rate, first_rate);
}

TEST(Ittage, ValidatesTableShapes)
{
    IttageConfig config;
    config.baseEntries = 100;
    EXPECT_DEATH(IttagePredictor{config}, "powers of two");
}

TEST(Ittage, LearnsPeriodicStreams)
{
    IttagePredictor predictor(IttageConfig{});
    const Addr cycle[] = {0xA0, 0xB0, 0xA0, 0xC0};
    int late_misses = 0;
    for (int i = 0; i < 800; ++i) {
        const Addr actual = cycle[i % 4];
        const bool hit = predictor.predict(0x100).correctFor(actual);
        if (i >= 400)
            late_misses += hit ? 0 : 1;
        predictor.update(0x100, actual);
    }
    EXPECT_LT(late_misses, 20);
}

TEST(Ittage, BeatsPlainBtbOnRealTraces)
{
    IttagePredictor ittage(IttageConfig{});
    const double ittage_rate =
        simulate(ittage, extTrace()).missPercent();
    IttageConfig base_only;
    base_only.baseEntries = 2048;
    base_only.componentEntries = 2;
    base_only.historyLengths = {1};
    IttagePredictor degenerate(base_only);
    const double base_rate =
        simulate(degenerate, extTrace()).missPercent();
    EXPECT_LT(ittage_rate, base_rate);
}

TEST(Ittage, CapacityAccounting)
{
    IttageConfig config;
    config.baseEntries = 256;
    config.componentEntries = 128;
    config.historyLengths = {4, 8};
    IttagePredictor predictor(config);
    EXPECT_EQ(predictor.tableCapacity(), 256u + 2 * 128u);
    EXPECT_EQ(predictor.tableOccupancy(), 0u);
    predictor.update(0x100, 0xA0);
    EXPECT_GE(predictor.tableOccupancy(), 1u);
}

TEST(SharedHybrid, ValidatesConfig)
{
    SharedHybridConfig config;
    config.pathLengths = {3};
    EXPECT_DEATH(SharedHybridPredictor{config}, ">= 2 components");
}

TEST(SharedHybrid, LearnsLikeAHybrid)
{
    SharedHybridConfig config;
    config.pathLengths = {3, 1};
    config.entries = 1024;
    SharedHybridPredictor predictor(config);
    const Addr cycle[] = {0xA0, 0xB0, 0xA0, 0xC0};
    int late_misses = 0;
    for (int i = 0; i < 600; ++i) {
        const Addr actual = cycle[i % 4];
        const bool hit = predictor.predict(0x100).correctFor(actual);
        if (i >= 300)
            late_misses += hit ? 0 : 1;
        predictor.update(0x100, actual);
    }
    EXPECT_LE(late_misses, 2);
}

TEST(SharedHybrid, OccupancyWithinCapacity)
{
    SharedHybridConfig config;
    config.pathLengths = {3, 1};
    config.entries = 256;
    SharedHybridPredictor predictor(config);
    const SimResult result = simulate(predictor, extTrace());
    EXPECT_LE(result.tableOccupancy, result.tableCapacity);
    EXPECT_GT(result.tableOccupancy, 100u);
    EXPECT_LE(result.missPercent(), 100.0);
}

TEST(SharedHybrid, ResetForgets)
{
    SharedHybridConfig config;
    SharedHybridPredictor predictor(config);
    predictor.update(0x100, 0xA0);
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x100).valid);
    EXPECT_EQ(predictor.tableOccupancy(), 0u);
}

TEST(NextBranch, PredictsTargetAndSuccessor)
{
    NextBranchPredictor predictor(2);
    // Deterministic little program: X -> Y -> X -> Y ...
    int late_joint_hits = 0;
    Addr pcs[] = {0x100, 0x200};
    Addr targets[] = {0xA0, 0xB0};
    for (int i = 0; i < 200; ++i) {
        const Addr pc = pcs[i % 2];
        const Addr target = targets[i % 2];
        const Addr next_pc = pcs[(i + 1) % 2];
        const NextBranchPrediction guess = predictor.predict(pc);
        if (i > 20 && guess.valid && guess.target == target &&
            guess.nextPc == next_pc) {
            ++late_joint_hits;
        }
        predictor.update(pc, target, next_pc);
    }
    EXPECT_EQ(late_joint_hits, 179); // every branch after warm-up
}

TEST(NextBranch, HysteresisKeepsStablePairs)
{
    NextBranchPredictor predictor(0);
    predictor.update(0x100, 0xA0, 0x200);
    predictor.update(0x100, 0xB0, 0x300); // single deviation
    const NextBranchPrediction guess = predictor.predict(0x100);
    ASSERT_TRUE(guess.valid);
    EXPECT_EQ(guess.target, 0xA0u);
    EXPECT_EQ(guess.nextPc, 0x200u);
}

TEST(NextBranch, JointAccuracyTracksTargetAccuracyOnRealTraces)
{
    NextBranchPredictor predictor(3);
    const auto &records = extTrace().records();
    double target_hits = 0, joint_hits = 0, total = 0;
    for (std::size_t i = 0; i + 1 < records.size(); ++i) {
        const NextBranchPrediction guess =
            predictor.predict(records[i].pc);
        total += 1;
        if (guess.valid && guess.target == records[i].target) {
            target_hits += 1;
            if (guess.nextPc == records[i + 1].pc)
                joint_hits += 1;
        }
        predictor.update(records[i].pc, records[i].target,
                         records[i + 1].pc);
    }
    EXPECT_GT(target_hits / total, 0.5);
    EXPECT_GT(joint_hits / std::max(1.0, target_hits), 0.8);
}

} // namespace
} // namespace ibp
