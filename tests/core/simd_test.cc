/**
 * @file
 * Tests of the runtime SIMD dispatch layer (core/simd.hh): level
 * forcing, the vector tag scans and the block meta classifier
 * pinned against scalar oracles, and the FlatMap group probe fuzzed
 * bit-identical across every dispatch level the CPU supports. These
 * are the guarantees the differential simulation tests build on:
 * for a given input every level must visit slots and records in
 * exactly the scalar order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/flat_table.hh"
#include "core/simd.hh"
#include "trace/branch_record.hh"
#include "util/rng.hh"

namespace ibp {
namespace {

/** Force a dispatch level for one scope, restoring on exit. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : _saved(simdLevel())
    {
        applied = setSimdLevelForTest(level);
    }
    ~ScopedSimdLevel() { setSimdLevelForTest(_saved); }

    SimdLevel applied;

  private:
    SimdLevel _saved;
};

/** Every level this CPU can execute, narrowest first. */
std::vector<SimdLevel>
supportedLevels()
{
    // Ask for the widest level and see what the clamp allows.
    const SimdLevel original = simdLevel();
    const SimdLevel widest = setSimdLevelForTest(SimdLevel::Avx2);
    setSimdLevelForTest(original);
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (widest >= SimdLevel::Sse2)
        levels.push_back(SimdLevel::Sse2);
    if (widest >= SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
    return levels;
}

TEST(SimdDispatch, LevelNamesAreStable)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Sse2), "sse2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
}

TEST(SimdDispatch, ForcedLevelRoundTrips)
{
    for (const SimdLevel level : supportedLevels()) {
        ScopedSimdLevel forced(level);
        EXPECT_EQ(forced.applied, level);
        EXPECT_EQ(simdLevel(), level);
    }
}

TEST(SimdDispatch, ForcedScalarDisablesScatter)
{
    ScopedSimdLevel forced(SimdLevel::Scalar);
    // IBP_SIMD=off must force the whole engine scalar, including the
    // PDEP pattern scatter; the test hook models the same override.
    EXPECT_FALSE(simdScatterEnabled());
}

/** Scalar model of one 16/32-wide tag group scan. */
simd::TagGroup
scalarScan(const std::uint8_t *tags, std::uint8_t tag, unsigned width)
{
    simd::TagGroup group;
    for (unsigned i = 0; i < width; ++i) {
        group.matches |= (tags[i] == tag ? 1u : 0u) << i;
        group.empties |= (tags[i] == 0 ? 1u : 0u) << i;
    }
    return group;
}

TEST(SimdTagScan, GroupScansMatchScalarOracle)
{
    Rng rng(0x7a95eed);
    const bool have_avx2 = [] {
        const auto levels = supportedLevels();
        return levels.back() == SimdLevel::Avx2;
    }();
    for (unsigned round = 0; round < 2000; ++round) {
        std::uint8_t tags[32];
        for (auto &t : tags) {
            // Mix empties, the probe tag, and arbitrary other tags so
            // both masks exercise every lane position over the fuzz.
            const std::uint64_t roll = rng.nextBelow(4);
            t = roll == 0 ? 0
                          : static_cast<std::uint8_t>(
                                0x80u | rng.nextBelow(128));
        }
        const std::uint8_t probe = static_cast<std::uint8_t>(
            0x80u | rng.nextBelow(128));

        const simd::TagGroup narrow = simd::scanTags16(tags, probe);
        const simd::TagGroup narrow_ref =
            scalarScan(tags, probe, 16);
        EXPECT_EQ(narrow.matches, narrow_ref.matches);
        EXPECT_EQ(narrow.empties, narrow_ref.empties);

        if (have_avx2) {
            ScopedSimdLevel forced(SimdLevel::Avx2);
            const simd::TagGroup wide = simd::scanTags32(tags, probe);
            const simd::TagGroup wide_ref =
                scalarScan(tags, probe, 32);
            EXPECT_EQ(wide.matches, wide_ref.matches);
            EXPECT_EQ(wide.empties, wide_ref.empties);
        }
    }
}

TEST(SimdClassifyMeta, MatchesScalarOracleAcrossLevels)
{
    Rng rng(0xc1a55);
    const auto levels = supportedLevels();
    for (unsigned round = 0; round < 300; ++round) {
        // Lengths straddling every vector-width boundary, including
        // zero and ragged tails.
        const std::size_t count = rng.nextBelow(200);
        const std::uint32_t base =
            static_cast<std::uint32_t>(rng.nextBelow(1u << 20));
        const bool conditionals = rng.nextBool(0.5);
        std::vector<std::uint8_t> meta(count);
        for (auto &m : meta) {
            m = packBranchMeta(
                static_cast<BranchKind>(rng.nextBelow(5)),
                rng.nextBool(0.5));
        }

        std::vector<std::uint32_t> expected;
        for (std::size_t i = 0; i < count; ++i) {
            const BranchKind kind = branchMetaKind(meta[i]);
            if (branchMetaIsPredictedIndirect(meta[i]) ||
                (conditionals && kind == BranchKind::Conditional)) {
                expected.push_back(base +
                                   static_cast<std::uint32_t>(i));
            }
        }

        for (const SimdLevel level : levels) {
            ScopedSimdLevel forced(level);
            std::vector<std::uint32_t> out(count);
            const std::size_t written = simd::classifyMeta(
                meta.data(), count, base, conditionals, out.data());
            out.resize(written);
            EXPECT_EQ(out, expected)
                << "level " << simdLevelName(level) << " count "
                << count << " conditionals " << conditionals;
        }
    }
}

/** One op log entry of the FlatMap fuzz: what happened and to whom. */
struct OpResult
{
    std::uint64_t key;
    int kind; // 0 find-hit/miss, 1 insert-fresh/existing, 2 erase
    bool outcome;
    std::uint32_t value;

    bool operator==(const OpResult &other) const = default;
};

/** Run one deterministic op script under the current dispatch level
 *  and log every observable outcome plus the final contents. */
void
runFlatMapScript(std::uint64_t seed, std::vector<OpResult> &log,
                 std::map<std::uint64_t, std::uint32_t> &contents)
{
    Rng rng(seed);
    FlatMap<std::uint64_t, std::uint32_t> map;
    std::uint32_t stamp = 1;
    for (unsigned op = 0; op < 4000; ++op) {
        // A small key domain forces long probe clusters, collisions,
        // wrap-arounds and erase/reinsert churn.
        const std::uint64_t key = rng.nextBelow(512);
        const std::uint64_t roll = rng.nextBelow(10);
        if (roll < 5) {
            bool inserted = false;
            std::uint32_t &value = map.findOrInsert(key, inserted);
            if (inserted)
                value = stamp++;
            log.push_back(OpResult{key, 1, inserted, value});
        } else if (roll < 8) {
            const std::uint32_t *value = map.find(key);
            log.push_back(OpResult{key, 0, value != nullptr,
                                   value ? *value : 0});
        } else {
            log.push_back(OpResult{key, 2, map.erase(key), 0});
        }
    }
    map.forEach([&contents](std::uint64_t key, std::uint32_t value) {
        contents[key] = value;
    });
}

TEST(SimdFlatMap, GroupProbeFuzzMatchesScalarOracle)
{
    // The scalar run is the oracle; every wider level must produce
    // the identical op log (every hit, miss, insert position effect
    // and erase) and the identical final contents.
    for (std::uint64_t seed : {0x1ULL, 0xfeedULL, 0xabcdef12ULL}) {
        std::vector<OpResult> scalar_log;
        std::map<std::uint64_t, std::uint32_t> scalar_contents;
        {
            ScopedSimdLevel forced(SimdLevel::Scalar);
            runFlatMapScript(seed, scalar_log, scalar_contents);
        }
        for (const SimdLevel level : supportedLevels()) {
            if (level == SimdLevel::Scalar)
                continue;
            ScopedSimdLevel forced(level);
            std::vector<OpResult> log;
            std::map<std::uint64_t, std::uint32_t> contents;
            runFlatMapScript(seed, log, contents);
            EXPECT_EQ(log, scalar_log)
                << "level " << simdLevelName(level) << " seed "
                << seed;
            EXPECT_EQ(contents, scalar_contents)
                << "level " << simdLevelName(level) << " seed "
                << seed;
        }
    }
}

} // namespace
} // namespace ibp
