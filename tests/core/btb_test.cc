/**
 * @file
 * Tests of the BTB predictors (section 3.1), including the exact
 * semantics of the two-bit-counter update rule.
 */

#include <gtest/gtest.h>

#include "core/btb.hh"

namespace ibp {
namespace {

TEST(Btb, ColdLookupHasNoPrediction)
{
    BtbPredictor btb;
    EXPECT_FALSE(btb.predict(0x1000).valid);
}

TEST(Btb, LearnsTargetAfterOneUpdate)
{
    BtbPredictor btb;
    btb.update(0x1000, 0x2000);
    const Prediction prediction = btb.predict(0x1000);
    ASSERT_TRUE(prediction.valid);
    EXPECT_EQ(prediction.target, 0x2000u);
    EXPECT_TRUE(prediction.correctFor(0x2000));
    EXPECT_FALSE(prediction.correctFor(0x2004));
}

TEST(Btb, BranchesAreIndependent)
{
    BtbPredictor btb;
    btb.update(0x1000, 0x2000);
    btb.update(0x1004, 0x3000);
    EXPECT_EQ(btb.predict(0x1000).target, 0x2000u);
    EXPECT_EQ(btb.predict(0x1004).target, 0x3000u);
    EXPECT_FALSE(btb.predict(0x1008).valid);
}

TEST(Btb, PlainBtbReplacesOnEveryMiss)
{
    BtbPredictor btb(TableSpec::unconstrained(), false);
    btb.update(0x1000, 0xA0);
    btb.update(0x1000, 0xB0); // miss -> replace immediately
    EXPECT_EQ(btb.predict(0x1000).target, 0xB0u);
}

TEST(Btb2bc, KeepsTargetAfterSingleMiss)
{
    BtbPredictor btb(TableSpec::unconstrained(), true);
    btb.update(0x1000, 0xA0);
    btb.update(0x1000, 0xB0); // first miss: keep A0
    EXPECT_EQ(btb.predict(0x1000).target, 0xA0u);
    btb.update(0x1000, 0xB0); // second consecutive miss: replace
    EXPECT_EQ(btb.predict(0x1000).target, 0xB0u);
}

TEST(Btb2bc, HitForgivesPendingMiss)
{
    BtbPredictor btb(TableSpec::unconstrained(), true);
    btb.update(0x1000, 0xA0);
    btb.update(0x1000, 0xB0); // miss (pending)
    btb.update(0x1000, 0xA0); // hit clears the pending miss
    btb.update(0x1000, 0xB0); // single miss again: still A0
    EXPECT_EQ(btb.predict(0x1000).target, 0xA0u);
}

TEST(Btb2bc, BeatsPlainBtbOnAlternation)
{
    // The dominant-with-deviations pattern A A B A A B ...
    BtbPredictor plain(TableSpec::unconstrained(), false);
    BtbPredictor hysteretic(TableSpec::unconstrained(), true);
    const Addr pattern[] = {0xA0, 0xA0, 0xB0};
    int plain_misses = 0, hysteretic_misses = 0;
    for (int i = 0; i < 300; ++i) {
        const Addr actual = pattern[i % 3];
        plain_misses += plain.predict(0x100).correctFor(actual) ? 0 : 1;
        plain.update(0x100, actual);
        hysteretic_misses +=
            hysteretic.predict(0x100).correctFor(actual) ? 0 : 1;
        hysteretic.update(0x100, actual);
    }
    // Plain BTB misses twice per period (B, then the A after B);
    // BTB-2bc never lets B displace A and misses once per period.
    EXPECT_GT(plain_misses, hysteretic_misses);
    EXPECT_NEAR(hysteretic_misses, 100, 3);
    EXPECT_NEAR(plain_misses, 200, 3);
}

TEST(Btb, BoundedTableEvicts)
{
    BtbPredictor btb(TableSpec::fullyAssoc(2), false);
    btb.update(0x1000, 0xA0);
    btb.update(0x1004, 0xB0);
    btb.update(0x1008, 0xC0); // evicts 0x1000
    EXPECT_FALSE(btb.predict(0x1000).valid);
    EXPECT_TRUE(btb.predict(0x1004).valid);
    EXPECT_EQ(btb.tableCapacity(), 2u);
    EXPECT_EQ(btb.tableOccupancy(), 2u);
}

TEST(Btb, ResetForgets)
{
    BtbPredictor btb;
    btb.update(0x1000, 0xA0);
    btb.reset();
    EXPECT_FALSE(btb.predict(0x1000).valid);
    EXPECT_EQ(btb.tableOccupancy(), 0u);
}

TEST(Btb, NameReflectsConfiguration)
{
    EXPECT_EQ(BtbPredictor().name(), "btb");
    EXPECT_EQ(
        BtbPredictor(TableSpec::unconstrained(), true).name(),
        "btb-2bc");
    EXPECT_EQ(BtbPredictor(TableSpec::setAssoc(512, 4), true).name(),
              "btb-2bc[assoc4-512]");
}

} // namespace
} // namespace ibp
