/**
 * @file
 * Tests of the conditional-branch predictors backing the section 1
 * overhead analysis.
 */

#include <gtest/gtest.h>

#include "core/cond_predictor.hh"
#include "util/rng.hh"

namespace ibp {
namespace {

TEST(Bimodal, LearnsABiasedBranch)
{
    BimodalPredictor predictor(1024);
    for (int i = 0; i < 8; ++i)
        predictor.update(0x100, true);
    EXPECT_TRUE(predictor.predictTaken(0x100));
    for (int i = 0; i < 8; ++i)
        predictor.update(0x100, false);
    EXPECT_FALSE(predictor.predictTaken(0x100));
}

TEST(Bimodal, HysteresisSurvivesASingleDeviation)
{
    BimodalPredictor predictor(1024);
    for (int i = 0; i < 8; ++i)
        predictor.update(0x100, true);
    predictor.update(0x100, false); // one not-taken
    EXPECT_TRUE(predictor.predictTaken(0x100));
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor predictor(1024);
    int misses = 0;
    for (int i = 0; i < 200; ++i) {
        const bool taken = i % 2 == 0;
        if (i > 20 && predictor.predictTaken(0x100) != taken)
            ++misses;
        predictor.update(0x100, taken);
    }
    EXPECT_GT(misses, 60);
}

TEST(Gshare, LearnsAlternationThroughHistory)
{
    GsharePredictor predictor(8, 1024);
    int misses = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = i % 2 == 0;
        if (i > 100 && predictor.predictTaken(0x100) != taken)
            ++misses;
        predictor.update(0x100, taken);
    }
    EXPECT_EQ(misses, 0);
}

TEST(Gshare, LearnsHistoryCorrelatedPatterns)
{
    // Branch B is taken iff branch A's last outcome was taken.
    GsharePredictor predictor(8, 1024);
    Rng rng(3);
    int misses = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool a_taken = rng.nextBool(0.5);
        predictor.update(0x100, a_taken);
        const bool b_taken = a_taken;
        if (i > 500 && predictor.predictTaken(0x200) != b_taken)
            ++misses;
        predictor.update(0x200, b_taken);
    }
    // The history bit disambiguates; a bimodal table cannot do this.
    EXPECT_LT(misses, 120);
}

TEST(Gshare, HistoryShiftsOutcomes)
{
    GsharePredictor predictor(4, 64);
    predictor.update(0x10, true);
    predictor.update(0x10, false);
    predictor.update(0x10, true);
    EXPECT_EQ(predictor.history() & 0x7, 0b101u);
}

TEST(Gshare, ResetRestoresColdState)
{
    GsharePredictor predictor(8, 64);
    for (int i = 0; i < 10; ++i)
        predictor.update(0x100, false);
    predictor.reset();
    EXPECT_EQ(predictor.history(), 0u);
    EXPECT_TRUE(predictor.predictTaken(0x100)); // weakly-taken init
}

TEST(CondPredictors, NamesDescribeGeometry)
{
    EXPECT_EQ(BimodalPredictor(2048).name(), "bimodal-2048");
    EXPECT_EQ(GsharePredictor(12, 4096).name(), "gshare12-4096");
}

TEST(CondPredictors, RejectNonPowerOfTwoTables)
{
    EXPECT_DEATH(BimodalPredictor{100}, "power of two");
    EXPECT_DEATH(GsharePredictor(8, 100), "power of two");
}

} // namespace
} // namespace ibp
