/**
 * @file
 * Tests of the first-level history (section 3.2.1): per-set sharing,
 * global sharing, and buffer ordering.
 */

#include <gtest/gtest.h>

#include "core/history_register.hh"

namespace ibp {
namespace {

TEST(HistoryBuffer, NewestFirstOrdering)
{
    HistoryBuffer buffer(4);
    buffer.push(0x10);
    buffer.push(0x20);
    buffer.push(0x30);
    EXPECT_EQ(buffer.at(0), 0x30u);
    EXPECT_EQ(buffer.at(1), 0x20u);
    EXPECT_EQ(buffer.at(2), 0x10u);
    EXPECT_EQ(buffer.at(3), 0u); // cold slot
}

TEST(HistoryBuffer, OldEntriesFallOff)
{
    HistoryBuffer buffer(2);
    buffer.push(1);
    buffer.push(2);
    buffer.push(3);
    EXPECT_EQ(buffer.at(0), 3u);
    EXPECT_EQ(buffer.at(1), 2u);
}

TEST(HistoryBuffer, ZeroDepthIsHarmless)
{
    HistoryBuffer buffer(0);
    buffer.push(42); // must not crash
    EXPECT_EQ(buffer.depth(), 0u);
}

TEST(HistoryBuffer, ClearResetsContents)
{
    HistoryBuffer buffer(3);
    buffer.push(7);
    buffer.clear();
    EXPECT_EQ(buffer.at(0), 0u);
}

TEST(HistoryRegister, GlobalSharingUsesOneBuffer)
{
    HistoryRegister history(4, 32);
    EXPECT_TRUE(history.isGlobal());
    history.push(0x1000, 0xAA);
    history.push(0x9000, 0xBB);
    // Both branches see both targets.
    EXPECT_EQ(history.buffer(0x1000).at(0), 0xBBu);
    EXPECT_EQ(history.buffer(0x5555554).at(1), 0xAAu);
    EXPECT_EQ(history.touchedSets(), 1u);
}

TEST(HistoryRegister, PerAddressSharingIsolatesBranches)
{
    HistoryRegister history(4, 2); // s=2: per word-aligned branch
    history.push(0x1000, 0xAA);
    history.push(0x2000, 0xBB);
    EXPECT_EQ(history.buffer(0x1000).at(0), 0xAAu);
    EXPECT_EQ(history.buffer(0x2000).at(0), 0xBBu);
    EXPECT_EQ(history.buffer(0x3000).at(0), 0u);
    EXPECT_EQ(history.touchedSets(), 3u);
}

TEST(HistoryRegister, PerSetSharingGroupsByHighBits)
{
    HistoryRegister history(4, 8); // 256-byte regions share
    history.push(0x1000, 0xAA);
    history.push(0x10fc, 0xBB); // same 256-byte region
    history.push(0x1100, 0xCC); // next region
    EXPECT_EQ(history.buffer(0x1000).at(0), 0xBBu);
    EXPECT_EQ(history.buffer(0x1000).at(1), 0xAAu);
    EXPECT_EQ(history.buffer(0x1100).at(0), 0xCCu);
}

TEST(HistoryRegister, SetIdMatchesShiftedPc)
{
    HistoryRegister history(2, 12);
    EXPECT_EQ(history.setId(0x12345678), 0x12345678u >> 12);
    HistoryRegister global(2, 32);
    EXPECT_EQ(global.setId(0xffffffff), 0u);
}

TEST(HistoryRegister, ResetForgetsAllSets)
{
    HistoryRegister history(2, 2);
    history.push(0x1000, 0xAA);
    history.reset();
    EXPECT_EQ(history.buffer(0x1000).at(0), 0u);
}

} // namespace
} // namespace ibp
