/**
 * @file
 * Tests of the shared open-addressing FlatMap: randomized
 * equivalence against a std::unordered_map oracle, growth and load
 * invariants, and the backward-shift deletion edge cases (cluster
 * middles, wraparound across the table end) that tombstone-free
 * erase has to get right.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "core/flat_table.hh"
#include "core/key.hh"
#include "core/table.hh"

namespace ibp {
namespace {

/** Identity hash: places key k at slot k & mask, for handcrafting
 *  probe clusters in the deletion tests. */
struct IdentityHash
{
    std::size_t
    operator()(const std::uint64_t &key) const
    {
        return static_cast<std::size_t>(key);
    }
};

TEST(FlatMap, EmptyMapBehaviour)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_FALSE(map.erase(42));
    map.clear(); // clear on a never-allocated map is a no-op
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> map;
    bool inserted = false;
    map.findOrInsert(1, inserted) = 10;
    EXPECT_TRUE(inserted);
    map.findOrInsert(2, inserted) = 20;
    EXPECT_TRUE(inserted);
    map.findOrInsert(1, inserted) = 11;
    EXPECT_FALSE(inserted);

    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(*map.find(1), 11);
    ASSERT_NE(map.find(2), nullptr);
    EXPECT_EQ(*map.find(2), 20);
    EXPECT_EQ(map.find(3), nullptr);

    EXPECT_TRUE(map.erase(1));
    EXPECT_FALSE(map.erase(1));
    EXPECT_EQ(map.find(1), nullptr);
    EXPECT_EQ(map.size(), 1u);

    // A new value after erase starts default-constructed.
    map.findOrInsert(1, inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*map.find(1), 0);
}

TEST(FlatMap, GrowthKeepsEveryEntryAndLoadInvariant)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    bool inserted = false;
    for (std::uint64_t k = 0; k < 10000; ++k)
        map.findOrInsert(k * 977, inserted) = k;
    EXPECT_EQ(map.size(), 10000u);
    // Power-of-two capacity under the 7/8 load ceiling.
    EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
    EXPECT_LE(map.size() * 8, map.capacity() * 7);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        const std::uint64_t *value = map.find(k * 977);
        ASSERT_NE(value, nullptr);
        EXPECT_EQ(*value, k);
    }
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    const std::size_t capacity = map.capacity();
    EXPECT_GE(capacity, 1024u);
    bool inserted = false;
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.findOrInsert(k, inserted);
    EXPECT_EQ(map.capacity(), capacity);
    EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatMap, ClearKeepsArenaDropsEntries)
{
    FlatMap<std::uint64_t, int> map;
    bool inserted = false;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.findOrInsert(k, inserted) = static_cast<int>(k);
    const std::size_t capacity = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), capacity);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(map.find(k), nullptr);
    // Stale payloads behind cleared tags must not resurface.
    map.findOrInsert(7, inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*map.find(7), 0);
}

TEST(FlatMap, BackwardShiftKeepsClusterReachable)
{
    // Capacity 16 (the minimum): home slots are key & 15. Build the
    // cluster [5]=5, [6]=6, [7]=21 (home 5, displaced past 6).
    FlatMap<std::uint64_t, int, IdentityHash> map;
    bool inserted = false;
    map.findOrInsert(5, inserted) = 50;
    map.findOrInsert(6, inserted) = 60;
    map.findOrInsert(21, inserted) = 210;
    ASSERT_EQ(map.capacity(), 16u);

    // Erasing the cluster head must slide 21 back toward its home
    // slot; a tombstone-style hole would leave it findable, but a
    // naive shift of everything would break key 6 (home 6 must not
    // move in front of slot 6).
    EXPECT_TRUE(map.erase(5));
    EXPECT_EQ(map.find(5), nullptr);
    ASSERT_NE(map.find(6), nullptr);
    EXPECT_EQ(*map.find(6), 60);
    ASSERT_NE(map.find(21), nullptr);
    EXPECT_EQ(*map.find(21), 210);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, BackwardShiftAcrossWraparound)
{
    // Cluster wrapping the table end: [14]=14, [15]=15, and 30
    // (home 14) displaced around the corner into slot 0.
    FlatMap<std::uint64_t, int, IdentityHash> map;
    bool inserted = false;
    map.findOrInsert(14, inserted) = 1;
    map.findOrInsert(15, inserted) = 2;
    map.findOrInsert(30, inserted) = 3;
    ASSERT_EQ(map.capacity(), 16u);

    EXPECT_TRUE(map.erase(14));
    // 15 stays at its home slot; 30 must wrap back into slot 14.
    ASSERT_NE(map.find(15), nullptr);
    EXPECT_EQ(*map.find(15), 2);
    ASSERT_NE(map.find(30), nullptr);
    EXPECT_EQ(*map.find(30), 3);
    EXPECT_EQ(map.find(14), nullptr);

    // The hole left at slot 0 must terminate later probes cleanly.
    EXPECT_EQ(map.find(46), nullptr); // home 14, would probe 14,15,0
}

TEST(FlatMap, EraseMiddleOfCluster)
{
    // All five keys share home slot 3; erasing from the middle must
    // keep the tail reachable.
    FlatMap<std::uint64_t, int, IdentityHash> map;
    bool inserted = false;
    const std::uint64_t keys[] = {3, 19, 35, 51, 67};
    for (int i = 0; i < 5; ++i)
        map.findOrInsert(keys[i], inserted) = i;
    EXPECT_TRUE(map.erase(35));
    for (int i = 0; i < 5; ++i) {
        if (keys[i] == 35) {
            EXPECT_EQ(map.find(keys[i]), nullptr);
        } else {
            ASSERT_NE(map.find(keys[i]), nullptr);
            EXPECT_EQ(*map.find(keys[i]), i);
        }
    }
}

TEST(FlatMap, RandomizedOracleEquivalence)
{
    // Mixed insert/overwrite/erase/lookup churn over a small key
    // space (forcing collisions and repeated erase/reinsert of the
    // same slots), mirrored into std::unordered_map.
    std::mt19937 rng(0xf1a7);
    FlatMap<std::uint64_t, std::uint32_t> map;
    std::unordered_map<std::uint64_t, std::uint32_t> oracle;
    for (int op = 0; op < 200000; ++op) {
        const std::uint64_t key = rng() % 512;
        switch (rng() % 4) {
          case 0:
          case 1: { // insert or overwrite
            const std::uint32_t value = rng();
            bool inserted = false;
            map.findOrInsert(key, inserted) = value;
            EXPECT_EQ(inserted, oracle.find(key) == oracle.end());
            oracle[key] = value;
            break;
          }
          case 2: { // erase
            EXPECT_EQ(map.erase(key), oracle.erase(key) == 1);
            break;
          }
          case 3: { // lookup
            const std::uint32_t *value = map.find(key);
            const auto it = oracle.find(key);
            if (it == oracle.end()) {
                EXPECT_EQ(value, nullptr);
            } else {
                ASSERT_NE(value, nullptr);
                EXPECT_EQ(*value, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(map.size(), oracle.size());
    }

    // Full-content sweep both ways.
    std::size_t visited = 0;
    map.forEach([&](const std::uint64_t &key, std::uint32_t value) {
        const auto it = oracle.find(key);
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(value, it->second);
        ++visited;
    });
    EXPECT_EQ(visited, oracle.size());
}

TEST(FlatMap, CopyAndMovePreserveContents)
{
    FlatMap<std::uint64_t, int> map;
    bool inserted = false;
    for (std::uint64_t k = 0; k < 50; ++k)
        map.findOrInsert(k, inserted) = static_cast<int>(k * 3);

    FlatMap<std::uint64_t, int> copy(map);
    EXPECT_EQ(copy.size(), 50u);
    for (std::uint64_t k = 0; k < 50; ++k) {
        ASSERT_NE(copy.find(k), nullptr);
        EXPECT_EQ(*copy.find(k), static_cast<int>(k * 3));
    }
    // The copy is independent storage.
    copy.findOrInsert(7, inserted) = -1;
    EXPECT_EQ(*map.find(7), 21);

    FlatMap<std::uint64_t, int> moved(std::move(map));
    EXPECT_EQ(moved.size(), 50u);
    ASSERT_NE(moved.find(49), nullptr);
    EXPECT_EQ(*moved.find(49), 147);
}

TEST(FlatMap, KeyAndTableEntryInstantiation)
{
    // The predictor-table instantiation: 128-bit Key with explicit
    // KeyHash, TableEntry values.
    FlatMap<Key, TableEntry, KeyHash> map;
    bool inserted = false;
    const std::uint64_t words[2] = {0x1234, 0x5678};
    const Key hashed = makeHashedKey(words, 2);
    TableEntry &entry = map.findOrInsert(hashed, inserted);
    EXPECT_TRUE(inserted);
    entry.target = 0xbeef;
    entry.valid = true;
    map.findOrInsert(makeExactKey(99), inserted);
    EXPECT_TRUE(inserted);

    const TableEntry *probe = map.find(hashed);
    ASSERT_NE(probe, nullptr);
    EXPECT_EQ(probe->target, 0xbeefu);
    EXPECT_TRUE(probe->valid);
    EXPECT_TRUE(map.contains(makeExactKey(99)));
    EXPECT_FALSE(map.contains(makeExactKey(100)));
}

} // namespace
} // namespace ibp
