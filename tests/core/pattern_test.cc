/**
 * @file
 * Bit-exact tests of key formation: target compression (section
 * 4.1), interleaving schemes (section 5.2.1, Figure 15), key mixing
 * (section 4.2) and table sharing (section 3.2.2).
 */

#include <gtest/gtest.h>

#include "core/pattern.hh"

namespace ibp {
namespace {

HistoryBuffer
historyOf(std::initializer_list<Addr> oldest_to_newest, unsigned depth)
{
    HistoryBuffer buffer(depth);
    for (Addr target : oldest_to_newest)
        buffer.push(target);
    return buffer;
}

TEST(PatternSpec, AutoBitRule)
{
    PatternSpec spec;
    spec.pathLength = 2;
    EXPECT_EQ(spec.resolvedBitsPerTarget(), 12u); // 12*2 = 24
    spec.pathLength = 6;
    EXPECT_EQ(spec.resolvedBitsPerTarget(), 4u);
    spec.pathLength = 5;
    EXPECT_EQ(spec.resolvedBitsPerTarget(), 4u); // floor(24/5)
    spec.pathLength = 24;
    EXPECT_EQ(spec.resolvedBitsPerTarget(), 1u);
    spec.precision = PrecisionMode::Full;
    EXPECT_EQ(spec.resolvedBitsPerTarget(), 32u);
}

TEST(PatternSpec, ExplicitBitsRespected)
{
    PatternSpec spec;
    spec.pathLength = 3;
    spec.bitsPerTarget = 2;
    EXPECT_EQ(spec.resolvedBitsPerTarget(), 2u);
    EXPECT_EQ(spec.patternBits(), 6u);
}

TEST(PatternBuilder, BitSelectExtractsFromBitA)
{
    PatternSpec spec;
    spec.pathLength = 1;
    spec.bitsPerTarget = 4;
    spec.lowBit = 2;
    PatternBuilder builder(spec);
    // Bits [2..5] of 0b1101'1100 are 0b0111.
    EXPECT_EQ(builder.compressTarget(0b11011100), 0b0111u);
}

TEST(PatternBuilder, FoldXorUsesWholeAddress)
{
    PatternSpec spec;
    spec.pathLength = 1;
    spec.bitsPerTarget = 8;
    spec.compressor = CompressorKind::FoldXor;
    PatternBuilder builder(spec);
    // Fold of (target >> 2) into 8 bits.
    const Addr target = 0xabcd1234;
    EXPECT_EQ(builder.compressTarget(target),
              xorFold(target >> 2, 8));
}

TEST(PatternBuilder, ConcatPutsNewestInLowBits)
{
    PatternSpec spec;
    spec.pathLength = 2;
    spec.bitsPerTarget = 4;
    spec.interleave = InterleaveKind::Concat;
    PatternBuilder builder(spec);
    // newest target bits[2..5] = 0x3, oldest = 0x7.
    const HistoryBuffer history =
        historyOf({0x7 << 2, 0x3 << 2}, 2);
    EXPECT_EQ(builder.assemblePattern(history), (0x7u << 4) | 0x3u);
}

TEST(PatternBuilder, StraightInterleavingBitOrder)
{
    // p=2, b=2: compressed newest = n1n0, oldest = o1o0.
    // Straight round-robin LSB-first: bit0 = n0, bit1 = o0,
    // bit2 = n1, bit3 = o1.
    PatternSpec spec;
    spec.pathLength = 2;
    spec.bitsPerTarget = 2;
    spec.interleave = InterleaveKind::Straight;
    PatternBuilder builder(spec);
    // newest = 0b01, oldest = 0b10 (in bits [2..3]).
    const HistoryBuffer history =
        historyOf({0b10 << 2, 0b01 << 2}, 2);
    // Expected: bit0 = 1 (n0), bit1 = 0 (o0), bit2 = 0 (n1),
    // bit3 = 1 (o1) -> 0b1001.
    EXPECT_EQ(builder.assemblePattern(history), 0b1001u);
}

TEST(PatternBuilder, ReverseInterleavingPutsOldestFirst)
{
    PatternSpec spec;
    spec.pathLength = 2;
    spec.bitsPerTarget = 2;
    spec.interleave = InterleaveKind::Reverse;
    PatternBuilder builder(spec);
    const HistoryBuffer history =
        historyOf({0b10 << 2, 0b01 << 2}, 2);
    // Reverse order per round: bit0 = o0 = 0, bit1 = n0 = 1,
    // bit2 = o1 = 1, bit3 = n1 = 0 -> 0b0110.
    EXPECT_EQ(builder.assemblePattern(history), 0b0110u);
}

TEST(PatternBuilder, PingPongAlternatesEnds)
{
    // p=4, b=1: order should be newest(0), oldest(3), 1, 2.
    PatternSpec spec;
    spec.pathLength = 4;
    spec.bitsPerTarget = 1;
    spec.interleave = InterleaveKind::PingPong;
    PatternBuilder builder(spec);
    // bit2 of targets: t0(newest)=1, t1=0, t2=0, t3(oldest)=1.
    const HistoryBuffer history = historyOf(
        {1 << 2, 0 << 2, 0 << 2, 1 << 2}, 4);
    // Pattern bits LSB-first follow order {t0, t3, t1, t2}:
    // 1, 1, 0, 0 -> 0b0011.
    EXPECT_EQ(builder.assemblePattern(history), 0b0011u);
}

TEST(PatternBuilder, InterleavingIndexContainsAllTargets)
{
    // The motivation for interleaving (Figure 13): with p=2 and a
    // 6-bit index, concatenation leaves the oldest target's bits out
    // of the index; interleaving includes bits of both.
    PatternSpec spec;
    spec.pathLength = 2;
    spec.bitsPerTarget = 12; // auto rule for p=2
    PatternBuilder concat(
        [&] { auto s = spec; s.interleave = InterleaveKind::Concat;
              return s; }());
    PatternBuilder reverse(
        [&] { auto s = spec; s.interleave = InterleaveKind::Reverse;
              return s; }());

    const HistoryBuffer a = historyOf({0xAAAA0 | 0x40, 0x11110}, 2);
    const HistoryBuffer b = historyOf({0xBBBB0 | 0x80, 0x11110}, 2);
    const std::uint64_t index_mask = lowMask(6);
    // Concatenated: low 6 bits depend only on the newest target,
    // which is identical -> same index.
    EXPECT_EQ(concat.assemblePattern(a) & index_mask,
              concat.assemblePattern(b) & index_mask);
    // Interleaved: the differing older target shows up in the index.
    EXPECT_NE(reverse.assemblePattern(a) & index_mask,
              reverse.assemblePattern(b) & index_mask);
}

TEST(PatternBuilder, ShiftXorMatchesDefinition)
{
    PatternSpec spec;
    spec.pathLength = 2;
    spec.bitsPerTarget = 12;
    spec.compressor = CompressorKind::ShiftXor;
    PatternBuilder builder(spec);
    const Addr oldest = 0x1234 << 2, newest = 0x5678 << 2;
    const HistoryBuffer history = historyOf({oldest, newest}, 2);
    const std::uint64_t mask = lowMask(24);
    const std::uint64_t expected =
        ((((0ULL << 12) ^ (oldest >> 2)) << 12) ^ (newest >> 2)) &
        mask;
    EXPECT_EQ(builder.assemblePattern(history), expected);
}

TEST(PatternBuilder, XorKeyMixing)
{
    PatternSpec spec;
    spec.pathLength = 2;
    spec.keyMix = KeyMix::Xor;
    PatternBuilder builder(spec);
    const HistoryBuffer history = historyOf({0x40, 0x80}, 2);
    const std::uint64_t pattern = builder.assemblePattern(history);
    const Addr pc = 0x1234;
    const Key key = builder.buildKey(pc, history);
    EXPECT_EQ(key.lo, pattern ^ ((pc >> 2) & lowMask(30)));
    EXPECT_EQ(key.hi, 0u);
}

TEST(PatternBuilder, ConcatKeyMixing)
{
    PatternSpec spec;
    spec.pathLength = 2;
    spec.keyMix = KeyMix::Concat;
    PatternBuilder builder(spec);
    const HistoryBuffer history = historyOf({0x40, 0x80}, 2);
    const std::uint64_t pattern = builder.assemblePattern(history);
    const Addr pc = 0x1234;
    const Key key = builder.buildKey(pc, history);
    EXPECT_EQ(key.lo,
              (pattern << 30) | ((pc >> 2) & lowMask(30)));
}

TEST(PatternBuilder, PathLengthZeroKeysOnAddressOnly)
{
    PatternSpec spec;
    spec.pathLength = 0;
    PatternBuilder builder(spec);
    HistoryBuffer history(0);
    const Key key = builder.buildKey(0x4000, history);
    EXPECT_EQ(key.lo, (0x4000u >> 2) & lowMask(30));
}

TEST(PatternBuilder, TableSharingDropsLowAddressBits)
{
    PatternSpec spec;
    spec.pathLength = 0;
    spec.tableSharing = 10;
    PatternBuilder builder(spec);
    HistoryBuffer history(0);
    // Branches within the same 1K region share keys.
    EXPECT_EQ(builder.buildKey(0x4000, history).lo,
              builder.buildKey(0x43fc, history).lo);
    EXPECT_NE(builder.buildKey(0x4000, history).lo,
              builder.buildKey(0x4400, history).lo);
}

TEST(PatternBuilder, FullPrecisionKeysSeparateHistories)
{
    PatternSpec spec;
    spec.pathLength = 3;
    spec.precision = PrecisionMode::Full;
    PatternBuilder builder(spec);
    const HistoryBuffer a = historyOf({0x10, 0x20, 0x30}, 3);
    const HistoryBuffer b = historyOf({0x10, 0x20, 0x34}, 3);
    const HistoryBuffer c = historyOf({0x20, 0x10, 0x30}, 3);
    const Key ka = builder.buildKey(0x1000, a);
    EXPECT_EQ(ka, builder.buildKey(0x1000, a));
    EXPECT_NE(ka, builder.buildKey(0x1000, b));
    EXPECT_NE(ka, builder.buildKey(0x1000, c)); // order matters
    EXPECT_NE(ka, builder.buildKey(0x1004, a)); // address matters
}

TEST(PatternBuilder, OmittingBranchAddress)
{
    PatternSpec spec;
    spec.pathLength = 2;
    spec.includeBranchAddress = false;
    PatternBuilder builder(spec);
    const HistoryBuffer history = historyOf({0x40, 0x80}, 2);
    EXPECT_EQ(builder.buildKey(0x1000, history),
              builder.buildKey(0x2000, history));
}

TEST(PatternSpec, ValidationCatchesBadRanges)
{
    PatternSpec spec;
    spec.pathLength = 30; // > 24 in limited mode
    EXPECT_DEATH(spec.validate(), "path length");
}

} // namespace
} // namespace ibp
