/**
 * @file
 * Tests of the two-level path-based predictor: learning periodic
 * target sequences, path-length effects, equivalence of p=0 with a
 * BTB, history sharing behaviour, and the section 3.3 variants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/btb.hh"
#include "core/factory.hh"
#include "core/two_level.hh"
#include "util/rng.hh"

namespace ibp {
namespace {

/** Drive a predictor through a repeating target sequence at one
 *  site; returns misses over the last @p measure executions. */
int
missesOnCycle(IndirectPredictor &predictor,
              const std::vector<Addr> &cycle, int warmup, int measure)
{
    int misses = 0;
    for (int i = 0; i < warmup + measure; ++i) {
        const Addr actual = cycle[i % cycle.size()];
        const bool hit =
            predictor.predict(0x1000).correctFor(actual);
        if (i >= warmup && !hit)
            ++misses;
        predictor.update(0x1000, actual);
    }
    return misses;
}

TEST(TwoLevel, LearnsAPeriodicSequenceABtbCannot)
{
    // A period-3 cycle with distinct targets: path length >= 2
    // disambiguates the position perfectly.
    const std::vector<Addr> cycle = {0xA0, 0xB0, 0xC0};
    TwoLevelPredictor two_level(unconstrainedTwoLevel(3));
    BtbPredictor btb(TableSpec::unconstrained(), true);
    EXPECT_EQ(missesOnCycle(two_level, cycle, 60, 300), 0);
    EXPECT_GT(missesOnCycle(btb, cycle, 60, 300), 200);
}

TEST(TwoLevel, PathLengthZeroBehavesLikeABtb)
{
    // For any target sequence, the p=0 two-level predictor and a
    // BTB-2bc must agree miss-for-miss.
    TwoLevelPredictor p0(unconstrainedTwoLevel(0));
    BtbPredictor btb(TableSpec::unconstrained(), true);
    Rng rng(99);
    const Addr pcs[] = {0x100, 0x204, 0x308};
    const Addr targets[] = {0xA0, 0xB0, 0xC0, 0xD0};
    for (int i = 0; i < 2000; ++i) {
        const Addr pc = pcs[rng.nextBelow(3)];
        const Addr actual = targets[rng.nextBelow(4)];
        EXPECT_EQ(p0.predict(pc).correctFor(actual),
                  btb.predict(pc).correctFor(actual))
            << "iteration " << i;
        p0.update(pc, actual);
        btb.update(pc, actual);
    }
}

TEST(TwoLevel, TooShortPathCannotDisambiguate)
{
    // Cycle A B A C: after an A, the next target is B or C depending
    // on position; p=1 sees only "A" and keeps missing, p=3 learns.
    const std::vector<Addr> cycle = {0xA0, 0xB0, 0xA0, 0xC0};
    TwoLevelPredictor p1(unconstrainedTwoLevel(1));
    TwoLevelPredictor p3(unconstrainedTwoLevel(3));
    EXPECT_GE(missesOnCycle(p1, cycle, 100, 400), 100);
    EXPECT_EQ(missesOnCycle(p3, cycle, 100, 400), 0);
}

TEST(TwoLevel, GlobalHistoryCarriesCrossBranchCorrelation)
{
    // Branch Y's target equals branch X's previous target; only a
    // predictor whose history includes X's targets can learn Y.
    TwoLevelPredictor global(unconstrainedTwoLevel(1, 32));
    TwoLevelPredictor per_address(unconstrainedTwoLevel(1, 2));
    Rng rng(123);
    int global_misses = 0, per_address_misses = 0;
    Addr x_target = 0xA0;
    for (int i = 0; i < 4000; ++i) {
        x_target = 0xA0 + 0x10 * static_cast<Addr>(rng.nextBelow(4));
        for (auto *predictor : {&global, &per_address}) {
            predictor->predict(0x100);
            predictor->update(0x100, x_target);
        }
        const Addr y_target = x_target + 0x1000;
        if (i > 400) {
            global_misses +=
                global.predict(0x200).correctFor(y_target) ? 0 : 1;
            per_address_misses +=
                per_address.predict(0x200).correctFor(y_target) ? 0
                                                                : 1;
        } else {
            global.predict(0x200);
            per_address.predict(0x200);
        }
        global.update(0x200, y_target);
        per_address.update(0x200, y_target);
    }
    EXPECT_EQ(global_misses, 0);
    EXPECT_GT(per_address_misses, 1500); // ~3/4 of random draws miss
}

TEST(TwoLevel, SharedTableInterferes)
{
    // Two branches with identical (empty) history but different
    // targets: with h=32 they fight over one entry, with h=2 they
    // coexist.
    TwoLevelConfig shared = unconstrainedTwoLevel(0, 32, 32);
    TwoLevelConfig split = unconstrainedTwoLevel(0, 32, 2);
    TwoLevelPredictor shared_predictor(shared);
    TwoLevelPredictor split_predictor(split);
    int shared_misses = 0, split_misses = 0;
    for (int i = 0; i < 200; ++i) {
        for (auto [pc, target] :
             {std::pair<Addr, Addr>{0x100, 0xA0},
              std::pair<Addr, Addr>{0x200, 0xB0}}) {
            if (i > 4) {
                shared_misses +=
                    shared_predictor.predict(pc).correctFor(target)
                        ? 0
                        : 1;
                split_misses +=
                    split_predictor.predict(pc).correctFor(target)
                        ? 0
                        : 1;
            }
            shared_predictor.update(pc, target);
            split_predictor.update(pc, target);
        }
    }
    EXPECT_EQ(split_misses, 0);
    EXPECT_GT(shared_misses, 100);
}

TEST(TwoLevel, HysteresisProtectsEntries)
{
    TwoLevelConfig config = unconstrainedTwoLevel(0);
    config.hysteresis = true;
    TwoLevelPredictor predictor(config);
    predictor.update(0x100, 0xA0);
    predictor.update(0x100, 0xB0); // single miss: entry keeps A0
    EXPECT_EQ(predictor.predict(0x100).target, 0xA0u);
    predictor.update(0x100, 0xB0); // second miss: replace
    EXPECT_EQ(predictor.predict(0x100).target, 0xB0u);
}

TEST(TwoLevel, ConditionalTargetsPushOutIndirectHistory)
{
    TwoLevelConfig config = unconstrainedTwoLevel(2);
    config.includeConditionalTargets = true;
    TwoLevelPredictor with_cond(config);
    TwoLevelPredictor without(unconstrainedTwoLevel(2));

    // Learn a pattern, then interleave taken conditionals; only the
    // conditional-polluted predictor changes its key.
    for (int i = 0; i < 10; ++i) {
        for (auto *predictor :
             std::initializer_list<TwoLevelPredictor *>{&with_cond,
                                                        &without}) {
            predictor->predict(0x100);
            predictor->update(0x100, 0xA0);
        }
    }
    EXPECT_TRUE(with_cond.predict(0x100).valid);
    EXPECT_TRUE(without.predict(0x100).valid);
    with_cond.observeConditional(0x500, true, 0x600);
    without.observeConditional(0x500, true, 0x600);
    // The unpolluted predictor still has the same key (hit); the
    // polluted one now sees a fresh pattern (no prediction).
    EXPECT_TRUE(without.predict(0x100).valid);
    EXPECT_FALSE(with_cond.predict(0x100).valid);
    // Not-taken conditionals never enter the history.
    with_cond.reset();
    with_cond.update(0x100, 0xA0);
    with_cond.observeConditional(0x500, false, 0x600);
}

TEST(TwoLevel, KeyCacheInvalidatedByHistoryUpdates)
{
    // predict() after an update must not reuse a stale key.
    TwoLevelPredictor predictor(unconstrainedTwoLevel(1));
    predictor.predict(0x100);
    predictor.update(0x100, 0xA0);
    predictor.predict(0x100);
    predictor.update(0x100, 0xB0);
    // History is now [B0]; the (0x100, [B0]) pattern is fresh.
    EXPECT_FALSE(predictor.predict(0x100).valid);
    predictor.update(0x100, 0xC0);
    // Pattern (0x100, [C0]) fresh again; but (0x100, [B0]) -> C0 was
    // learned above.
    predictor.update(0x100, 0xB0);
    EXPECT_EQ(predictor.predict(0x100).target, 0xC0u);
}

TEST(TwoLevel, DescribeMentionsKeyParameters)
{
    const TwoLevelConfig config =
        paperTwoLevel(5, TableSpec::setAssoc(1024, 4));
    const std::string name = TwoLevelPredictor(config).name();
    EXPECT_NE(name.find("p=5"), std::string::npos);
    EXPECT_NE(name.find("assoc4-1024"), std::string::npos);
    EXPECT_NE(name.find("reverse"), std::string::npos);
}

TEST(TwoLevel, ConfigValidationRejectsBadSharing)
{
    TwoLevelConfig config = unconstrainedTwoLevel(2);
    config.historySharing = 1;
    EXPECT_DEATH(TwoLevelPredictor{config}, "history sharing");
}

} // namespace
} // namespace ibp
