/**
 * @file
 * Tests of the canonical spec codec (core/spec_codec.hh): encoding
 * determinism, the hash-equality-iff-operator== contract (checked
 * with per-field mutations and randomized configurations), and one
 * pinned golden hash per spec family so an accidental encoding
 * change - a reordered enum, a dropped field, a width change - fails
 * loudly instead of silently serving stale result-store cells.
 *
 * If a golden hash changes on purpose, the change MUST come with a
 * kSpecCodecVersion bump (which changes every golden at once).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/factory.hh"
#include "core/spec_codec.hh"

namespace ibp {
namespace {

TwoLevelConfig
sampleTwoLevel()
{
    return paperTwoLevel(3, TableSpec::setAssoc(1024, 4));
}

TEST(SpecCodecTest, EncodingIsDeterministic)
{
    const TwoLevelConfig config = sampleTwoLevel();
    EXPECT_EQ(canonicalSpecBytes(config), canonicalSpecBytes(config));
    EXPECT_EQ(specHash(config), specHash(config));

    const TwoLevelConfig copy = config;
    EXPECT_EQ(canonicalSpecBytes(copy), canonicalSpecBytes(config));
}

TEST(SpecCodecTest, VersionWordLeadsTheEncoding)
{
    const std::string bytes = canonicalSpecBytes(TableSpec::tagless(64));
    ASSERT_GE(bytes.size(), 8u);
    std::uint64_t version = 0;
    for (int byte = 7; byte >= 0; --byte) {
        version = (version << 8) |
                  static_cast<unsigned char>(bytes[byte]);
    }
    EXPECT_EQ(version, kSpecCodecVersion);
}

TEST(SpecCodecTest, EveryTableSpecFieldChangesTheHash)
{
    const TableSpec base = TableSpec::setAssoc(1024, 4);
    const std::uint64_t hash = specHash(base);

    TableSpec kind = base;
    kind.kind = TableKind::Tagless;
    EXPECT_NE(specHash(kind), hash);

    TableSpec entries = base;
    entries.entries = 2048;
    EXPECT_NE(specHash(entries), hash);

    TableSpec ways = base;
    ways.ways = 2;
    EXPECT_NE(specHash(ways), hash);
}

TEST(SpecCodecTest, EveryPatternSpecFieldChangesTheHash)
{
    const PatternSpec base;
    const std::uint64_t hash = specHash(base);

    PatternSpec mutated = base;
    mutated.pathLength += 1;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.precision = PrecisionMode::Full;
    EXPECT_NE(specHash(mutated), hash);

    // The raw field is encoded, NOT the resolved value: a spec
    // saying "auto" (0) must never alias one pinning the resolved
    // width explicitly, or future auto-rule changes would silently
    // serve stale cells.
    mutated = base;
    mutated.bitsPerTarget = base.resolvedBitsPerTarget();
    ASSERT_NE(mutated.bitsPerTarget, base.bitsPerTarget);
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.lowBit += 1;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.compressor = CompressorKind::FoldXor;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.interleave = InterleaveKind::PingPong;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.keyMix = KeyMix::Concat;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.tableSharing += 1;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.includeBranchAddress = !base.includeBranchAddress;
    EXPECT_NE(specHash(mutated), hash);
}

TEST(SpecCodecTest, EveryTwoLevelFieldChangesTheHash)
{
    const TwoLevelConfig base = sampleTwoLevel();
    const std::uint64_t hash = specHash(base);

    TwoLevelConfig mutated = base;
    mutated.pattern.pathLength += 1;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.historySharing -= 1;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.table.entries *= 2;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.hysteresis = !base.hysteresis;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.includeConditionalTargets =
        !base.includeConditionalTargets;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.historyElement = HistoryElement::TargetAndAddress;
    EXPECT_NE(specHash(mutated), hash);

    mutated = base;
    mutated.confidenceBits += 1;
    EXPECT_NE(specHash(mutated), hash);
}

TEST(SpecCodecTest, CompositeFamiliesSeeEveryField)
{
    HybridConfig hybrid = HybridConfig::twoComponent(
        paperTwoLevel(1, TableSpec::setAssoc(512, 4)),
        paperTwoLevel(7, TableSpec::setAssoc(512, 4)));
    const std::uint64_t hybrid_hash = specHash(hybrid);
    {
        HybridConfig mutated = hybrid;
        mutated.components[1].pattern.pathLength = 8;
        EXPECT_NE(specHash(mutated), hybrid_hash);
        mutated = hybrid;
        mutated.confidenceBits += 1;
        EXPECT_NE(specHash(mutated), hybrid_hash);
        mutated = hybrid;
        mutated.selectorEntries = 256;
        EXPECT_NE(specHash(mutated), hybrid_hash);
    }

    SharedHybridConfig shared;
    const std::uint64_t shared_hash = specHash(shared);
    {
        SharedHybridConfig mutated = shared;
        mutated.pathLengths.push_back(12);
        EXPECT_NE(specHash(mutated), shared_hash);
        mutated = shared;
        mutated.entries *= 2;
        EXPECT_NE(specHash(mutated), shared_hash);
        mutated = shared;
        mutated.chosenBits += 1;
        EXPECT_NE(specHash(mutated), shared_hash);
        mutated = shared;
        mutated.hysteresis = !shared.hysteresis;
        EXPECT_NE(specHash(mutated), shared_hash);
    }

    CascadedConfig cascaded = CascadedConfig::classic(1024);
    const std::uint64_t cascaded_hash = specHash(cascaded);
    {
        CascadedConfig mutated = cascaded;
        mutated.stages[0].pathLength += 1;
        EXPECT_NE(specHash(mutated), cascaded_hash);
        mutated = cascaded;
        mutated.stages[0].table.ways += 1;
        EXPECT_NE(specHash(mutated), cascaded_hash);
        mutated = cascaded;
        mutated.filterAllocation = !cascaded.filterAllocation;
        EXPECT_NE(specHash(mutated), cascaded_hash);
        mutated = cascaded;
        mutated.hysteresis = !cascaded.hysteresis;
        EXPECT_NE(specHash(mutated), cascaded_hash);
    }

    IttageConfig ittage;
    const std::uint64_t ittage_hash = specHash(ittage);
    {
        IttageConfig mutated = ittage;
        mutated.baseEntries *= 2;
        EXPECT_NE(specHash(mutated), ittage_hash);
        mutated = ittage;
        mutated.componentEntries *= 2;
        EXPECT_NE(specHash(mutated), ittage_hash);
        mutated = ittage;
        mutated.historyLengths.push_back(64);
        EXPECT_NE(specHash(mutated), ittage_hash);
        mutated = ittage;
        mutated.tagBits += 1;
        EXPECT_NE(specHash(mutated), ittage_hash);
    }

    const std::uint64_t btb_hash =
        btbSpecHash(TableSpec::fullyAssoc(256), true);
    EXPECT_NE(btbSpecHash(TableSpec::fullyAssoc(512), true),
              btb_hash);
    EXPECT_NE(btbSpecHash(TableSpec::fullyAssoc(256), false),
              btb_hash);
}

TEST(SpecCodecTest, FamiliesNeverAlias)
{
    // A hybrid wrapping one component must not encode to the same
    // bytes as the bare component, and the BTB's table+flag pair
    // must not alias a raw TableSpec: family tags separate them.
    const TwoLevelConfig component = sampleTwoLevel();
    HybridConfig wrapper;
    wrapper.components = {component};
    EXPECT_NE(specHash(wrapper), specHash(component));

    const TableSpec table = TableSpec::fullyAssoc(256);
    EXPECT_NE(btbSpecHash(table, false), specHash(table));
}

/** A randomized TwoLevelConfig drawn from small domains, so equal
 *  pairs actually occur across draws. */
TwoLevelConfig
randomTwoLevel(std::mt19937_64 &rng)
{
    TwoLevelConfig config;
    config.pattern.pathLength = 1 + rng() % 3;
    config.pattern.precision = (rng() % 2) ? PrecisionMode::Full
                                           : PrecisionMode::Limited;
    config.pattern.bitsPerTarget = rng() % 3;
    config.pattern.tableSharing = 2 + (rng() % 2) * 30;
    config.historySharing = 2 + (rng() % 2) * 30;
    config.table =
        TableSpec::setAssoc(256u << (rng() % 2), 1u << (rng() % 2));
    config.hysteresis = rng() % 2;
    config.confidenceBits = 1 + rng() % 2;
    return config;
}

TEST(SpecCodecTest, RandomizedHashEqualityMatchesOperatorEquals)
{
    std::mt19937_64 rng(20260808);
    std::vector<TwoLevelConfig> configs;
    for (int draw = 0; draw < 200; ++draw)
        configs.push_back(randomTwoLevel(rng));

    std::size_t equal_pairs = 0;
    for (std::size_t a = 0; a < configs.size(); ++a) {
        for (std::size_t b = a + 1; b < configs.size(); ++b) {
            const bool equal = configs[a] == configs[b];
            equal_pairs += equal;
            ASSERT_EQ(specHash(configs[a]) == specHash(configs[b]),
                      equal)
                << "hash/equality disagreement between draws " << a
                << " and " << b;
        }
    }
    // The domains are small enough that the iff check above is not
    // vacuous on the "equal" side.
    EXPECT_GT(equal_pairs, 0u);
}

TEST(SpecCodecTest, GoldenHashesArePinnedPerFamily)
{
    // Pinned against codec version 1. A legitimate encoding change
    // bumps kSpecCodecVersion and repins ALL of these in the same
    // commit; anything else tripping this test is a silent
    // result-store cache-key break.
    EXPECT_EQ(kSpecCodecVersion, 1u);
    EXPECT_EQ(specHash(TableSpec::setAssoc(1024, 4)),
              0xe938ce1008d10e7full);
    EXPECT_EQ(specHash(PatternSpec{}),
              0x281a0ae902266446ull);
    EXPECT_EQ(specHash(sampleTwoLevel()),
              0x02b05a281870ad95ull);
    EXPECT_EQ(specHash(HybridConfig::twoComponent(
                  paperTwoLevel(1, TableSpec::setAssoc(512, 4)),
                  paperTwoLevel(7, TableSpec::setAssoc(512, 4)))),
              0xc51d57be82f406f2ull);
    EXPECT_EQ(specHash(SharedHybridConfig{}),
              0x4d0109b30bb4f870ull);
    EXPECT_EQ(specHash(CascadedConfig::classic(1024)),
              0x53141436ed90b6f8ull);
    EXPECT_EQ(specHash(IttageConfig{}),
              0x0a8664fbcebeed31ull);
    EXPECT_EQ(btbSpecHash(TableSpec::unconstrained(), true),
              0x269eed097b981d2dull);
}

} // namespace
} // namespace ibp
