/**
 * @file
 * Tests of the size-capped cache sweep (robust/cache_sweep.hh):
 * LRU-by-mtime eviction down to the byte budget, the off-by-default
 * environment arming, tolerance of missing directories, and the
 * guarantee that eviction is atomic unlink only - a concurrent
 * reader holding an open descriptor keeps reading its entry after
 * the sweep removed the name.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "robust/cache_sweep.hh"

namespace ibp {
namespace {

namespace fs = std::filesystem;

class CacheSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("IBP_CACHE_MAX_BYTES");
        _dir = testing::TempDir() + "/ibp_cache_sweep_test";
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }
    void
    TearDown() override
    {
        unsetenv("IBP_CACHE_MAX_BYTES");
        fs::remove_all(_dir);
    }

    /** Create a file of @p bytes, with mtime @p age_rank steps in
     *  the past (larger = older), so eviction order is explicit. */
    std::string
    addEntry(const std::string &name, std::size_t bytes,
             int age_rank)
    {
        const std::string path = _dir + "/" + name;
        std::ofstream out(path, std::ios::binary);
        out << std::string(bytes, 'x');
        out.close();
        fs::last_write_time(
            path, fs::file_time_type::clock::now() -
                      std::chrono::hours(age_rank));
        return path;
    }

    std::string _dir;
};

TEST_F(CacheSweepTest, EvictsOldestFirstDownToTheBudget)
{
    addEntry("oldest", 100, 3);
    addEntry("middle", 100, 2);
    addEntry("newest", 100, 1);

    const auto swept = sweepDirectoryToBudget(_dir, 250);
    ASSERT_TRUE(swept.ok());
    EXPECT_EQ(swept.value().bytesBefore, 300u);
    EXPECT_EQ(swept.value().bytesAfter, 200u);
    EXPECT_EQ(swept.value().filesRemoved, 1u);

    EXPECT_FALSE(fs::exists(_dir + "/oldest"));
    EXPECT_TRUE(fs::exists(_dir + "/middle"));
    EXPECT_TRUE(fs::exists(_dir + "/newest"));
}

TEST_F(CacheSweepTest, UnderBudgetRemovesNothing)
{
    addEntry("a", 100, 2);
    addEntry("b", 100, 1);
    const auto swept = sweepDirectoryToBudget(_dir, 500);
    ASSERT_TRUE(swept.ok());
    EXPECT_EQ(swept.value().filesRemoved, 0u);
    EXPECT_EQ(swept.value().bytesAfter, 200u);
}

TEST_F(CacheSweepTest, MissingDirectoryIsANoop)
{
    const auto swept =
        sweepDirectoryToBudget(_dir + "/nonexistent", 10);
    ASSERT_TRUE(swept.ok());
    EXPECT_EQ(swept.value().bytesBefore, 0u);
    EXPECT_EQ(swept.value().filesRemoved, 0u);
}

TEST_F(CacheSweepTest, EnvUnsetMeansNoSweep)
{
    addEntry("a", 100, 2);
    addEntry("b", 100, 1);
    EXPECT_EQ(cacheMaxBytesFromEnv(), 0u);
    maybeSweepCacheDirectory(_dir);
    EXPECT_TRUE(fs::exists(_dir + "/a"));
    EXPECT_TRUE(fs::exists(_dir + "/b"));
}

TEST_F(CacheSweepTest, EnvArmsTheSweep)
{
    addEntry("old", 100, 2);
    addEntry("new", 100, 1);
    setenv("IBP_CACHE_MAX_BYTES", "150", 1);
    EXPECT_EQ(cacheMaxBytesFromEnv(), 150u);
    maybeSweepCacheDirectory(_dir);
    EXPECT_FALSE(fs::exists(_dir + "/old"));
    EXPECT_TRUE(fs::exists(_dir + "/new"));
}

TEST_F(CacheSweepTest, EvictionNeverCorruptsAConcurrentReader)
{
    // Eviction is unlink only - never truncation or rewrite - so a
    // reader that opened an entry before the sweep keeps a fully
    // intact view through its descriptor even though the name is
    // gone (the POSIX open-unlink contract both caches rely on).
    const std::string path = addEntry("held", 64, 2);
    addEntry("fresh", 64, 1);

    const int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);

    const auto swept = sweepDirectoryToBudget(_dir, 64);
    ASSERT_TRUE(swept.ok());
    EXPECT_FALSE(fs::exists(path));

    std::string read_back(64, '\0');
    ASSERT_EQ(::read(fd, read_back.data(), read_back.size()), 64);
    EXPECT_EQ(read_back, std::string(64, 'x'));
    ::close(fd);
}

} // namespace
} // namespace ibp
