/**
 * @file
 * Tests of the deterministic fault injector: spec grammar,
 * reproducibility of decisions, and the transient/permanent retry
 * semantics the recovery machinery depends on.
 */

#include <gtest/gtest.h>

#include <string>

#include "robust/fault_injection.hh"

namespace ibp {
namespace {

TEST(FaultSpecTest, ParsesSitesKindsAndSeed)
{
    const auto parsed =
        FaultInjector::parse("sim:0.25,trace:0.5:permanent,seed=42");
    ASSERT_TRUE(parsed.ok());
    const FaultInjector &injector = parsed.value();
    EXPECT_TRUE(injector.armed());
    EXPECT_EQ(injector.seed(), 42u);
    ASSERT_EQ(injector.sites().size(), 2u);
    EXPECT_EQ(injector.sites()[0].site, "sim");
    EXPECT_DOUBLE_EQ(injector.sites()[0].probability, 0.25);
    EXPECT_EQ(injector.sites()[0].kind, ErrorKind::Transient);
    EXPECT_EQ(injector.sites()[1].site, "trace");
    EXPECT_EQ(injector.sites()[1].kind, ErrorKind::Permanent);
}

TEST(FaultSpecTest, RejectsBadGrammar)
{
    EXPECT_FALSE(FaultInjector::parse("sim").ok());
    EXPECT_FALSE(FaultInjector::parse("sim:nope").ok());
    EXPECT_FALSE(FaultInjector::parse("sim:1.5").ok());
    EXPECT_FALSE(FaultInjector::parse("sim:-0.1").ok());
    EXPECT_FALSE(FaultInjector::parse("sim:0.5:often").ok());
    EXPECT_FALSE(FaultInjector::parse("seed=abc").ok());
}

TEST(FaultSpecTest, EmptySpecIsDisarmed)
{
    const auto parsed = FaultInjector::parse("");
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed.value().armed());
    // A disarmed injector never throws.
    parsed.value().check("sim", "anything", 1);
}

TEST(FaultInjectorTest, DecisionsAreDeterministic)
{
    const FaultInjector a =
        FaultInjector::parse("sim:0.5,seed=7").value();
    const FaultInjector b =
        FaultInjector::parse("sim:0.5,seed=7").value();
    for (int i = 0; i < 200; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        EXPECT_EQ(a.wouldFail("sim", key, 1),
                  b.wouldFail("sim", key, 1));
    }
}

TEST(FaultInjectorTest, SeedChangesDecisions)
{
    const FaultInjector a =
        FaultInjector::parse("sim:0.5,seed=1").value();
    const FaultInjector b =
        FaultInjector::parse("sim:0.5,seed=2").value();
    int differing = 0;
    for (int i = 0; i < 200; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        if (a.wouldFail("sim", key, 1) != b.wouldFail("sim", key, 1))
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ProbabilityIsRoughlyHonoured)
{
    const FaultInjector injector =
        FaultInjector::parse("sim:0.3").value();
    int failures = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        if (injector.wouldFail("sim", "k" + std::to_string(i), 1))
            ++failures;
    }
    const double rate = static_cast<double>(failures) / trials;
    EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(FaultInjectorTest, TransientFaultsCanClearOnRetry)
{
    const FaultInjector injector =
        FaultInjector::parse("sim:0.5").value();
    // With per-attempt re-rolls, some key that fails on attempt 1
    // must pass on a later attempt (p(fail 5x) ~ 3% per key).
    bool cleared = false;
    for (int i = 0; i < 100 && !cleared; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        if (!injector.wouldFail("sim", key, 1))
            continue;
        for (unsigned attempt = 2; attempt <= 5; ++attempt) {
            if (!injector.wouldFail("sim", key, attempt)) {
                cleared = true;
                break;
            }
        }
    }
    EXPECT_TRUE(cleared);
}

TEST(FaultInjectorTest, PermanentFaultsNeverClear)
{
    const FaultInjector injector =
        FaultInjector::parse("sim:0.5:permanent").value();
    for (int i = 0; i < 100; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        const bool first = injector.wouldFail("sim", key, 1);
        for (unsigned attempt = 2; attempt <= 5; ++attempt)
            EXPECT_EQ(injector.wouldFail("sim", key, attempt), first);
    }
}

TEST(FaultInjectorTest, CheckThrowsClassifiedError)
{
    const FaultInjector injector =
        FaultInjector::parse("sim:1.0:permanent").value();
    try {
        injector.check("sim", "any", 1);
        FAIL() << "check() did not throw";
    } catch (const RunException &exception) {
        EXPECT_EQ(exception.error().kind, ErrorKind::Permanent);
        EXPECT_NE(exception.error().message.find("injected"),
                  std::string::npos);
    }
    // Unarmed sites pass untouched.
    injector.check("artifact", "any", 1);
}

TEST(FaultSpecTest, ParsesCrashAndHangKinds)
{
    const auto parsed =
        FaultInjector::parse("sim:0.05:crash,sim:0.02:hang,seed=3");
    ASSERT_TRUE(parsed.ok());
    const FaultInjector &injector = parsed.value();
    ASSERT_EQ(injector.sites().size(), 2u);
    EXPECT_EQ(injector.sites()[0].action, FaultAction::Crash);
    EXPECT_EQ(injector.sites()[0].kind, ErrorKind::Transient);
    EXPECT_EQ(injector.sites()[1].action, FaultAction::Hang);
    EXPECT_EQ(injector.sites()[1].kind, ErrorKind::Timeout);
}

TEST(FaultInjectorTest, HangFaultsRollPerAttempt)
{
    // A hung cell is killed from outside and re-run on a fresh lane
    // with a bumped effective attempt; the injected hang must be
    // able to clear on that retry (at probability < 1) or chaos runs
    // could never complete.
    const FaultInjector injector =
        FaultInjector::parse("sim:0.5:hang,seed=9").value();
    bool cleared = false;
    for (int i = 0; i < 100 && !cleared; ++i) {
        const std::string key = "cell-" + std::to_string(i);
        ErrorKind kind = ErrorKind::Transient;
        FaultAction action = FaultAction::Throw;
        if (!injector.wouldFail("sim", key, 1, &kind, &action))
            continue;
        EXPECT_EQ(kind, ErrorKind::Timeout);
        EXPECT_EQ(action, FaultAction::Hang);
        for (unsigned attempt = 2; attempt <= 5; ++attempt) {
            if (!injector.wouldFail("sim", key, attempt)) {
                cleared = true;
                break;
            }
        }
    }
    EXPECT_TRUE(cleared);
}

TEST(FaultInjectorDeathTest, CrashActionAbortsTheProcess)
{
    const FaultInjector injector =
        FaultInjector::parse("sim:1:crash").value();
    ErrorKind kind = ErrorKind::Permanent;
    FaultAction action = FaultAction::Throw;
    EXPECT_TRUE(injector.wouldFail("sim", "any", 1, &kind, &action));
    EXPECT_EQ(action, FaultAction::Crash);
    EXPECT_DEATH(injector.check("sim", "any", 1), "");
}

TEST(FaultInjectorTest, GlobalCanBeReconfigured)
{
    FaultInjector::configureGlobal("sim:1.0");
    EXPECT_TRUE(FaultInjector::global().armed());
    EXPECT_THROW(FaultInjector::global().check("sim", "x", 1),
                 RunException);
    FaultInjector::configureGlobal("");
    EXPECT_FALSE(FaultInjector::global().armed());
    FaultInjector::global().check("sim", "x", 1);
}

} // namespace
} // namespace ibp
