/**
 * @file
 * Tests of the recoverable-error model and the retry machinery:
 * Result semantics, error classification, attempt accounting, and
 * the environment policy overrides.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "robust/error.hh"
#include "robust/retry.hh"

namespace ibp {
namespace {

TEST(RunErrorTest, KindsAndRetryability)
{
    EXPECT_TRUE(RunError::transient("x").retryable());
    EXPECT_FALSE(RunError::permanent("x").retryable());
    EXPECT_FALSE(RunError::timeout("x").retryable());
    EXPECT_STREQ(errorKindName(ErrorKind::Transient), "transient");
    EXPECT_STREQ(errorKindName(ErrorKind::Permanent), "permanent");
    EXPECT_STREQ(errorKindName(ErrorKind::Timeout), "timeout");
}

TEST(RunErrorTest, DescribeMentionsKindAndAttempts)
{
    RunError error = RunError::transient("boom");
    error.attempts = 3;
    const std::string text = error.describe();
    EXPECT_NE(text.find("transient"), std::string::npos);
    EXPECT_NE(text.find("boom"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
}

TEST(ResultTest, ValueAndErrorAccess)
{
    const Result<int> ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);

    const Result<int> bad(RunError::permanent("nope"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().message, "nope");
    EXPECT_THROW(bad.value(), RunException);

    const Result<void> fine;
    EXPECT_TRUE(fine.ok());
    const Result<void> broken(RunError::timeout("slow"));
    EXPECT_FALSE(broken.ok());
    EXPECT_EQ(broken.error().kind, ErrorKind::Timeout);
}

TEST(RetryTest, SucceedsFirstTry)
{
    RetryPolicy policy;
    policy.initialBackoffSeconds = 0.0;
    unsigned calls = 0;
    const auto result = runWithRetries(policy, [&](unsigned) {
        ++calls;
        return 7;
    });
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 7);
    EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, TransientErrorsRetryUntilSuccess)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoffSeconds = 0.0;
    unsigned calls = 0;
    const auto result = runWithRetries(policy, [&](unsigned attempt) {
        ++calls;
        EXPECT_EQ(attempt, calls);
        if (attempt < 3)
            throw RunException(RunError::transient("later"));
        return attempt;
    });
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 3u);
    EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, TransientExhaustionReportsAttempts)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialBackoffSeconds = 0.0;
    unsigned calls = 0;
    const auto result =
        runWithRetries(policy, [&](unsigned) -> int {
            ++calls;
            throw RunException(RunError::transient("always"));
        });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(result.error().attempts, 3u);
    EXPECT_EQ(result.error().kind, ErrorKind::Transient);
}

TEST(RetryTest, PermanentErrorsFailImmediately)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoffSeconds = 0.0;
    unsigned calls = 0;
    const auto result =
        runWithRetries(policy, [&](unsigned) -> int {
            ++calls;
            throw RunException(RunError::permanent("broken"));
        });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
}

TEST(RetryTest, TimeoutErrorsAreNotRetried)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoffSeconds = 0.0;
    unsigned calls = 0;
    const auto result =
        runWithRetries(policy, [&](unsigned) -> int {
            ++calls;
            throw RunException(RunError::timeout("deadline"));
        });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, ForeignExceptionsBecomePermanent)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoffSeconds = 0.0;
    const auto result =
        runWithRetries(policy, [&](unsigned) -> int {
            throw std::runtime_error("unclassified");
        });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
    EXPECT_EQ(result.error().message, "unclassified");
}

TEST(RetryTest, VoidBodiesWork)
{
    RetryPolicy policy;
    policy.initialBackoffSeconds = 0.0;
    bool ran = false;
    const Result<void> result =
        runWithRetries(policy, [&](unsigned) { ran = true; });
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(ran);
}

TEST(RetryTest, BackoffGrowsAndCaps)
{
    RetryPolicy policy;
    policy.initialBackoffSeconds = 0.005;
    policy.backoffMultiplier = 4.0;
    policy.maxBackoffSeconds = 0.05;
    EXPECT_DOUBLE_EQ(policy.backoffFor(2), 0.005);
    EXPECT_DOUBLE_EQ(policy.backoffFor(3), 0.02);
    EXPECT_DOUBLE_EQ(policy.backoffFor(4), 0.05); // capped (0.08)
    EXPECT_DOUBLE_EQ(policy.backoffFor(5), 0.05);
}

TEST(RetryTest, EnvOverridesAreClampedAndValidated)
{
    setenv("IBP_MAX_ATTEMPTS", "7", 1);
    setenv("IBP_CELL_DEADLINE", "2.5", 1);
    RetryPolicy policy = retryPolicyFromEnv();
    EXPECT_EQ(policy.maxAttempts, 7u);
    EXPECT_DOUBLE_EQ(policy.cellDeadlineSeconds, 2.5);

    setenv("IBP_MAX_ATTEMPTS", "0", 1); // clamped to >= 1
    setenv("IBP_CELL_DEADLINE", "garbage", 1);
    policy = retryPolicyFromEnv();
    EXPECT_GE(policy.maxAttempts, 1u);
    EXPECT_DOUBLE_EQ(policy.cellDeadlineSeconds, 0.0);

    unsetenv("IBP_MAX_ATTEMPTS");
    unsetenv("IBP_CELL_DEADLINE");
}

} // namespace
} // namespace ibp
