/**
 * @file
 * Tests of the checkpoint journal: fresh creation, append/reopen
 * restore with bit-exact miss rates, meta binding, grid-id
 * disambiguation, and crash-truncation tolerance.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "robust/checkpoint.hh"

namespace ibp {
namespace {

CheckpointMeta
sampleMeta()
{
    CheckpointMeta meta;
    meta.slug = "fig11";
    meta.gitSha = "abc123def456";
    meta.eventScale = 0.25;
    meta.quick = true;
    return meta;
}

std::string
tempJournal(const std::string &name)
{
    const std::string path =
        testing::TempDir() + "/ibp_ckpt_" + name + ".jsonl";
    std::remove(path.c_str());
    return path;
}

TEST(CheckpointTest, FreshJournalHasNoRestoredCells)
{
    const std::string path = tempJournal("fresh");
    const auto journal =
        CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal.value()->restoredCells(), 0u);
    EXPECT_FALSE(journal.value()->lookup(0, "col", "idl"));
}

TEST(CheckpointTest, AppendThenReopenRestoresBitExactRates)
{
    const std::string path = tempJournal("roundtrip");
    // Awkward full-precision doubles: the journal must reproduce
    // them bit-for-bit or a resumed artifact would drift.
    const double rate_a = 24.91234567890123;
    const double rate_b = 100.0 / 3.0;
    {
        const auto journal =
            CheckpointJournal::open(path, sampleMeta());
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(journal.value()
                        ->append({0, "col", "idl", rate_a})
                        .ok());
        ASSERT_TRUE(journal.value()
                        ->append({1, "col", "idl", rate_b})
                        .ok());
    }
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal.value()->restoredCells(), 2u);
    const auto a = journal.value()->lookup(0, "col", "idl");
    const auto b = journal.value()->lookup(1, "col", "idl");
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, rate_a); // exact, not NEAR
    EXPECT_EQ(*b, rate_b);
}

TEST(CheckpointTest, GridIdsDisambiguateIdenticalLabels)
{
    const std::string path = tempJournal("grids");
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->append({0, "128", "idl", 1.0}).ok());
    // fig11-style reruns: same column label, different grid.
    EXPECT_TRUE(journal.value()->lookup(0, "128", "idl").has_value());
    EXPECT_FALSE(journal.value()->lookup(1, "128", "idl").has_value());
}

TEST(CheckpointTest, MetaMismatchIsRejected)
{
    const std::string path = tempJournal("meta");
    {
        const auto journal =
            CheckpointJournal::open(path, sampleMeta());
        ASSERT_TRUE(journal.ok());
    }
    CheckpointMeta other = sampleMeta();
    other.gitSha = "fedcba987654";
    const auto rejected = CheckpointJournal::open(path, other);
    ASSERT_FALSE(rejected.ok());
    EXPECT_NE(rejected.error().message.find("different run"),
              std::string::npos);

    CheckpointMeta scaled = sampleMeta();
    scaled.eventScale = 1.0;
    EXPECT_FALSE(CheckpointJournal::open(path, scaled).ok());

    CheckpointMeta full = sampleMeta();
    full.quick = false;
    EXPECT_FALSE(CheckpointJournal::open(path, full).ok());
}

TEST(CheckpointTest, TruncatedFinalLineIsTolerated)
{
    const std::string path = tempJournal("truncated");
    {
        const auto journal =
            CheckpointJournal::open(path, sampleMeta());
        ASSERT_TRUE(journal.ok());
        ASSERT_TRUE(
            journal.value()->append({0, "col", "idl", 5.5}).ok());
    }
    // Simulate a crash mid-append: half a JSON line, no newline.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"grid\":0,\"column\":\"col\",\"benchm";
    }
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal.value()->restoredCells(), 1u);
    EXPECT_TRUE(journal.value()->lookup(0, "col", "idl").has_value());
}

TEST(CheckpointTest, CorruptLineMidFileIsAnError)
{
    const std::string path = tempJournal("corrupt");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"ibp-checkpoint\",\"version\":1,"
               "\"slug\":\"fig11\",\"git_sha\":\"abc123def456\","
               "\"event_scale\":0.25,\"quick\":true}\n";
        out << "garbage not json\n";
        out << "{\"grid\":0,\"column\":\"col\","
               "\"benchmark\":\"idl\",\"miss\":1.0}\n";
    }
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_FALSE(journal.ok());
    EXPECT_NE(journal.error().message.find("corrupt line"),
              std::string::npos);
}

TEST(CheckpointTest, TruncatedHeaderRestartsJournal)
{
    const std::string path = tempJournal("badheader");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"ibp-check"; // crash during first write
    }
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal.value()->restoredCells(), 0u);
    ASSERT_TRUE(journal.value()->append({0, "col", "idl", 1.0}).ok());
    // The rewritten file must now reopen cleanly.
    const auto reopened =
        CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value()->restoredCells(), 1u);
}

TEST(CheckpointTest, WrongSchemaIsRejected)
{
    const std::string path = tempJournal("schema");
    {
        std::ofstream out(path);
        out << "{\"schema\":\"something-else\",\"version\":1}\n";
    }
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_FALSE(journal.ok());
    EXPECT_NE(journal.error().message.find("not a version-"),
              std::string::npos);
}

TEST(CheckpointTest, CreatesParentDirectories)
{
    const std::string path = testing::TempDir() +
                             "/ibp_ckpt_nested/deep/dir/journal.jsonl";
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE(journal.value()->append({0, "c", "b", 1.0}).ok());
}

TEST(CheckpointTest, StartRecordsCountPriorIncarnationsOnly)
{
    const std::string path = tempJournal("starts");
    {
        const auto journal =
            CheckpointJournal::open(path, sampleMeta());
        ASSERT_TRUE(journal.ok());
        // Incarnation 1: cell A started twice (two incarnations'
        // worth written here for brevity), cell B started once and
        // finished.
        ASSERT_TRUE(
            journal.value()->appendStart({0, "col", "idl"}).ok());
        ASSERT_TRUE(
            journal.value()->appendStart({0, "col", "idl"}).ok());
        ASSERT_TRUE(journal.value()
                        ->appendStarts({{0, "col", "gcc"}})
                        .ok());
        ASSERT_TRUE(
            journal.value()->append({0, "col", "gcc", 7.25}).ok());
        // The prior count is frozen at open: this session's own
        // starts are not "prior incarnations".
        EXPECT_EQ(
            journal.value()->startedCountPrior(0, "col", "idl"), 0u);
    }
    const auto journal = CheckpointJournal::open(path, sampleMeta());
    ASSERT_TRUE(journal.ok());
    // Start lines are forensics, not results: only the finished
    // cell restores.
    EXPECT_EQ(journal.value()->restoredCells(), 1u);
    EXPECT_TRUE(
        journal.value()->lookup(0, "col", "gcc").has_value());
    EXPECT_FALSE(
        journal.value()->lookup(0, "col", "idl").has_value());
    EXPECT_EQ(journal.value()->startedCountPrior(0, "col", "idl"),
              2u);
    EXPECT_EQ(journal.value()->startedCountPrior(0, "col", "gcc"),
              1u);
    EXPECT_EQ(journal.value()->startedCountPrior(1, "col", "idl"),
              0u);
}

} // namespace
} // namespace ibp
