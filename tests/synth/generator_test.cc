/**
 * @file
 * Tests of the synthetic benchmark generator: determinism, profile
 * fidelity (site counts, branch kinds, conditional emission) and the
 * statistical properties the predictor study depends on.
 */

#include <gtest/gtest.h>

#include "synth/benchmark_suite.hh"
#include "synth/program_model.hh"
#include "trace/trace_stats.hh"

namespace ibp {
namespace {

GeneratorOptions
smallRun(std::uint64_t events = 30000, bool conditionals = false)
{
    GeneratorOptions options;
    options.events = events;
    options.emitConditionals = conditionals;
    return options;
}

TEST(Generator, DeterministicForAGivenSeed)
{
    const BenchmarkProfile &profile = benchmarkProfile("porky");
    const Trace a = generateTrace(profile, smallRun());
    const Trace b = generateTrace(profile, smallRun());
    EXPECT_EQ(a, b);
}

TEST(Generator, ConditionalEmissionLeavesIndirectStreamUntouched)
{
    // The conditional/return side-channel uses its own RNG stream:
    // the same benchmark must produce the identical indirect branch
    // sequence whether or not conditionals are emitted.
    const BenchmarkProfile &profile = benchmarkProfile("eqn");
    const Trace bare = generateTrace(profile, smallRun(8000, false));
    const Trace full = generateTrace(profile, smallRun(8000, true));
    std::vector<BranchRecord> indirect_only;
    for (const auto &record : full) {
        if (record.isPredictedIndirect())
            indirect_only.push_back(record);
    }
    ASSERT_EQ(indirect_only.size(), bare.size());
    for (std::size_t i = 0; i < indirect_only.size(); ++i)
        ASSERT_EQ(indirect_only[i], bare[i]) << "record " << i;
}

TEST(Generator, DifferentBenchmarksDiffer)
{
    const Trace a =
        generateTrace(benchmarkProfile("porky"), smallRun());
    const Trace b =
        generateTrace(benchmarkProfile("eqn"), smallRun());
    EXPECT_NE(a, b);
}

TEST(Generator, EmitsExactlyTheRequestedIndirectBranches)
{
    const Trace trace =
        generateTrace(benchmarkProfile("troff"), smallRun(12345));
    EXPECT_EQ(trace.countPredictedIndirect(), 12345u);
    // Without conditionals the trace is all indirect.
    EXPECT_EQ(trace.size(), 12345u);
}

TEST(Generator, AllTargetsAreWordAligned)
{
    const Trace trace =
        generateTrace(benchmarkProfile("self"), smallRun());
    for (const auto &record : trace) {
        EXPECT_EQ(record.pc & 3u, 0u);
        EXPECT_EQ(record.target & 3u, 0u);
    }
}

TEST(Generator, StaticSiteCountTracksProfile)
{
    for (const char *name : {"idl", "eqn", "xlisp"}) {
        const BenchmarkProfile &profile = benchmarkProfile(name);
        // Enough events for every cold context to be visited.
        const Trace trace = generateTrace(profile, smallRun(60000));
        const TraceStats stats = computeTraceStats(trace);
        EXPECT_GE(stats.activeSites100,
                  profile.sites100 * 9 / 10)
            << name;
        EXPECT_LE(stats.activeSites100, profile.sites100) << name;
    }
}

TEST(Generator, HotSiteConcentrationIsInTheRightRegime)
{
    // xlisp: 3 sites cover 90% in the paper; allow a small band.
    const Trace trace =
        generateTrace(benchmarkProfile("xlisp"), smallRun(60000));
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_LE(stats.activeSites90, 6u);
    // self is the flattest benchmark: far more active sites.
    const Trace self_trace =
        generateTrace(benchmarkProfile("self"), smallRun(60000));
    EXPECT_GT(computeTraceStats(self_trace).activeSites90, 25u);
}

TEST(Generator, ConditionalEmissionMatchesCappedRatio)
{
    const BenchmarkProfile &profile = benchmarkProfile("troff");
    const Trace trace =
        generateTrace(profile, smallRun(20000, true));
    const TraceStats stats = computeTraceStats(trace);
    // troff's paper ratio is 13; the default cap is 8.
    EXPECT_NEAR(stats.condPerIndirect, 8.0, 0.5);
    EXPECT_GT(stats.returns, 1000u);
}

TEST(Generator, LowRatioBenchmarksAreNotCapped)
{
    const BenchmarkProfile &profile = benchmarkProfile("idl"); // 6
    const Trace trace =
        generateTrace(profile, smallRun(20000, true));
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_NEAR(stats.condPerIndirect, 6.0, 0.5);
}

TEST(Generator, VirtualCallFractionApproximatesProfile)
{
    const BenchmarkProfile &profile = benchmarkProfile("jhm"); // 94%
    const Trace trace = generateTrace(profile, smallRun(50000));
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_GT(stats.virtualCallFraction, 0.75);
    const BenchmarkProfile &c_profile = benchmarkProfile("gcc"); // 0%
    const Trace c_trace = generateTrace(c_profile, smallRun(50000));
    EXPECT_LT(computeTraceStats(c_trace).virtualCallFraction, 0.05);
}

TEST(Generator, CustomKnobsBuildStandaloneModels)
{
    ModelKnobs knobs;
    knobs.numSites = 24;
    knobs.numContexts = 6;
    ProgramModel model(knobs, 42);
    const Trace trace = model.generate(smallRun(5000), "custom");
    EXPECT_EQ(trace.countPredictedIndirect(), 5000u);
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_LE(stats.activeSites100, 24u);
    EXPECT_GE(stats.activeSites100, 12u);
}

TEST(Generator, DominantTargetShareRespondsToDominanceKnob)
{
    ModelKnobs low;
    low.numSites = 40;
    low.dominance = 0.15;
    low.monoFraction = 0.0;
    ModelKnobs high = low;
    high.dominance = 0.9;

    const TraceStats low_stats = computeTraceStats(
        ProgramModel(low, 7).generate(smallRun(40000), "low"));
    const TraceStats high_stats = computeTraceStats(
        ProgramModel(high, 7).generate(smallRun(40000), "high"));

    const auto weighted_dominance = [](const TraceStats &stats) {
        double mass = 0, total = 0;
        for (const auto &site : stats.sites) {
            mass += site.dominantTargetShare *
                    static_cast<double>(site.executions);
            total += static_cast<double>(site.executions);
        }
        return mass / total;
    };
    EXPECT_GT(weighted_dominance(high_stats),
              weighted_dominance(low_stats) + 0.2);
}

TEST(Generator, ProfilesRequireEventCounts)
{
    ModelKnobs knobs;
    ProgramModel model(knobs, 1);
    GeneratorOptions zero;
    zero.events = 0;
    EXPECT_DEATH(model.generate(zero, "zero"), "nonzero event count");
}

} // namespace
} // namespace ibp
