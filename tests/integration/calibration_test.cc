/**
 * @file
 * Calibration regression tests: the synthetic suite was tuned
 * (tools/autotune) so its anchor predictors land near the paper's
 * published rates. These tests pin that calibration with generous
 * bands, so structural changes to the generator that silently shift
 * the suite's difficulty fail loudly instead of corrupting every
 * bench result.
 *
 * Full-length traces are used (these are the slowest tests, a few
 * seconds in total).
 */

#include <gtest/gtest.h>

#include "core/btb.hh"
#include "core/factory.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

namespace ibp {
namespace {

double
btbMiss(const std::string &name)
{
    const Trace trace = generateBenchmarkTrace(name);
    BtbPredictor btb(TableSpec::unconstrained(), true);
    return simulate(btb, trace).missPercent();
}

double
floorMiss(const std::string &name)
{
    const Trace trace = generateBenchmarkTrace(name);
    TwoLevelPredictor predictor(unconstrainedTwoLevel(6));
    return simulate(predictor, trace).missPercent();
}

class CalibrationAnchors
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CalibrationAnchors, BtbRateNearPaperTarget)
{
    const BenchmarkProfile &profile = benchmarkProfile(GetParam());
    const double got = btbMiss(profile.name);
    // Band: +-40% relative or +-2.5 absolute, whichever is looser.
    const double slack =
        std::max(2.5, 0.40 * profile.btbMissTarget);
    EXPECT_NEAR(got, profile.btbMissTarget, slack)
        << profile.name << ": paper " << profile.btbMissTarget;
}

INSTANTIATE_TEST_SUITE_P(
    PerBenchmark, CalibrationAnchors,
    ::testing::Values("idl", "jhm", "self", "troff", "lcom", "porky",
                      "ixx", "eqn", "beta", "xlisp", "perl", "edg",
                      "gcc", "m88ksim", "vortex", "ijpeg", "go"));

TEST(CalibrationSuite, AvgBtbNearPaper)
{
    // Paper Figure 2: AVG BTB-2bc = 24.9%.
    double total = 0;
    for (const auto &name : benchmarkGroups().avg)
        total += btbMiss(name);
    const double avg = total / 13.0;
    EXPECT_NEAR(avg, 24.9, 4.0);
}

TEST(CalibrationSuite, AvgTwoLevelFloorNearPaper)
{
    // Paper section 8: best unconstrained predictor ~5.8% AVG.
    double total = 0;
    for (const auto &name : benchmarkGroups().avg)
        total += floorMiss(name);
    const double avg = total / 13.0;
    EXPECT_NEAR(avg, 5.8, 3.5);
}

TEST(CalibrationSuite, DifficultyOrderingPreserved)
{
    // The paper's easy/hard spread must survive: idl and lcom are
    // the easiest programs, gcc and m88ksim the hardest.
    const double easy = std::max(btbMiss("idl"), btbMiss("lcom"));
    const double hard =
        std::min(btbMiss("gcc"), btbMiss("m88ksim"));
    EXPECT_LT(easy, 10.0);
    EXPECT_GT(hard, 40.0);
}

TEST(CalibrationSuite, GroupOrderingMatchesPaper)
{
    // Figure 2: C programs are harder than OO programs for a BTB,
    // and AVG-200 much harder than AVG-100.
    const auto group_avg = [&](const std::vector<std::string> &g) {
        double total = 0;
        for (const auto &name : g)
            total += btbMiss(name);
        return total / static_cast<double>(g.size());
    };
    const auto &groups = benchmarkGroups();
    EXPECT_LT(group_avg(groups.oo), group_avg(groups.c));
    EXPECT_LT(group_avg(groups.avg100), group_avg(groups.avg200));
}

} // namespace
} // namespace ibp
