/**
 * @file
 * End-to-end integration tests: the paper's qualitative findings
 * must hold on the synthetic suite. These run real simulations on
 * reduced traces (a three-benchmark mini-suite at ~60k branches), so
 * the thresholds are deliberately generous - the full-suite numbers
 * live in the bench binaries.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/btb.hh"
#include "core/factory.hh"
#include "core/hybrid.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

namespace ibp {
namespace {

class PaperProperties : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setenv("IBP_EVENTS", "0.2", 1);
        for (const char *name : {"porky", "eqn", "gcc"})
            traces().push_back(generateBenchmarkTrace(name));
    }

    static void
    TearDownTestSuite()
    {
        unsetenv("IBP_EVENTS");
        traces().clear();
    }

    static std::vector<Trace> &
    traces()
    {
        static std::vector<Trace> storage;
        return storage;
    }

    /** Average misprediction percentage over the mini-suite. */
    template <typename MakePredictor>
    static double
    averageMiss(MakePredictor make)
    {
        double total = 0;
        for (const Trace &trace : traces()) {
            auto predictor = make();
            total += simulate(*predictor, trace).missPercent();
        }
        return total / static_cast<double>(traces().size());
    }
};

TEST_F(PaperProperties, TwoBitCounterUpdateBeatsPlainBtb)
{
    const double plain = averageMiss([] {
        return std::make_unique<BtbPredictor>(
            TableSpec::unconstrained(), false);
    });
    const double hysteretic = averageMiss([] {
        return std::make_unique<BtbPredictor>(
            TableSpec::unconstrained(), true);
    });
    EXPECT_LT(hysteretic, plain);
}

TEST_F(PaperProperties, TwoLevelBeatsBtbByALargeFactor)
{
    const double btb = averageMiss([] {
        return std::make_unique<BtbPredictor>(
            TableSpec::unconstrained(), true);
    });
    const double two_level = averageMiss([] {
        return std::make_unique<TwoLevelPredictor>(
            unconstrainedTwoLevel(6));
    });
    EXPECT_LT(two_level, btb / 2.0);
}

TEST_F(PaperProperties, PathLengthCurveIsUShaped)
{
    const auto at = [&](unsigned p) {
        return averageMiss([p] {
            return std::make_unique<TwoLevelPredictor>(
                unconstrainedTwoLevel(p));
        });
    };
    const double p0 = at(0), p3 = at(3), p6 = at(6), p18 = at(18);
    EXPECT_LT(p3, p0);
    EXPECT_LT(p6, p3);
    EXPECT_GT(p18, p6); // rising tail
}

TEST_F(PaperProperties, GlobalHistoryBeatsSharedTables)
{
    // h sweep (section 3.2.2): per-address tables beat one shared
    // table.
    const auto with_h = [&](unsigned h) {
        return averageMiss([h] {
            return std::make_unique<TwoLevelPredictor>(
                unconstrainedTwoLevel(8, 32, h));
        });
    };
    EXPECT_LT(with_h(2), with_h(32));
}

TEST_F(PaperProperties, LimitedPrecisionEightBitsIsEnough)
{
    const double full = averageMiss([] {
        return std::make_unique<TwoLevelPredictor>(
            unconstrainedTwoLevel(3));
    });
    const double eight_bits = averageMiss([] {
        TwoLevelConfig config =
            paperTwoLevel(3, TableSpec::unconstrained());
        config.pattern.bitsPerTarget = 8;
        return std::make_unique<TwoLevelPredictor>(config);
    });
    const double one_bit = averageMiss([] {
        TwoLevelConfig config =
            paperTwoLevel(3, TableSpec::unconstrained());
        config.pattern.bitsPerTarget = 1;
        return std::make_unique<TwoLevelPredictor>(config);
    });
    EXPECT_NEAR(eight_bits, full, 1.0);
    EXPECT_GT(one_bit, eight_bits);
}

TEST_F(PaperProperties, CapacityMissesGrowWithPathLength)
{
    // At a small table, long paths suffer more capacity misses.
    const auto limited = [&](unsigned p, std::uint64_t entries) {
        return averageMiss([p, entries] {
            return std::make_unique<TwoLevelPredictor>(
                paperTwoLevel(p, TableSpec::fullyAssoc(entries)));
        });
    };
    const auto unconstrained = [&](unsigned p) {
        return averageMiss([p] {
            TwoLevelConfig config =
                paperTwoLevel(p, TableSpec::unconstrained());
            return std::make_unique<TwoLevelPredictor>(config);
        });
    };
    const double loss_short =
        limited(1, 256) - unconstrained(1);
    const double loss_long = limited(8, 256) - unconstrained(8);
    EXPECT_GT(loss_long, loss_short);
}

TEST_F(PaperProperties, AssociativityReducesConflictMisses)
{
    const auto with_ways = [&](unsigned ways) {
        return averageMiss([ways] {
            return std::make_unique<TwoLevelPredictor>(paperTwoLevel(
                3, TableSpec::setAssoc(1024, ways)));
        });
    };
    const double one_way = with_ways(1);
    const double four_way = with_ways(4);
    EXPECT_LT(four_way, one_way);
}

TEST_F(PaperProperties, InterleavingBeatsConcatenationAtLowAssoc)
{
    const auto with = [&](InterleaveKind kind) {
        return averageMiss([kind] {
            TwoLevelConfig config = paperTwoLevel(
                3, TableSpec::setAssoc(1024, 1));
            config.pattern.interleave = kind;
            return std::make_unique<TwoLevelPredictor>(config);
        });
    };
    EXPECT_LT(with(InterleaveKind::Reverse),
              with(InterleaveKind::Concat));
}

TEST_F(PaperProperties, HybridBeatsEqualSizedNonHybrid)
{
    const double non_hybrid = averageMiss([] {
        return std::make_unique<TwoLevelPredictor>(
            paperTwoLevel(3, TableSpec::setAssoc(1024, 4)));
    });
    const double hybrid = averageMiss([] {
        return std::make_unique<HybridPredictor>(paperHybrid(
            3, 1, TableSpec::setAssoc(512, 4)));
    });
    EXPECT_LT(hybrid, non_hybrid * 1.05); // at worst a small loss
}

TEST_F(PaperProperties, ConditionalTargetsInHistoryHurt)
{
    // Needs conditional records: generate one benchmark with them.
    setenv("IBP_EVENTS", "0.2", 1);
    const Trace trace = generateBenchmarkTrace("porky", true);
    TwoLevelPredictor clean(unconstrainedTwoLevel(6));
    TwoLevelConfig polluted_config = unconstrainedTwoLevel(6);
    polluted_config.includeConditionalTargets = true;
    TwoLevelPredictor polluted(polluted_config);
    const double clean_rate =
        simulate(clean, trace).missPercent();
    const double polluted_rate =
        simulate(polluted, trace).missPercent();
    EXPECT_GT(polluted_rate, clean_rate);
}

} // namespace
} // namespace ibp
