/**
 * @file
 * Malformed-input tests for the trace readers: truncated binaries,
 * bad magic/version, corrupt record kinds and garbage text lines
 * must all surface as recoverable RunErrors, never aborts.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "trace/trace_io.hh"

namespace ibp {
namespace {

std::string
validBinaryTrace()
{
    Trace trace("sample");
    trace.setSeed(7);
    trace.append({0x1000, 0x2000, BranchKind::IndirectCall, true});
    trace.append({0x1004, 0x3000, BranchKind::IndirectJump, true});
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(writeTraceBinary(trace, out).ok());
    return out.str();
}

Result<Trace>
readBinary(const std::string &bytes)
{
    std::istringstream in(bytes, std::ios::binary);
    return readTraceBinary(in);
}

TEST(TraceMalformed, BadMagicIsAnError)
{
    const auto result = readBinary("NOPE-this-is-not-a-trace");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
    EXPECT_NE(result.error().message.find("bad magic"),
              std::string::npos);
}

TEST(TraceMalformed, EmptyStreamIsAnError)
{
    const auto result = readBinary("");
    ASSERT_FALSE(result.ok());
}

TEST(TraceMalformed, BadVersionIsAnError)
{
    std::string bytes = validBinaryTrace();
    bytes[4] = static_cast<char>(0xee); // version field
    const auto result = readBinary(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("unsupported trace version"),
              std::string::npos);
}

TEST(TraceMalformed, TruncationAnywhereIsAnError)
{
    const std::string bytes = validBinaryTrace();
    // Every proper prefix must fail cleanly - header, name, or
    // record boundary, no matter where the file was cut.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const auto result = readBinary(bytes.substr(0, cut));
        EXPECT_FALSE(result.ok()) << "prefix of " << cut
                                  << " bytes parsed successfully";
    }
    EXPECT_TRUE(readBinary(bytes).ok());
}

TEST(TraceMalformed, BadKindByteIsAnError)
{
    std::string bytes = validBinaryTrace();
    // Last byte of the stream is the flags byte of the final record;
    // kind lives in the low 7 bits.
    bytes[bytes.size() - 1] = 0x55;
    const auto result = readBinary(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("bad branch kind"),
              std::string::npos);
}

TEST(TraceMalformed, ImplausibleNameLengthIsAnError)
{
    std::string bytes = validBinaryTrace();
    // Name length field sits after magic (4) + version (4) + seed (8).
    bytes[16] = static_cast<char>(0xff);
    bytes[17] = static_cast<char>(0xff);
    const auto result = readBinary(bytes);
    ASSERT_FALSE(result.ok());
}

TEST(TraceMalformed, HugeRecordCountIsAnErrorNotAnAllocation)
{
    // Regression test: the record count is attacker-controlled input
    // and used to reach reserve() unvalidated, so a corrupt header
    // could demand a multi-exabyte allocation and abort the process.
    // It must be rejected against the bytes actually remaining.
    std::string bytes = validBinaryTrace();
    // Count field sits after magic (4) + version (4) + seed (8) +
    // name length (4) + name ("sample", 6 bytes).
    const std::size_t count_at = 26;
    for (std::size_t i = 0; i < 8; ++i)
        bytes[count_at + i] = static_cast<char>(0xff);
    const auto result = readBinary(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
    EXPECT_NE(result.error().message.find("exceeds"),
              std::string::npos);
}

TEST(TraceMalformed, CountLargerThanBodyIsAnError)
{
    // Off-by-one flavour: claiming even one more record than the
    // stream holds must fail up front, not mid-parse.
    std::string bytes = validBinaryTrace();
    const std::size_t count_at = 26;
    bytes[count_at] = 3; // file holds 2 records
    const auto result = readBinary(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("exceeds"),
              std::string::npos);
}

TEST(TraceMalformed, GarbageTextLineIsAnError)
{
    std::istringstream in("icall 0x10 0x20 1\nthis is not a record\n");
    const auto result = readTraceText(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
    EXPECT_NE(result.error().message.find("line 2"),
              std::string::npos);
}

TEST(TraceMalformed, NonNumericAddressIsAnError)
{
    std::istringstream in("icall 0xZZ 0x20 1\n");
    const auto result = readTraceText(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("malformed address"),
              std::string::npos);
}

TEST(TraceMalformed, OversizedAddressIsAnErrorNotATruncation)
{
    // Regression test: strtoull's ERANGE went unchecked and values
    // wider than Addr were silently truncated, so a 33-bit address
    // used to alias a different 32-bit one instead of failing.
    std::istringstream in("icall 0x1ffffffff 0x20 1\n");
    const auto result = readTraceText(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("out of range"),
              std::string::npos);
}

TEST(TraceMalformed, ErangeAddressIsAnError)
{
    // Wider than unsigned long long itself: strtoull reports ERANGE
    // and clamps to ULLONG_MAX, which must not parse either.
    std::istringstream in(
        "icall 0xffffffffffffffffffff 0x20 1\n");
    const auto result = readTraceText(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("out of range"),
              std::string::npos);
}

TEST(TraceMalformed, MaxAddressStillParses)
{
    std::istringstream in("icall 0xffffffff 0x20 1\n");
    const auto result = readTraceText(in);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value()[0].pc, 0xffffffffu);
}

TEST(TraceMalformed, UnknownKindNameIsAnError)
{
    std::istringstream in("teleport 0x10 0x20 1\n");
    const auto result = readTraceText(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("bad branch kind"),
              std::string::npos);
}

TEST(TraceMalformed, LoadTracePrefixesPathOnError)
{
    const std::string path =
        testing::TempDir() + "/ibp_bad_trace.ibpt";
    std::ofstream(path, std::ios::binary) << "junk";
    const auto result = loadTrace(path);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find(path), std::string::npos);
}

TEST(TraceMalformed, MissingFileIsAnError)
{
    const auto result =
        loadTrace(testing::TempDir() + "/ibp_no_such_trace.ibpt");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("cannot open"),
              std::string::npos);
}

} // namespace
} // namespace ibp
