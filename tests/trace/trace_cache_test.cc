/**
 * @file
 * Tests of the content-addressed on-disk trace cache: store/load
 * round trips, miss behaviour on absent and corrupt entries, key
 * sensitivity of the producer-side hash, and the global arming
 * switch.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "synth/benchmark_suite.hh"
#include "trace/trace_cache.hh"

namespace ibp {
namespace {

class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = testing::TempDir() + "/ibp_trace_cache_test";
        std::filesystem::remove_all(_dir);
    }
    void
    TearDown() override
    {
        TraceCache::configureGlobal("");
        std::filesystem::remove_all(_dir);
    }

    std::string _dir;
};

Trace
sampleTrace(const std::string &name)
{
    Trace trace(name);
    trace.setSeed(42);
    trace.append({0x1000, 0x2000, BranchKind::IndirectCall, true});
    trace.append({0x1004, 0x3000, BranchKind::IndirectJump, true});
    return trace;
}

TEST_F(TraceCacheTest, StoreThenLoadRoundTrips)
{
    const TraceCache cache(_dir);
    const Trace original = sampleTrace("bench");
    ASSERT_TRUE(cache.store("bench-abc123", original).ok());
    const auto loaded = cache.load("bench-abc123");
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), original);
    EXPECT_EQ(loaded.value().name(), "bench");
    EXPECT_EQ(loaded.value().seed(), 42u);
}

TEST_F(TraceCacheTest, StoreIsByteIdenticalAcrossCalls)
{
    const TraceCache cache(_dir);
    const Trace original = sampleTrace("bench");
    ASSERT_TRUE(cache.store("k", original).ok());
    std::ifstream first_file(cache.pathFor("k"), std::ios::binary);
    const std::string first(
        (std::istreambuf_iterator<char>(first_file)),
        std::istreambuf_iterator<char>());
    ASSERT_TRUE(cache.store("k", original).ok());
    std::ifstream second_file(cache.pathFor("k"), std::ios::binary);
    const std::string second(
        (std::istreambuf_iterator<char>(second_file)),
        std::istreambuf_iterator<char>());
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST_F(TraceCacheTest, AbsentEntryIsAMiss)
{
    const TraceCache cache(_dir);
    EXPECT_FALSE(cache.load("never-stored").ok());
}

TEST_F(TraceCacheTest, CorruptEntryIsAMissNotACrash)
{
    const TraceCache cache(_dir);
    ASSERT_TRUE(cache.store("k", sampleTrace("bench")).ok());
    // Truncate the entry as external interference would.
    std::filesystem::resize_file(cache.pathFor("k"), 10);
    EXPECT_FALSE(cache.load("k").ok());
}

TEST_F(TraceCacheTest, StoreLeavesNoTempFileBehind)
{
    const TraceCache cache(_dir);
    ASSERT_TRUE(cache.store("k", sampleTrace("bench")).ok());
    unsigned files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(_dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(TraceCacheTest, GlobalConfigureArmsAndDisarms)
{
    TraceCache::configureGlobal(_dir);
    ASSERT_NE(TraceCache::global(), nullptr);
    EXPECT_EQ(TraceCache::global()->directory(), _dir);
    TraceCache::configureGlobal("");
    EXPECT_EQ(TraceCache::global(), nullptr);
}

TEST(TraceCacheKey, DistinguishesEveryInput)
{
    // The key is the content address: benchmarks, the conditional
    // flag, and the event scale must all produce distinct keys, and
    // the same configuration must reproduce the same key.
    setenv("IBP_EVENTS", "0.05", 1);
    const std::string base = benchmarkTraceCacheKey("idl", false);
    EXPECT_EQ(benchmarkTraceCacheKey("idl", false), base);
    EXPECT_EQ(base.rfind("idl-", 0), 0u)
        << "key should start with the benchmark name: " << base;
    EXPECT_NE(benchmarkTraceCacheKey("idl", true), base);
    EXPECT_NE(benchmarkTraceCacheKey("self", false), base);
    const std::string self_key = benchmarkTraceCacheKey("self", false);
    EXPECT_NE(benchmarkTraceCacheKey("self", true), self_key);

    setenv("IBP_EVENTS", "0.10", 1);
    EXPECT_NE(benchmarkTraceCacheKey("idl", false), base)
        << "a different event scale must change the key";
    unsetenv("IBP_EVENTS");
}

TEST_F(TraceCacheTest, ConcurrentColdAcquireGeneratesOnce)
{
    // Load-bearing once multiple daemon clients share the cache: two
    // threads racing on the same cold key must elect ONE generator;
    // the other must be served a complete (never torn) stored entry.
    const TraceCache cache(_dir);
    std::atomic<int> generations{0};
    std::atomic<bool> go{false};
    const auto generate = [&]() -> Result<Trace> {
        generations.fetch_add(1, std::memory_order_relaxed);
        // Linger long enough that the second thread reliably finds
        // the generation in flight rather than a finished entry.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return sampleTrace("bench");
    };

    Result<TraceAcquisition> first = RunError::permanent("unset");
    Result<TraceAcquisition> second = RunError::permanent("unset");
    std::thread a([&]() {
        while (!go.load(std::memory_order_acquire)) {
        }
        first = cache.getOrGenerate("cold-key", generate, "bench");
    });
    std::thread b([&]() {
        while (!go.load(std::memory_order_acquire)) {
        }
        second = cache.getOrGenerate("cold-key", generate, "bench");
    });
    go.store(true, std::memory_order_release);
    a.join();
    b.join();

    ASSERT_TRUE(first.ok()) << first.error().describe();
    ASSERT_TRUE(second.ok()) << second.error().describe();
    EXPECT_EQ(generations.load(), 1)
        << "exactly one thread may run the generator";
    // One generation plus one hit, and both sides hold the same
    // fully-formed records (a torn read would fail the binary
    // reader's validation inside load() and force a regeneration,
    // which the generation count above would expose).
    EXPECT_NE(first.value().fromCache, second.value().fromCache);
    EXPECT_EQ(first.value().trace, second.value().trace);
    EXPECT_EQ(first.value().trace.name(), "bench");

    // Both traces must also match a fresh uncontended load of the
    // stored entry byte for byte.
    const auto reloaded = cache.load("cold-key");
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(reloaded.value(), first.value().trace);
}

TEST_F(TraceCacheTest, WarmAcquireHitsWithoutGenerating)
{
    const TraceCache cache(_dir);
    ASSERT_TRUE(cache.store("warm-key", sampleTrace("bench")).ok());
    std::atomic<int> generations{0};
    const auto generate = [&]() -> Result<Trace> {
        generations.fetch_add(1, std::memory_order_relaxed);
        return sampleTrace("bench");
    };
    const auto acquired =
        cache.getOrGenerate("warm-key", generate, "bench");
    ASSERT_TRUE(acquired.ok());
    EXPECT_TRUE(acquired.value().fromCache);
    EXPECT_EQ(generations.load(), 0);
}

TEST_F(TraceCacheTest, AcquireRejectsForeignEntryName)
{
    const TraceCache cache(_dir);
    ASSERT_TRUE(cache.store("key", sampleTrace("imposter")).ok());
    const auto acquired = cache.getOrGenerate(
        "key", [&]() -> Result<Trace> { return sampleTrace("real"); },
        "real");
    ASSERT_TRUE(acquired.ok());
    EXPECT_FALSE(acquired.value().fromCache)
        << "a foreign name under our key must read as a miss";
    EXPECT_EQ(acquired.value().trace.name(), "real");
}

} // namespace
} // namespace ibp
