/**
 * @file
 * Tests of the trace container and both serialisation formats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace ibp {
namespace {

Trace
sampleTrace()
{
    Trace trace("sample");
    trace.setSeed(0xfeedbeef12345678ULL);
    trace.append({0x1000, 0x2000, BranchKind::IndirectCall, true});
    trace.append({0x1004, 0x1010, BranchKind::Conditional, false});
    trace.append({0x1008, 0x3000, BranchKind::IndirectJump, true});
    trace.append({0x100c, 0x4000, BranchKind::IndirectSwitch, true});
    trace.append({0x1010, 0x0ff0, BranchKind::Return, true});
    return trace;
}

TEST(BranchRecord, PredictedIndirectKinds)
{
    const auto predicted = [](BranchKind kind) {
        return BranchRecord{0, 0, kind, true}.isPredictedIndirect();
    };
    EXPECT_TRUE(predicted(BranchKind::IndirectCall));
    EXPECT_TRUE(predicted(BranchKind::IndirectJump));
    EXPECT_TRUE(predicted(BranchKind::IndirectSwitch));
    EXPECT_FALSE(predicted(BranchKind::Conditional));
    EXPECT_FALSE(predicted(BranchKind::Return));
}

TEST(BranchKindName, AllKindsNamed)
{
    EXPECT_EQ(branchKindName(BranchKind::Conditional), "cond");
    EXPECT_EQ(branchKindName(BranchKind::IndirectCall), "icall");
    EXPECT_EQ(branchKindName(BranchKind::IndirectJump), "ijump");
    EXPECT_EQ(branchKindName(BranchKind::IndirectSwitch), "iswitch");
    EXPECT_EQ(branchKindName(BranchKind::Return), "return");
}

TEST(Trace, CountsByKind)
{
    const Trace trace = sampleTrace();
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace.countPredictedIndirect(), 3u);
    EXPECT_EQ(trace.countKind(BranchKind::Conditional), 1u);
    EXPECT_EQ(trace.countKind(BranchKind::Return), 1u);
}

TEST(TraceIo, BinaryRoundTripPreservesEverything)
{
    const Trace original = sampleTrace();
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceBinary(original, buffer);
    const Trace loaded = readTraceBinary(buffer).value();
    EXPECT_EQ(loaded, original);
    EXPECT_EQ(loaded.seed(), original.seed());
    EXPECT_EQ(loaded.name(), "sample");
}

TEST(TraceIo, TextRoundTripPreservesEverything)
{
    const Trace original = sampleTrace();
    std::stringstream buffer;
    writeTraceText(original, buffer);
    const Trace loaded = readTraceText(buffer).value();
    EXPECT_EQ(loaded, original);
}

TEST(TraceIo, TextFormatIsHumanReadable)
{
    std::stringstream buffer;
    writeTraceText(sampleTrace(), buffer);
    const std::string text = buffer.str();
    EXPECT_NE(text.find("# name sample"), std::string::npos);
    EXPECT_NE(text.find("icall 0x1000 0x2000 1"), std::string::npos);
    EXPECT_NE(text.find("cond 0x1004 0x1010 0"), std::string::npos);
}

TEST(TraceIo, TextReaderSkipsBlankLinesAndComments)
{
    std::stringstream buffer;
    buffer << "# ibp-trace v1\n\n# arbitrary comment\n"
           << "icall 0x10 0x20 1\n";
    const Trace trace = readTraceText(buffer).value();
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].pc, 0x10u);
    EXPECT_EQ(trace[0].target, 0x20u);
}

TEST(TraceIo, TextRoundTripPreservesNameWithSpaces)
{
    // Regression test: the text reader used `meta >> name`, which
    // stops at the first space, so "SPEC95 gcc -O2" came back as
    // "SPEC95" and the round trip silently renamed the trace.
    Trace original("SPEC95 gcc -O2");
    original.append({0x10, 0x20, BranchKind::IndirectCall, true});
    std::stringstream buffer;
    ASSERT_TRUE(writeTraceText(original, buffer).ok());
    const Trace loaded = readTraceText(buffer).value();
    EXPECT_EQ(loaded.name(), "SPEC95 gcc -O2");
    EXPECT_EQ(loaded, original);
}

TEST(TraceIo, BinaryRoundTripOfEmptyTrace)
{
    Trace empty("nothing");
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceBinary(empty, buffer);
    const Trace loaded = readTraceBinary(buffer).value();
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.name(), "nothing");
}

TEST(TraceIo, BinaryRoundTripOfLargeRandomishTrace)
{
    Trace trace("big");
    for (unsigned i = 0; i < 10000; ++i) {
        trace.append({static_cast<Addr>(i * 4),
                      static_cast<Addr>(mix64(i) & 0xfffffffcu),
                      static_cast<BranchKind>(i % 5), i % 3 != 0});
    }
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeTraceBinary(trace, buffer);
    EXPECT_EQ(readTraceBinary(buffer).value(), trace);
}

} // namespace
} // namespace ibp
