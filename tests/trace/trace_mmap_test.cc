/**
 * @file
 * Tests of the zero-copy mmap trace formats (`.ibpm` v2 and v3):
 * round trips of the columnar v3 writer and the v2-pinned writer,
 * deterministic encoding, v2→v3 migration (a warm v2 cache keeps
 * serving), and — most importantly — that every class of damaged
 * input (truncation, bad magic, version skew, misaligned arrays,
 * record-size mismatch, torn headers) in either format is rejected
 * as a clean error rather than read out of bounds. The sanitizer CI
 * jobs run these same cases under ASan+UBSan.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "trace/trace_cache.hh"
#include "trace/trace_io.hh"
#include "trace/trace_mmap.hh"
#include "util/bits.hh"

namespace ibp {
namespace {

class TraceMmapTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = testing::TempDir() + "/ibp_trace_mmap_test";
        std::filesystem::remove_all(_dir);
        std::filesystem::create_directories(_dir);
        _path = _dir + "/trace.ibpm";
    }
    void
    TearDown() override
    {
        unsetenv("IBP_TRACE_FORMAT");
        std::filesystem::remove_all(_dir);
    }

    std::string _dir;
    std::string _path;
};

Trace
sampleTrace()
{
    Trace trace("porky");
    trace.setSeed(0x5eed);
    trace.setSiteCountHint(3);
    trace.append({0x1000, 0x2000, BranchKind::IndirectCall, true});
    trace.append({0x1004, 0x3000, BranchKind::IndirectJump, true});
    trace.append({0x1008, 0x0000, BranchKind::Conditional, false});
    trace.append({0x100c, 0x4000, BranchKind::Return, true});
    return trace;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Recompute a v2 header checksum (fnv1a64 over the first 56 bytes)
 *  after a deliberate header patch, so validation failures exercise
 *  the intended field check rather than the checksum. */
void
fixupChecksumV2(std::string &bytes)
{
    ASSERT_GE(bytes.size(), 64u);
    std::uint64_t words[7];
    std::memcpy(words, bytes.data(), 56);
    const std::uint64_t sum =
        fnv1a64(words, 7, 0xcbf29ce484222325ULL);
    std::memcpy(bytes.data() + 56, &sum, 8);
}

/** Same for a v3 header (fnv1a64 over the first 80 bytes). */
void
fixupChecksumV3(std::string &bytes)
{
    ASSERT_GE(bytes.size(), 128u);
    std::uint64_t words[10];
    std::memcpy(words, bytes.data(), 80);
    const std::uint64_t sum =
        fnv1a64(words, 10, 0xcbf29ce484222325ULL);
    std::memcpy(bytes.data() + 80, &sum, 8);
}

TEST_F(TraceMmapTest, RoundTripPreservesEverything)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    const Trace original = sampleTrace();
    ASSERT_TRUE(saveTraceMmap(original, _path).ok());
    const auto loaded = loadTraceMmap(_path);
    ASSERT_TRUE(loaded.ok());
    const Trace &trace = loaded.value();
    EXPECT_EQ(trace, original);
    EXPECT_EQ(trace.name(), "porky");
    EXPECT_EQ(trace.seed(), 0x5eedu);
    EXPECT_EQ(trace.siteCountHint(), 3u);
    EXPECT_EQ(trace.readPath(), TraceReadPath::Mmap);
    // The default writer produces the columnar v3 layout, which the
    // reader serves as zero-copy columns (trace_block.hh slices
    // them without a transpose).
    EXPECT_TRUE(trace.isColumnar());
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[1].target, 0x3000u);
    EXPECT_EQ(trace[2].kind, BranchKind::Conditional);
    EXPECT_FALSE(trace[2].taken);
    EXPECT_EQ(trace[3].kind, BranchKind::Return);
}

TEST_F(TraceMmapTest, V2PinnedWriterRoundTrips)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    const Trace original = sampleTrace();
    setenv("IBP_TRACE_FORMAT", "v2", 1);
    ASSERT_TRUE(saveTraceMmap(original, _path).ok());
    unsetenv("IBP_TRACE_FORMAT");

    const std::string bytes = readFile(_path);
    ASSERT_GE(bytes.size(), 8u);
    EXPECT_EQ(bytes.substr(0, 7), "IBPMAP2");

    const auto loaded = loadTraceMmap(_path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), original);
    EXPECT_FALSE(loaded.value().isColumnar());
    EXPECT_EQ(loaded.value().readPath(), TraceReadPath::Mmap);
}

TEST_F(TraceMmapTest, WarmV2CacheServesAcrossFormatChange)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    // A cache populated before the columnar format must keep serving
    // after the upgrade: same trace, still through the mmap reader.
    const TraceCache cache(_dir);
    const Trace original = sampleTrace();
    setenv("IBP_TRACE_FORMAT", "v2", 1);
    ASSERT_TRUE(cache.store("k", original).ok());
    unsetenv("IBP_TRACE_FORMAT");

    const auto served = cache.load("k");
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), original);
    EXPECT_EQ(served.value().readPath(), TraceReadPath::Mmap);
}

TEST_F(TraceMmapTest, EmptyTraceRoundTrips)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    Trace empty("nothing");
    empty.setSeed(7);
    ASSERT_TRUE(saveTraceMmap(empty, _path).ok());
    const auto loaded = loadTraceMmap(_path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().size(), 0u);
    EXPECT_EQ(loaded.value().name(), "nothing");
    EXPECT_EQ(loaded.value().seed(), 7u);
}

TEST_F(TraceMmapTest, EncodeIsDeterministic)
{
    const auto first = encodeTraceMmap(sampleTrace());
    const auto second = encodeTraceMmap(sampleTrace());
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value(), second.value());
    // v3 columns start 64-byte aligned (cache-line / widest-vector
    // alignment) and the stored file size matches the blob exactly.
    const std::string &bytes = first.value();
    std::uint64_t pc_offset = 0;
    std::memcpy(&pc_offset, bytes.data() + 48, 8);
    EXPECT_EQ(pc_offset % 64, 0u);
    std::uint64_t stored_size = 0;
    std::memcpy(&stored_size, bytes.data() + 72, 8);
    EXPECT_EQ(stored_size, bytes.size());
}

TEST_F(TraceMmapTest, MissingFileFails)
{
    EXPECT_FALSE(loadTraceMmap(_dir + "/absent.ibpm").ok());
}

TEST_F(TraceMmapTest, TruncatedFileFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());

    // Shorter than the header.
    std::string bytes = readFile(_path);
    writeFile(_path, bytes.substr(0, 10));
    EXPECT_FALSE(loadTraceMmap(_path).ok());

    // Header intact but the record array cut short.
    writeFile(_path, bytes.substr(0, bytes.size() - 13));
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, CorruptMagicFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());
    std::string bytes = readFile(_path);
    bytes[0] = 'X';
    fixupChecksumV3(bytes);
    writeFile(_path, bytes);
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, VersionSkewFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());
    std::string bytes = readFile(_path);
    const std::uint32_t future_version = 9;
    std::memcpy(bytes.data() + 8, &future_version, 4);
    fixupChecksumV3(bytes);
    writeFile(_path, bytes);
    // A version we do not understand must be rejected even though
    // its checksum is self-consistent.
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, MisalignedRecordsOffsetFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    // v2 field semantics: byte 48 is the record-array offset.
    setenv("IBP_TRACE_FORMAT", "v2", 1);
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());
    std::string bytes = readFile(_path);
    std::uint64_t records_offset = 0;
    std::memcpy(&records_offset, bytes.data() + 48, 8);
    records_offset += 4; // no longer 16-byte aligned
    std::memcpy(bytes.data() + 48, &records_offset, 8);
    fixupChecksumV2(bytes);
    writeFile(_path, bytes);
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, RecordSizeMismatchFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    // v2 field semantics: byte 16 is the per-record byte size.
    setenv("IBP_TRACE_FORMAT", "v2", 1);
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());
    std::string bytes = readFile(_path);
    const std::uint32_t wrong_record_bytes = 16;
    std::memcpy(bytes.data() + 16, &wrong_record_bytes, 4);
    fixupChecksumV2(bytes);
    writeFile(_path, bytes);
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, MisalignedColumnOffsetFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());
    std::string bytes = readFile(_path);
    std::uint64_t pc_offset = 0;
    std::memcpy(&pc_offset, bytes.data() + 48, 8);
    pc_offset += 4; // no longer 64-byte aligned
    std::memcpy(bytes.data() + 48, &pc_offset, 8);
    fixupChecksumV3(bytes);
    writeFile(_path, bytes);
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, ColumnFileSizeMismatchFails)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());

    // A stored size that disagrees with the actual file must be
    // rejected (tail truncation or padding), even with the header
    // checksum made self-consistent.
    std::string bytes = readFile(_path);
    std::uint64_t stored_size = 0;
    std::memcpy(&stored_size, bytes.data() + 72, 8);
    stored_size += 64;
    std::memcpy(bytes.data() + 72, &stored_size, 8);
    fixupChecksumV3(bytes);
    writeFile(_path, bytes);
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, TornHeaderFailsChecksum)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    ASSERT_TRUE(saveTraceMmap(sampleTrace(), _path).ok());
    std::string bytes = readFile(_path);
    bytes[33] = static_cast<char>(bytes[33] ^ 0x40); // record count
    writeFile(_path, bytes);
    EXPECT_FALSE(loadTraceMmap(_path).ok());
}

TEST_F(TraceMmapTest, CacheServesMmapEntries)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    const TraceCache cache(_dir);
    const Trace original = sampleTrace();
    ASSERT_TRUE(cache.store("k", original).ok());
    EXPECT_TRUE(std::filesystem::exists(cache.pathFor("k")));
    EXPECT_EQ(cache.pathFor("k").substr(
                  cache.pathFor("k").size() - 5),
              ".ibpm");
    const auto loaded = cache.load("k");
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), original);
    EXPECT_EQ(loaded.value().readPath(), TraceReadPath::Mmap);
}

TEST_F(TraceMmapTest, CacheFallsBackToLegacyStreamEntries)
{
    const TraceCache cache(_dir);
    const Trace original = sampleTrace();
    // Only a legacy stream entry exists (a cache written before the
    // mmap format, or by a platform that cannot produce it).
    ASSERT_TRUE(
        saveTrace(original, cache.streamPathFor("k")).ok());
    const auto loaded = cache.load("k");
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), original);
    EXPECT_EQ(loaded.value().readPath(), TraceReadPath::Stream);
}

TEST_F(TraceMmapTest, CacheCorruptMmapEntryFallsBackThenMisses)
{
    if (!traceMmapSupported())
        GTEST_SKIP() << "mmap traces unsupported on this platform";
    const TraceCache cache(_dir);
    const Trace original = sampleTrace();
    ASSERT_TRUE(cache.store("k", original).ok());

    // Corrupt mmap entry + intact stream entry: load degrades to the
    // stream transport.
    ASSERT_TRUE(
        saveTrace(original, cache.streamPathFor("k")).ok());
    std::filesystem::resize_file(cache.pathFor("k"), 20);
    const auto degraded = cache.load("k");
    ASSERT_TRUE(degraded.ok());
    EXPECT_EQ(degraded.value(), original);
    EXPECT_EQ(degraded.value().readPath(), TraceReadPath::Stream);

    // Corrupt mmap entry and no stream entry: a clean miss.
    std::filesystem::remove(cache.streamPathFor("k"));
    EXPECT_FALSE(cache.load("k").ok());
}

} // namespace
} // namespace ibp
