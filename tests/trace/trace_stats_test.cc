/**
 * @file
 * Tests of the Table 1/2 trace characterisation.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"

namespace ibp {
namespace {

Trace
handMadeTrace()
{
    Trace trace("hand");
    // Site 0x100: 6 executions, 2 targets (4x 0xA, 2x 0xB).
    for (int i = 0; i < 4; ++i)
        trace.append({0x100, 0xA0, BranchKind::IndirectCall, true});
    for (int i = 0; i < 2; ++i)
        trace.append({0x100, 0xB0, BranchKind::IndirectCall, true});
    // Site 0x200: 3 executions, monomorphic switch.
    for (int i = 0; i < 3; ++i)
        trace.append({0x200, 0xC0, BranchKind::IndirectSwitch, true});
    // Site 0x300: 1 execution.
    trace.append({0x300, 0xD0, BranchKind::IndirectJump, true});
    // Conditionals and returns must not count as sites.
    for (int i = 0; i < 20; ++i)
        trace.append({0x400, 0x404, BranchKind::Conditional, true});
    trace.append({0x500, 0x90, BranchKind::Return, true});
    return trace;
}

TEST(TraceStats, CountsAndRatios)
{
    const TraceStats stats = computeTraceStats(handMadeTrace());
    EXPECT_EQ(stats.indirectBranches, 10u);
    EXPECT_EQ(stats.conditionalBranches, 20u);
    EXPECT_EQ(stats.returns, 1u);
    EXPECT_DOUBLE_EQ(stats.condPerIndirect, 2.0);
    EXPECT_DOUBLE_EQ(stats.virtualCallFraction, 0.6);
}

TEST(TraceStats, ActiveSiteColumns)
{
    const TraceStats stats = computeTraceStats(handMadeTrace());
    // Counts: 6, 3, 1 of 10 total.
    EXPECT_EQ(stats.activeSites90, 2u); // 6+3 = 9 >= 9
    EXPECT_EQ(stats.activeSites95, 3u);
    EXPECT_EQ(stats.activeSites99, 3u);
    EXPECT_EQ(stats.activeSites100, 3u);
}

TEST(TraceStats, PerSiteDetail)
{
    const TraceStats stats = computeTraceStats(handMadeTrace());
    ASSERT_EQ(stats.sites.size(), 3u);
    // Sites are sorted by execution count.
    EXPECT_EQ(stats.sites[0].pc, 0x100u);
    EXPECT_EQ(stats.sites[0].executions, 6u);
    EXPECT_EQ(stats.sites[0].distinctTargets, 2u);
    EXPECT_NEAR(stats.sites[0].dominantTargetShare, 4.0 / 6.0, 1e-12);
    EXPECT_EQ(stats.sites[1].pc, 0x200u);
    EXPECT_NEAR(stats.sites[1].dominantTargetShare, 1.0, 1e-12);
}

TEST(TraceStats, WeightedPolymorphism)
{
    const TraceStats stats = computeTraceStats(handMadeTrace());
    // (2 targets * 6 + 1 * 3 + 1 * 1) / 10 = 1.6
    EXPECT_NEAR(stats.meanPolymorphism, 1.6, 1e-12);
}

TEST(TraceStats, EmptyTraceIsAllZero)
{
    const TraceStats stats = computeTraceStats(Trace("empty"));
    EXPECT_EQ(stats.indirectBranches, 0u);
    EXPECT_EQ(stats.activeSites100, 0u);
    EXPECT_EQ(stats.condPerIndirect, 0.0);
}

TEST(SiteExecutionCounts, MatchesByPc)
{
    const auto counts = siteExecutionCounts(handMadeTrace());
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts.at(0x100), 6u);
    EXPECT_EQ(counts.at(0x200), 3u);
    EXPECT_EQ(counts.at(0x300), 1u);
}

} // namespace
} // namespace ibp
