/**
 * @file
 * Tests of the RunMetrics telemetry collector: aggregation
 * arithmetic, concurrent recording from worker threads, and the
 * JSON round trip.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "report/run_metrics.hh"

namespace ibp {
namespace {

CellMetrics
makeCell(const std::string &column, const std::string &benchmark,
         std::uint64_t branches, double seconds,
         std::uint64_t occupancy)
{
    CellMetrics cell;
    cell.column = column;
    cell.benchmark = benchmark;
    cell.branches = branches;
    cell.seconds = seconds;
    cell.tableOccupancy = occupancy;
    cell.tableCapacity = occupancy * 2;
    return cell;
}

TEST(RunMetricsTest, AggregatesOverCells)
{
    RunMetrics metrics;
    metrics.recordCell(makeCell("a", "idl", 1000, 0.5, 64));
    metrics.recordCell(makeCell("a", "gcc", 3000, 1.5, 256));
    metrics.recordCell(makeCell("b", "idl", 500, 0.25, 32));
    metrics.recordRunWindow(1.0);
    metrics.recordThreads(4);

    EXPECT_EQ(metrics.cellCount(), 3u);
    EXPECT_EQ(metrics.totalBranches(), 4500u);
    EXPECT_DOUBLE_EQ(metrics.cellSeconds(), 2.25);
    EXPECT_DOUBLE_EQ(metrics.runSeconds(), 1.0);
    EXPECT_DOUBLE_EQ(metrics.branchesPerSecond(), 4500.0);
    EXPECT_EQ(metrics.peakTableOccupancy(), 256u);
    EXPECT_EQ(metrics.threads(), 4u);
}

TEST(RunMetricsTest, EmptyMetricsAreZero)
{
    const RunMetrics metrics;
    EXPECT_EQ(metrics.totalBranches(), 0u);
    EXPECT_DOUBLE_EQ(metrics.branchesPerSecond(), 0.0);
    EXPECT_EQ(metrics.peakTableOccupancy(), 0u);
}

TEST(RunMetricsTest, ThreadCountKeepsMaximum)
{
    RunMetrics metrics;
    metrics.recordThreads(2);
    metrics.recordThreads(8);
    metrics.recordThreads(4);
    EXPECT_EQ(metrics.threads(), 8u);
}

TEST(RunMetricsTest, ConcurrentRecordingLosesNothing)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kCellsPerThread = 250;

    RunMetrics metrics;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&metrics, t]() {
            for (unsigned i = 0; i < kCellsPerThread; ++i) {
                metrics.recordCell(makeCell(
                    "col" + std::to_string(t),
                    "bench" + std::to_string(i), 10, 0.001, t + 1));
                metrics.recordRunWindow(0.5);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(metrics.cellCount(), kThreads * kCellsPerThread);
    EXPECT_EQ(metrics.totalBranches(),
              10u * kThreads * kCellsPerThread);
    EXPECT_NEAR(metrics.runSeconds(),
                0.5 * kThreads * kCellsPerThread, 1e-6);
    EXPECT_EQ(metrics.peakTableOccupancy(), kThreads);
}

TEST(RunMetricsTest, JsonRoundTripPreservesEverything)
{
    RunMetrics metrics;
    metrics.recordCell(makeCell("BTB", "idl", 123456, 0.75, 1844));
    metrics.recordCell(makeCell("BTB-2bc", "gcc", 7890, 0.125, 99));
    metrics.recordRunWindow(0.875);
    metrics.recordThreads(3);

    const RunMetrics parsed = RunMetrics::fromJson(
        Json::parse(metrics.toJson().dump(2)));

    EXPECT_EQ(parsed.totalBranches(), metrics.totalBranches());
    EXPECT_DOUBLE_EQ(parsed.runSeconds(), metrics.runSeconds());
    EXPECT_DOUBLE_EQ(parsed.branchesPerSecond(),
                     metrics.branchesPerSecond());
    EXPECT_EQ(parsed.threads(), metrics.threads());
    EXPECT_EQ(parsed.peakTableOccupancy(),
              metrics.peakTableOccupancy());

    const auto original = metrics.cells();
    const auto cells = parsed.cells();
    ASSERT_EQ(cells.size(), original.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].column, original[i].column);
        EXPECT_EQ(cells[i].benchmark, original[i].benchmark);
        EXPECT_EQ(cells[i].branches, original[i].branches);
        EXPECT_DOUBLE_EQ(cells[i].seconds, original[i].seconds);
        EXPECT_EQ(cells[i].tableOccupancy,
                  original[i].tableOccupancy);
        EXPECT_EQ(cells[i].tableCapacity,
                  original[i].tableCapacity);
    }
}

TEST(RunMetricsTest, SimdBlockRoundTripsAndStaysOptional)
{
    RunMetrics metrics;
    metrics.recordCell(makeCell("BTB", "idl", 123456, 0.75, 1844));
    // Artifacts from before the SIMD engine carry no simd block and
    // must keep parsing that way.
    EXPECT_FALSE(metrics.hasSimd());
    const RunMetrics legacy = RunMetrics::fromJson(
        Json::parse(metrics.toJson().dump(2)));
    EXPECT_FALSE(legacy.hasSimd());

    SimdStats stats;
    stats.dispatchLevel = "sse2";
    stats.fallbackReason = "cpu-lacks-avx2";
    stats.columnarBlocks = 1687;
    stats.transposedBlocks = 3;
    stats.skippedRecords = 41;
    stats.laneColumns = 637;
    stats.genericColumns = 7;
    stats.laneMachines = 728;
    metrics.recordSimd(stats);
    // A second record accumulates counters but keeps the dispatch
    // strings as a process-wide fact.
    metrics.recordSimd(stats);
    ASSERT_TRUE(metrics.hasSimd());

    const RunMetrics parsed = RunMetrics::fromJson(
        Json::parse(metrics.toJson().dump(2)));
    ASSERT_TRUE(parsed.hasSimd());
    const SimdStats simd = parsed.simd();
    EXPECT_EQ(simd.dispatchLevel, "sse2");
    EXPECT_EQ(simd.fallbackReason, "cpu-lacks-avx2");
    EXPECT_EQ(simd.columnarBlocks, 2u * 1687);
    EXPECT_EQ(simd.transposedBlocks, 2u * 3);
    EXPECT_EQ(simd.skippedRecords, 2u * 41);
    EXPECT_EQ(simd.laneColumns, 2u * 637);
    EXPECT_EQ(simd.genericColumns, 2u * 7);
    EXPECT_EQ(simd.laneMachines, 2u * 728);
}

} // namespace
} // namespace ibp
