/**
 * @file
 * Tests of the minimal JSON value type: construction, access,
 * serialisation, parsing, and round-tripping.
 */

#include <gtest/gtest.h>

#include "util/json.hh"

namespace ibp {
namespace {

TEST(JsonTest, ScalarsRoundTrip)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(24.91).dump(), "24.91");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");

    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(Json::parse("\"x\"").asString(), "x");
}

TEST(JsonTest, NumbersSurviveDumpParse)
{
    for (const double value :
         {0.0, 1.0, -1.0, 24.91, 0.1, 1e-9, 123456789.123456,
          1.0 / 3.0, 2e15, 33414617.5}) {
        const Json parsed = Json::parse(Json(value).dump());
        EXPECT_EQ(parsed.asNumber(), value) << value;
    }
}

TEST(JsonTest, LargeCountsKeepIntegerPrecision)
{
    const std::uint64_t branches = (1ULL << 51) + 12345;
    const Json parsed = Json::parse(Json(branches).dump());
    EXPECT_EQ(parsed.asUint(), branches);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder)
{
    Json object = Json::object();
    object.set("zeta", 1);
    object.set("alpha", 2);
    EXPECT_EQ(object.dump(), "{\"zeta\":1,\"alpha\":2}");
    // Overwriting keeps the original position.
    object.set("zeta", 3);
    EXPECT_EQ(object.dump(), "{\"zeta\":3,\"alpha\":2}");
}

TEST(JsonTest, NestedStructuresRoundTrip)
{
    Json root = Json::object();
    Json cells = Json::array();
    Json row = Json::array();
    row.push(Json(28.1));
    row.push(Json()); // empty cell
    cells.push(std::move(row));
    root.set("cells", std::move(cells));
    root.set("quick", true);

    const Json parsed = Json::parse(root.dump(2));
    EXPECT_TRUE(parsed.at("quick").asBool());
    const Json &cell_row = parsed.at("cells").at(0);
    EXPECT_DOUBLE_EQ(cell_row.at(0).asNumber(), 28.1);
    EXPECT_TRUE(cell_row.at(1).isNull());
}

TEST(JsonTest, StringEscapesRoundTrip)
{
    const std::string nasty = "a\"b\\c\nd\te\x01f";
    const Json parsed = Json::parse(Json(nasty).dump());
    EXPECT_EQ(parsed.asString(), nasty);
    EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").asString(),
              "A\xc3\xa9");
}

TEST(JsonTest, AccessHelpers)
{
    Json object = Json::object();
    object.set("name", "fig02");
    object.set("scale", 0.25);
    object.set("none", Json());
    EXPECT_TRUE(object.contains("name"));
    EXPECT_FALSE(object.contains("missing"));
    EXPECT_EQ(object.stringOr("name", "x"), "fig02");
    EXPECT_EQ(object.stringOr("missing", "x"), "x");
    EXPECT_DOUBLE_EQ(object.numberOr("scale", 1.0), 0.25);
    EXPECT_DOUBLE_EQ(object.numberOr("none", 7.0), 7.0);
}

TEST(JsonTest, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse(""), JsonParseError);
    EXPECT_THROW(Json::parse("{"), JsonParseError);
    EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(Json::parse("tru"), JsonParseError);
    EXPECT_THROW(Json::parse("1.2.3"), JsonParseError);
    EXPECT_THROW(Json::parse("{} extra"), JsonParseError);
}

TEST(JsonTest, ParseErrorReportsOffset)
{
    try {
        Json::parse("[1, x]");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &error) {
        EXPECT_EQ(error.offset(), 4u);
    }
}

} // namespace
} // namespace ibp
