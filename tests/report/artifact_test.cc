/**
 * @file
 * Tests of run artifacts: table serialisation, the write -> load
 * round trip through an actual file, and schema validation.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "report/artifact.hh"

namespace ibp {
namespace {

ResultTable
sampleTable()
{
    ResultTable table("Figure 2: BTB rates (%)", "benchmark");
    table.addColumn("BTB");
    table.addColumn("BTB-2bc");
    const unsigned avg = table.addRow("AVG");
    table.set(avg, 0, 28.1);
    table.set(avg, 1, 24.9);
    const unsigned idl = table.addRow("idl");
    table.set(idl, 0, 12.25);
    // idl/BTB-2bc intentionally left empty.
    return table;
}

RunArtifact
sampleArtifact()
{
    RunArtifact artifact;
    artifact.manifest = buildManifest();
    artifact.manifest.slug = "fig02";
    artifact.manifest.title = "Figure 2";
    artifact.manifest.eventScale = 0.25;
    artifact.manifest.threads = 4;
    artifact.manifest.quick = true;
    artifact.tables.push_back(sampleTable());
    artifact.notes.push_back("paper anchor: AVG 28.1 / 24.9");
    CellMetrics cell;
    cell.column = "BTB";
    cell.benchmark = "idl";
    cell.branches = 424242;
    cell.seconds = 0.125;
    cell.tableOccupancy = 1844;
    cell.tableCapacity = 4096;
    artifact.metrics.recordCell(cell);
    artifact.metrics.recordRunWindow(0.25);
    artifact.metrics.recordThreads(4);
    return artifact;
}

void
expectTablesEqual(const ResultTable &a, const ResultTable &b)
{
    EXPECT_EQ(a.title(), b.title());
    EXPECT_EQ(a.rowHeader(), b.rowHeader());
    EXPECT_EQ(a.precision(), b.precision());
    ASSERT_EQ(a.numRows(), b.numRows());
    ASSERT_EQ(a.numCols(), b.numCols());
    for (unsigned r = 0; r < a.numRows(); ++r) {
        EXPECT_EQ(a.rowLabel(r), b.rowLabel(r));
        for (unsigned c = 0; c < a.numCols(); ++c) {
            EXPECT_EQ(a.colLabel(c), b.colLabel(c));
            const auto cell_a = a.get(r, c);
            const auto cell_b = b.get(r, c);
            ASSERT_EQ(cell_a.has_value(), cell_b.has_value());
            if (cell_a) {
                EXPECT_DOUBLE_EQ(*cell_a, *cell_b);
            }
        }
    }
}

TEST(ArtifactTest, TableJsonRoundTrip)
{
    const ResultTable table = sampleTable();
    const ResultTable parsed = tableFromJson(
        Json::parse(tableToJson(table).dump(2)));
    expectTablesEqual(table, parsed);
}

TEST(ArtifactTest, WriteLoadRoundTrip)
{
    const RunArtifact artifact = sampleArtifact();
    const std::string path =
        testing::TempDir() + "/ibp_artifact_test/fig02.json";
    ASSERT_TRUE(artifact.write(path).ok()); // creates the directory

    const RunArtifact loaded = RunArtifact::load(path).value();
    EXPECT_EQ(loaded.manifest.slug, "fig02");
    EXPECT_EQ(loaded.manifest.title, "Figure 2");
    EXPECT_EQ(loaded.manifest.gitSha, artifact.manifest.gitSha);
    EXPECT_EQ(loaded.manifest.compiler,
              artifact.manifest.compiler);
    EXPECT_DOUBLE_EQ(loaded.manifest.eventScale, 0.25);
    EXPECT_EQ(loaded.manifest.threads, 4u);
    EXPECT_TRUE(loaded.manifest.quick);

    ASSERT_EQ(loaded.tables.size(), 1u);
    expectTablesEqual(loaded.tables[0], artifact.tables[0]);
    ASSERT_EQ(loaded.notes.size(), 1u);
    EXPECT_EQ(loaded.notes[0], artifact.notes[0]);
    EXPECT_EQ(loaded.metrics.totalBranches(), 424242u);
    EXPECT_DOUBLE_EQ(loaded.metrics.runSeconds(), 0.25);
    EXPECT_EQ(loaded.metrics.threads(), 4u);

    // A second round trip through JSON must be byte-stable (the
    // regression gate depends on artifacts not drifting).
    EXPECT_EQ(loaded.toJson().dump(2), artifact.toJson().dump(2));
}

TEST(ArtifactTest, FindTableByTitle)
{
    const RunArtifact artifact = sampleArtifact();
    EXPECT_NE(artifact.findTable("Figure 2: BTB rates (%)"),
              nullptr);
    EXPECT_EQ(artifact.findTable("nonexistent"), nullptr);
}

TEST(ArtifactTest, BuildManifestIsPopulated)
{
    const RunManifest manifest = buildManifest();
    EXPECT_FALSE(manifest.compiler.empty());
    EXPECT_FALSE(manifest.timestamp.empty());
    // ISO-8601 UTC: 2026-08-06T12:00:00Z
    EXPECT_EQ(manifest.timestamp.size(), 20u);
    EXPECT_EQ(manifest.timestamp.back(), 'Z');
}

TEST(ArtifactTest, WrongSchemaIsRecoverable)
{
    // A bad artifact throws (load() converts that into a RunError);
    // it must never abort the consuming process.
    EXPECT_THROW(
        RunArtifact::fromJson(Json::parse("{\"schema\":\"other\"}")),
        RunException);
    EXPECT_THROW(RunArtifact::fromJson(Json::parse(
                     "{\"schema\":\"ibp-run-artifact\","
                     "\"version\":999}")),
                 RunException);
}

TEST(ArtifactTest, LoadRejectsMalformedFile)
{
    const std::string path =
        testing::TempDir() + "/ibp_artifact_bad.json";
    std::ofstream(path) << "{not json";
    const auto result = RunArtifact::load(path);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("json parse error"),
              std::string::npos);
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
}

TEST(ArtifactTest, LoadReportsMissingFile)
{
    const auto result =
        RunArtifact::load(testing::TempDir() + "/ibp_no_such.json");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("cannot open"),
              std::string::npos);
}

TEST(ArtifactTest, LoadRejectsMalformedTables)
{
    // Structurally broken tables (cell rows vs row labels) are a
    // recoverable error too, not an assertion.
    const std::string path =
        testing::TempDir() + "/ibp_artifact_badtable.json";
    std::ofstream(path)
        << "{\"schema\":\"ibp-run-artifact\",\"version\":1,"
           "\"manifest\":{},\"metrics\":{},"
           "\"tables\":[{\"title\":\"t\",\"row_header\":\"r\","
           "\"columns\":[\"a\"],\"rows\":[\"x\",\"y\"],"
           "\"cells\":[[1.0]]}]}";
    const auto result = RunArtifact::load(path);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("row labels"),
              std::string::npos);
}

TEST(ArtifactTest, WriteLeavesNoTempFileBehind)
{
    const RunArtifact artifact = sampleArtifact();
    const std::string dir =
        testing::TempDir() + "/ibp_artifact_atomic";
    const std::string path = dir + "/fig02.json";
    ASSERT_TRUE(artifact.write(path).ok());
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(ArtifactTest, WriteReportsUnwritableDirectory)
{
    const RunArtifact artifact = sampleArtifact();
    // A regular file where a directory is needed cannot be created.
    const std::string blocker =
        testing::TempDir() + "/ibp_artifact_blocker";
    std::ofstream(blocker) << "file";
    const auto result = artifact.write(blocker + "/sub/fig.json");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, ErrorKind::Permanent);
}

} // namespace
} // namespace ibp
