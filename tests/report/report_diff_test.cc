/**
 * @file
 * Tests of the baseline regression gate: tolerance arithmetic,
 * structural drift detection, manifest checks, and the throughput
 * floor. Exercises the same diffArtifacts() the report_diff CLI
 * wraps.
 */

#include <gtest/gtest.h>

#include "report/diff.hh"

namespace ibp {
namespace {

RunArtifact
makeArtifact(double avg_btb = 28.1, double avg_2bc = 24.9)
{
    RunArtifact artifact;
    artifact.manifest.slug = "fig02";
    artifact.manifest.eventScale = 0.25;
    ResultTable table("Figure 2", "benchmark");
    table.addColumn("BTB");
    table.addColumn("BTB-2bc");
    const unsigned avg = table.addRow("AVG");
    table.set(avg, 0, avg_btb);
    table.set(avg, 1, avg_2bc);
    artifact.tables.push_back(std::move(table));
    artifact.metrics.recordRunWindow(1.0);
    CellMetrics cell;
    cell.column = "BTB";
    cell.benchmark = "AVG";
    cell.branches = 1000000;
    artifact.metrics.recordCell(cell);
    return artifact;
}

TEST(ReportDiffTest, IdenticalArtifactsPass)
{
    const RunArtifact artifact = makeArtifact();
    const DiffReport report = diffArtifacts(artifact, artifact);
    EXPECT_TRUE(report.passed()) << report.summary();
    EXPECT_EQ(report.cellsCompared, 2u);
    EXPECT_NE(report.summary().find("PASS"), std::string::npos);
}

TEST(ReportDiffTest, DriftWithinTolerancePasses)
{
    // 28.1 -> 28.15: within the 0.1 absolute tolerance.
    const DiffReport report =
        diffArtifacts(makeArtifact(28.15), makeArtifact());
    EXPECT_TRUE(report.passed()) << report.summary();
}

TEST(ReportDiffTest, DriftBeyondToleranceFails)
{
    // 28.1 -> 29.5: 1.4pp off, 5% relative - beyond both bounds.
    const DiffReport report =
        diffArtifacts(makeArtifact(29.5), makeArtifact());
    EXPECT_FALSE(report.passed());
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_NE(report.issues[0].where.find("[AVG][BTB]"),
              std::string::npos);
    EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}

TEST(ReportDiffTest, RelativeToleranceCoversLargeValues)
{
    DiffOptions options;
    options.absTolerance = 0.0;
    options.relTolerance = 0.05;
    // 28.1 -> 29.0: 3.2% relative drift, allowed at 5%.
    EXPECT_TRUE(diffArtifacts(makeArtifact(29.0), makeArtifact(),
                              options)
                    .passed());
    // 28.1 -> 30.0: 6.8% relative drift, rejected.
    EXPECT_FALSE(diffArtifacts(makeArtifact(30.0), makeArtifact(),
                               options)
                     .passed());
}

TEST(ReportDiffTest, MissingTableFails)
{
    RunArtifact fresh = makeArtifact();
    fresh.tables.clear();
    const DiffReport report =
        diffArtifacts(fresh, makeArtifact());
    EXPECT_FALSE(report.passed());
    EXPECT_NE(report.issues[0].message.find("missing"),
              std::string::npos);
}

TEST(ReportDiffTest, ExtraTableFails)
{
    RunArtifact fresh = makeArtifact();
    fresh.tables.emplace_back("Extra table", "row");
    const DiffReport report =
        diffArtifacts(fresh, makeArtifact());
    EXPECT_FALSE(report.passed());
    EXPECT_NE(report.issues[0].message.find("not present in "
                                            "baseline"),
              std::string::npos);
}

TEST(ReportDiffTest, ShapeAndLabelDriftFails)
{
    RunArtifact fresh = makeArtifact();
    fresh.tables[0].addRow("extra");
    EXPECT_FALSE(diffArtifacts(fresh, makeArtifact()).passed());

    RunArtifact relabelled = makeArtifact();
    relabelled.tables[0] = [] {
        ResultTable table("Figure 2", "benchmark");
        table.addColumn("BTB");
        table.addColumn("renamed");
        const unsigned avg = table.addRow("AVG");
        table.set(avg, 0, 28.1);
        table.set(avg, 1, 24.9);
        return table;
    }();
    EXPECT_FALSE(
        diffArtifacts(relabelled, makeArtifact()).passed());
}

TEST(ReportDiffTest, EmptyVsPresentCellFails)
{
    RunArtifact fresh = makeArtifact();
    fresh.tables[0] = [] {
        ResultTable table("Figure 2", "benchmark");
        table.addColumn("BTB");
        table.addColumn("BTB-2bc");
        const unsigned avg = table.addRow("AVG");
        table.set(avg, 0, 28.1);
        // [AVG][BTB-2bc] left empty.
        return table;
    }();
    EXPECT_FALSE(diffArtifacts(fresh, makeArtifact()).passed());
}

TEST(ReportDiffTest, ManifestMismatchFailsUnlessDisabled)
{
    RunArtifact fresh = makeArtifact();
    fresh.manifest.eventScale = 1.0; // baseline ran at 0.25
    EXPECT_FALSE(diffArtifacts(fresh, makeArtifact()).passed());

    DiffOptions options;
    options.checkManifest = false;
    EXPECT_TRUE(
        diffArtifacts(fresh, makeArtifact(), options).passed());

    RunArtifact renamed = makeArtifact();
    renamed.manifest.slug = "fig03";
    EXPECT_FALSE(diffArtifacts(renamed, makeArtifact()).passed());
}

TEST(ReportDiffTest, ThroughputFloorGates)
{
    // The artifact simulates 1e6 branches in 1s -> 1e6 bps.
    DiffOptions options;
    options.minThroughput = 2e6;
    EXPECT_FALSE(diffArtifacts(makeArtifact(), makeArtifact(),
                               options)
                     .passed());
    options.minThroughput = 5e5;
    EXPECT_TRUE(diffArtifacts(makeArtifact(), makeArtifact(),
                              options)
                    .passed());
}

TEST(ReportDiffTest, ThroughputRatioGates)
{
    RunArtifact slow = makeArtifact();
    slow.metrics.recordRunWindow(9.0); // 10s total -> 1e5 bps
    DiffOptions options;
    options.throughputRatio = 0.5; // require >= 5e5 bps
    EXPECT_FALSE(
        diffArtifacts(slow, makeArtifact(), options).passed());
    EXPECT_TRUE(diffArtifacts(makeArtifact(), makeArtifact(),
                              options)
                    .passed());
}

} // namespace
} // namespace ibp
