/**
 * @file
 * Parameterized property tests sweeping the predictor configuration
 * space: every legal configuration must simulate cleanly, stay
 * deterministic, and respect structural invariants (rates in
 * [0, 100], occupancy <= capacity, p=0 equals a BTB, dominance of
 * richer organisations on crafted streams).
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/btb.hh"
#include "core/factory.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

namespace ibp {
namespace {

const Trace &
propertyTrace()
{
    static const Trace trace = [] {
        GeneratorOptions options;
        options.events = 20000;
        return generateTrace(benchmarkProfile("eqn"), options);
    }();
    return trace;
}

/** (path length, table kind, entries, ways, interleave, mix, 2bc) */
using SweepParam = std::tuple<unsigned, TableKind, std::uint64_t,
                              unsigned, InterleaveKind, KeyMix, bool>;

class TwoLevelSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    static TwoLevelConfig
    configFor(const SweepParam &param)
    {
        const auto [p, kind, entries, ways, interleave, mix,
                    hysteresis] = param;
        TableSpec spec;
        switch (kind) {
          case TableKind::Unconstrained:
            spec = TableSpec::unconstrained();
            break;
          case TableKind::FullyAssoc:
            spec = TableSpec::fullyAssoc(entries);
            break;
          case TableKind::SetAssoc:
            spec = TableSpec::setAssoc(entries, ways);
            break;
          case TableKind::Tagless:
            spec = TableSpec::tagless(entries);
            break;
        }
        TwoLevelConfig config = paperTwoLevel(p, spec);
        config.pattern.interleave = interleave;
        config.pattern.keyMix = mix;
        config.hysteresis = hysteresis;
        return config;
    }
};

TEST_P(TwoLevelSweep, SimulatesWithSaneInvariants)
{
    TwoLevelPredictor predictor(configFor(GetParam()));
    const SimResult result = simulate(predictor, propertyTrace());
    EXPECT_EQ(result.branches, propertyTrace().size());
    EXPECT_LE(result.misses, result.branches);
    EXPECT_LE(result.noPrediction, result.misses);
    EXPECT_GE(result.missPercent(), 0.0);
    EXPECT_LE(result.missPercent(), 100.0);
    if (result.tableCapacity != 0) {
        EXPECT_LE(result.tableOccupancy, result.tableCapacity);
    }
}

TEST_P(TwoLevelSweep, DeterministicAcrossRuns)
{
    TwoLevelPredictor first(configFor(GetParam()));
    TwoLevelPredictor second(configFor(GetParam()));
    EXPECT_EQ(simulate(first, propertyTrace()).misses,
              simulate(second, propertyTrace()).misses);
}

TEST_P(TwoLevelSweep, ResetRestoresColdBehaviour)
{
    TwoLevelPredictor predictor(configFor(GetParam()));
    const std::uint64_t cold =
        simulate(predictor, propertyTrace()).misses;
    predictor.reset();
    EXPECT_EQ(simulate(predictor, propertyTrace()).misses, cold);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, TwoLevelSweep,
    ::testing::Combine(
        ::testing::Values(0u, 1u, 3u, 6u, 12u),
        ::testing::Values(TableKind::SetAssoc, TableKind::Tagless),
        ::testing::Values(std::uint64_t{256}, std::uint64_t{2048}),
        ::testing::Values(1u, 4u),
        ::testing::Values(InterleaveKind::Concat,
                          InterleaveKind::Reverse),
        ::testing::Values(KeyMix::Xor),
        ::testing::Values(true)));

INSTANTIATE_TEST_SUITE_P(
    UnconstrainedGrid, TwoLevelSweep,
    ::testing::Combine(
        ::testing::Values(0u, 2u, 8u),
        ::testing::Values(TableKind::Unconstrained,
                          TableKind::FullyAssoc),
        ::testing::Values(std::uint64_t{512}),
        ::testing::Values(1u),
        ::testing::Values(InterleaveKind::Reverse,
                          InterleaveKind::Straight,
                          InterleaveKind::PingPong),
        ::testing::Values(KeyMix::Xor, KeyMix::Concat),
        ::testing::Values(true, false)));

/** p = 0 must agree with a BTB of the same table, miss for miss. */
class PathZeroEquivalence
    : public ::testing::TestWithParam<std::tuple<TableKind, bool>>
{
};

TEST_P(PathZeroEquivalence, MatchesBtb)
{
    const auto [kind, hysteresis] = GetParam();
    const TableSpec spec = kind == TableKind::Unconstrained
                               ? TableSpec::unconstrained()
                               : TableSpec::fullyAssoc(512);
    TwoLevelConfig config = unconstrainedTwoLevel(0);
    config.table = spec;
    config.hysteresis = hysteresis;
    TwoLevelPredictor two_level(config);
    BtbPredictor btb(spec, hysteresis);
    const SimResult a = simulate(two_level, propertyTrace());
    const SimResult b = simulate(btb, propertyTrace());
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.noPrediction, b.noPrediction);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PathZeroEquivalence,
    ::testing::Combine(::testing::Values(TableKind::Unconstrained,
                                         TableKind::FullyAssoc),
                       ::testing::Values(true, false)));

/** Monotonicity: an unconstrained table never loses to a bounded
 *  table of the same configuration. */
class CapacityMonotonicity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CapacityMonotonicity, BoundedNeverBeatsUnbounded)
{
    const unsigned p = GetParam();
    TwoLevelPredictor bounded(
        paperTwoLevel(p, TableSpec::fullyAssoc(128)));
    TwoLevelPredictor unbounded(
        paperTwoLevel(p, TableSpec::unconstrained()));
    const double bounded_rate =
        simulate(bounded, propertyTrace()).missPercent();
    const double unbounded_rate =
        simulate(unbounded, propertyTrace()).missPercent();
    // LRU on an inclusive-capacity table can only add misses (small
    // slack for hysteresis-state divergence after evictions).
    EXPECT_GE(bounded_rate, unbounded_rate - 0.5);
}

INSTANTIATE_TEST_SUITE_P(PathLengths, CapacityMonotonicity,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

/** Hybrids must never crash and must stay within the component
 *  envelope on every combination. */
class HybridSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(HybridSweep, SimulatesAndIsDeterministic)
{
    const auto [p1, p2] = GetParam();
    HybridPredictor first(
        paperHybrid(p1, p2, TableSpec::setAssoc(256, 2)));
    HybridPredictor second(
        paperHybrid(p1, p2, TableSpec::setAssoc(256, 2)));
    const SimResult a = simulate(first, propertyTrace());
    const SimResult b = simulate(second, propertyTrace());
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_LE(a.missPercent(), 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    PathPairs, HybridSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 3u),
                       ::testing::Values(2u, 5u, 9u)));

} // namespace
} // namespace ibp
