/**
 * @file
 * Tests of the ResultTable renderer used by every bench binary.
 */

#include <gtest/gtest.h>

#include "util/format.hh"

namespace ibp {
namespace {

ResultTable
sample()
{
    ResultTable table("Demo", "bench");
    table.addColumn("a");
    table.addColumn("b");
    table.addRow("x");
    table.addRow("y");
    table.set(0, 0, 1.234);
    table.set(1, 1, 56.789);
    return table;
}

TEST(ResultTable, DimensionsAndLabels)
{
    const ResultTable table = sample();
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.numCols(), 2u);
    EXPECT_EQ(table.rowLabel(1), "y");
    EXPECT_EQ(table.colLabel(0), "a");
}

TEST(ResultTable, GetReturnsSetValuesAndEmptyForUnset)
{
    const ResultTable table = sample();
    ASSERT_TRUE(table.get(0, 0).has_value());
    EXPECT_DOUBLE_EQ(*table.get(0, 0), 1.234);
    EXPECT_FALSE(table.get(0, 1).has_value());
}

TEST(ResultTable, SetByLabelCreatesRowsAndColumns)
{
    ResultTable table("T", "r");
    table.set("row1", "colA", 1.0);
    table.set("row2", "colB", 2.0);
    table.set("row1", "colB", 3.0);
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.numCols(), 2u);
    EXPECT_DOUBLE_EQ(*table.get("row1", "colB"), 3.0);
    EXPECT_FALSE(table.get("row2", "colA").has_value());
    EXPECT_FALSE(table.get("nope", "colA").has_value());
}

TEST(ResultTable, TextRenderingAlignsAndMarksMissing)
{
    const std::string text = sample().toText();
    EXPECT_NE(text.find("== Demo =="), std::string::npos);
    EXPECT_NE(text.find("1.23"), std::string::npos);
    EXPECT_NE(text.find("56.79"), std::string::npos);
    EXPECT_NE(text.find('-'), std::string::npos);
}

TEST(ResultTable, CsvRendering)
{
    const std::string csv = sample().toCsv();
    EXPECT_NE(csv.find("bench,a,b"), std::string::npos);
    EXPECT_NE(csv.find("x,1.23,"), std::string::npos);
    EXPECT_NE(csv.find("y,,56.79"), std::string::npos);
}

TEST(ResultTable, MarkdownRendering)
{
    const std::string md = sample().toMarkdown();
    EXPECT_NE(md.find("| bench | a | b |"), std::string::npos);
    EXPECT_NE(md.find("| x | 1.23 | - |"), std::string::npos);
}

TEST(ResultTable, PrecisionControlsDigits)
{
    ResultTable table = sample();
    table.setPrecision(0);
    EXPECT_NE(table.toCsv().find("x,1,"), std::string::npos);
}

TEST(FormatFixed, Rounds)
{
    EXPECT_EQ(formatFixed(1.005, 2), "1.00"); // bankers-ish via printf
    EXPECT_EQ(formatFixed(2.675, 1), "2.7");
    EXPECT_EQ(formatFixed(-3.14159, 3), "-3.142");
}

} // namespace
} // namespace ibp
