/**
 * @file
 * Tests of the saturating counters: the hybrid confidence counter
 * semantics (section 6.1) and the BTB-2bc hysteresis rule
 * (section 3.1).
 */

#include <gtest/gtest.h>

#include "util/sat_counter.hh"

namespace ibp {
namespace {

TEST(SatCounter, StartsAtZeroByDefault)
{
    SatCounter counter(2);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(counter.maxValue(), 3u);
    EXPECT_FALSE(counter.isConfident());
}

TEST(SatCounter, SaturatesAtBothEnds)
{
    SatCounter counter(2);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3u);
    for (int i = 0; i < 10; ++i)
        counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(SatCounter, ConfidenceThresholdIsUpperHalf)
{
    SatCounter counter(2);
    counter.increment(); // 1
    EXPECT_FALSE(counter.isConfident());
    counter.increment(); // 2
    EXPECT_TRUE(counter.isConfident());
}

TEST(SatCounter, WidthOneBehavesLikeABit)
{
    SatCounter counter(1);
    EXPECT_EQ(counter.maxValue(), 1u);
    counter.increment();
    EXPECT_EQ(counter.value(), 1u);
    EXPECT_TRUE(counter.isConfident());
    counter.increment();
    EXPECT_EQ(counter.value(), 1u);
}

TEST(SatCounter, ResetReturnsToZero)
{
    SatCounter counter(3, 5);
    EXPECT_EQ(counter.value(), 5u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(HysteresisBit, ReplacesOnlyAfterTwoConsecutiveMisses)
{
    HysteresisBit bit;
    EXPECT_FALSE(bit.miss()); // first miss: keep the target
    EXPECT_TRUE(bit.miss());  // second consecutive miss: replace
    EXPECT_FALSE(bit.miss()); // counter was reset by the replacement
}

TEST(HysteresisBit, HitClearsThePendingMiss)
{
    HysteresisBit bit;
    EXPECT_FALSE(bit.miss());
    bit.hit(); // intervening hit forgives the miss
    EXPECT_FALSE(bit.miss());
    EXPECT_TRUE(bit.miss());
}

TEST(HysteresisBit, AlternatingPatternNeverReplaces)
{
    // The exact pattern that motivates BTB-2bc: A B A B ... with the
    // table holding A. Misses on B never come twice in a row.
    HysteresisBit bit;
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(bit.miss());
        bit.hit();
    }
}

} // namespace
} // namespace ibp
