/**
 * @file
 * Tests of the deterministic RNG and the discrete samplers that the
 * synthetic benchmark generator is built on.
 */

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hh"

namespace ibp {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversTheRange)
{
    Rng rng(7);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 17000; ++i)
        ++counts[rng.nextBelow(17)];
    EXPECT_EQ(counts.size(), 17u);
    for (const auto &[value, count] : counts)
        EXPECT_GT(count, 600) << "value " << value;
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto value = rng.nextInRange(-3, 3);
        EXPECT_GE(value, -3);
        EXPECT_LE(value, 3);
        saw_lo |= value == -3;
        saw_hi |= value == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng forked = a.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == forked.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(ZipfSampler, ProbabilitiesSumToOne)
{
    ZipfSampler zipf(20, 1.2);
    double total = 0;
    for (unsigned r = 0; r < zipf.size(); ++r)
        total += zipf.probability(r);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, RankZeroIsMostLikely)
{
    ZipfSampler zipf(10, 1.0);
    for (unsigned r = 1; r < zipf.size(); ++r)
        EXPECT_GT(zipf.probability(0), zipf.probability(r));
}

TEST(ZipfSampler, EmpiricalFrequenciesTrackProbabilities)
{
    ZipfSampler zipf(8, 1.5);
    Rng rng(21);
    std::map<unsigned, int> counts;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        ++counts[zipf.sample(rng)];
    for (unsigned r = 0; r < zipf.size(); ++r) {
        EXPECT_NEAR(counts[r] / static_cast<double>(draws),
                    zipf.probability(r), 0.01)
            << "rank " << r;
    }
}

TEST(ZipfSampler, PickByUnitIsMonotonic)
{
    ZipfSampler zipf(10, 1.0);
    unsigned previous = 0;
    for (double u = 0.0; u < 1.0; u += 0.001) {
        const unsigned rank = zipf.pickByUnit(u);
        EXPECT_GE(rank, previous);
        previous = rank;
    }
    EXPECT_EQ(zipf.pickByUnit(0.0), 0u);
    EXPECT_EQ(zipf.pickByUnit(0.999999), zipf.size() - 1);
}

TEST(CategoricalSampler, RespectsWeights)
{
    CategoricalSampler sampler({1.0, 0.0, 3.0});
    Rng rng(33);
    std::map<unsigned, int> counts;
    for (int i = 0; i < 40000; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.01);
    EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.01);
}

TEST(CategoricalSampler, PickByUnitSelectsByCdf)
{
    CategoricalSampler sampler({0.5, 0.5});
    EXPECT_EQ(sampler.pickByUnit(0.1), 0u);
    EXPECT_EQ(sampler.pickByUnit(0.49), 0u);
    EXPECT_EQ(sampler.pickByUnit(0.51), 1u);
    EXPECT_EQ(sampler.pickByUnit(0.99), 1u);
}

} // namespace
} // namespace ibp
