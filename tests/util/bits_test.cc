/**
 * @file
 * Bit-exact tests of the bit-manipulation helpers that every key and
 * index in the predictor library is assembled from.
 */

#include <gtest/gtest.h>

#include "util/bits.hh"

namespace ibp {
namespace {

TEST(Bits, BitsRangeExtractsTheRequestedField)
{
    EXPECT_EQ(bitsRange(0b110110, 1, 3), 0b011u);
    EXPECT_EQ(bitsRange(0xdeadbeef, 0, 32), 0xdeadbeefu);
    EXPECT_EQ(bitsRange(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bitsRange(0xff, 4, 4), 0xfu);
}

TEST(Bits, BitsRangeEdgeCases)
{
    EXPECT_EQ(bitsRange(0xffffffffffffffffULL, 0, 64),
              0xffffffffffffffffULL);
    EXPECT_EQ(bitsRange(0xff, 0, 0), 0u);
    EXPECT_EQ(bitsRange(0xff, 64, 8), 0u);
    EXPECT_EQ(bitsRange(0xff, 63, 8), 0u);
    EXPECT_EQ(bitsRange(1ULL << 63, 63, 1), 1u);
}

TEST(Bits, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(10), 0x3ffu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
    EXPECT_EQ(lowMask(70), ~std::uint64_t{0});
}

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(Bits, FloorAndCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(Bits, XorFoldCombinesAllChunks)
{
    // 0xAB ^ 0xCD = 0x66 for an 8-bit fold of 0xABCD.
    EXPECT_EQ(xorFold(0xabcd, 8), 0xabu ^ 0xcdu);
    // Folding to >= the value's width is the identity.
    EXPECT_EQ(xorFold(0x1234, 16), 0x1234u);
    EXPECT_EQ(xorFold(0x1234, 64), 0x1234u);
    // Width 0 collapses to 0.
    EXPECT_EQ(xorFold(0x1234, 0), 0u);
    // Every input bit affects the result: flipping any bit of the
    // input flips exactly one output bit.
    const std::uint64_t base = xorFold(0x0123456789abcdefULL, 8);
    for (unsigned bit = 0; bit < 64; ++bit) {
        const std::uint64_t flipped =
            xorFold(0x0123456789abcdefULL ^ (1ULL << bit), 8);
        EXPECT_EQ(std::popcount(base ^ flipped), 1) << "bit " << bit;
    }
}

TEST(Bits, Fnv1a64MatchesReferenceVector)
{
    // FNV-1a with the standard offset basis over eight zero bytes.
    const std::uint64_t zero = 0;
    const std::uint64_t hash =
        fnv1a64(&zero, 1, 0xcbf29ce484222325ULL);
    // Reference: iterating h = (h ^ 0) * prime eight times.
    std::uint64_t expected = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i)
        expected *= 0x100000001b3ULL;
    EXPECT_EQ(hash, expected);
}

TEST(Bits, Fnv1a64SeparatesPermutations)
{
    const std::uint64_t ab[] = {1, 2};
    const std::uint64_t ba[] = {2, 1};
    EXPECT_NE(fnv1a64(ab, 2, 0xcbf29ce484222325ULL),
              fnv1a64(ba, 2, 0xcbf29ce484222325ULL));
}

TEST(Bits, Mix64IsBijectiveOnSamples)
{
    // mix64 must not collapse nearby values (used for hashing keys).
    std::uint64_t previous = mix64(0);
    for (std::uint64_t i = 1; i < 1000; ++i) {
        const std::uint64_t mixed = mix64(i);
        EXPECT_NE(mixed, previous);
        previous = mixed;
    }
}

} // namespace
} // namespace ibp
