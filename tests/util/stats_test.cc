/**
 * @file
 * Tests of the statistics helpers, in particular coverageCount,
 * which implements the "active branch sites" columns of Tables 1/2.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"

namespace ibp {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.push(x);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(stat.min(), 2.0);
    EXPECT_EQ(stat.max(), 9.0);
}

TEST(Mean, HandlesEmptyAndSimple)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly)
{
    const std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(data, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(data, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(data, 25), 2.0);
    EXPECT_DOUBLE_EQ(percentile(data, 12.5), 1.5);
}

TEST(CoverageCount, MatchesPaperSemantics)
{
    // 90/95/99/100% columns: take sites in decreasing-count order
    // until the fraction of dynamic branches is covered.
    const std::vector<std::uint64_t> counts = {50, 30, 10, 5, 4, 1};
    EXPECT_EQ(coverageCount(counts, 0.50), 1u);
    EXPECT_EQ(coverageCount(counts, 0.80), 2u);
    EXPECT_EQ(coverageCount(counts, 0.90), 3u);
    EXPECT_EQ(coverageCount(counts, 0.95), 4u);
    EXPECT_EQ(coverageCount(counts, 0.99), 5u);
    EXPECT_EQ(coverageCount(counts, 1.00), 6u);
}

TEST(CoverageCount, OrderIndependent)
{
    EXPECT_EQ(coverageCount({1, 50, 5, 30, 4, 10}, 0.90), 3u);
}

TEST(CoverageCount, ZeroMassAndZeroFraction)
{
    EXPECT_EQ(coverageCount({}, 0.9), 0u);
    EXPECT_EQ(coverageCount({0, 0}, 0.9), 0u);
    EXPECT_EQ(coverageCount({5, 5}, 0.0), 0u);
}

} // namespace
} // namespace ibp
