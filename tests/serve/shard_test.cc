/**
 * @file
 * Tests of the grid sharder and the cell-claim layer (src/serve,
 * sim/result_store): a sharded --lanes=4 run is bit-identical to
 * --lanes=1 and to the in-process runner, a SIGKILLed lane mid-shard
 * re-queues only that shard's unfinished cells (finished cells are
 * never re-simulated - counted via a factory-side simulation log),
 * and two concurrent overlapping in-process requests simulate their
 * intersection exactly once (asserted through the result-store claim
 * counters).
 *
 * Lane processes are fork()ed children: anything the experiment
 * bodies must observe from the test (gates, the simulation log path)
 * goes through globals set BEFORE the server forks its pool, and
 * through the filesystem afterwards. Fork-based tests are skipped
 * under TSan; the overlap test is thread-only and runs everywhere.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "core/table_spec.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/result_store.hh"
#include "sim/spec_columns.hh"
#include "sim/suite_runner.hh"

#if defined(__SANITIZE_THREAD__)
#define IBP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IBP_TSAN 1
#endif
#endif
#ifndef IBP_TSAN
#define IBP_TSAN 0
#endif

namespace ibp {
namespace {

/** Gate file the chaos body polls; set before the server forks. */
std::string g_shard_gate;

/** Append-one-byte log written by the counted column's factory on
 *  every SIMULATION (store hits and journal restores never construct
 *  a predictor, so the file size counts exactly the simulated cells
 *  across the test process and every lane). Empty = disabled. */
std::string g_shard_sim_log;

void
logSimulatedCell()
{
    if (g_shard_sim_log.empty())
        return;
    const int fd = ::open(g_shard_sim_log.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0)
        return;
    [[maybe_unused]] const ssize_t n = ::write(fd, "x", 1);
    ::close(fd);
}

std::size_t
simulatedCellCount()
{
    std::error_code ec;
    const auto size =
        std::filesystem::file_size(g_shard_sim_log, ec);
    return ec ? 0 : static_cast<std::size_t>(size);
}

/** Park until the gate file exists or the run is drained. */
void
waitForGateFile(const std::string &path, RunSession &session)
{
    while (!std::filesystem::exists(path)) {
        if (session.abort != nullptr && session.abort->load())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

/** One keyed column whose factory logs every construction. The
 *  wrapper builds exactly what btbColumn's hash describes, so the
 *  store-key honesty contract holds. @p entries varies the config:
 *  two grids over the SAME config would share store keys and the
 *  second would be all hits. */
std::vector<SweepColumn>
countedShardColumns(unsigned entries)
{
    SweepColumn keyed =
        btbColumn("btb", TableSpec::setAssoc(entries, 4), true);
    const PredictorFactory inner = keyed.make;
    keyed.make = [inner] {
        logSimulatedCell();
        return inner();
    };
    return {keyed};
}

/** A pure store-keyed sweep: the shardable differential target. */
const ExperimentDef &
shardDiffExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_shard_diff", "shard test: differential",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc", "perl"});
             const std::vector<SweepColumn> columns = {
                 btbColumn("btb256", TableSpec::setAssoc(256, 4),
                           true),
                 btbColumn("btb512", TableSpec::setAssoc(512, 4),
                           true),
             };
             const GridResult grid =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("shard diff grid",
                                                grid, columns));
             context.note("shard differential note");
         },
         /*shardable=*/true});
    return def;
}

/** Counted keyed grid, file gate, second counted grid: every shard
 *  parks at the gate after persisting its first-grid partition, so
 *  the test can SIGKILL a lane at a known cell-quiescent point. */
const ExperimentDef &
gatedShardExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_shard_chaos", "shard test: gated mid-shard kill",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto before = countedShardColumns(256);
             const auto after = countedShardColumns(512);
             const GridResult first =
                 runner.run(before, context.session());
             waitForGateFile(g_shard_gate, context.session());
             const GridResult second =
                 runner.run(after, context.session());
             context.emit(runner.benchmarkTable("shard gate grid 1",
                                                first, before));
             context.emit(runner.benchmarkTable("shard gate grid 2",
                                                second, after));
         },
         /*shardable=*/true});
    return def;
}

class ShardServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        char dir_template[] = "/tmp/ibpshardXXXXXX";
        ASSERT_NE(::mkdtemp(dir_template), nullptr);
        _dir = dir_template;
        _socket = _dir + "/s.sock";
        _state = _dir + "/state";
        g_shard_gate = _dir + "/gate";
        g_shard_sim_log.clear();
    }

    void
    TearDown() override
    {
        unsetenv("IBP_EVENTS");
        // The store is process-global; leaving it armed would warm
        // every later test in this binary.
        ResultStore::configureGlobal("");
        g_shard_sim_log.clear();
        std::error_code ec;
        std::filesystem::remove_all(_dir, ec);
    }

    std::unique_ptr<SweepServer>
    makeServer(unsigned lanes)
    {
        ServerConfig config;
        config.socketPath = _socket;
        config.stateDir = _state;
        config.retryAfterSeconds = 0.01;
        config.echo = false;
        config.lanes = lanes;
        auto server = std::make_unique<SweepServer>(config);
        const auto started = server->start();
        EXPECT_TRUE(started.ok())
            << (started.ok() ? "" : started.error().describe());
        return server;
    }

    ExperimentOptions
    quietOptions() const
    {
        ExperimentOptions options;
        options.echo = false;
        return options;
    }

    ClientOptions
    clientOptions() const
    {
        ClientOptions client;
        client.socketPath = _socket;
        client.backoffSeconds = 0.005;
        return client;
    }

    static void
    expectBitIdentical(const RunArtifact &served,
                       const RunArtifact &oracle)
    {
        ASSERT_EQ(served.tables.size(), oracle.tables.size());
        for (std::size_t i = 0; i < oracle.tables.size(); ++i)
            EXPECT_EQ(tableToJson(served.tables[i]).dump(),
                      tableToJson(oracle.tables[i]).dump());
        EXPECT_EQ(served.notes, oracle.notes);
        EXPECT_EQ(served.manifest.eventScale,
                  oracle.manifest.eventScale);
    }

    /** Read frames until the terminal one; progress is skipped. */
    static Json
    readTerminalFrame(int fd)
    {
        for (;;) {
            auto frame = readFrame(fd, 120.0);
            EXPECT_TRUE(frame.ok())
                << (frame.ok() ? "" : frame.error().describe());
            if (!frame.ok())
                return Json::object();
            const std::string type =
                frame.value().stringOr("type", "");
            if (type == "accepted" || type == "progress")
                continue;
            return frame.value();
        }
    }

    /** Poll @p predicate for up to ~20 s. */
    static bool
    eventually(const std::function<bool()> &predicate)
    {
        for (int i = 0; i < 4000; ++i) {
            if (predicate())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        return predicate();
    }

    std::string _dir;
    std::string _socket;
    std::string _state;
};

TEST_F(ShardServeTest, ShardedFourLanesBitIdenticalToOneAndInProcess)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def = shardDiffExperiment();

    // In-process oracle with NO store: pure simulation.
    ResultStore::configureGlobal("");
    const ExperimentRunResult local =
        runExperimentInProcess(def, quietOptions());
    ASSERT_EQ(local.exitCode, 0);
    ASSERT_NE(local.artifact, nullptr);

    // --lanes=1: whole-job path (sharding needs >= 2 lanes), cell
    // claims armed, cold store.
    ResultStore::configureGlobal(_state + "/store-one");
    auto one = makeServer(1);
    ServedOutcome outcome_one;
    const ExperimentRunResult served_one = runExperimentViaDaemon(
        def, quietOptions(), clientOptions(), &outcome_one);
    ASSERT_TRUE(outcome_one.served) << outcome_one.fallbackReason;
    ASSERT_EQ(served_one.exitCode, 0);
    ASSERT_NE(served_one.artifact, nullptr);
    expectBitIdentical(*served_one.artifact, *local.artifact);
    one->requestDrain();
    one->waitStopped();
    EXPECT_EQ(one->stats().jobsSharded, 0u);
    EXPECT_EQ(one->stats().jobsCompleted, 1u);
    ASSERT_TRUE(served_one.artifact->metrics.hasServe());
    EXPECT_EQ(served_one.artifact->metrics.serve().shard.planned,
              0u);
    one.reset();

    // --lanes=4 on a FRESH store: the job fans out as four shards
    // (one owns zero benchmarks - the planner does not shrink to
    // the grid) and the merge pass assembles the artifact.
    ResultStore::configureGlobal(_state + "/store-four");
    auto four = makeServer(4);
    ServedOutcome outcome_four;
    const ExperimentRunResult served_four = runExperimentViaDaemon(
        def, quietOptions(), clientOptions(), &outcome_four);
    ASSERT_TRUE(outcome_four.served) << outcome_four.fallbackReason;
    ASSERT_EQ(served_four.exitCode, 0);
    ASSERT_NE(served_four.artifact, nullptr);
    expectBitIdentical(*served_four.artifact, *local.artifact);

    ASSERT_TRUE(served_four.artifact->metrics.hasServe());
    EXPECT_EQ(served_four.artifact->metrics.serve().shard.planned,
              4u);
    // The merge saw every cell in the store: nothing re-simulated.
    ASSERT_TRUE(served_four.artifact->metrics.hasResultStore());
    const ResultStoreStats merge_store =
        served_four.artifact->metrics.resultStore();
    EXPECT_EQ(merge_store.hits, 6u);
    EXPECT_EQ(merge_store.stores, 0u);

    four->requestDrain();
    four->waitStopped();
    const ServerStats stats = four->stats();
    EXPECT_EQ(stats.jobsSharded, 1u);
    EXPECT_EQ(stats.shardsPlanned, 4u);
    EXPECT_EQ(stats.shardsRequeued, 0u);
    EXPECT_EQ(stats.shardsAbandoned, 0u);
    EXPECT_EQ(stats.jobsCompleted, 1u);
    EXPECT_EQ(stats.laneCrashes, 0u);
}

TEST_F(ShardServeTest, MidShardSigkillNeverResimulatesFinishedCells)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def = gatedShardExperiment();

    // Oracle first, gate open so the body never parks, no store and
    // no simulation log (the oracle's constructions are not counted).
    ResultStore::configureGlobal("");
    std::ofstream(g_shard_gate).put('\n');
    const ExperimentRunResult oracle =
        runExperimentInProcess(def, quietOptions());
    ASSERT_EQ(oracle.exitCode, 0);
    ASSERT_NE(oracle.artifact, nullptr);
    std::filesystem::remove(g_shard_gate);

    // Arm the count log and the store BEFORE the fork: both shards
    // inherit them.
    g_shard_sim_log = _dir + "/sim.log";
    ResultStore::configureGlobal(_state + "/store");
    auto server = makeServer(2);

    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    const RunRequest request = makeRunRequest(def.slug, false);
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());
    auto accepted = readFrame(fd.value());
    ASSERT_TRUE(accepted.ok());
    ASSERT_EQ(accepted.value().stringOr("type", ""), "accepted");

    // Grid 1's two cells resolved (and persisted) across the two
    // shards; both bodies now park on the gate, so NO cell is in
    // flight when the shot lands.
    double cells = 0;
    while (cells < 2) {
        auto frame = readFrame(fd.value(), 120.0);
        ASSERT_TRUE(frame.ok());
        ASSERT_EQ(frame.value().stringOr("type", ""), "progress");
        cells = frame.value().numberOr("cells", 0);
    }

    int victim = -1;
    ASSERT_TRUE(eventually([&] {
        for (const LaneView &lane : server->laneViews()) {
            if (lane.slug == def.slug && lane.pid > 0) {
                victim = lane.pid;
                return true;
            }
        }
        return false;
    }));
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    // Open the gate for the replacement incarnation: its grid-1
    // partition comes back from the shard journal / the store, then
    // both shards run grid 2 and the merge assembles the artifact.
    std::ofstream(g_shard_gate).put('\n');
    const Json terminal = readTerminalFrame(fd.value());
    ::close(fd.value());

    ASSERT_EQ(terminal.stringOr("type", ""), "artifact");
    EXPECT_EQ(terminal.numberOr("exit_code", -1), 0.0);
    const RunArtifact artifact =
        RunArtifact::fromJson(terminal.at("artifact"));
    expectBitIdentical(artifact, *oracle.artifact);

    // THE core claim: 2 benchmarks x 2 distinct configs = 4 unique
    // cells, and the factory ran exactly once per cell across every
    // lane incarnation - the killed shard's finished cells were
    // restored, not re-simulated; only its unfinished cells re-ran.
    EXPECT_EQ(simulatedCellCount(), 4u);
    // And the merge simulated nothing at all.
    ASSERT_TRUE(artifact.metrics.hasResultStore());
    EXPECT_EQ(artifact.metrics.resultStore().hits, 4u);
    EXPECT_EQ(artifact.metrics.resultStore().stores, 0u);
    ASSERT_TRUE(artifact.metrics.hasServe());
    EXPECT_EQ(artifact.metrics.serve().shard.planned, 2u);

    server->requestDrain();
    server->waitStopped();
    const ServerStats stats = server->stats();
    EXPECT_GE(stats.laneCrashes, 1u);
    EXPECT_GE(stats.lanesForked, 3u);
    EXPECT_EQ(stats.jobsCompleted, 1u);
    EXPECT_EQ(stats.shardsAbandoned, 0u);
}

TEST_F(ShardServeTest, OverlappingConcurrentRunsSimulateSharedCellsOnce)
{
    // Thread-only (no fork): two in-process sessions with cell
    // claims share a store; their intersection must be simulated by
    // exactly one of them, whichever wins the claim.
    ResultStore::configureGlobal(_state + "/store");
    const std::vector<SweepColumn> columns = {
        btbColumn("btb", TableSpec::setAssoc(256, 4), true)};

    RunMetrics metrics_a;
    RunMetrics metrics_b;
    GridResult grid_a;
    GridResult grid_b;
    std::thread thread_a([&] {
        SuiteRunner runner({"idl", "gcc"});
        RunSession session;
        session.metrics = &metrics_a;
        session.cellClaims = true;
        grid_a = runner.run(columns, session);
    });
    std::thread thread_b([&] {
        SuiteRunner runner({"idl", "gcc", "perl"});
        RunSession session;
        session.metrics = &metrics_b;
        session.cellClaims = true;
        grid_b = runner.run(columns, session);
    });
    thread_a.join();
    thread_b.join();

    // Both grids complete regardless of who simulated what.
    EXPECT_EQ(grid_a.presentCount("btb", {"idl", "gcc"}), 2u);
    EXPECT_EQ(grid_b.presentCount("btb", {"idl", "gcc", "perl"}),
              3u);

    ASSERT_TRUE(metrics_a.hasResultStore());
    ASSERT_TRUE(metrics_b.hasResultStore());
    const ResultStoreStats sa = metrics_a.resultStore();
    const ResultStoreStats sb = metrics_b.resultStore();

    // The union is 3 cells; 5 cell-resolutions happened. Exactly 3
    // simulations (each under a claim) and exactly 2 servings of
    // the intersection - as claim-deferred servings when the runs
    // truly overlapped, as plain store hits when one finished
    // first. Any double-simulation breaks the first sum; any lost
    // cell breaks the second.
    EXPECT_EQ(sa.stores + sb.stores, 3u);
    EXPECT_EQ(sa.claims + sb.claims, 3u);
    EXPECT_EQ(sa.hits + sa.claimServed + sb.hits + sb.claimServed,
              2u);
    EXPECT_EQ(sa.invalidated + sb.invalidated, 0u);
}

} // namespace
} // namespace ibp
