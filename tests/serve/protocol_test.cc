/**
 * @file
 * Tests of the ibpd wire protocol: frame round-trips, torn and
 * oversized frames, run-request serialisation, and socket path
 * resolution (serve/protocol.hh).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hh"

namespace ibp {
namespace {

class FramePipe
{
  public:
    FramePipe() { ::socketpair(AF_UNIX, SOCK_STREAM, 0, _fds); }
    ~FramePipe()
    {
        closeA();
        closeB();
    }
    int a() const { return _fds[0]; }
    int b() const { return _fds[1]; }
    void
    closeA()
    {
        if (_fds[0] >= 0)
            ::close(_fds[0]);
        _fds[0] = -1;
    }
    void
    closeB()
    {
        if (_fds[1] >= 0)
            ::close(_fds[1]);
        _fds[1] = -1;
    }

  private:
    int _fds[2] = {-1, -1};
};

TEST(ServeProtocolTest, FrameRoundTrip)
{
    FramePipe pipe;
    Json message = Json::object();
    message.set("type", "probe");
    message.set("value", 42);
    message.set("nested", Json::array());
    ASSERT_TRUE(writeFrame(pipe.a(), message).ok());

    auto read_back = readFrame(pipe.b());
    ASSERT_TRUE(read_back.ok());
    EXPECT_EQ(read_back.value().dump(), message.dump());
}

TEST(ServeProtocolTest, SequentialFramesStayDelimited)
{
    FramePipe pipe;
    for (int i = 0; i < 3; ++i) {
        Json message = Json::object();
        message.set("index", i);
        ASSERT_TRUE(writeFrame(pipe.a(), message).ok());
    }
    for (int i = 0; i < 3; ++i) {
        auto frame = readFrame(pipe.b());
        ASSERT_TRUE(frame.ok());
        EXPECT_EQ(frame.value().numberOr("index", -1), i);
    }
}

TEST(ServeProtocolTest, TornFrameIsTransient)
{
    FramePipe pipe;
    // Length prefix promises 10 bytes; deliver 3 and hang up.
    const unsigned char partial[] = {10, 0, 0, 0, 'a', 'b', 'c'};
    ASSERT_EQ(::send(pipe.a(), partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    pipe.closeA();

    auto frame = readFrame(pipe.b());
    ASSERT_FALSE(frame.ok());
    EXPECT_TRUE(frame.error().retryable());
    EXPECT_NE(frame.error().message.find("mid-frame"),
              std::string::npos);
}

TEST(ServeProtocolTest, OversizedLengthRejectedBeforeAllocation)
{
    FramePipe pipe;
    const unsigned char huge[] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::send(pipe.a(), huge, sizeof(huge), 0), 4);

    auto frame = readFrame(pipe.b());
    ASSERT_FALSE(frame.ok());
    EXPECT_NE(frame.error().message.find("ceiling"),
              std::string::npos);
}

TEST(ServeProtocolTest, MalformedJsonIsTransient)
{
    FramePipe pipe;
    const unsigned char bogus[] = {3, 0, 0, 0, '{', '{', '{'};
    ASSERT_EQ(::send(pipe.a(), bogus, sizeof(bogus), 0),
              static_cast<ssize_t>(sizeof(bogus)));

    auto frame = readFrame(pipe.b());
    ASSERT_FALSE(frame.ok());
    EXPECT_TRUE(frame.error().retryable());
    EXPECT_NE(frame.error().message.find("malformed"),
              std::string::npos);
}

TEST(ServeProtocolTest, RunRequestRoundTrips)
{
    RunRequest request = makeRunRequest("fig02", true);
    request.priority = 2;
    request.rejects = 3;

    auto parsed = RunRequest::fromJson(request.toJson());
    ASSERT_TRUE(parsed.ok());
    const RunRequest &back = parsed.value();
    EXPECT_EQ(back.slug, "fig02");
    EXPECT_TRUE(back.quick);
    EXPECT_EQ(back.priority, 2);
    EXPECT_EQ(back.rejects, 3u);
    EXPECT_EQ(back.eventScale, request.eventScale);
    EXPECT_EQ(back.threads, request.threads);
    EXPECT_EQ(back.tableImpl, request.tableImpl);
    EXPECT_EQ(back.gitSha, request.gitSha);
}

TEST(ServeProtocolTest, SignatureSeparatesQuickFromFull)
{
    EXPECT_EQ(makeRunRequest("fig02", false).signature(),
              makeRunRequest("fig02", false).signature());
    EXPECT_NE(makeRunRequest("fig02", false).signature(),
              makeRunRequest("fig02", true).signature());
    EXPECT_NE(makeRunRequest("fig02", false).signature(),
              makeRunRequest("fig05", false).signature());
    // Priority and ridden-out rejections must NOT split coalescing.
    RunRequest a = makeRunRequest("fig02", false);
    RunRequest b = a;
    b.priority = 9;
    b.rejects = 4;
    EXPECT_EQ(a.signature(), b.signature());
}

TEST(ServeProtocolTest, RunRequestWithoutSlugIsRejected)
{
    Json bare = Json::object();
    bare.set("type", "run");
    EXPECT_FALSE(RunRequest::fromJson(bare).ok());
}

TEST(ServeProtocolTest, SocketPathResolutionOrder)
{
    const char *saved = std::getenv("IBP_DAEMON");
    const std::string restore = saved ? saved : "";

    unsetenv("IBP_DAEMON");
    EXPECT_EQ(daemonSocketPath(), kDefaultDaemonSocket);
    setenv("IBP_DAEMON", "/tmp/env.sock", 1);
    EXPECT_EQ(daemonSocketPath(), "/tmp/env.sock");
    EXPECT_EQ(daemonSocketPath("/tmp/flag.sock"), "/tmp/flag.sock");

    if (saved)
        setenv("IBP_DAEMON", restore.c_str(), 1);
    else
        unsetenv("IBP_DAEMON");
}

TEST(ServeProtocolTest, ConnectWithoutDaemonIsTransientNoDaemon)
{
    auto fd = connectDaemon("/tmp/ibp-no-such-daemon.sock");
    ASSERT_FALSE(fd.ok());
    EXPECT_TRUE(fd.error().retryable());
    EXPECT_EQ(fd.error().message.rfind("no daemon", 0), 0u);
}

TEST(ServeProtocolTest, ListenReplacesStaleSocketRefusesLive)
{
    char dir_template[] = "/tmp/ibpprotoXXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    const std::string path = std::string(dir_template) + "/d.sock";

    auto first = listenDaemon(path);
    ASSERT_TRUE(first.ok());

    // A live listener on the path must be refused...
    auto conflict = listenDaemon(path);
    ASSERT_FALSE(conflict.ok());
    EXPECT_NE(conflict.error().message.find("already listening"),
              std::string::npos);

    // ...but a stale socket file (dead daemon) is replaced.
    ::close(first.value());
    auto second = listenDaemon(path);
    ASSERT_TRUE(second.ok());
    ::close(second.value());
    ::unlink(path.c_str());
    ::rmdir(dir_template);
}

} // namespace
} // namespace ibp
