/**
 * @file
 * Chaos harness for the supervised lane pool (docs/ROBUSTNESS.md): a
 * lane that dies mid-sweep - by its own SIGABRT or by an external
 * SIGKILL - is contained and replaced while its job resumes from the
 * checkpoint journal and concurrent jobs on other lanes complete
 * bit-identically; a hung cell that cooperative cancellation cannot
 * touch is terminated by the supervisor's hard cell deadline and
 * recorded as a timeout FailedCell while the sweep continues.
 *
 * Crashes are made deterministic without any fault injector: a body
 * that journals one grid and then aborts iff nothing was restored
 * crashes exactly once per job. Hangs use the injector's `hang`
 * action (armed in the parent BEFORE the server forks, so the lanes
 * inherit it). Fork-based tests are skipped under TSan.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/btb.hh"
#include "robust/fault_injection.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#if defined(__SANITIZE_THREAD__)
#define IBP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IBP_TSAN 1
#endif
#endif
#ifndef IBP_TSAN
#define IBP_TSAN 0
#endif

namespace ibp {
namespace {

/** Gate file the SIGKILL test's body polls; set before the fork. */
std::string g_chaos_gate;

void
waitForGateFile(const std::string &path, RunSession &session)
{
    while (!std::filesystem::exists(path)) {
        if (session.abort != nullptr && session.abort->load())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

std::vector<SweepColumn>
chaosColumns()
{
    return {{"btb", [] {
                 return std::make_unique<BtbPredictor>(
                     TableSpec::setAssoc(256, 4), true);
             }}};
}

/** Journals grid 1, then dies - unless grid 1 came back from the
 *  journal, i.e. this is the post-crash incarnation. NEVER run this
 *  in-process: it takes its whole process down by design. */
const ExperimentDef &
crashOnceExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_chaos_crash", "chaos test: crash once mid-sweep",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = chaosColumns();
             const GridResult first =
                 runner.run(columns, context.session());
             if (context.restoredCells() == 0)
                 std::abort();
             const GridResult second =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("crash grid 1",
                                                first, columns));
             context.emit(runner.benchmarkTable("crash grid 2",
                                                second, columns));
         }});
    return def;
}

/** A clean tiny sweep riding on the other lane. */
const ExperimentDef &
cleanExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_chaos_clean", "chaos test: clean concurrent sweep",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = chaosColumns();
             const GridResult grid =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("clean grid", grid,
                                                columns));
             context.note("chaos clean note");
         }});
    return def;
}

/** A small sweep whose every cell hangs when `sim:...:hang` is
 *  armed; without faults it completes normally. */
const ExperimentDef &
hangProneExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_chaos_hang", "chaos test: hang-prone sweep",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = chaosColumns();
             const GridResult grid =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("hang grid", grid,
                                                columns));
         }});
    return def;
}

/** Journalled grid, file gate, second grid - holds its lane busy in
 *  a known state so the test can SIGKILL it mid-job. */
const ExperimentDef &
killTargetExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_chaos_kill", "chaos test: external SIGKILL target",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = chaosColumns();
             const GridResult first =
                 runner.run(columns, context.session());
             waitForGateFile(g_chaos_gate, context.session());
             const GridResult second =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("kill grid 1",
                                                first, columns));
             context.emit(runner.benchmarkTable("kill grid 2",
                                                second, columns));
         }});
    return def;
}

class ChaosServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        char dir_template[] = "/tmp/ibpchaosXXXXXX";
        ASSERT_NE(::mkdtemp(dir_template), nullptr);
        _dir = dir_template;
        _socket = _dir + "/s.sock";
        _state = _dir + "/state";
        g_chaos_gate = _dir + "/gate";
    }

    void
    TearDown() override
    {
        FaultInjector::configureGlobal("");
        unsetenv("IBP_EVENTS");
        std::error_code ec;
        std::filesystem::remove_all(_dir, ec);
    }

    std::unique_ptr<SweepServer>
    makeServer(unsigned lanes, double cell_ceiling = 0.0)
    {
        ServerConfig config;
        config.socketPath = _socket;
        config.stateDir = _state;
        config.retryAfterSeconds = 0.01;
        config.echo = false;
        config.lanes = lanes;
        config.cellCeilingSeconds = cell_ceiling;
        config.laneRetryBackoffSeconds = 0.05;
        auto server = std::make_unique<SweepServer>(config);
        const auto started = server->start();
        EXPECT_TRUE(started.ok())
            << (started.ok() ? "" : started.error().describe());
        return server;
    }

    ExperimentOptions
    quietOptions() const
    {
        ExperimentOptions options;
        options.echo = false;
        return options;
    }

    ClientOptions
    clientOptions() const
    {
        ClientOptions client;
        client.socketPath = _socket;
        client.backoffSeconds = 0.005;
        return client;
    }

    static void
    expectBitIdentical(const RunArtifact &served,
                       const RunArtifact &oracle)
    {
        ASSERT_EQ(served.tables.size(), oracle.tables.size());
        for (std::size_t i = 0; i < oracle.tables.size(); ++i)
            EXPECT_EQ(tableToJson(served.tables[i]).dump(),
                      tableToJson(oracle.tables[i]).dump());
        EXPECT_EQ(served.notes, oracle.notes);
    }

    /** Read frames until the terminal one; progress is skipped. */
    static Json
    readTerminalFrame(int fd)
    {
        for (;;) {
            auto frame = readFrame(fd, 120.0);
            EXPECT_TRUE(frame.ok())
                << (frame.ok() ? ""
                               : frame.error().describe());
            if (!frame.ok())
                return Json::object();
            const std::string type =
                frame.value().stringOr("type", "");
            if (type == "accepted" || type == "progress")
                continue;
            return frame.value();
        }
    }

    /** Poll @p predicate for up to ~20 s. */
    static bool
    eventually(const std::function<bool()> &predicate)
    {
        for (int i = 0; i < 4000; ++i) {
            if (predicate())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        return predicate();
    }

    std::string _dir;
    std::string _socket;
    std::string _state;
};

TEST_F(ChaosServeTest, CrashedLaneIsContainedAndJobResumes)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &crash_def = crashOnceExperiment();
    const ExperimentDef &clean_def = cleanExperiment();
    // Oracle: the clean job, in-process, before any daemon exists.
    const ExperimentRunResult oracle =
        runExperimentInProcess(clean_def, quietOptions());
    ASSERT_EQ(oracle.exitCode, 0);

    auto server = makeServer(2);
    // The crash job goes over the raw protocol: the high-level
    // client's in-process fallback would run the aborting body
    // inside the test binary.
    auto crash_fd = connectDaemon(_socket);
    ASSERT_TRUE(crash_fd.ok());
    ASSERT_TRUE(writeFrame(crash_fd.value(),
                           makeRunRequest(crash_def.slug, false)
                               .toJson())
                    .ok());

    ExperimentRunResult clean_result;
    ServedOutcome clean_outcome;
    std::thread clean_client([&] {
        clean_result = runExperimentViaDaemon(
            clean_def, quietOptions(), clientOptions(),
            &clean_outcome);
    });
    const Json terminal = readTerminalFrame(crash_fd.value());
    ::close(crash_fd.value());
    clean_client.join();

    // The clean job is untouched by its neighbour's SIGABRT.
    ASSERT_TRUE(clean_outcome.served)
        << clean_outcome.fallbackReason;
    ASSERT_EQ(clean_result.exitCode, 0);
    ASSERT_NE(clean_result.artifact, nullptr);
    expectBitIdentical(*clean_result.artifact, *oracle.artifact);

    // The crashed job was retried on a fresh lane and resumed its
    // first grid from the journal instead of recomputing it.
    ASSERT_EQ(terminal.stringOr("type", ""), "artifact");
    EXPECT_EQ(terminal.numberOr("exit_code", -1), 0.0);
    EXPECT_EQ(terminal.numberOr("restored_cells", -1), 2.0);
    const RunArtifact artifact =
        RunArtifact::fromJson(terminal.at("artifact"));
    EXPECT_NE(artifact.findTable("crash grid 1"), nullptr);
    EXPECT_NE(artifact.findTable("crash grid 2"), nullptr);

    server->requestDrain();
    server->waitStopped();
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.jobsCompleted, 2u);
    EXPECT_GE(stats.laneCrashes, 1u);
    EXPECT_GE(stats.jobsRetried, 1u);
    EXPECT_GE(stats.lanesForked, 3u); // 2 lanes + >=1 replacement
    EXPECT_EQ(stats.laneKills, 0u);
}

TEST_F(ChaosServeTest, HungCellIsKilledByCellCeilingAndRecorded)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def = hangProneExperiment();
    // Armed BEFORE the server starts and left armed for the whole
    // job: lanes fork from the parent - replacements too, at
    // respawn time - so they all inherit the spec. Every cell hangs,
    // immune to cooperative cancellation, on every attempt
    // (probability 1). Only the supervisor's SIGKILL can end it;
    // after poison-threshold many killed starts the journal poisons
    // the cell and the sweep records it as a timeout and moves on.
    FaultInjector::configureGlobal("sim:1:hang,seed=1");
    auto server = makeServer(1, /*cell_ceiling=*/1.0);

    // Raw protocol on purpose: the high-level client would fall
    // back in-process on trouble, and an in-process run of this
    // experiment under an armed injector would hang the test.
    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    const RunRequest request = makeRunRequest(def.slug, false);
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());
    const Json terminal = readTerminalFrame(fd.value());
    ::close(fd.value());
    FaultInjector::configureGlobal("");

    ASSERT_EQ(terminal.stringOr("type", ""), "artifact");
    // Exit 3: completed, but with (poisoned) failed cells.
    EXPECT_EQ(terminal.numberOr("exit_code", -1), 3.0);
    const RunArtifact artifact =
        RunArtifact::fromJson(terminal.at("artifact"));
    ASSERT_EQ(artifact.metrics.failureCount(), 2u);
    for (const auto &failure : artifact.metrics.failures())
        EXPECT_EQ(failure.kind, "timeout") << failure.error;

    server->requestDrain();
    server->waitStopped();
    const ServerStats stats = server->stats();
    EXPECT_GE(stats.laneKills, 1u);
    EXPECT_EQ(stats.jobsCompleted, 1u);
}

TEST_F(ChaosServeTest, ExternalSigkillOnBusyLaneResumesFromJournal)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def = killTargetExperiment();
    // Oracle first, with the gate already open so the body never
    // parks; then close the gate again for the daemon run.
    std::ofstream(g_chaos_gate).put('\n');
    const ExperimentRunResult oracle =
        runExperimentInProcess(def, quietOptions());
    ASSERT_EQ(oracle.exitCode, 0);
    std::filesystem::remove(g_chaos_gate);

    auto server = makeServer(2);
    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    const RunRequest request = makeRunRequest(def.slug, false);
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());
    auto accepted = readFrame(fd.value());
    ASSERT_TRUE(accepted.ok());
    ASSERT_EQ(accepted.value().stringOr("type", ""), "accepted");
    // Grid 1's two cells journalled; the body now polls the gate.
    double cells = 0;
    while (cells < 2) {
        auto frame = readFrame(fd.value(), 120.0);
        ASSERT_TRUE(frame.ok());
        ASSERT_EQ(frame.value().stringOr("type", ""), "progress");
        cells = frame.value().numberOr("cells", 0);
    }

    // Shoot the busy lane in the head, exactly as an OOM killer or
    // an operator would.
    int victim = -1;
    ASSERT_TRUE(eventually([&] {
        for (const LaneView &lane : server->laneViews()) {
            if (lane.slug == def.slug && lane.pid > 0) {
                victim = lane.pid;
                return true;
            }
        }
        return false;
    }));
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    // Open the gate for the replacement incarnation and collect the
    // artifact: grid 1 restored, grid 2 computed, bit-identical.
    std::ofstream(g_chaos_gate).put('\n');
    const Json terminal = readTerminalFrame(fd.value());
    ::close(fd.value());

    ASSERT_EQ(terminal.stringOr("type", ""), "artifact");
    EXPECT_EQ(terminal.numberOr("exit_code", -1), 0.0);
    EXPECT_EQ(terminal.numberOr("restored_cells", -1), 2.0);
    const RunArtifact artifact =
        RunArtifact::fromJson(terminal.at("artifact"));
    expectBitIdentical(artifact, *oracle.artifact);

    server->requestDrain();
    server->waitStopped();
    const ServerStats stats = server->stats();
    EXPECT_GE(stats.laneCrashes, 1u);
    EXPECT_GE(stats.jobsRetried, 1u);
    EXPECT_GE(stats.lanesForked, 3u);
    EXPECT_EQ(stats.jobsCompleted, 1u);
}

} // namespace
} // namespace ibp
