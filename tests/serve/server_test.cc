/**
 * @file
 * End-to-end tests of the ibpd sweep service (src/serve): served
 * results are bit-identical to in-process runs, identical concurrent
 * requests coalesce onto one execution, a full queue rejects with a
 * retry-after hint, a drain persists unfinished work that a restarted
 * server resumes from its checkpoint journal, and the client rides
 * out injected `serve.io` faults before falling back in-process.
 *
 * The experiments under test are registered here with TEST_-prefixed
 * slugs; gated bodies park on a condition variable so the tests can
 * hold a job in the Running state deterministically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/btb.hh"
#include "robust/fault_injection.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

namespace ibp {
namespace {

/** Reusable latch the gated experiment bodies park on. */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        open = true;
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return open; });
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex);
        open = false;
    }
};

Gate g_coalesce_gate;
std::atomic<unsigned> g_coalesce_runs{0};
Gate g_drain_gate;

std::vector<SweepColumn>
smallColumns()
{
    return {{"btb", [] {
                 return std::make_unique<BtbPredictor>(
                     TableSpec::setAssoc(256, 4), true);
             }}};
}

/** Instant body: one tiny table, no simulation. */
const ExperimentDef &
trivialExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_serve_triv", "serve test: trivial",
         [](ExperimentContext &context) {
             ResultTable table("trivial", "row");
             table.addColumn("value");
             table.set("r0", "value", 1.0);
             context.emit(table);
         }});
    return def;
}

/** Counts executions, then parks until the test releases it. */
const ExperimentDef &
coalesceExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_serve_coal", "serve test: gated",
         [](ExperimentContext &context) {
             g_coalesce_runs.fetch_add(1);
             g_coalesce_gate.wait();
             ResultTable table("gated", "row");
             table.addColumn("value");
             table.set("r0", "value", 2.0);
             context.emit(table);
         }});
    return def;
}

/** A real (tiny) sweep, for the differential comparison. */
const ExperimentDef &
diffExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_serve_diff", "serve test: differential",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = smallColumns();
             const GridResult grid =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("serve diff grid",
                                                grid, columns));
             context.note("serve differential note");
         }});
    return def;
}

/** Two journalled grids with a gate between them, so a drain can
 *  land after the first grid's cells are checkpointed. */
const ExperimentDef &
drainExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_serve_drain", "serve test: drain/resume",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = smallColumns();
             const GridResult first =
                 runner.run(columns, context.session());
             g_drain_gate.wait();
             const GridResult second =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable(
                 "drain grid 1", first, columns));
             context.emit(runner.benchmarkTable(
                 "drain grid 2", second, columns));
         }});
    return def;
}

class ServeServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        char dir_template[] = "/tmp/ibpservXXXXXX";
        ASSERT_NE(::mkdtemp(dir_template), nullptr);
        _dir = dir_template;
        _socket = _dir + "/s.sock";
        _state = _dir + "/state";
    }

    void
    TearDown() override
    {
        // Never leave a gated body parked: a SweepServer destructor
        // joins its runner thread.
        g_coalesce_gate.release();
        g_drain_gate.release();
        FaultInjector::configureGlobal("");
        unsetenv("IBP_EVENTS");
        std::error_code ec;
        std::filesystem::remove_all(_dir, ec);
    }

    std::unique_ptr<SweepServer>
    makeServer(std::size_t queue_depth = 8)
    {
        ServerConfig config;
        config.socketPath = _socket;
        config.stateDir = _state;
        config.maxQueueDepth = queue_depth;
        config.retryAfterSeconds = 0.01;
        config.echo = false;
        auto server = std::make_unique<SweepServer>(config);
        const auto started = server->start();
        EXPECT_TRUE(started.ok())
            << (started.ok() ? "" : started.error().describe());
        return server;
    }

    ExperimentOptions
    quietOptions() const
    {
        ExperimentOptions options;
        options.echo = false;
        return options;
    }

    ClientOptions
    clientOptions() const
    {
        ClientOptions client;
        client.socketPath = _socket;
        client.backoffSeconds = 0.005;
        return client;
    }

    /** Poll @p predicate for up to ~10 s. */
    static bool
    eventually(const std::function<bool()> &predicate)
    {
        for (int i = 0; i < 2000; ++i) {
            if (predicate())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        return predicate();
    }

    std::string _dir;
    std::string _socket;
    std::string _state;
};

TEST_F(ServeServerTest, PingReportsRegisteredExperiments)
{
    trivialExperiment();
    auto server = makeServer();

    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    Json ping = Json::object();
    ping.set("type", "ping");
    ASSERT_TRUE(writeFrame(fd.value(), ping).ok());
    auto pong = readFrame(fd.value());
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong.value().stringOr("type", ""), "pong");
    EXPECT_GE(pong.value().numberOr("experiments", 0), 1.0);
    ::close(fd.value());

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, ServedRunIsBitIdenticalToInProcess)
{
    const ExperimentDef &def = diffExperiment();
    const ExperimentRunResult local =
        runExperimentInProcess(def, quietOptions());
    ASSERT_EQ(local.exitCode, 0);
    ASSERT_NE(local.artifact, nullptr);

    auto server = makeServer();
    ServedOutcome outcome;
    const ExperimentRunResult served = runExperimentViaDaemon(
        def, quietOptions(), clientOptions(), &outcome);
    ASSERT_TRUE(outcome.served) << outcome.fallbackReason;
    ASSERT_EQ(served.exitCode, 0);
    ASSERT_NE(served.artifact, nullptr);

    // The result payload must match bit for bit...
    ASSERT_EQ(served.artifact->tables.size(),
              local.artifact->tables.size());
    for (std::size_t i = 0; i < local.artifact->tables.size(); ++i)
        EXPECT_EQ(tableToJson(served.artifact->tables[i]).dump(),
                  tableToJson(local.artifact->tables[i]).dump());
    EXPECT_EQ(served.artifact->notes, local.artifact->notes);
    EXPECT_EQ(served.artifact->manifest.eventScale,
              local.artifact->manifest.eventScale);

    // ...and the serve telemetry block is the only marker.
    EXPECT_FALSE(local.artifact->metrics.hasServe());
    ASSERT_TRUE(served.artifact->metrics.hasServe());
    const ServeMetrics serve = served.artifact->metrics.serve();
    EXPECT_EQ(serve.requests, 1u);
    EXPECT_EQ(serve.coalesced, 0u);
    EXPECT_EQ(serve.admissionRejects, 0u);

    server->requestDrain();
    server->waitStopped();
    EXPECT_EQ(server->stats().jobsCompleted, 1u);
}

TEST_F(ServeServerTest, IdenticalConcurrentRequestsCoalesce)
{
    const ExperimentDef &def = coalesceExperiment();
    g_coalesce_gate.close();
    g_coalesce_runs.store(0);
    auto server = makeServer();

    ExperimentRunResult results[2];
    ServedOutcome outcomes[2];
    std::thread clients[2];
    for (int i = 0; i < 2; ++i) {
        clients[i] = std::thread([&, i] {
            results[i] = runExperimentViaDaemon(
                def, quietOptions(), clientOptions(),
                &outcomes[i]);
        });
    }

    // The body is parked on the gate, so the job cannot finish
    // before the second request attaches to it.
    ASSERT_TRUE(eventually([&] {
        return server->stats().requestsCoalesced >= 1;
    }));
    g_coalesce_gate.release();
    for (auto &client : clients)
        client.join();

    EXPECT_EQ(g_coalesce_runs.load(), 1u);
    EXPECT_EQ(server->stats().jobsAccepted, 1u);
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(outcomes[i].served)
            << outcomes[i].fallbackReason;
        ASSERT_EQ(results[i].exitCode, 0);
        ASSERT_NE(results[i].artifact, nullptr);
        const ServeMetrics serve =
            results[i].artifact->metrics.serve();
        EXPECT_EQ(serve.requests, 2u);
        EXPECT_EQ(serve.coalesced, 1u);
    }

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, FullQueueRejectsWithRetryAfter)
{
    trivialExperiment();
    // Depth 0: every request that cannot coalesce is rejected.
    auto server = makeServer(0);

    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    const RunRequest request =
        makeRunRequest("TEST_serve_triv", false);
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());
    auto reply = readFrame(fd.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().stringOr("type", ""), "rejected");
    EXPECT_GT(reply.value().numberOr("retry_after_ms", 0), 0.0);
    ::close(fd.value());
    EXPECT_GE(server->stats().requestsRejected, 1u);

    // The client rides out maxRejects rejections, then falls back
    // in-process and still produces the artifact.
    ClientOptions client = clientOptions();
    client.maxRejects = 1;
    ServedOutcome outcome;
    const ExperimentRunResult result = runExperimentViaDaemon(
        trivialExperiment(), quietOptions(), client, &outcome);
    EXPECT_FALSE(outcome.served);
    EXPECT_EQ(outcome.rejects, 2u);
    EXPECT_NE(outcome.fallbackReason.find("admission"),
              std::string::npos);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_NE(result.artifact, nullptr);
    EXPECT_FALSE(result.artifact->metrics.hasServe());

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, MismatchedConfigurationIsRefused)
{
    trivialExperiment();
    auto server = makeServer();

    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    RunRequest request = makeRunRequest("TEST_serve_triv", false);
    request.eventScale = request.eventScale * 2.0 + 1.0;
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());
    auto reply = readFrame(fd.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().stringOr("type", ""), "incompatible");
    EXPECT_NE(reply.value().stringOr("reason", ""), "");
    ::close(fd.value());
    EXPECT_GE(server->stats().requestsIncompatible, 1u);

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, UnknownSlugGetsErrorFrame)
{
    auto server = makeServer();

    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    const RunRequest request =
        makeRunRequest("TEST_no_such_experiment", false);
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());
    auto reply = readFrame(fd.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().stringOr("type", ""), "error");
    EXPECT_NE(
        reply.value().stringOr("message", "").find("unknown"),
        std::string::npos);
    ::close(fd.value());

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, InjectedSocketFaultRetriesThenFallsBack)
{
    const ExperimentDef &def = trivialExperiment();
    auto server = makeServer();

    // Probability 1 at the client's serve.io site: every
    // conversation attempt dies, so the client must consume its
    // attempts with backoff and then run in-process.
    FaultInjector::configureGlobal("serve.io:1");
    ClientOptions client = clientOptions();
    client.maxAttempts = 2;
    ServedOutcome outcome;
    const ExperimentRunResult result = runExperimentViaDaemon(
        def, quietOptions(), client, &outcome);
    FaultInjector::configureGlobal("");

    EXPECT_FALSE(outcome.served);
    EXPECT_EQ(outcome.attempts, 2u);
    EXPECT_NE(outcome.fallbackReason, "");
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_NE(result.artifact, nullptr);
    EXPECT_FALSE(result.artifact->metrics.hasServe());

    // With the injector disarmed the same daemon serves again.
    ServedOutcome healthy;
    const ExperimentRunResult served = runExperimentViaDaemon(
        def, quietOptions(), clientOptions(), &healthy);
    EXPECT_TRUE(healthy.served) << healthy.fallbackReason;
    ASSERT_NE(served.artifact, nullptr);
    EXPECT_TRUE(served.artifact->metrics.hasServe());

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, MissingDaemonFallsBackImmediately)
{
    const ExperimentDef &def = trivialExperiment();
    ClientOptions client;
    client.socketPath = _dir + "/absent.sock";
    ServedOutcome outcome;
    const ExperimentRunResult result = runExperimentViaDaemon(
        def, quietOptions(), client, &outcome);
    EXPECT_FALSE(outcome.served);
    EXPECT_NE(outcome.fallbackReason.find("no daemon"),
              std::string::npos);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_NE(result.artifact, nullptr);
    EXPECT_FALSE(result.artifact->metrics.hasServe());
}

TEST_F(ServeServerTest, CorruptPendingFileIsQuarantinedNotFatal)
{
    trivialExperiment();
    // A half-written pending.json (kill -9 during a drain, disk
    // full...) must not brick the daemon: startup quarantines the
    // file aside and continues with an empty queue.
    std::filesystem::create_directories(_state);
    {
        std::ofstream out(_state + "/pending.json");
        out << "{\"jobs\": [{\"slug\": \"TEST_serve_tr";
    }
    auto server = makeServer();
    EXPECT_EQ(server->stats().jobsRestored, 0u);
    EXPECT_FALSE(std::filesystem::exists(_state + "/pending.json"));
    EXPECT_TRUE(std::filesystem::exists(_state +
                                        "/pending.json.corrupt"));

    // The daemon still serves normally afterwards.
    ServedOutcome outcome;
    const ExperimentRunResult result = runExperimentViaDaemon(
        trivialExperiment(), quietOptions(), clientOptions(),
        &outcome);
    EXPECT_TRUE(outcome.served) << outcome.fallbackReason;
    EXPECT_EQ(result.exitCode, 0);

    server->requestDrain();
    server->waitStopped();
}

TEST_F(ServeServerTest, DrainPersistsPendingAndRestartResumes)
{
    drainExperiment();
    g_drain_gate.close();

    // --- First server: accept the job, drain it mid-suite. ---
    auto server = makeServer();
    auto fd = connectDaemon(_socket);
    ASSERT_TRUE(fd.ok());
    const RunRequest request =
        makeRunRequest("TEST_serve_drain", false);
    ASSERT_TRUE(writeFrame(fd.value(), request.toJson()).ok());

    auto accepted = readFrame(fd.value());
    ASSERT_TRUE(accepted.ok());
    ASSERT_EQ(accepted.value().stringOr("type", ""), "accepted");

    // Read progress until the first grid's two cells are journalled
    // (the body then parks on the gate).
    double cells = 0;
    while (cells < 2) {
        auto frame = readFrame(fd.value());
        ASSERT_TRUE(frame.ok());
        ASSERT_EQ(frame.value().stringOr("type", ""), "progress");
        cells = frame.value().numberOr("cells", 0);
    }

    server->requestDrain();
    g_drain_gate.release();
    // Skip any progress the abort race still delivers; the terminal
    // frame must be "drained", not an artifact.
    for (;;) {
        auto frame = readFrame(fd.value());
        ASSERT_TRUE(frame.ok());
        const std::string type = frame.value().stringOr("type", "");
        if (type == "progress")
            continue;
        ASSERT_EQ(type, "drained");
        break;
    }
    ::close(fd.value());
    server->waitStopped();
    EXPECT_EQ(server->stats().jobsDrained, 1u);
    EXPECT_TRUE(std::filesystem::exists(_state + "/pending.json"));
    EXPECT_TRUE(
        std::filesystem::exists(_state + "/TEST_serve_drain.ckpt"));
    server.reset();

    // --- Second server: restore the request, resume the journal. ---
    g_drain_gate.close();
    auto restarted = makeServer();
    EXPECT_EQ(restarted->stats().jobsRestored, 1u);
    EXPECT_FALSE(std::filesystem::exists(_state + "/pending.json"));

    // The restored job re-runs the body; its first grid comes back
    // from the journal, and it parks on the gate again - so this
    // late subscriber reliably coalesces onto it.
    auto rider = connectDaemon(_socket);
    ASSERT_TRUE(rider.ok());
    ASSERT_TRUE(
        writeFrame(rider.value(), request.toJson()).ok());
    auto attach = readFrame(rider.value());
    ASSERT_TRUE(attach.ok());
    ASSERT_EQ(attach.value().stringOr("type", ""), "accepted");
    EXPECT_TRUE(attach.value().at("coalesced").asBool());
    g_drain_gate.release();

    Json artifact_frame;
    for (;;) {
        auto frame = readFrame(rider.value());
        ASSERT_TRUE(frame.ok());
        const std::string type = frame.value().stringOr("type", "");
        if (type == "progress")
            continue;
        ASSERT_EQ(type, "artifact");
        artifact_frame = frame.value();
        break;
    }
    ::close(rider.value());

    EXPECT_EQ(artifact_frame.numberOr("exit_code", -1), 0.0);
    // Both cells of grid 1 came out of the drained run's journal.
    EXPECT_EQ(artifact_frame.numberOr("restored_cells", 0), 2.0);
    const RunArtifact artifact =
        RunArtifact::fromJson(artifact_frame.at("artifact"));
    EXPECT_NE(artifact.findTable("drain grid 1"), nullptr);
    EXPECT_NE(artifact.findTable("drain grid 2"), nullptr);

    restarted->requestDrain();
    restarted->waitStopped();
    EXPECT_EQ(restarted->stats().jobsCompleted, 1u);
    // A clean completion retires the journal.
    EXPECT_FALSE(
        std::filesystem::exists(_state + "/TEST_serve_drain.ckpt"));
}

} // namespace
} // namespace ibp
