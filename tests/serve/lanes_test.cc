/**
 * @file
 * Differential tests of the supervised worker-lane pool (src/serve):
 * a --lanes=1 server is the bit-identical compatibility oracle for
 * the in-process runner, a multi-lane server is bit-identical to
 * --lanes=1 for a single job, a SIGTERM drain with two busy lanes
 * persists both unfinished requests and a restarted server resumes
 * them from their journals, and the client-side receive deadline
 * turns a silent daemon into a clean fallback.
 *
 * Lane processes are fork()ed children: anything the experiment
 * bodies must observe from the test (gates) goes through the
 * filesystem, and any global they read must be set BEFORE the server
 * forks its pool. Fork-based tests are skipped under TSan, which
 * cannot follow a multithreaded parent into fork().
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/btb.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#if defined(__SANITIZE_THREAD__)
#define IBP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IBP_TSAN 1
#endif
#endif
#ifndef IBP_TSAN
#define IBP_TSAN 0
#endif

namespace ibp {
namespace {

/** Gate file paths the lane-side bodies poll; set before the server
 *  forks its pool so the children inherit them. */
std::string g_lane_gate_a;
std::string g_lane_gate_b;

/** Park until the gate file exists or the run is drained. */
void
waitForGateFile(const std::string &path, RunSession &session)
{
    while (!std::filesystem::exists(path)) {
        if (session.abort != nullptr && session.abort->load())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

std::vector<SweepColumn>
laneColumns()
{
    return {{"btb", [] {
                 return std::make_unique<BtbPredictor>(
                     TableSpec::setAssoc(256, 4), true);
             }}};
}

/** A real (tiny) sweep for the differential comparisons. */
const ExperimentDef &
laneDiffExperiment()
{
    static const ExperimentDef &def = registerExperiment(
        {"TEST_lanes_diff", "lanes test: differential",
         [](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = laneColumns();
             const GridResult grid =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("lanes diff grid",
                                                grid, columns));
             context.note("lanes differential note");
         }});
    return def;
}

/** Journalled grid, file gate, second grid - one per lane so a
 *  two-lane drain has two distinct busy jobs. */
const ExperimentDef &
gatedLaneExperiment(const char *slug, const std::string *gate)
{
    return registerExperiment(
        {slug, "lanes test: gated drain/resume",
         [gate](ExperimentContext &context) {
             SuiteRunner runner({"idl", "gcc"});
             const auto columns = laneColumns();
             const GridResult first =
                 runner.run(columns, context.session());
             waitForGateFile(*gate, context.session());
             const GridResult second =
                 runner.run(columns, context.session());
             context.emit(runner.benchmarkTable("gated grid 1",
                                                first, columns));
             context.emit(runner.benchmarkTable("gated grid 2",
                                                second, columns));
         }});
}

class LaneServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("IBP_EVENTS", "0.05", 1);
        char dir_template[] = "/tmp/ibplaneXXXXXX";
        ASSERT_NE(::mkdtemp(dir_template), nullptr);
        _dir = dir_template;
        _socket = _dir + "/s.sock";
        _state = _dir + "/state";
        g_lane_gate_a = _dir + "/gate_a";
        g_lane_gate_b = _dir + "/gate_b";
    }

    void
    TearDown() override
    {
        unsetenv("IBP_EVENTS");
        std::error_code ec;
        std::filesystem::remove_all(_dir, ec);
    }

    std::unique_ptr<SweepServer>
    makeServer(unsigned lanes, double cell_ceiling = 0.0)
    {
        ServerConfig config;
        config.socketPath = _socket;
        config.stateDir = _state;
        config.retryAfterSeconds = 0.01;
        config.echo = false;
        config.lanes = lanes;
        config.cellCeilingSeconds = cell_ceiling;
        auto server = std::make_unique<SweepServer>(config);
        const auto started = server->start();
        EXPECT_TRUE(started.ok())
            << (started.ok() ? "" : started.error().describe());
        return server;
    }

    ExperimentOptions
    quietOptions() const
    {
        ExperimentOptions options;
        options.echo = false;
        return options;
    }

    ClientOptions
    clientOptions() const
    {
        ClientOptions client;
        client.socketPath = _socket;
        client.backoffSeconds = 0.005;
        return client;
    }

    static void
    expectBitIdentical(const RunArtifact &served,
                       const RunArtifact &oracle)
    {
        ASSERT_EQ(served.tables.size(), oracle.tables.size());
        for (std::size_t i = 0; i < oracle.tables.size(); ++i)
            EXPECT_EQ(tableToJson(served.tables[i]).dump(),
                      tableToJson(oracle.tables[i]).dump());
        EXPECT_EQ(served.notes, oracle.notes);
        EXPECT_EQ(served.manifest.eventScale,
                  oracle.manifest.eventScale);
    }

    /** Poll @p predicate for up to ~20 s. */
    static bool
    eventually(const std::function<bool()> &predicate)
    {
        for (int i = 0; i < 4000; ++i) {
            if (predicate())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        return predicate();
    }

    std::string _dir;
    std::string _socket;
    std::string _state;
};

TEST_F(LaneServeTest, OneLaneIsBitIdenticalToInProcess)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def = laneDiffExperiment();
    const ExperimentRunResult local =
        runExperimentInProcess(def, quietOptions());
    ASSERT_EQ(local.exitCode, 0);
    ASSERT_NE(local.artifact, nullptr);

    auto server = makeServer(1);
    ServedOutcome outcome;
    const ExperimentRunResult served = runExperimentViaDaemon(
        def, quietOptions(), clientOptions(), &outcome);
    ASSERT_TRUE(outcome.served) << outcome.fallbackReason;
    ASSERT_EQ(served.exitCode, 0);
    ASSERT_NE(served.artifact, nullptr);

    expectBitIdentical(*served.artifact, *local.artifact);
    // The serve telemetry block is the only marker.
    EXPECT_FALSE(local.artifact->metrics.hasServe());
    EXPECT_TRUE(served.artifact->metrics.hasServe());

    server->requestDrain();
    server->waitStopped();
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.jobsCompleted, 1u);
    EXPECT_EQ(stats.lanesForked, 1u);
    EXPECT_EQ(stats.laneCrashes, 0u);
    EXPECT_EQ(stats.laneKills, 0u);
}

TEST_F(LaneServeTest, TwoLanesAreBitIdenticalToOneLane)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def = laneDiffExperiment();
    // The in-process run doubles as the --lanes=1 oracle: the test
    // above pins those two equal, so equality here chains to both.
    const ExperimentRunResult local =
        runExperimentInProcess(def, quietOptions());
    ASSERT_EQ(local.exitCode, 0);

    auto server = makeServer(2);
    ServedOutcome outcome;
    const ExperimentRunResult served = runExperimentViaDaemon(
        def, quietOptions(), clientOptions(), &outcome);
    ASSERT_TRUE(outcome.served) << outcome.fallbackReason;
    ASSERT_EQ(served.exitCode, 0);
    ASSERT_NE(served.artifact, nullptr);
    expectBitIdentical(*served.artifact, *local.artifact);

    server->requestDrain();
    server->waitStopped();
    EXPECT_EQ(server->stats().lanesForked, 2u);
}

TEST_F(LaneServeTest, MultiLaneDrainPersistsBothAndRestartResumes)
{
    if (IBP_TSAN)
        GTEST_SKIP() << "fork-based lanes are not TSan-compatible";
    const ExperimentDef &def_a =
        gatedLaneExperiment("TEST_lanes_gate_a", &g_lane_gate_a);
    const ExperimentDef &def_b =
        gatedLaneExperiment("TEST_lanes_gate_b", &g_lane_gate_b);

    // --- First server: two lanes, one parked job on each. ---
    auto server = makeServer(2);
    int fds[2] = {-1, -1};
    const RunRequest requests[2] = {
        makeRunRequest(def_a.slug, false),
        makeRunRequest(def_b.slug, false),
    };
    for (int i = 0; i < 2; ++i) {
        auto fd = connectDaemon(_socket);
        ASSERT_TRUE(fd.ok());
        fds[i] = fd.value();
        ASSERT_TRUE(writeFrame(fds[i], requests[i].toJson()).ok());
        auto accepted = readFrame(fds[i]);
        ASSERT_TRUE(accepted.ok());
        ASSERT_EQ(accepted.value().stringOr("type", ""),
                  "accepted");
    }
    // Both first grids journalled (the bodies then park on their
    // gate files, which do not exist yet).
    for (int i = 0; i < 2; ++i) {
        double cells = 0;
        while (cells < 2) {
            auto frame = readFrame(fds[i]);
            ASSERT_TRUE(frame.ok());
            ASSERT_EQ(frame.value().stringOr("type", ""),
                      "progress");
            cells = frame.value().numberOr("cells", 0);
        }
    }

    // Drain: dispatch stops, both lanes stop at the next cell
    // boundary (the gate poll observes the abort flag), both
    // unfinished requests persist.
    server->requestDrain();
    for (int i = 0; i < 2; ++i) {
        for (;;) {
            auto frame = readFrame(fds[i]);
            ASSERT_TRUE(frame.ok());
            const std::string type =
                frame.value().stringOr("type", "");
            if (type == "progress")
                continue;
            ASSERT_EQ(type, "drained");
            break;
        }
        ::close(fds[i]);
    }
    server->waitStopped();
    EXPECT_EQ(server->stats().jobsDrained, 2u);
    EXPECT_EQ(server->stats().laneCrashes, 0u);
    EXPECT_TRUE(std::filesystem::exists(_state + "/pending.json"));
    EXPECT_TRUE(std::filesystem::exists(
        _state + "/TEST_lanes_gate_a.ckpt"));
    EXPECT_TRUE(std::filesystem::exists(
        _state + "/TEST_lanes_gate_b.ckpt"));
    server.reset();

    // --- Second server: open gates first, then let the restored
    // jobs run to completion from their journals. ---
    std::ofstream(g_lane_gate_a).put('\n');
    std::ofstream(g_lane_gate_b).put('\n');
    auto restarted = makeServer(2);
    EXPECT_EQ(restarted->stats().jobsRestored, 2u);
    EXPECT_FALSE(
        std::filesystem::exists(_state + "/pending.json"));
    ASSERT_TRUE(eventually([&] {
        return restarted->stats().jobsCompleted >= 2;
    }));

    restarted->requestDrain();
    restarted->waitStopped();
    // Clean completions retire both journals.
    EXPECT_FALSE(std::filesystem::exists(
        _state + "/TEST_lanes_gate_a.ckpt"));
    EXPECT_FALSE(std::filesystem::exists(
        _state + "/TEST_lanes_gate_b.ckpt"));
}

TEST_F(LaneServeTest, ClientReceiveDeadlineTurnsSilenceIntoFallback)
{
    // A listening socket that never accepts: connect() succeeds via
    // the backlog and the request frame fits in the socket buffer,
    // but no reply ever comes - exactly a hung daemon, no fork
    // needed.
    auto listener = listenDaemon(_socket);
    ASSERT_TRUE(listener.ok());

    ClientOptions client = clientOptions();
    client.receiveTimeoutSeconds = 0.2;
    client.maxAttempts = 1;
    ServedOutcome outcome;
    const auto start = std::chrono::steady_clock::now();
    const ExperimentRunResult result = runExperimentViaDaemon(
        laneDiffExperiment(), quietOptions(), client, &outcome);
    const double waited =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    ::close(listener.value());

    EXPECT_FALSE(outcome.served);
    EXPECT_NE(outcome.fallbackReason.find("timed out"),
              std::string::npos)
        << outcome.fallbackReason;
    // The deadline, not some much larger default, bounded the wait
    // (the in-process fallback run dominates the rest).
    EXPECT_LT(waited, 30.0);
    ASSERT_EQ(result.exitCode, 0);
    ASSERT_NE(result.artifact, nullptr);
    EXPECT_FALSE(result.artifact->metrics.hasServe());
}

} // namespace
} // namespace ibp
