/**
 * @file
 * Cache-key completeness tests of the daemon's RunRequest: the
 * coalescing signature must differ whenever ANY artifact-affecting
 * knob differs (slug, quick, event scale, threads, table
 * implementation, fault-injection spec), and only then - two
 * requests that differ in priority, accumulated rejects, or git sha
 * still share one execution. The historical bug this pins down:
 * signature() used to fold in only slug+quick, so a request at
 * IBP_EVENTS=0.05 could be served another client's full-scale cells.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "serve/protocol.hh"

namespace ibp {
namespace {

RunRequest
baseRequest()
{
    RunRequest request;
    request.slug = "fig17";
    request.quick = true;
    request.priority = 0;
    request.rejects = 0;
    request.eventScale = 0.05;
    request.threads = 4;
    request.tableImpl = "flat";
    request.gitSha = "abc1234";
    request.faultSpec = "";
    return request;
}

TEST(RequestKeyTest, EqualRequestsCoalesce)
{
    EXPECT_EQ(baseRequest().signature(), baseRequest().signature());
}

TEST(RequestKeyTest, EveryArtifactKnobSplitsTheSignature)
{
    const std::string base = baseRequest().signature();

    RunRequest mutated = baseRequest();
    mutated.slug = "fig18";
    EXPECT_NE(mutated.signature(), base);

    mutated = baseRequest();
    mutated.quick = false;
    EXPECT_NE(mutated.signature(), base);

    // The two knobs of the original coalescing bug: event scale and
    // table implementation shape every counter in the artifact, so
    // requests differing only here must NEVER share a result.
    mutated = baseRequest();
    mutated.eventScale = 1.0;
    EXPECT_NE(mutated.signature(), base);

    mutated = baseRequest();
    mutated.tableImpl = "reference";
    EXPECT_NE(mutated.signature(), base);

    mutated = baseRequest();
    mutated.threads = 8;
    EXPECT_NE(mutated.signature(), base);

    mutated = baseRequest();
    mutated.faultSpec = "sim:0.5,seed=11";
    EXPECT_NE(mutated.signature(), base);
}

TEST(RequestKeyTest, TinyScaleDifferencesStillSplit)
{
    // %.17g rendering: any double that compares unequal renders
    // differently, so near-identical scales cannot alias.
    RunRequest a = baseRequest();
    RunRequest b = baseRequest();
    a.eventScale = 0.1;
    b.eventScale = 0.1 + 1e-15;
    EXPECT_NE(a.signature(), b.signature());
}

TEST(RequestKeyTest, NonArtifactKnobsStillCoalesce)
{
    const std::string base = baseRequest().signature();

    RunRequest mutated = baseRequest();
    mutated.priority = 7;
    EXPECT_EQ(mutated.signature(), base);

    mutated = baseRequest();
    mutated.rejects = 3;
    EXPECT_EQ(mutated.signature(), base);

    // The git sha belongs to the compatibility check (which knows
    // about unknown shas), not the coalescing key.
    mutated = baseRequest();
    mutated.gitSha = "fff9999";
    EXPECT_EQ(mutated.signature(), base);
}

TEST(RequestKeyTest, CompatibilityChecksEveryKnob)
{
    const RunRequest server = baseRequest();

    EXPECT_EQ(baseRequest().incompatibilityWith(server), "");

    RunRequest client = baseRequest();
    client.eventScale = 1.0;
    EXPECT_NE(client.incompatibilityWith(server).find("event scale"),
              std::string::npos);

    client = baseRequest();
    client.threads = 8;
    EXPECT_NE(client.incompatibilityWith(server).find("thread"),
              std::string::npos);

    client = baseRequest();
    client.tableImpl = "reference";
    EXPECT_NE(client.incompatibilityWith(server).find(
                  "table implementation"),
              std::string::npos);

    client = baseRequest();
    client.faultSpec = "serve.io:0.2";
    EXPECT_NE(
        client.incompatibilityWith(server).find("fault injection"),
        std::string::npos);

    client = baseRequest();
    client.gitSha = "def5678";
    EXPECT_NE(client.incompatibilityWith(server).find("build"),
              std::string::npos);
}

TEST(RequestKeyTest, UnknownShasAreCompatible)
{
    RunRequest client = baseRequest();
    RunRequest server = baseRequest();
    client.gitSha = "unknown";
    EXPECT_EQ(client.incompatibilityWith(server), "");
    client.gitSha = "";
    EXPECT_EQ(client.incompatibilityWith(server), "");
    client.gitSha = "abc1234";
    server.gitSha = "unknown";
    EXPECT_EQ(client.incompatibilityWith(server), "");
}

TEST(RequestKeyTest, FaultSpecSurvivesTheWire)
{
    RunRequest request = baseRequest();
    request.faultSpec = "sim:0.25,seed=7";
    const auto decoded = RunRequest::fromJson(request.toJson());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().faultSpec, request.faultSpec);
    EXPECT_EQ(decoded.value().signature(), request.signature());
}

TEST(RequestKeyTest, MakeRunRequestSnapshotsFaultInjection)
{
    const char *saved = std::getenv("IBP_FAULT_INJECT");
    const std::string restore = saved ? saved : "";

    setenv("IBP_FAULT_INJECT", "sim:0.5,seed=3", 1);
    EXPECT_EQ(makeRunRequest("fig02", true).faultSpec,
              "sim:0.5,seed=3");

    unsetenv("IBP_FAULT_INJECT");
    EXPECT_EQ(makeRunRequest("fig02", true).faultSpec, "");

    if (saved)
        setenv("IBP_FAULT_INJECT", restore.c_str(), 1);
}

} // namespace
} // namespace ibp
