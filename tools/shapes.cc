/**
 * @file
 * Developer tool: quick AVG-group shape checks of the paper's key
 * qualitative results (path-length U-curve, history sharing, table
 * sharing, interleaving) before running the full bench suite.
 */

#include <cstdio>
#include <memory>

#include "core/factory.hh"
#include "sim/suite_runner.hh"

using namespace ibp;

int
main()
{
    SuiteRunner runner = SuiteRunner::avgSuite();

    // 1. Path-length sweep, unconstrained full precision (Figure 9).
    {
        std::vector<SweepColumn> columns;
        for (unsigned p : {0, 1, 2, 3, 4, 6, 8, 10, 12, 15, 18}) {
            columns.push_back(
                {"p" + std::to_string(p), [p]() {
                     return std::make_unique<TwoLevelPredictor>(
                         unconstrainedTwoLevel(p));
                 }});
        }
        runner.groupTable("Fig9 shape: path length (unconstrained)",
                          runner.run(columns), columns)
            .print();
    }

    // 2. History sharing s (Figure 5), p=8.
    {
        std::vector<SweepColumn> columns;
        for (unsigned s : {2, 6, 10, 14, 18, 22, 32}) {
            columns.push_back(
                {"s" + std::to_string(s), [s]() {
                     return std::make_unique<TwoLevelPredictor>(
                         unconstrainedTwoLevel(8, s));
                 }});
        }
        runner.groupTable("Fig5 shape: history sharing (p=8)",
                          runner.run(columns), columns)
            .print();
    }

    // 3. Table sharing h (Figure 7), p=8 global history.
    {
        std::vector<SweepColumn> columns;
        for (unsigned h : {2, 10, 18, 32}) {
            columns.push_back(
                {"h" + std::to_string(h), [h]() {
                     return std::make_unique<TwoLevelPredictor>(
                         unconstrainedTwoLevel(8, 32, h));
                 }});
        }
        runner.groupTable("Fig7 shape: table sharing (p=8)",
                          runner.run(columns), columns)
            .print();
    }

    // 4. Interleaving vs concatenation, 4096-entry 1-way (Fig 12/14).
    {
        std::vector<SweepColumn> columns;
        for (unsigned p : {1, 2, 3, 4, 6}) {
            for (const auto kind :
                 {InterleaveKind::Concat, InterleaveKind::Reverse}) {
                columns.push_back(
                    {toString(kind).substr(0, 3) + "-p" +
                         std::to_string(p),
                     [p, kind]() {
                         TwoLevelConfig config = paperTwoLevel(
                             p, TableSpec::setAssoc(4096, 1));
                         config.pattern.interleave = kind;
                         return std::make_unique<TwoLevelPredictor>(
                             config);
                     }});
            }
        }
        runner.groupTable("Fig12/14 shape: concat vs reverse, 4K 1-way",
                          runner.run(columns), columns)
            .print();
    }

    // 5. Hybrid vs non-hybrid at same total size (Figure 18).
    {
        std::vector<SweepColumn> columns;
        for (unsigned total : {1024, 8192}) {
            columns.push_back(
                {"2lv-" + std::to_string(total), [total]() {
                     return std::make_unique<TwoLevelPredictor>(
                         paperTwoLevel(3,
                                       TableSpec::setAssoc(total, 4)));
                 }});
            columns.push_back(
                {"hyb-" + std::to_string(total), [total]() {
                     return std::make_unique<HybridPredictor>(
                         paperHybrid(3, 1,
                                     TableSpec::setAssoc(total / 2,
                                                         4)));
                 }});
        }
        runner.groupTable("Fig18 shape: hybrid vs non-hybrid",
                          runner.run(columns), columns)
            .print();
    }

    return 0;
}
