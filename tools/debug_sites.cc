/**
 * @file
 * Developer tool: per-site BTB-2bc behaviour of one benchmark.
 * Prints the hottest sites with their execution counts, distinct
 * targets, dominant-target share and BTB miss rate, to see where a
 * calibration target is being won or lost.
 */

#include <cstdio>
#include <string>

#include "core/btb.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "trace/trace_stats.hh"

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "beta";
    const ibp::Trace trace = ibp::generateBenchmarkTrace(name);
    const ibp::TraceStats stats = ibp::computeTraceStats(trace);

    ibp::BtbPredictor btb(ibp::TableSpec::unconstrained(), true);
    ibp::SiteMissStats site_misses;
    const ibp::SimResult result =
        ibp::simulate(btb, trace, {}, &site_misses);

    std::printf("%s: btb-2bc miss %.2f%%\n", name.c_str(),
                result.missPercent());
    std::printf("%10s %9s %8s %9s %9s\n", "pc", "execs", "targets",
                "domshare", "btbmiss%");
    unsigned shown = 0;
    for (const auto &site : stats.sites) {
        if (shown++ >= 20)
            break;
        const double miss =
            100.0 *
            static_cast<double>(site_misses.misses(site.pc)) /
            static_cast<double>(
                std::max<std::uint64_t>(1, site.executions));
        std::printf("0x%08x %9llu %8u %9.2f %9.2f\n", site.pc,
                    static_cast<unsigned long long>(site.executions),
                    site.distinctTargets, site.dominantTargetShare,
                    miss);
    }
    return 0;
}
