/**
 * @file
 * Developer calibration harness (not part of the bench suite).
 *
 * Prints, for every benchmark, the paper's calibration targets next
 * to the synthetic suite's measured rates for the anchor predictors:
 * unconstrained BTB-2bc (Figure 2) and the unconstrained two-level
 * p=6 full-precision predictor (the floor). Used while tuning
 * deriveKnobs(); see DESIGN.md section 1.
 */

#include <cstdio>

#include "core/btb.hh"
#include "core/factory.hh"
#include "core/two_level.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "trace/trace_stats.hh"

int
main()
{
    std::printf("%-8s %9s %9s | %9s %9s | %6s %6s %6s\n", "bench",
                "btb-tgt", "btb-got", "flr-tgt", "flr-got", "N90",
                "N90got", "sites");
    for (const auto &profile : ibp::benchmarkSuite()) {
        const ibp::Trace trace =
            ibp::generateBenchmarkTrace(profile.name);

        ibp::BtbPredictor btb(ibp::TableSpec::unconstrained(), true);
        const double btb_got =
            ibp::simulate(btb, trace).missPercent();

        ibp::TwoLevelPredictor floor_pred(ibp::unconstrainedTwoLevel(6));
        const double floor_got =
            ibp::simulate(floor_pred, trace).missPercent();

        const ibp::TraceStats stats = ibp::computeTraceStats(trace);

        std::printf("%-8s %9.2f %9.2f | %9.2f %9.2f | %6u %6u %6u\n",
                    profile.name.c_str(), profile.btbMissTarget,
                    btb_got, profile.floorMissTarget, floor_got,
                    profile.sites90, stats.activeSites90,
                    stats.activeSites100);
    }
    return 0;
}
