/**
 * @file
 * Closed-loop knob tuner for the synthetic benchmark suite.
 *
 * For each benchmark it searches the generator knobs so that the
 * measured anchors match the paper's calibration targets:
 *   - dominance        -> unconstrained BTB-2bc miss rate (Figure 2);
 *   - phase mutation,
 *     rule noise,
 *     stickiness       -> two-level p=6 full-precision floor.
 *
 * The resulting overrides are printed as a C++ table to paste into
 * benchmark_suite.cc (kTunings). Run after any structural change to
 * the program model.
 */

#include <algorithm>
#include <cstdio>

#include "core/btb.hh"
#include "core/factory.hh"
#include "core/two_level.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

namespace {

double
measureBtb(const ibp::BenchmarkProfile &profile)
{
    const ibp::Trace trace = ibp::generateTrace(profile);
    ibp::BtbPredictor btb(ibp::TableSpec::unconstrained(), true);
    return ibp::simulate(btb, trace).missPercent();
}

double
measureFloor(const ibp::BenchmarkProfile &profile)
{
    const ibp::Trace trace = ibp::generateTrace(profile);
    ibp::TwoLevelPredictor predictor(ibp::unconstrainedTwoLevel(6));
    return ibp::simulate(predictor, trace).missPercent();
}

} // namespace

int
main()
{
    std::printf("// Auto-tuned by tools/autotune; paste into "
                "benchmark_suite.cc\n");
    std::printf("// {name, dominance, predictability, stickiness, "
                "phaseMutation}\n");

    for (ibp::BenchmarkProfile profile : ibp::benchmarkSuite()) {
        // Start from the derived knobs.
        ibp::ModelKnobs knobs = ibp::deriveKnobs(profile);
        double dominance = knobs.dominance;
        double predictability = knobs.predictability;
        double stickiness = knobs.contextStickiness;
        double mutation = knobs.phaseMutation;

        double btb_got = 0, floor_got = 0;
        for (int round = 0; round < 4; ++round) {
            // Tune dominance against the BTB target by grid search:
            // for benchmarks dominated by a handful of sites the
            // response to dominance is noisy and non-monotonic, so
            // gradient steps oscillate.
            double best_err = 1e9;
            double best_dom = dominance;
            const auto try_dominance = [&](double candidate) {
                profile.overrideDominance = candidate;
                profile.overridePredictability = predictability;
                profile.overrideStickiness = stickiness;
                profile.overridePhaseMutation = mutation;
                const double got = measureBtb(profile);
                const double err =
                    std::abs(got - profile.btbMissTarget);
                if (err < best_err) {
                    best_err = err;
                    best_dom = candidate;
                    btb_got = got;
                }
            };
            if (round == 0) {
                for (double d = 0.10; d <= 0.951; d += 0.105)
                    try_dominance(d);
            }
            for (const double delta : {-0.05, -0.025, 0.025, 0.05}) {
                const double d = best_dom + delta;
                if (d >= 0.08 && d <= 0.97 && best_err > 0.6)
                    try_dominance(d);
            }
            try_dominance(best_dom); // re-measure at the winner
            dominance = best_dom;

            // Tune the floor: phase mutation first, then noise, then
            // stickiness when the structural part needs shrinking.
            for (int iter = 0; iter < 3; ++iter) {
                profile.overrideDominance = dominance;
                profile.overridePredictability = predictability;
                profile.overrideStickiness = stickiness;
                profile.overridePhaseMutation = mutation;
                floor_got = measureFloor(profile);
                const double ratio =
                    profile.floorMissTarget /
                    std::max(0.05, floor_got);
                if (ratio > 0.9 && ratio < 1.12)
                    break;
                mutation = std::clamp(
                    mutation * std::clamp(ratio, 0.35, 2.5),
                    0.005, 0.80);
                const double noise = 1.0 - predictability;
                predictability =
                    1.0 - std::clamp(noise * std::clamp(ratio, 0.5,
                                                        2.0),
                                     0.001, 0.45);
                if (ratio < 0.5) {
                    // Still far above target with minimal mutation:
                    // reduce structural (boundary) misses.
                    stickiness = std::min(0.97, stickiness + 0.02);
                }
            }
        }

        // Final measurement with the converged knobs.
        profile.overrideDominance = dominance;
        profile.overridePredictability = predictability;
        profile.overrideStickiness = stickiness;
        profile.overridePhaseMutation = mutation;
        btb_got = measureBtb(profile);
        floor_got = measureFloor(profile);

        std::printf("    {\"%s\", {%.4f, %.5f, %.3f, %.4f}}, "
                    "// btb %.2f (tgt %.2f), floor %.2f (tgt %.2f)\n",
                    profile.name.c_str(), dominance, predictability,
                    stickiness, mutation, btb_got,
                    profile.btbMissTarget, floor_got,
                    profile.floorMissTarget);
        std::fflush(stdout);
    }
    return 0;
}
