/**
 * @file
 * Baseline regression gate over JSON run artifacts.
 *
 * Usage:
 *   report_diff FRESH.json BASELINE.json [options]
 *
 * Options:
 *   --abs=X               absolute per-cell tolerance (default 0.1,
 *                         table units - percentage points for
 *                         misprediction tables)
 *   --rel=Y               relative per-cell tolerance against the
 *                         baseline magnitude (default 0.02)
 *   --min-throughput=B    fail when the fresh run simulated fewer
 *                         than B branches/sec (default: off)
 *   --throughput-ratio=R  fail when fresh throughput is below R x
 *                         the baseline's recorded throughput
 *                         (default: off; use only on comparable
 *                         hardware)
 *   --no-manifest         skip the slug/event-scale manifest check
 *   --allow-partial       accept a fresh artifact that records
 *                         failed cells (by default a partial run
 *                         fails the gate; see docs/ROBUSTNESS.md)
 *   --require-cached      fail unless the fresh artifact shows that
 *                         every trace came from the trace cache
 *                         (zero generator runs; the CI cache-smoke
 *                         job uses this, see docs/PERFORMANCE.md)
 *   --require-mmap        like --require-cached, but additionally
 *                         every cache hit must have been served
 *                         zero-copy from an mmap'ed .ibpm entry
 *                         (no legacy stream fallbacks)
 *   --require-served      fail unless the fresh artifact carries the
 *                         metrics.serve block, i.e. was produced
 *                         through a resident ibpd daemon rather than
 *                         a silent in-process fallback (the CI
 *                         daemon-smoke job uses this; see
 *                         docs/SERVICE.md)
 *   --require-result-cached
 *                         fail unless the fresh artifact shows that
 *                         every cell was loaded from the result
 *                         store (hits > 0, zero misses, zero
 *                         invalidations; the CI warm-store job uses
 *                         this, see docs/PERFORMANCE.md)
 *   --min-job-speedup=R   fail unless the fresh artifact's server-
 *                         side job wall time (metrics.serve.
 *                         job_seconds) beats the BASELINE artifact's
 *                         by at least a factor R - the lane-scaling
 *                         gate: fresh from --lanes=N, baseline from
 *                         --lanes=1 (default: off; see
 *                         docs/SERVICE.md)
 *
 * Exits 0 when the fresh artifact is within tolerance, 1 on a
 * regression or unreadable artifact, 2 on usage errors. See
 * docs/REPORTING.md for the tolerance policy.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "report/artifact.hh"
#include "report/diff.hh"
#include "util/logging.hh"

using namespace ibp;

namespace {

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s FRESH.json BASELINE.json [--abs=X] [--rel=Y]\n"
        "          [--min-throughput=B] [--throughput-ratio=R]\n"
        "          [--no-manifest] [--allow-partial]\n"
        "          [--require-cached] [--require-mmap]\n"
        "          [--require-served] [--require-result-cached]\n"
        "          [--min-job-speedup=R]\n",
        argv0);
    std::exit(code);
}

double
parseNumber(const std::string_view arg, const std::string_view value)
{
    char *end = nullptr;
    const std::string text(value);
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || parsed < 0.0) {
        fatal("invalid value in '%.*s'",
              static_cast<int>(arg.size()), arg.data());
    }
    return parsed;
}

} // namespace

int
main(int argc, char **argv)
{
    DiffOptions options;
    bool require_cached = false;
    bool require_mmap = false;
    bool require_served = false;
    bool require_result_cached = false;
    double min_job_speedup = 0.0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg.rfind("--abs=", 0) == 0) {
            options.absTolerance = parseNumber(arg, arg.substr(6));
        } else if (arg.rfind("--rel=", 0) == 0) {
            options.relTolerance = parseNumber(arg, arg.substr(6));
        } else if (arg.rfind("--min-throughput=", 0) == 0) {
            options.minThroughput = parseNumber(arg, arg.substr(17));
        } else if (arg.rfind("--throughput-ratio=", 0) == 0) {
            options.throughputRatio =
                parseNumber(arg, arg.substr(19));
        } else if (arg == "--no-manifest") {
            options.checkManifest = false;
        } else if (arg == "--allow-partial") {
            options.allowPartial = true;
        } else if (arg == "--require-cached") {
            require_cached = true;
        } else if (arg == "--require-mmap") {
            require_cached = true;
            require_mmap = true;
        } else if (arg == "--require-served") {
            require_served = true;
        } else if (arg == "--require-result-cached") {
            require_result_cached = true;
        } else if (arg.rfind("--min-job-speedup=", 0) == 0) {
            min_job_speedup = parseNumber(arg, arg.substr(18));
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv[0], 2);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2)
        usage(argv[0], 2);

    // Unreadable or malformed artifacts are reported, not aborted:
    // CI log output should say which file is broken and why.
    const auto fresh_result = RunArtifact::load(paths[0]);
    if (!fresh_result.ok()) {
        std::fprintf(stderr, "%s\n",
                     fresh_result.error().describe().c_str());
        return 1;
    }
    const auto baseline_result = RunArtifact::load(paths[1]);
    if (!baseline_result.ok()) {
        std::fprintf(stderr, "%s\n",
                     baseline_result.error().describe().c_str());
        return 1;
    }
    const RunArtifact &fresh = fresh_result.value();
    const RunArtifact &baseline = baseline_result.value();

    if (require_cached) {
        // The warm-run gate: the artifact must prove the run touched
        // the trace cache and never the generator.
        if (!fresh.metrics.hasTraceSource()) {
            std::fprintf(stderr,
                         "--require-cached: %s records no trace-source "
                         "telemetry (run with --trace-cache)\n",
                         paths[0].c_str());
            return 1;
        }
        if (fresh.metrics.tracesGenerated() != 0 ||
            fresh.metrics.traceCacheHits() == 0) {
            std::fprintf(stderr,
                         "--require-cached: %s generated %u trace(s) "
                         "and hit the cache %u time(s); expected a "
                         "fully warm cache\n",
                         paths[0].c_str(),
                         fresh.metrics.tracesGenerated(),
                         fresh.metrics.traceCacheHits());
            return 1;
        }
    }

    if (require_mmap) {
        // The zero-copy gate: every hit must have been served by the
        // mmap reader, proving the .ibpm path (not the stream
        // fallback) is what the warm run actually exercised.
        if (fresh.metrics.traceMmapHits() == 0 ||
            fresh.metrics.traceStreamHits() != 0) {
            std::fprintf(stderr,
                         "--require-mmap: %s served %u mmap and %u "
                         "stream cache hit(s) (read_path '%s'); "
                         "expected every hit via mmap\n",
                         paths[0].c_str(),
                         fresh.metrics.traceMmapHits(),
                         fresh.metrics.traceStreamHits(),
                         fresh.metrics.traceReadPath().c_str());
            return 1;
        }
    }

    if (require_served) {
        // The daemon gate: the client falls back in-process so
        // quietly that only the artifact itself can prove the run
        // went through ibpd.
        if (!fresh.metrics.hasServe()) {
            std::fprintf(stderr,
                         "--require-served: %s carries no serve "
                         "telemetry; the run fell back to in-process "
                         "execution (is ibpd up?)\n",
                         paths[0].c_str());
            return 1;
        }
    }

    if (require_result_cached) {
        // The warm-store gate: every cell must have come out of the
        // content-addressed result store, with nothing simulated and
        // nothing quarantined.
        if (!fresh.metrics.hasResultStore()) {
            std::fprintf(stderr,
                         "--require-result-cached: %s records no "
                         "result-store telemetry (run with "
                         "--result-store)\n",
                         paths[0].c_str());
            return 1;
        }
        const auto &store = fresh.metrics.resultStore();
        if (store.hits == 0 || store.misses != 0 ||
            store.invalidated != 0) {
            std::fprintf(stderr,
                         "--require-result-cached: %s loaded %u "
                         "cell(s) from the result store with %u "
                         "miss(es) and %u invalidation(s); expected "
                         "a fully warm store\n",
                         paths[0].c_str(), store.hits, store.misses,
                         store.invalidated);
            return 1;
        }
    }

    if (min_job_speedup > 0.0) {
        // The lane-scaling gate: both artifacts must carry server-
        // side job timing, and the fresh one (sharded across lanes)
        // must be at least min_job_speedup times faster than the
        // baseline (single lane).
        if (!fresh.metrics.hasServe() ||
            fresh.metrics.serve().jobSeconds <= 0.0) {
            std::fprintf(stderr,
                         "--min-job-speedup: %s records no serve "
                         "job_seconds (not served by ibpd?)\n",
                         paths[0].c_str());
            return 1;
        }
        if (!baseline.metrics.hasServe() ||
            baseline.metrics.serve().jobSeconds <= 0.0) {
            std::fprintf(stderr,
                         "--min-job-speedup: %s records no serve "
                         "job_seconds (not served by ibpd?)\n",
                         paths[1].c_str());
            return 1;
        }
        const double fresh_seconds =
            fresh.metrics.serve().jobSeconds;
        const double baseline_seconds =
            baseline.metrics.serve().jobSeconds;
        const double speedup = baseline_seconds / fresh_seconds;
        std::printf("job speedup: %.2fx (%.2fs -> %.2fs, floor "
                    "%.2fx)\n",
                    speedup, baseline_seconds, fresh_seconds,
                    min_job_speedup);
        if (speedup < min_job_speedup) {
            std::fprintf(stderr,
                         "--min-job-speedup: %.2fx is below the "
                         "%.2fx floor\n",
                         speedup, min_job_speedup);
            return 1;
        }
    }

    const DiffReport report =
        diffArtifacts(fresh, baseline, options);
    std::printf("%s vs %s\n", paths[0].c_str(), paths[1].c_str());
    std::printf("fresh: %s @ %s, %.0f branches/sec\n",
                fresh.manifest.slug.c_str(),
                fresh.manifest.gitSha.c_str(),
                fresh.metrics.branchesPerSecond());
    std::printf("baseline: %s @ %s, %.0f branches/sec\n",
                baseline.manifest.slug.c_str(),
                baseline.manifest.gitSha.c_str(),
                baseline.metrics.branchesPerSecond());
    if (fresh.metrics.hasSimd()) {
        // Context only, never gated: how the fresh run's engine
        // dispatched (docs/PERFORMANCE.md, metrics.simd).
        const SimdStats simd = fresh.metrics.simd();
        std::printf("fresh simd: %s%s%s%s, %llu columnar / %llu "
                    "transposed blocks, %llu lane + %llu generic "
                    "columns (%llu machines)\n",
                    simd.dispatchLevel.c_str(),
                    simd.fallbackReason.empty() ? "" : " (",
                    simd.fallbackReason.c_str(),
                    simd.fallbackReason.empty() ? "" : ")",
                    static_cast<unsigned long long>(
                        simd.columnarBlocks),
                    static_cast<unsigned long long>(
                        simd.transposedBlocks),
                    static_cast<unsigned long long>(simd.laneColumns),
                    static_cast<unsigned long long>(
                        simd.genericColumns),
                    static_cast<unsigned long long>(
                        simd.laneMachines));
    }
    if (fresh.metrics.hasServe() &&
        fresh.metrics.serve().shard.planned > 0) {
        // Context only, never gated: how the daemon sharded the
        // fresh run across its lanes (docs/SERVICE.md).
        const ShardServeStats &shard = fresh.metrics.serve().shard;
        std::printf("fresh shard: %u planned, %u requeued, %u "
                    "abandoned, %llu stolen, %llu overlap-coalesced, "
                    "fanout %.2fs + merge %.2fs, lane cells [",
                    shard.planned, shard.requeued, shard.abandoned,
                    static_cast<unsigned long long>(
                        shard.stolenCells),
                    static_cast<unsigned long long>(
                        shard.overlapCoalesced),
                    shard.fanoutSeconds, shard.mergeSeconds);
        for (std::size_t i = 0; i < shard.laneCells.size(); ++i) {
            std::printf("%s%llu", i == 0 ? "" : " ",
                        static_cast<unsigned long long>(
                            shard.laneCells[i]));
        }
        std::printf("]\n");
    }
    std::fputs(report.summary().c_str(), stdout);
    return report.passed() ? 0 : 1;
}
