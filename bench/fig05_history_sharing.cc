/**
 * @file
 * Reproduces Figure 5: influence of history-pattern sharing (the
 * first-level parameter s) for path length p = 8 with per-branch
 * history-table entries, unconstrained tables, full precision.
 *
 * Paper anchors: AVG falls from 9.4% (per-address histories, s=2) to
 * 6.0% (one global history); the OO suite benefits most (8.7% to
 * 5.6%); only AVG-infreq prefers per-address histories.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig05Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig05", "History-pattern sharing sweep (Figure 5)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::fullSuite();

            std::vector<SweepColumn> columns;
            std::vector<unsigned> sweep = {2,  4,  6,  8,  10, 12,
                                           14, 16, 18, 20, 22, 32};
            if (context.quick())
                sweep = {2, 8, 16, 32};
            for (unsigned s : sweep) {
                columns.push_back(
                    {"s=" + std::to_string(s), [s]() {
                         return std::make_unique<TwoLevelPredictor>(
                             unconstrainedTwoLevel(8, s));
                     }});
            }

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.groupTable(
                "Figure 5: misprediction (%) vs history sharing s "
                "(p=8, per-address tables)",
                grid, columns));
            context.note(
                "Paper anchors: AVG 9.4 (s=2) -> 6.0 (global); "
                "AVG-infreq is the only group preferring per-address "
                "histories.");
        }});
    return def;
}
