/**
 * @file
 * Reproduces Table A-1 (appendix): per-benchmark misprediction rates
 * for the whole predictor zoo at representative table sizes. The
 * path lengths are fixed to the paper's Table A-2 winners per
 * organisation and size class so the full 17-benchmark suite runs in
 * reasonable time (the exhaustive best-p search lives in the fig18
 * and table06 benches).
 */

#include <memory>

#include "core/btb.hh"
#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

namespace {

/** Table A-2 winning path length per organisation and size. */
unsigned
bestPathLength(const std::string &org, std::uint64_t size)
{
    // Condensed from Table A-2 of the paper.
    if (org == "tagless")
        return size <= 64 ? 1 : size <= 8192 ? 3 : 5;
    if (org == "assoc2")
        return size <= 128 ? 1 : size <= 1024 ? 2 : 3;
    if (org == "assoc4")
        return size <= 128 ? 1 : size <= 512 ? 2 : 3;
    // fullassoc
    return size <= 128 ? 1 : size <= 512 ? 2 : size <= 1024 ? 3 : 4;
}

} // namespace

const ibp::ExperimentDef &
tableA1Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "tableA1", "Per-benchmark predictor grid (Table A-1)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::fullSuite();

            std::vector<std::uint64_t> sizes = {256, 1024, 8192};
            if (context.quick())
                sizes = {1024};

            for (const std::uint64_t size : sizes) {
                std::vector<SweepColumn> columns;
                columns.push_back({"btb-fa", [size]() {
                                       return std::make_unique<
                                           BtbPredictor>(
                                           TableSpec::fullyAssoc(
                                               size),
                                           true);
                                   }});
                for (const auto org : {"tagless", "assoc1", "assoc2",
                                       "assoc4", "fullassoc"}) {
                    const std::string org_name(org);
                    const unsigned p = bestPathLength(
                        org_name == "assoc1" ? "assoc2" : org_name,
                        size);
                    columns.push_back(
                        {org_name, [org_name, size, p]() {
                             TableSpec spec;
                             if (org_name == "tagless")
                                 spec = TableSpec::tagless(size);
                             else if (org_name == "fullassoc")
                                 spec = TableSpec::fullyAssoc(size);
                             else if (org_name == "assoc1")
                                 spec = TableSpec::setAssoc(size, 1);
                             else if (org_name == "assoc2")
                                 spec = TableSpec::setAssoc(size, 2);
                             else
                                 spec = TableSpec::setAssoc(size, 4);
                             return std::make_unique<
                                 TwoLevelPredictor>(
                                 paperTwoLevel(p, spec));
                         }});
                }
                // Hybrids at half-size components, paper-typical
                // combos for the size class.
                const unsigned long_p = size <= 1024 ? 3 : 6;
                const unsigned short_p = size <= 1024 ? 1 : 2;
                for (const auto org : {"tagless", "assoc2",
                                       "assoc4"}) {
                    const std::string org_name(org);
                    columns.push_back(
                        {"hyb-" + org_name,
                         [org_name, size, long_p, short_p]() {
                             const std::uint64_t comp = size / 2;
                             const TableSpec spec =
                                 org_name == "tagless"
                                     ? TableSpec::tagless(comp)
                                     : TableSpec::setAssoc(
                                           comp, org_name == "assoc2"
                                                     ? 2
                                                     : 4);
                             return std::make_unique<
                                 HybridPredictor>(paperHybrid(
                                 long_p, short_p, spec));
                         }});
                }

                const GridResult grid =
                    runner.run(columns, context.session());
                context.emit(runner.benchmarkTable(
                    "Table A-1 (size " + std::to_string(size) +
                        "): misprediction (%), Table A-2 path "
                        "lengths",
                    grid, columns));
            }
            context.note(
                "Paper anchors at 1K: AVG btb 24.93, tagless 11.74, "
                "assoc2 10.74, assoc4 9.82, fullassoc 8.48, hybrid "
                "assoc4 8.98; per-benchmark spreads from idl (~1%) "
                "to gcc (~25%).");
        }});
    return def;
}
