#include "suites.hh"

namespace ibp {

void
registerAllBenchExperiments()
{
    ablMetapredictionExperiment();
    ablVariationsExperiment();
    extFutureWorkExperiment();
    extRelatedWorkExperiment();
    fig02Experiment();
    fig05Experiment();
    fig07Experiment();
    fig09Experiment();
    fig10Experiment();
    fig11Experiment();
    fig12Experiment();
    fig16Experiment();
    fig17Experiment();
    fig18Experiment();
    introOverheadExperiment();
    microThroughputExperiment();
    table01Experiment();
    table05Experiment();
    table06Experiment();
    tableA1Experiment();
}

} // namespace ibp
