/**
 * @file
 * Reproduces Figure 9: misprediction rate as a function of the path
 * length p (global history, per-address tables, unconstrained, full
 * precision), p = 0..18.
 *
 * Paper anchors: AVG drops steeply from 24.9% (p=0, a BTB) to 7.8%
 * at p=3, reaches its minimum 5.8% at p=6, then rises monotonically
 * through p=18 (long histories stop paying because of warm-up after
 * phase changes). All groups follow the same U shape.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig09Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig09", "Path-length sweep p=0..18 (Figure 9)",
        [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::fullSuite();

            std::vector<SweepColumn> columns;
            const unsigned step = context.quick() ? 3 : 1;
            for (unsigned p = 0; p <= 18; p += step) {
                columns.push_back(
                    {"p=" + std::to_string(p), [p]() {
                         return std::make_unique<TwoLevelPredictor>(
                             unconstrainedTwoLevel(p));
                     }});
            }

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.groupTable(
                "Figure 9: misprediction (%) vs path length "
                "(global history, per-address tables)",
                grid, columns));
            context.note(
                "Paper anchors: AVG 24.9 (p=0) -> 7.8 (p=3) -> "
                "minimum 5.8 (p=6) -> rising through p=18.");
        }});
    return def;
}
