/**
 * @file
 * Reproduces Figure 10: history-pattern compression by selecting b
 * low-order bits (starting at bit a=2) from each target, for
 * b in {1,2,3,4,8} and full 32-bit addresses, across path lengths
 * p = 0..12. Unconstrained tables isolate the information loss.
 *
 * Paper anchors: the b=8 curve overlaps the full-address curve;
 * losing precision hurts short path lengths most (p=3: 10.6% at
 * b=2 vs 7.1% full; p=10: 6.77% vs 6.53%); 24 total pattern bits
 * (the largest b with b*p <= 24) approach full precision everywhere.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

namespace {

TwoLevelConfig
limitedConfig(unsigned p, unsigned b)
{
    TwoLevelConfig config = paperTwoLevel(
        p, TableSpec::unconstrained());
    config.pattern.bitsPerTarget = b;
    // Section 4.1 predates the xor key mixing of section 4.2.
    config.pattern.keyMix = KeyMix::Concat;
    return config;
}

} // namespace

const ibp::ExperimentDef &
fig10Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig10", "Limited-precision history patterns (Figure 10)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            ResultTable table(
                "Figure 10: AVG misprediction (%) vs path length for "
                "b-bit target selection [2..2+b-1]",
                "p");
            std::vector<unsigned> bits = {1, 2, 3, 4, 8};
            for (unsigned b : bits)
                table.addColumn("b=" + std::to_string(b));
            table.addColumn("b*p<=24");
            table.addColumn("full");

            const unsigned max_p = context.quick() ? 6 : 12;
            for (unsigned p = 1; p <= max_p; ++p) {
                std::vector<SweepColumn> columns;
                for (unsigned b : bits) {
                    // Skip configurations whose pattern would not
                    // fit the 64-bit concatenated key.
                    if (b * p + 30 > 64)
                        continue;
                    columns.push_back(
                        {"b=" + std::to_string(b), [p, b]() {
                             return std::make_unique<
                                 TwoLevelPredictor>(
                                 limitedConfig(p, b));
                         }});
                }
                columns.push_back({"b*p<=24", [p]() {
                                       return std::make_unique<
                                           TwoLevelPredictor>(
                                           limitedConfig(p, 0));
                                   }});
                columns.push_back(
                    {"full", [p]() {
                         return std::make_unique<TwoLevelPredictor>(
                             unconstrainedTwoLevel(p));
                     }});

                const GridResult grid =
                    runner.run(columns, context.session());
                const unsigned row =
                    table.addRow(std::to_string(p));
                for (const auto &column : columns) {
                    table.set(std::to_string(p), column.label,
                              grid.average(column.label, avg));
                }
                (void)row;
            }
            context.emit(table);
            context.note(
                "Paper anchors: b=8 overlaps full precision; small b "
                "hurts short paths most; the b*p<=24 rule tracks the "
                "full-precision curve.");
        }});
    return def;
}
