/**
 * @file
 * Reproduces Figure 2: misprediction rates of an unconstrained
 * branch target buffer, with and without the two-bit-counter update
 * rule, for every benchmark and group.
 *
 * Paper anchors: AVG 28.1% (BTB) vs 24.9% (BTB-2bc); OO programs
 * around 20%, C programs around 37%; AVG-200 much worse than
 * AVG-100.
 */

#include <memory>

#include "core/btb.hh"
#include "sim/experiment.hh"
#include "sim/spec_columns.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig02Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig02", "Unconstrained BTB vs BTB-2bc (Figure 2)",
        [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::fullSuite();

            const std::vector<SweepColumn> columns = {
                btbColumn("BTB", TableSpec::unconstrained(), false),
                btbColumn("BTB-2bc", TableSpec::unconstrained(),
                          true),
            };

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.benchmarkTable(
                "Figure 2: unconstrained BTB misprediction rates (%)",
                grid, columns));
            context.note("Paper anchors: AVG 28.1 (BTB) / 24.9 "
                         "(BTB-2bc); BTB-2bc wins nearly everywhere.");
        },
        /*shardable=*/true});
    return def;
}
