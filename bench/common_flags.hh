/**
 * @file
 * The shared bench command line.
 *
 * Every bench binary accepts the same flags; parsing them lives here
 * (instead of once per binary) so a new flag - like --daemon - lands
 * everywhere at once. runBenchMain() is the whole main() of a bench:
 * parse flags, route through the resident ibpd daemon when --daemon
 * is in effect (falling back to in-process execution when no daemon
 * answers; src/serve/client.hh), else run in-process directly.
 */

#ifndef IBP_BENCH_COMMON_FLAGS_HH
#define IBP_BENCH_COMMON_FLAGS_HH

#include <string>

#include "serve/client.hh"
#include "sim/experiment.hh"

namespace ibp {

/** Everything the shared bench CLI extracts from argv. */
struct BenchCli
{
    /** Options for the run itself (quick, csv/json dirs, journal,
     *  retry policy). Quick's trace-scale cut and --trace-cache are
     *  applied to the process as side effects of parsing. */
    ExperimentOptions options;
    /** Route through the resident daemon (--daemon given). */
    bool useDaemon = false;
    /** Socket from --daemon=SOCKET ("" = IBP_DAEMON, else the
     *  default; serve/protocol.hh). */
    std::string daemonSocket;
    /** Per-frame receive deadline from --daemon-timeout=SECONDS
     *  (negative = $IBP_DAEMON_TIMEOUT, else 300; 0 = wait
     *  forever). Guards against a hung daemon blocking the bench
     *  indefinitely; serve/client.hh. */
    double daemonTimeoutSeconds = -1.0;
};

/**
 * Parse the shared flags. Prints usage and exits on --help or an
 * unknown/malformed flag (this is the CLI front end; the library
 * layers below never exit).
 */
BenchCli parseBenchFlags(int argc, char **argv);

/**
 * The standard bench main: parse flags, then run @p def via the
 * daemon (--daemon) or in-process. Returns the process exit code
 * (0 clean, 1 fatal, 3 partial).
 */
int runBenchMain(const ExperimentDef &def, int argc, char **argv);

} // namespace ibp

#endif // IBP_BENCH_COMMON_FLAGS_HH
