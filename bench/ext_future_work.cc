/**
 * @file
 * The paper's future-work agenda (section 8.1), implemented:
 *
 *  1. Hybrids with three components and with differently-sized
 *     components;
 *  2. the shared-table hybrid whose entries carry a "chosen"
 *     counter so seldom-used entries can be recuperated by another
 *     component;
 *  3. next-branch prediction: predicting the address of the next
 *     indirect branch along with the target.
 */

#include <memory>

#include "core/factory.hh"
#include "core/next_branch.hh"
#include "core/shared_hybrid.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
extFutureWorkExperiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "ext_future", "Future-work extensions (section 8.1)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const std::uint64_t total = context.quick() ? 1024 : 4096;

            const std::vector<SweepColumn> columns = {
                {"2comp",
                 [total]() {
                     return std::make_unique<HybridPredictor>(
                         paperHybrid(3, 1,
                                     TableSpec::setAssoc(total / 2,
                                                         4)));
                 }},
                {"3comp",
                 [total]() {
                     HybridConfig config;
                     const TableSpec spec = TableSpec::setAssoc(
                         (total / 4) & ~std::uint64_t{3}, 4);
                     config.components = {
                         paperTwoLevel(5, spec),
                         paperTwoLevel(2, spec),
                         paperTwoLevel(0, TableSpec::setAssoc(
                                              total / 2, 4))};
                     return std::make_unique<HybridPredictor>(config);
                 }},
                {"asym",
                 [total]() {
                     // Differently-sized components: a small quick
                     // component plus a large long-path one (3-way
                     // keeps the set count a power of two).
                     return std::make_unique<HybridPredictor>(
                         HybridConfig::twoComponent(
                             paperTwoLevel(6, TableSpec::setAssoc(
                                                  total * 3 / 4, 3)),
                             paperTwoLevel(1, TableSpec::setAssoc(
                                                  total / 4, 4))));
                 }},
                {"shared",
                 [total]() {
                     SharedHybridConfig config;
                     config.pathLengths = {3, 1};
                     config.entries = total;
                     config.ways = 4;
                     return std::make_unique<SharedHybridPredictor>(
                         config);
                 }},
                {"shared-3p",
                 [total]() {
                     SharedHybridConfig config;
                     config.pathLengths = {6, 3, 1};
                     config.entries = total;
                     config.ways = 4;
                     return std::make_unique<SharedHybridPredictor>(
                         config);
                 }},
            };

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.groupTable(
                "Future-work hybrids at " + std::to_string(total) +
                    " total entries (misprediction %)",
                grid, columns));
            context.note(
                "The shared table lets the component split float "
                "with usefulness; compare against the fixed "
                "half/half '2comp' baseline.");

            // Next-branch prediction (run-ahead). Evaluate the joint
            // (target, next indirect PC) accuracy on the AVG suite.
            ResultTable next_table(
                "Next-branch prediction (unconstrained, joint "
                "target+next-PC accuracy %)",
                "p");
            next_table.addColumn("target-hit%");
            next_table.addColumn("joint-hit%");
            for (unsigned p : {1u, 3u, 6u}) {
                double target_hits = 0, joint_hits = 0, total_b = 0;
                for (const auto &name : runner.benchmarks()) {
                    const Trace &trace = runner.trace(name);
                    NextBranchPredictor predictor(p);
                    const auto &records = trace.records();
                    for (std::size_t i = 0; i + 1 < records.size();
                         ++i) {
                        const auto &record = records[i];
                        const auto &next = records[i + 1];
                        const NextBranchPrediction guess =
                            predictor.predict(record.pc);
                        total_b += 1;
                        if (guess.valid &&
                            guess.target == record.target) {
                            target_hits += 1;
                            if (guess.nextPc == next.pc)
                                joint_hits += 1;
                        }
                        predictor.update(record.pc, record.target,
                                         next.pc);
                    }
                }
                const std::string row = std::to_string(p);
                next_table.set(row, "target-hit%",
                               100.0 * target_hits / total_b);
                next_table.set(row, "joint-hit%",
                               100.0 * joint_hits / total_b);
            }
            context.emit(next_table);
            context.note(
                "Joint accuracy close to target accuracy means the "
                "path usually determines the next indirect branch "
                "too - the property run-ahead prediction needs.");
        }});
    return def;
}
