/**
 * @file
 * The BENCH_micro experiment: whole-cell simulate() throughput of a
 * Figure-18-style predictor mix, flat tables vs the retained
 * reference tables, plus the three-engine (per-column / single-pass
 * / fused) comparison on the Figure-17 row sweep. Lives in the
 * suites library - separate from the google-benchmark loops in
 * micro_throughput.cc - so the ibpd daemon can serve it like any
 * paper experiment.
 *
 * Only the flat cells are recorded into the telemetry, so the
 * artifact's branches_per_second is the flat-table aggregate and CI
 * can hold it to a floor with report_diff --min-throughput; the
 * emitted table carries both sides plus the speedup.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/btb.hh"
#include "core/factory.hh"
#include "core/sweep_kernel.hh"
#include "sim/experiment.hh"
#include "sim/result_store.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "util/format.hh"

#include "suites.hh"

namespace {

const ibp::Trace &
benchTrace()
{
    static const ibp::Trace trace = [] {
        ibp::GeneratorOptions options;
        options.events = 100000;
        return ibp::generateTrace(ibp::benchmarkProfile("porky"),
                                  options);
    }();
    return trace;
}

struct MixCell
{
    std::string label;
    std::function<std::unique_ptr<ibp::IndirectPredictor>()> make;
};

/** The Figure-18 organisations at 4K entries plus BTB and hybrid. */
std::vector<MixCell>
fig18Mix()
{
    using namespace ibp;
    return {
        {"btb",
         [] {
             return std::make_unique<BtbPredictor>(
                 TableSpec::fullyAssoc(4096), true);
         }},
        {"unconstrained",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 unconstrainedTwoLevel(6));
         }},
        {"tagless",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::tagless(4096)));
         }},
        {"assoc4",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::setAssoc(4096, 4)));
         }},
        {"fullassoc",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::fullyAssoc(4096)));
         }},
        {"hybrid",
         [] {
             return std::make_unique<HybridPredictor>(paperHybrid(
                 3, 1, TableSpec::setAssoc(2048, 4)));
         }},
    };
}

/**
 * The Figure-17 row sweep the fused kernel exists for: p1=3 against
 * every p2 in 0..12, 4-way component tables - 13 columns sharing one
 * benchmark trace and (for the two-level first levels) one history
 * specification group. The diagonal cell (p2 == 3) is the paper's
 * non-hybrid predictor of twice the component size.
 */
std::vector<MixCell>
fig17Row()
{
    using namespace ibp;
    std::vector<MixCell> cells;
    for (unsigned p2 = 0; p2 <= 12; ++p2) {
        const std::string label = "p2=" + std::to_string(p2);
        if (p2 == 3) {
            cells.push_back({label, [] {
                                 return std::make_unique<
                                     TwoLevelPredictor>(paperTwoLevel(
                                     3,
                                     TableSpec::setAssoc(4096, 4)));
                             }});
        } else {
            cells.push_back(
                {label, [p2] {
                     return std::make_unique<HybridPredictor>(
                         paperHybrid(3, p2,
                                     TableSpec::setAssoc(2048, 4)));
                 }});
        }
    }
    return cells;
}

/**
 * Best-of-@p reps whole-cell simulate() run under the current table
 * implementation. Fresh predictor per rep (cold tables every time,
 * like a real sweep cell); best rather than mean discards scheduler
 * noise.
 */
ibp::SimResult
bestOf(const MixCell &cell, unsigned reps)
{
    ibp::SimResult best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        auto predictor = cell.make();
        const ibp::SimResult result =
            ibp::simulate(*predictor, benchTrace());
        if (rep == 0 || result.seconds < best.seconds)
            best = result;
    }
    return best;
}

} // namespace

const ibp::ExperimentDef &
microThroughputExperiment()
{
    using namespace ibp;
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "BENCH_micro",
        "Simulation throughput: flat tables vs reference",
        [](ExperimentContext &context) {
            const unsigned reps = context.quick() ? 2 : 3;
            const TableImpl initial = tableImplementation();
            const auto mix = fig18Mix();

            ResultTable table(
                "Whole-cell throughput on porky-100k (Mbranches/s)",
                "predictor");
            table.addColumn("flat");
            table.addColumn("reference");
            table.addColumn("speedup");

            double flat_seconds = 0.0;
            double reference_seconds = 0.0;
            for (const MixCell &cell : mix) {
                setTableImplementation(TableImpl::Reference);
                const SimResult reference = bestOf(cell, reps);
                setTableImplementation(TableImpl::Flat);
                const SimResult flat = bestOf(cell, reps);

                const double flat_rate =
                    static_cast<double>(flat.branches) /
                    flat.seconds / 1e6;
                const double reference_rate =
                    static_cast<double>(reference.branches) /
                    reference.seconds / 1e6;
                table.set(cell.label, "flat", flat_rate);
                table.set(cell.label, "reference", reference_rate);
                table.set(cell.label, "speedup",
                          flat_rate / reference_rate);

                // Only the flat side lands in the telemetry: the
                // artifact's branches_per_second is then the flat
                // aggregate, which the CI throughput floor gates.
                CellMetrics recorded;
                recorded.column = cell.label;
                recorded.benchmark = "porky-100k";
                recorded.branches = flat.branches;
                recorded.seconds = flat.seconds;
                recorded.groupSeconds = flat.groupSeconds;
                recorded.tableOccupancy = flat.tableOccupancy;
                recorded.tableCapacity = flat.tableCapacity;
                context.metrics().recordCell(recorded);
                flat_seconds += flat.seconds;
                reference_seconds += reference.seconds;
            }
            context.metrics().recordRunWindow(flat_seconds);
            setTableImplementation(initial);

            context.emit(table);
            context.note(
                "Aggregate flat speedup over the mix: " +
                formatFixed(reference_seconds /
                                std::max(flat_seconds, 1e-12),
                            2) +
                "x (best-of-" + std::to_string(reps) +
                " per cell, cold predictor per rep).");

            // ---------------------------------------------------
            // The fig17 hybrid-grid mix, three engines: per-column
            // (13 solo trace traversals), single-pass (one
            // traversal, every predictor keeping private history -
            // the engine sweeps used before the fused kernel), and
            // fused (one traversal through a SweepKernel: shared
            // histories, deduplicated key builds, replicated p1
            // components). Counters are bit-identical across all
            // three (tests/sim/fused_kernel_test.cc); only the time
            // differs, and fused-over-single-pass is the speedup
            // SuiteRunner's phase-1 engine banks on real sweeps.
            setTableImplementation(TableImpl::Flat);
            const auto row = fig17Row();
            double solo_seconds = 0.0;
            std::uint64_t row_branches = 0;
            for (const MixCell &cell : row) {
                const SimResult solo = bestOf(cell, reps);
                solo_seconds += solo.seconds;
                row_branches += solo.branches;
            }
            double single_pass_seconds = 0.0;
            double fused_seconds = 0.0;
            unsigned deduped = 0;
            for (unsigned rep = 0; rep < reps; ++rep) {
                for (const bool fuse : {false, true}) {
                    std::vector<std::unique_ptr<IndirectPredictor>>
                        predictors;
                    std::vector<IndirectPredictor *> raw;
                    for (const MixCell &cell : row) {
                        predictors.push_back(cell.make());
                        raw.push_back(predictors.back().get());
                    }
                    SweepKernel kernel;
                    SimOptions options;
                    if (fuse) {
                        for (IndirectPredictor *predictor : raw)
                            kernel.tryJoin(*predictor);
                        kernel.finalize();
                        deduped = kernel.dedupedPredictors();
                        options.kernel = &kernel;
                    }
                    const std::vector<SimResult> results =
                        simulateMany(raw, benchTrace(), options);
                    const double seconds =
                        results.front().groupSeconds;
                    double &best =
                        fuse ? fused_seconds : single_pass_seconds;
                    if (rep == 0 || seconds < best)
                        best = seconds;
                }
            }
            setTableImplementation(initial);

            ResultTable fig17_table(
                "Figure-17 row sweep (p1=3, 13 columns) on "
                "porky-100k: per-column vs single-pass vs fused",
                "engine");
            fig17_table.addColumn("seconds");
            fig17_table.addColumn("Mbranches/s");
            fig17_table.addColumn("speedup");
            const auto rate = [row_branches](double seconds) {
                return static_cast<double>(row_branches) /
                       std::max(seconds, 1e-12) / 1e6;
            };
            fig17_table.set("per-column", "seconds", solo_seconds);
            fig17_table.set("per-column", "Mbranches/s",
                            rate(solo_seconds));
            fig17_table.set("per-column", "speedup",
                            single_pass_seconds /
                                std::max(solo_seconds, 1e-12));
            fig17_table.set("single-pass", "seconds",
                            single_pass_seconds);
            fig17_table.set("single-pass", "Mbranches/s",
                            rate(single_pass_seconds));
            fig17_table.set("single-pass", "speedup", 1.0);
            fig17_table.set("fused", "seconds", fused_seconds);
            fig17_table.set("fused", "Mbranches/s",
                            rate(fused_seconds));
            fig17_table.set("fused", "speedup",
                            single_pass_seconds /
                                std::max(fused_seconds, 1e-12));
            context.emit(fig17_table);
            context.note(
                "Fused sweep-kernel speedup on the fig17 row mix: " +
                formatFixed(single_pass_seconds /
                                std::max(fused_seconds, 1e-12),
                            2) +
                "x aggregate throughput vs the single-pass engine "
                "(shared first-level histories, deduplicated key "
                "builds, " +
                std::to_string(deduped) +
                " replicated columns), " +
                formatFixed(solo_seconds /
                                std::max(fused_seconds, 1e-12),
                            2) +
                "x vs 13 per-column traversals.");

            // ---------------------------------------------------
            // The grid sharder's cell-claim layer (docs/SERVICE.md):
            // flock-backed claim round-trips, durable entry stores
            // (tmp+fsync+rename), warm loads, and contended-claim
            // probes on a throwaway store. These rates bound the
            // per-cell coordination overhead a sharded fan-out pays
            // on top of the simulation itself. CI's micro tolerances
            // gate the table's structure, not the exact rates (pure
            // filesystem noise on shared runners).
            char claim_dir[] = "/tmp/ibpmicroclaimXXXXXX";
            if (::mkdtemp(claim_dir) != nullptr) {
                const ResultStore store{std::string(claim_dir)};
                const auto kops = [](std::size_t ops,
                                     double seconds) {
                    return static_cast<double>(ops) /
                           std::max(seconds, 1e-12) / 1e3;
                };
                const auto since =
                    [](std::chrono::steady_clock::time_point then) {
                        return std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   then)
                            .count();
                    };
                ResultTable claim_table(
                    "Cell-claim layer on a throwaway store (kops/s)",
                    "operation");
                claim_table.addColumn("kops/s");

                const std::size_t claim_ops = 2048;
                auto t0 = std::chrono::steady_clock::now();
                for (std::size_t i = 0; i < claim_ops; ++i) {
                    CellClaim claim = store.tryClaim("bench-claim");
                    claim.release();
                }
                claim_table.set("claim-roundtrip", "kops/s",
                                kops(claim_ops, since(t0)));

                const std::size_t store_ops = 128;
                StoredResult cell;
                cell.benchmark = "porky-100k";
                cell.predictor = "bench";
                cell.branches = 100000;
                cell.misses = 12345;
                t0 = std::chrono::steady_clock::now();
                for (std::size_t i = 0; i < store_ops; ++i) {
                    (void)store.store(
                        "bench-cell-" + std::to_string(i), cell);
                }
                claim_table.set("store-put", "kops/s",
                                kops(store_ops, since(t0)));

                std::size_t hits = 0;
                t0 = std::chrono::steady_clock::now();
                for (std::size_t i = 0; i < store_ops; ++i) {
                    hits += store
                                .load("bench-cell-" +
                                      std::to_string(i))
                                    .status ==
                            ResultStore::LoadStatus::Hit;
                }
                claim_table.set("load-hit", "kops/s",
                                kops(store_ops, since(t0)));

                CellClaim held = store.tryClaim("bench-contended");
                t0 = std::chrono::steady_clock::now();
                for (std::size_t i = 0; i < claim_ops; ++i) {
                    const CellClaim probe =
                        store.tryClaim("bench-contended");
                    (void)probe;
                }
                claim_table.set("busy-probe", "kops/s",
                                kops(claim_ops, since(t0)));
                held.release();

                context.emit(claim_table);
                context.note(
                    "Cell-claim coordination: " +
                    std::to_string(hits) + "/" +
                    std::to_string(store_ops) +
                    " warm loads hit; claim round-trip and busy "
                    "probe are flock(2) on a sidecar, store-put "
                    "pays the durable tmp+fsync+rename path.");
                std::error_code ec;
                std::filesystem::remove_all(claim_dir, ec);
            }
        }});
    return def;
}
