/**
 * @file
 * Reproduces Figure 18 (non-hybrid side) and the non-hybrid columns
 * of Tables A-1/A-2: for every table size and organisation (tagless,
 * 2-way, 4-way, fully-associative, plus the BTB reference), the best
 * path length's AVG misprediction rate and which p achieved it.
 *
 * Paper anchors (AVG, best p): 1K entries - tagless 11.4/p3,
 * 2-way 10.7/p2, 4-way 9.8/p3, fullassoc 8.5/p3; 8K entries -
 * tagless 8.5/p4, 4-way 7.3/p4, fullassoc 6.6/p5; BTB flat at 24.9.
 */

#include <map>
#include <memory>

#include "core/btb.hh"
#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/spec_columns.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig18Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig18", "Best non-hybrid predictor per size (Figure 18)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            std::vector<std::uint64_t> sizes = {
                64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
                32768};
            std::vector<unsigned> path_lengths = {0, 1, 2, 3,
                                                  4, 5, 6};
            if (context.quick()) {
                sizes = {256, 2048, 16384};
                path_lengths = {0, 2, 4};
            }

            ResultTable best("Figure 18: best AVG misprediction (%) "
                             "per size and organisation",
                             "entries");
            ResultTable best_p("Table A-2: path length of the best "
                               "predictor",
                               "entries");
            for (const auto &org :
                 {"btb", "tagless", "assoc2", "assoc4", "fullassoc"}) {
                best.addColumn(org);
                if (std::string(org) != "btb")
                    best_p.addColumn(org);
            }
            best_p.setPrecision(0);

            for (const std::uint64_t size : sizes) {
                const std::string row = std::to_string(size);

                // BTB reference at this size (fully associative).
                {
                    std::vector<SweepColumn> columns = {btbColumn(
                        "btb", TableSpec::fullyAssoc(size), true)};
                    const GridResult grid =
                        runner.run(columns, context.session());
                    best.set(row, "btb", grid.average("btb", avg));
                }

                for (const auto org : {"tagless", "assoc2", "assoc4",
                                       "fullassoc"}) {
                    const std::string org_name(org);
                    std::vector<SweepColumn> columns;
                    for (unsigned p : path_lengths) {
                        TableSpec spec;
                        if (org_name == "tagless")
                            spec = TableSpec::tagless(size);
                        else if (org_name == "assoc2")
                            spec = TableSpec::setAssoc(size, 2);
                        else if (org_name == "assoc4")
                            spec = TableSpec::setAssoc(size, 4);
                        else
                            spec = TableSpec::fullyAssoc(size);
                        columns.push_back(
                            specColumn("p=" + std::to_string(p),
                                       paperTwoLevel(p, spec)));
                    }
                    const GridResult grid =
                        runner.run(columns, context.session());
                    double best_rate = 1e9;
                    unsigned winner = 0;
                    for (unsigned p : path_lengths) {
                        const double rate = grid.average(
                            "p=" + std::to_string(p), avg);
                        if (rate < best_rate) {
                            best_rate = rate;
                            winner = p;
                        }
                    }
                    best.set(row, org_name, best_rate);
                    best_p.set(row, org_name,
                               static_cast<double>(winner));
                }
            }
            context.emit(best);
            context.emit(best_p);
            context.note(
                "Paper anchors: two-level beats the BTB threefold "
                "for 1K+ tables; the winning path length grows with "
                "size; fullassoc < assoc4 < assoc2 < tagless at "
                "every size.");
        },
        /*shardable=*/true});
    return def;
}
