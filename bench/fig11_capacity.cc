/**
 * @file
 * Reproduces Figure 11: bounded fully-associative tables with LRU
 * replacement introduce capacity misses. Sweeps table sizes 64..32K
 * against path lengths 0,1,2,3,4,6,8,10,12.
 *
 * Paper anchors: short paths saturate early (p=0 stops improving at
 * 256 entries, p=3/4 around 8K); longer paths never fully recover in
 * the explored range; the best path length grows with table size
 * (p=2 wins at 256 entries, p=3 at 1K, p=6 at 8K).
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig11Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig11", "Capacity misses: fully-assoc LRU tables (Figure 11)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            std::vector<unsigned> path_lengths = {0, 1, 2, 3,
                                                  4, 6, 8, 12};
            std::vector<std::uint64_t> sizes = {64,   128,  256, 512,
                                                1024, 2048, 4096,
                                                8192, 16384, 32768};
            if (context.quick()) {
                path_lengths = {0, 2, 4, 8};
                sizes = {256, 2048, 16384};
            }

            ResultTable table(
                "Figure 11: AVG misprediction (%), fully-assoc LRU",
                "entries");
            for (unsigned p : path_lengths)
                table.addColumn("p=" + std::to_string(p));

            for (std::uint64_t size : sizes) {
                std::vector<SweepColumn> columns;
                for (unsigned p : path_lengths) {
                    columns.push_back(
                        {"p=" + std::to_string(p), [p, size]() {
                             return std::make_unique<
                                 TwoLevelPredictor>(paperTwoLevel(
                                 p, TableSpec::fullyAssoc(size)));
                         }});
                }
                const GridResult grid =
                    runner.run(columns, context.session());
                const std::string row = std::to_string(size);
                for (const auto &column : columns) {
                    table.set(row, column.label,
                              grid.average(column.label, avg));
                }
            }
            context.emit(table);
            context.note(
                "Paper anchors: p=2 best at 256 entries (12.5%), p=3 "
                "at 1K (8.5%), p=6 at 8K (6.6%); the winning path "
                "length grows with the table.");
        }});
    return def;
}
