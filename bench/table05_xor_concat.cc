/**
 * @file
 * Reproduces Table 5: concatenating vs xor-ing the history pattern
 * with the branch address (the gshare analogy of section 4.2), for
 * path lengths 0..12 with 24-bit compressed patterns and
 * unconstrained tables.
 *
 * Paper anchors: xor loses at most a few hundredths of a percent
 * through p=8 (e.g. p=6: 6.01 vs 5.99) and under half a percent for
 * p >= 9, while halving the tag storage - so xor is adopted for all
 * resource-constrained predictors.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
table05Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "table05", "Key mixing: concat vs xor (Table 5)",
        [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            ResultTable table(
                "Table 5: AVG misprediction (%), pattern x address "
                "mixing",
                "operation");
            const unsigned max_p = context.quick() ? 6 : 12;
            for (unsigned p = 0; p <= max_p; ++p)
                table.addColumn("p=" + std::to_string(p));
            table.addRow("Xor");
            table.addRow("Concat");
            table.addRow("Xor-Concat");

            for (unsigned p = 0; p <= max_p; ++p) {
                std::vector<SweepColumn> columns;
                for (const KeyMix mix :
                     {KeyMix::Xor, KeyMix::Concat}) {
                    columns.push_back(
                        {toString(mix), [p, mix]() {
                             TwoLevelConfig config = paperTwoLevel(
                                 p, TableSpec::unconstrained());
                             config.pattern.keyMix = mix;
                             return std::make_unique<
                                 TwoLevelPredictor>(config);
                         }});
                }
                const GridResult grid =
                    runner.run(columns, context.session());
                const double xor_rate = grid.average("xor", avg);
                const double concat_rate =
                    grid.average("concat", avg);
                table.set("Xor", "p=" + std::to_string(p), xor_rate);
                table.set("Concat", "p=" + std::to_string(p),
                          concat_rate);
                table.set("Xor-Concat", "p=" + std::to_string(p),
                          xor_rate - concat_rate);
            }
            context.emit(table);
            context.note("Paper anchors: differences of 0.01-0.5% "
                         "only; xor halves the tag storage and is "
                         "adopted.");
        }});
    return def;
}
