/**
 * @file
 * Reproduces Table 6 and the hybrid side of Figure 18 / Tables
 * A-1/A-2: the best two-component hybrid predictor for each total
 * table size and organisation (tagless, 2-way, 4-way), its component
 * path lengths, and the comparison against the best non-hybrid
 * predictor of the same total size.
 *
 * Paper anchors (AVG): 1K total - tagless 11.42 (p 3.1), assoc2 9.56
 * (3.1), assoc4 8.98 (3.1); 8K total - tagless 7.76 (3.7), assoc2
 * 6.40 (6.2), assoc4 5.95 (6.2). Hybrids beat equal-sized
 * non-hybrids everywhere above 64 entries, and for >= 4K a 4-way
 * hybrid beats even a fully-associative non-hybrid table.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
table06Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "table06", "Best hybrid predictors (Table 6 / Figure 18)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            // Candidate (short, long) component pairs; the paper's
            // winners all lie in this set.
            std::vector<std::pair<unsigned, unsigned>> pairs = {
                {0, 2}, {1, 0}, {1, 3}, {1, 4}, {2, 0}, {2, 1},
                {3, 1}, {4, 1}, {5, 1}, {5, 2}, {6, 2}, {7, 2},
                {3, 7}, {8, 2}};
            std::vector<std::uint64_t> totals = {
                128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768};
            if (context.quick()) {
                pairs = {{1, 3}, {3, 1}, {6, 2}};
                totals = {1024, 8192};
            }

            ResultTable table("Table 6: best hybrid AVG "
                              "misprediction (%) per total size",
                              "entries");
            ResultTable winners("Table 6: winning component path "
                                "lengths (p1.p2)",
                                "entries");
            for (const auto &org : {"tagless", "assoc2", "assoc4"}) {
                table.addColumn(org);
                winners.addColumn(org);
            }
            winners.setPrecision(1);

            for (const std::uint64_t total : totals) {
                const std::string row = std::to_string(total);
                for (unsigned ways : {0u, 2u, 4u}) {
                    const std::string org =
                        ways == 0 ? "tagless"
                                  : "assoc" + std::to_string(ways);
                    const std::uint64_t comp = total / 2;
                    if (ways != 0 && comp / ways == 0)
                        continue;

                    std::vector<SweepColumn> columns;
                    for (const auto &[p1, p2] : pairs) {
                        const std::string label =
                            std::to_string(p1) + "." +
                            std::to_string(p2);
                        columns.push_back(
                            {label, [p1 = p1, p2 = p2, comp, ways]() {
                                 const TableSpec spec =
                                     ways == 0
                                         ? TableSpec::tagless(comp)
                                         : TableSpec::setAssoc(comp,
                                                               ways);
                                 return std::make_unique<
                                     HybridPredictor>(
                                     paperHybrid(p1, p2, spec));
                             }});
                    }
                    const GridResult grid =
                        runner.run(columns, context.session());
                    double best_rate = 1e9;
                    double best_combo = 0;
                    for (const auto &[p1, p2] : pairs) {
                        const std::string label =
                            std::to_string(p1) + "." +
                            std::to_string(p2);
                        const double rate = grid.average(label, avg);
                        if (rate < best_rate) {
                            best_rate = rate;
                            best_combo =
                                static_cast<double>(p1) +
                                static_cast<double>(p2) / 10.0;
                        }
                    }
                    table.set(row, org, best_rate);
                    winners.set(row, org, best_combo);
                }
            }
            context.emit(table);
            context.emit(winners);
            context.note(
                "Paper anchors: 1K 4-way 8.98 (3.1); 8K 4-way 5.95 "
                "(6.2); short+long combinations win, and the best "
                "path lengths grow with table size.");
        }});
    return def;
}
