/**
 * @file
 * Reproduces Figure 16: AVG misprediction rates for tagless, 2-way
 * and 4-way tables across table sizes and path lengths (reverse
 * interleaving, xor key mixing, 2bc update).
 *
 * Paper anchors: higher associativity wins at every size except
 * where *positive interference* lets tagless tables beat 4-way for
 * long paths (many patterns share a target, so an aliased slot still
 * predicts better than a tag miss); the best path length grows with
 * table size (tagless: p=3 from 128 to 8K; 4-way: p=2 at 256..512,
 * p=3 at 1K..4K, p=4 at 8K).
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig16Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig16", "Associativity x size x path length (Figure 16)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            std::vector<std::uint64_t> sizes = {128,  512,  2048,
                                                8192, 32768};
            std::vector<unsigned> path_lengths = {0, 1, 2, 3, 4,
                                                  5, 6, 8, 10, 12};
            if (context.quick()) {
                sizes = {512, 8192};
                path_lengths = {0, 2, 4, 8};
            }

            for (unsigned ways : {0u, 2u, 4u}) {
                const std::string org =
                    ways == 0 ? "tagless"
                              : std::to_string(ways) + "-way";
                ResultTable table("Figure 16 (" + org +
                                      "): AVG misprediction (%)",
                                  "entries");
                for (unsigned p : path_lengths)
                    table.addColumn("p=" + std::to_string(p));

                for (std::uint64_t size : sizes) {
                    std::vector<SweepColumn> columns;
                    for (unsigned p : path_lengths) {
                        columns.push_back(
                            {"p=" + std::to_string(p),
                             [p, ways, size]() {
                                 const TableSpec spec =
                                     ways == 0
                                         ? TableSpec::tagless(size)
                                         : TableSpec::setAssoc(size,
                                                               ways);
                                 return std::make_unique<
                                     TwoLevelPredictor>(
                                     paperTwoLevel(p, spec));
                             }});
                    }
                    const GridResult grid =
                        runner.run(columns, context.session());
                    const std::string row = std::to_string(size);
                    for (const auto &column : columns) {
                        table.set(row, column.label,
                                  grid.average(column.label, avg));
                    }
                }
                context.emit(table);
            }
            context.note(
                "Paper anchors: best p grows with size; tagless "
                "tables show positive interference at long paths "
                "(sometimes beating 4-way for p >= 7).");
        }});
    return def;
}
