/**
 * @file
 * Reproduces the paper's negative results (sections 3.3 and 4.1) as
 * an ablation bench:
 *
 *  - including the branch address alongside each target in the
 *    history (inferior for any p);
 *  - including taken conditional-branch targets in the history
 *    (pushes relevant indirect targets out of the pattern);
 *  - omitting the branch address from the key (p=8: 6.0% -> 9.6%);
 *  - fold-xor and shift-xor target compression (no reliable win
 *    over plain bit selection, more logic);
 *  - updating the target on every miss instead of the
 *    two-bit-counter rule (worse nearly everywhere, section 3.1).
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
ablVariationsExperiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "abl_variations", "Rejected design variants (sections "
        "3.3/4.1)", [](ExperimentContext &context) {
            // Conditional records are needed by the
            // conditional-targets variant.
            SuiteRunner runner(benchmarkGroups().avg, true);

            const unsigned p = context.quick() ? 4 : 8;

            const auto baseline = [p]() {
                return std::make_unique<TwoLevelPredictor>(
                    unconstrainedTwoLevel(p));
            };
            const std::vector<SweepColumn> columns = {
                {"baseline", baseline},
                {"addr-in-hist",
                 [p]() {
                     TwoLevelConfig config = unconstrainedTwoLevel(p);
                     config.historyElement =
                         HistoryElement::TargetAndAddress;
                     return std::make_unique<TwoLevelPredictor>(
                         config);
                 }},
                {"cond-in-hist",
                 [p]() {
                     TwoLevelConfig config = unconstrainedTwoLevel(p);
                     config.includeConditionalTargets = true;
                     return std::make_unique<TwoLevelPredictor>(
                         config);
                 }},
                {"no-addr",
                 [p]() {
                     TwoLevelConfig config = unconstrainedTwoLevel(p);
                     config.pattern.includeBranchAddress = false;
                     return std::make_unique<TwoLevelPredictor>(
                         config);
                 }},
                {"fold-xor",
                 [p]() {
                     TwoLevelConfig config = paperTwoLevel(
                         p, TableSpec::unconstrained());
                     config.pattern.compressor =
                         CompressorKind::FoldXor;
                     return std::make_unique<TwoLevelPredictor>(
                         config);
                 }},
                {"shift-xor",
                 [p]() {
                     TwoLevelConfig config = paperTwoLevel(
                         p, TableSpec::unconstrained());
                     config.pattern.compressor =
                         CompressorKind::ShiftXor;
                     return std::make_unique<TwoLevelPredictor>(
                         config);
                 }},
                {"bit-select",
                 [p]() {
                     return std::make_unique<TwoLevelPredictor>(
                         paperTwoLevel(p,
                                       TableSpec::unconstrained()));
                 }},
                {"no-2bc",
                 [p]() {
                     TwoLevelConfig config = unconstrainedTwoLevel(p);
                     config.hysteresis = false;
                     return std::make_unique<TwoLevelPredictor>(
                         config);
                 }},
            };

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.groupTable(
                "Rejected variants, p=" + std::to_string(p) +
                    ", unconstrained (misprediction %)",
                grid, columns));
            context.note(
                "Paper anchors: every variant loses to the baseline "
                "- omitting the branch address costs ~3.6% absolute "
                "at p=8; conditional targets crowd out indirect "
                "history; fold/shift-xor do not beat bit selection; "
                "updating on every miss is worse.");
        }});
    return def;
}
