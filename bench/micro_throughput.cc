/**
 * @file
 * Simulation-engine throughput benchmarks. Two modes:
 *
 *  - Default: google-benchmark microbenchmarks (one predict() +
 *    update() pair per iteration, driven by a real synthetic trace),
 *    for interactive profiling of each predictor family.
 *
 *  - Artifact mode (any --json=DIR argument): measures whole-cell
 *    simulate() throughput of a Figure-18-style predictor mix twice -
 *    once with the flat-table implementation and once with the
 *    retained std::unordered_map reference tables (see
 *    core/table_spec.hh) - and writes a BENCH_micro run artifact.
 *    Only the flat cells are recorded into the telemetry, so the
 *    artifact's branches_per_second is the flat-table aggregate and
 *    CI can hold it to a floor with report_diff --min-throughput;
 *    the emitted table carries both sides plus the speedup.
 *
 * Not a paper experiment - this guards the simulation engine's
 * performance, which bounds how large the reproduction sweeps can be.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/btb.hh"
#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "util/format.hh"

namespace {

const ibp::Trace &
benchTrace()
{
    static const ibp::Trace trace = [] {
        ibp::GeneratorOptions options;
        options.events = 100000;
        return ibp::generateTrace(ibp::benchmarkProfile("porky"),
                                  options);
    }();
    return trace;
}

void
driveLoop(benchmark::State &state, ibp::IndirectPredictor &predictor)
{
    const auto &records = benchTrace().records();
    std::size_t index = 0;
    for (auto _ : state) {
        const auto &record = records[index];
        if (++index == records.size())
            index = 0;
        if (!record.isPredictedIndirect())
            continue;
        const ibp::Prediction prediction =
            predictor.predict(record.pc);
        benchmark::DoNotOptimize(prediction);
        predictor.update(record.pc, record.target);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_BtbUnconstrained(benchmark::State &state)
{
    ibp::BtbPredictor predictor(ibp::TableSpec::unconstrained(),
                                true);
    driveLoop(state, predictor);
}
BENCHMARK(BM_BtbUnconstrained);

void
BM_TwoLevelUnconstrained(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(ibp::unconstrainedTwoLevel(6));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelUnconstrained);

void
BM_TwoLevelSetAssoc(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(ibp::paperTwoLevel(
        static_cast<unsigned>(state.range(0)),
        ibp::TableSpec::setAssoc(4096, 4)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelSetAssoc)->Arg(1)->Arg(3)->Arg(6)->Arg(12);

void
BM_TwoLevelTagless(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(
        ibp::paperTwoLevel(3, ibp::TableSpec::tagless(4096)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelTagless);

void
BM_TwoLevelFullyAssoc(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(
        ibp::paperTwoLevel(3, ibp::TableSpec::fullyAssoc(4096)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelFullyAssoc);

void
BM_Hybrid(benchmark::State &state)
{
    ibp::HybridPredictor predictor(ibp::paperHybrid(
        3, 1, ibp::TableSpec::setAssoc(2048, 4)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_Hybrid);

// ---------------------------------------------------------------
// Artifact mode: flat vs reference whole-cell throughput.

struct MixCell
{
    const char *label;
    std::function<std::unique_ptr<ibp::IndirectPredictor>()> make;
};

/** The Figure-18 organisations at 4K entries plus BTB and hybrid. */
std::vector<MixCell>
fig18Mix()
{
    using namespace ibp;
    return {
        {"btb",
         [] {
             return std::make_unique<BtbPredictor>(
                 TableSpec::fullyAssoc(4096), true);
         }},
        {"unconstrained",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 unconstrainedTwoLevel(6));
         }},
        {"tagless",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::tagless(4096)));
         }},
        {"assoc4",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::setAssoc(4096, 4)));
         }},
        {"fullassoc",
         [] {
             return std::make_unique<TwoLevelPredictor>(
                 paperTwoLevel(3, TableSpec::fullyAssoc(4096)));
         }},
        {"hybrid",
         [] {
             return std::make_unique<HybridPredictor>(paperHybrid(
                 3, 1, TableSpec::setAssoc(2048, 4)));
         }},
    };
}

/**
 * Best-of-@p reps whole-cell simulate() run under the current table
 * implementation. Fresh predictor per rep (cold tables every time,
 * like a real sweep cell); best rather than mean discards scheduler
 * noise.
 */
ibp::SimResult
bestOf(const MixCell &cell, unsigned reps)
{
    ibp::SimResult best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        auto predictor = cell.make();
        const ibp::SimResult result =
            ibp::simulate(*predictor, benchTrace());
        if (rep == 0 || result.seconds < best.seconds)
            best = result;
    }
    return best;
}

int
artifactMain(int argc, char **argv)
{
    using namespace ibp;
    return runExperiment(
        "BENCH_micro",
        "Simulation throughput: flat tables vs reference",
        argc, argv, [](ExperimentContext &context) {
            const unsigned reps = context.quick() ? 2 : 3;
            const TableImpl initial = tableImplementation();
            const auto mix = fig18Mix();

            ResultTable table(
                "Whole-cell throughput on porky-100k (Mbranches/s)",
                "predictor");
            table.addColumn("flat");
            table.addColumn("reference");
            table.addColumn("speedup");

            double flat_seconds = 0.0;
            double reference_seconds = 0.0;
            for (const MixCell &cell : mix) {
                setTableImplementation(TableImpl::Reference);
                const SimResult reference = bestOf(cell, reps);
                setTableImplementation(TableImpl::Flat);
                const SimResult flat = bestOf(cell, reps);

                const double flat_rate =
                    static_cast<double>(flat.branches) /
                    flat.seconds / 1e6;
                const double reference_rate =
                    static_cast<double>(reference.branches) /
                    reference.seconds / 1e6;
                table.set(cell.label, "flat", flat_rate);
                table.set(cell.label, "reference", reference_rate);
                table.set(cell.label, "speedup",
                          flat_rate / reference_rate);

                // Only the flat side lands in the telemetry: the
                // artifact's branches_per_second is then the flat
                // aggregate, which the CI throughput floor gates.
                context.metrics().recordCell(
                    CellMetrics{cell.label, "porky-100k",
                                flat.branches, flat.seconds,
                                flat.tableOccupancy,
                                flat.tableCapacity});
                flat_seconds += flat.seconds;
                reference_seconds += reference.seconds;
            }
            context.metrics().recordRunWindow(flat_seconds);
            setTableImplementation(initial);

            context.emit(table);
            context.note(
                "Aggregate flat speedup over the mix: " +
                formatFixed(reference_seconds /
                                std::max(flat_seconds, 1e-12),
                            2) +
                "x (best-of-" + std::to_string(reps) +
                " per cell, cold predictor per rep).");
        });
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]).rfind("--json=", 0) == 0)
            return artifactMain(argc, argv);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
