/**
 * @file
 * Simulation-engine throughput benchmarks. Two modes:
 *
 *  - Default: google-benchmark microbenchmarks (one predict() +
 *    update() pair per iteration, driven by a real synthetic trace),
 *    for interactive profiling of each predictor family.
 *
 *  - Artifact mode (any --json=, --csv= or --daemon argument): the
 *    BENCH_micro experiment (micro_suite.cc) through the standard
 *    bench front end, daemon routing included - measures whole-cell
 *    simulate() throughput flat vs reference and writes a
 *    BENCH_micro run artifact for the CI throughput floor.
 *
 * Not a paper experiment - this guards the simulation engine's
 * performance, which bounds how large the reproduction sweeps can be.
 */

#include <benchmark/benchmark.h>

#include <string_view>

#include "core/btb.hh"
#include "core/factory.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"

#include "common_flags.hh"
#include "suites.hh"

namespace {

const ibp::Trace &
benchTrace()
{
    static const ibp::Trace trace = [] {
        ibp::GeneratorOptions options;
        options.events = 100000;
        return ibp::generateTrace(ibp::benchmarkProfile("porky"),
                                  options);
    }();
    return trace;
}

void
driveLoop(benchmark::State &state, ibp::IndirectPredictor &predictor)
{
    const auto &records = benchTrace().records();
    std::size_t index = 0;
    for (auto _ : state) {
        const auto &record = records[index];
        if (++index == records.size())
            index = 0;
        if (!record.isPredictedIndirect())
            continue;
        const ibp::Prediction prediction =
            predictor.predict(record.pc);
        benchmark::DoNotOptimize(prediction);
        predictor.update(record.pc, record.target);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_BtbUnconstrained(benchmark::State &state)
{
    ibp::BtbPredictor predictor(ibp::TableSpec::unconstrained(),
                                true);
    driveLoop(state, predictor);
}
BENCHMARK(BM_BtbUnconstrained);

void
BM_TwoLevelUnconstrained(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(ibp::unconstrainedTwoLevel(6));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelUnconstrained);

void
BM_TwoLevelSetAssoc(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(ibp::paperTwoLevel(
        static_cast<unsigned>(state.range(0)),
        ibp::TableSpec::setAssoc(4096, 4)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelSetAssoc)->Arg(1)->Arg(3)->Arg(6)->Arg(12);

void
BM_TwoLevelTagless(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(
        ibp::paperTwoLevel(3, ibp::TableSpec::tagless(4096)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelTagless);

void
BM_TwoLevelFullyAssoc(benchmark::State &state)
{
    ibp::TwoLevelPredictor predictor(
        ibp::paperTwoLevel(3, ibp::TableSpec::fullyAssoc(4096)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_TwoLevelFullyAssoc);

void
BM_Hybrid(benchmark::State &state)
{
    ibp::HybridPredictor predictor(ibp::paperHybrid(
        3, 1, ibp::TableSpec::setAssoc(2048, 4)));
    driveLoop(state, predictor);
}
BENCHMARK(BM_Hybrid);

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg.rfind("--json=", 0) == 0 ||
            arg.rfind("--csv=", 0) == 0 ||
            arg.rfind("--daemon", 0) == 0) {
            return ibp::runBenchMain(microThroughputExperiment(),
                                     argc, argv);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
