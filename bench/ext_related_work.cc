/**
 * @file
 * Related-work comparison (section 7 + a modern epilogue): the
 * paper's best practical predictors against
 *
 *  - the Target Cache of Chang, Hao & Patt [CHP97], which indexes a
 *    tagless table with a gshare-style *conditional-outcome*
 *    history (the paper reports ~30.9% for gcc with gshare(9) at 512
 *    entries vs 26.4% for its own best 512-entry hybrid);
 *  - a cascaded / PPM-style predictor [CCM96] with filtered
 *    allocation, which the paper notes a hybrid can mimic;
 *  - an ITTAGE-style predictor with geometric history lengths, the
 *    modern descendant of this design.
 *
 * All predictors get comparable total entry budgets.
 */

#include <memory>

#include "core/btb.hh"
#include "core/cascaded.hh"
#include "core/factory.hh"
#include "core/ittage.hh"
#include "core/target_cache.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
extRelatedWorkExperiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "ext_related", "Related-work comparison (section 7)", [](ExperimentContext &context) {
            // Conditional records are needed by the Target Cache.
            SuiteRunner runner(benchmarkGroups().avg, true);

            const std::uint64_t budget =
                context.quick() ? 512 : 2048;

            const std::vector<SweepColumn> columns = {
                {"btb-2bc",
                 [budget]() {
                     return std::make_unique<BtbPredictor>(
                         TableSpec::fullyAssoc(budget), true);
                 }},
                {"target-cache",
                 [budget]() {
                     TargetCacheConfig config;
                     config.historyBits = 9;
                     config.table = TableSpec::tagless(budget);
                     return std::make_unique<TargetCachePredictor>(
                         config);
                 }},
                {"2lev-4way",
                 [budget]() {
                     return std::make_unique<TwoLevelPredictor>(
                         paperTwoLevel(3,
                                       TableSpec::setAssoc(budget,
                                                           4)));
                 }},
                {"hybrid",
                 [budget]() {
                     return std::make_unique<HybridPredictor>(
                         paperHybrid(3, 1,
                                     TableSpec::setAssoc(budget / 2,
                                                         4)));
                 }},
                {"cascaded",
                 [budget]() {
                     return std::make_unique<CascadedPredictor>(
                         CascadedConfig::classic(budget));
                 }},
                {"ittage",
                 [budget]() {
                     IttageConfig config;
                     config.baseEntries = budget / 4;
                     config.componentEntries = (budget * 3 / 4) / 4;
                     // Round component tables to a power of two.
                     std::uint64_t rounded = 1;
                     while (rounded * 2 <= config.componentEntries)
                         rounded *= 2;
                     config.componentEntries = rounded;
                     return std::make_unique<IttagePredictor>(config);
                 }},
            };

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.benchmarkTable(
                "Related-work predictors at ~" +
                    std::to_string(budget) +
                    " total entries (misprediction %)",
                grid, columns));
            context.note(
                "Expected shape: path-based two-level beats the "
                "conditional-history Target Cache (the paper's core "
                "claim); the hybrid and cascaded designs lead the "
                "1998 field; ITTAGE shows what another decade of "
                "refinement (tags, geometric histories, useful "
                "counters) buys.");
        }});
    return def;
}
