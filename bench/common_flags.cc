#include "common_flags.hh"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "serve/protocol.hh"
#include "sim/result_store.hh"
#include "trace/trace_cache.hh"
#include "util/logging.hh"

namespace ibp {

namespace {

double
parsePositiveNumber(const std::string_view arg,
                    const std::string_view value)
{
    char *end = nullptr;
    const std::string text(value);
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || parsed < 0.0)
        fatal("invalid value in '%.*s'",
              static_cast<int>(arg.size()), arg.data());
    return parsed;
}

void
printUsage(const char *program)
{
    std::printf(
        "usage: %s [--quick] [--csv=DIR] [--json=DIR]\n"
        "          [--checkpoint=PATH] [--retries=N]\n"
        "          [--cell-deadline=SECONDS]\n"
        "          [--trace-cache[=DIR]] [--result-store[=DIR]]\n"
        "          [--daemon[=SOCKET]]\n"
        "          [--daemon-timeout=SECONDS]\n"
        "\n"
        "--trace-cache reuses generated traces across runs from "
        "DIR\n(default %s; also via IBP_TRACE_CACHE).\n"
        "--result-store reuses per-cell simulation results across\n"
        "runs from DIR (default %s; also via IBP_RESULT_STORE).\n"
        "--daemon routes the run through a resident ibpd daemon\n"
        "(socket from SOCKET, else $IBP_DAEMON, else %s), falling\n"
        "back to in-process execution when no daemon answers; see\n"
        "docs/SERVICE.md.\n"
        "--daemon-timeout bounds how long the client waits for each\n"
        "reply frame (default $IBP_DAEMON_TIMEOUT, else 300; 0 =\n"
        "forever): a hung daemon becomes a retry-then-fallback\n"
        "instead of a hung bench.\n",
        program, TraceCache::kDefaultDirectory,
        ResultStore::kDefaultDirectory, kDefaultDaemonSocket);
}

} // namespace

BenchCli
parseBenchFlags(int argc, char **argv)
{
    BenchCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick") {
            cli.options.quick = true;
        } else if (arg.rfind("--csv=", 0) == 0) {
            cli.options.csvDir = std::string(arg.substr(6));
            if (cli.options.csvDir.empty())
                fatal("--csv requires a directory");
        } else if (arg.rfind("--json=", 0) == 0) {
            cli.options.jsonDir = std::string(arg.substr(7));
            if (cli.options.jsonDir.empty())
                fatal("--json requires a directory");
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            cli.options.checkpointPath =
                std::string(arg.substr(13));
            if (cli.options.checkpointPath.empty())
                fatal("--checkpoint requires a path");
        } else if (arg.rfind("--retries=", 0) == 0) {
            cli.options.retry.maxAttempts = static_cast<unsigned>(
                parsePositiveNumber(arg, arg.substr(10)));
            if (cli.options.retry.maxAttempts == 0)
                cli.options.retry.maxAttempts = 1;
        } else if (arg.rfind("--cell-deadline=", 0) == 0) {
            cli.options.retry.cellDeadlineSeconds =
                parsePositiveNumber(arg, arg.substr(16));
        } else if (arg == "--trace-cache") {
            TraceCache::configureGlobal(
                TraceCache::kDefaultDirectory);
        } else if (arg.rfind("--trace-cache=", 0) == 0) {
            const std::string dir(arg.substr(14));
            if (dir.empty())
                fatal("--trace-cache requires a directory");
            TraceCache::configureGlobal(dir);
        } else if (arg == "--result-store") {
            ResultStore::configureGlobal(
                ResultStore::kDefaultDirectory);
        } else if (arg.rfind("--result-store=", 0) == 0) {
            const std::string dir(arg.substr(15));
            if (dir.empty())
                fatal("--result-store requires a directory");
            ResultStore::configureGlobal(dir);
        } else if (arg == "--daemon") {
            cli.useDaemon = true;
        } else if (arg.rfind("--daemon=", 0) == 0) {
            cli.useDaemon = true;
            cli.daemonSocket = std::string(arg.substr(9));
            if (cli.daemonSocket.empty())
                fatal("--daemon= requires a socket path");
        } else if (arg.rfind("--daemon-timeout=", 0) == 0) {
            cli.daemonTimeoutSeconds =
                parsePositiveNumber(arg, arg.substr(17));
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            fatal("unknown option '%s'", argv[i]);
        }
    }
    // A quick run also shrinks the synthetic traces unless the user
    // pinned the scale explicitly. Applied at parse time, before any
    // trace work - and before makeRunRequest() snapshots the
    // effective scale for the daemon compatibility check.
    if (cli.options.quick)
        applyQuickEventScale();
    return cli;
}

int
runBenchMain(const ExperimentDef &def, int argc, char **argv)
{
    const BenchCli cli = parseBenchFlags(argc, argv);
    if (cli.useDaemon) {
        ClientOptions client;
        client.socketPath = cli.daemonSocket;
        client.receiveTimeoutSeconds = cli.daemonTimeoutSeconds;
        return runExperimentViaDaemon(def, cli.options, client)
            .exitCode;
    }
    return runExperimentInProcess(def, cli.options).exitCode;
}

} // namespace ibp
