/**
 * @file
 * Reproduces the introduction's motivation argument (section 1):
 * with conditional branches predicted at ~97% [YP93], indirect
 * branch misses *dominate* total branch misprediction overhead as
 * soon as indirect branches occur more often than one per
 * (miss-ratio gap) conditional branches - "if indirect branches are
 * mispredicted 12 times more frequently (36% vs 3%), indirect branch
 * misses will dominate conditional branch misses as long as indirect
 * branches occur more frequently than every 12 conditional
 * branches."
 *
 * For every benchmark we combine its conditional/indirect ratio
 * (Tables 1/2) with the measured indirect misprediction rate of a
 * BTB, of the paper's practical two-level predictor, and of the best
 * hybrid, assuming the paper's 3% conditional miss rate, and report
 * the share of branch misses caused by indirect branches.
 */

#include <memory>

#include "core/btb.hh"
#include "core/cond_predictor.hh"
#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

namespace {

/** Measured gshare(12) miss rate over a trace's conditionals. */
double
measuredConditionalMiss(const Trace &trace)
{
    GsharePredictor gshare(12, 4096);
    std::uint64_t branches = 0, misses = 0;
    for (const auto &record : trace) {
        if (record.kind != BranchKind::Conditional)
            continue;
        ++branches;
        if (gshare.predictTaken(record.pc) != record.taken)
            ++misses;
        gshare.update(record.pc, record.taken);
    }
    return branches == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(branches);
}

} // namespace

const ibp::ExperimentDef &
introOverheadExperiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "intro_overhead",
        "Indirect share of branch-miss overhead (section 1)", [](ExperimentContext &context) {
            // Conditional records are needed for the measured
            // conditional-predictor rates.
            SuiteRunner runner(benchmarkGroups().avg, true);
            constexpr double cond_miss = 0.03; // [YP93]-era 97% hit

            const std::vector<SweepColumn> columns = {
                {"btb",
                 []() {
                     return std::make_unique<BtbPredictor>(
                         TableSpec::unconstrained(), true);
                 }},
                {"2lev-1K",
                 []() {
                     return std::make_unique<TwoLevelPredictor>(
                         paperTwoLevel(3,
                                       TableSpec::setAssoc(1024,
                                                           4)));
                 }},
                {"hyb-8K",
                 []() {
                     return std::make_unique<HybridPredictor>(
                         paperHybrid(6, 2,
                                     TableSpec::setAssoc(4096, 4)));
                 }},
            };
            const GridResult grid =
                runner.run(columns, context.session());

            ResultTable table(
                "Share of branch mispredictions caused by indirect "
                "branches (%), assuming 3% conditional miss rate",
                "benchmark");
            table.addColumn("cond/ind");
            table.addColumn("gshare-miss%");
            for (const auto &column : columns)
                table.addColumn(column.label);

            for (const auto &name : runner.benchmarks()) {
                const double ratio =
                    benchmarkProfile(name).condPerIndirect;
                const unsigned row = table.addRow(name);
                table.set(row, 0, ratio);
                table.set(row, 1,
                          100.0 * measuredConditionalMiss(
                                      runner.trace(name)));
                for (std::size_t c = 0; c < columns.size(); ++c) {
                    const double indirect_miss =
                        grid.get(columns[c].label, name) / 100.0;
                    const double share =
                        indirect_miss /
                        (indirect_miss + ratio * cond_miss);
                    table.set(row, static_cast<unsigned>(c + 2),
                              100.0 * share);
                }
            }
            context.emit(table);
            context.note(
                "With a BTB, indirect branches dominate the branch "
                "miss budget for most OO programs (>50%); the "
                "paper's predictors pull that share down several "
                "fold, which is exactly the speedup opportunity "
                "[CHP97] quantified. The gshare column shows a "
                "*measured* conditional rate on the same traces for "
                "context.");

            // Execution-time model, after the [CHP97] citation in
            // section 1 ("reduction in execution time of 14% and 5%
            // for perl and gcc"). A 4-wide machine: base CPI 0.25,
            // 16-cycle misprediction penalty, conditional misses at
            // the era's 3%.
            constexpr double base_cpi = 0.25;
            constexpr double penalty = 16.0;
            ResultTable speedup(
                "Estimated speedup (%) over the BTB from better "
                "indirect prediction (4-wide model: CPI 0.25 + "
                "16-cycle miss penalty)",
                "benchmark");
            speedup.addColumn("2lev-1K");
            speedup.addColumn("hyb-8K");

            for (const auto &name : runner.benchmarks()) {
                const BenchmarkProfile &profile =
                    benchmarkProfile(name);
                const double instr = profile.instrPerIndirect;
                const double ratio = profile.condPerIndirect;
                const auto cpi = [&](double indirect_miss) {
                    return base_cpi +
                           penalty *
                               (indirect_miss + ratio * cond_miss) /
                               instr;
                };
                const double btb_cpi =
                    cpi(grid.get("btb", name) / 100.0);
                const unsigned row = speedup.addRow(name);
                speedup.set(
                    row, 0,
                    100.0 *
                        (btb_cpi -
                         cpi(grid.get("2lev-1K", name) / 100.0)) /
                        btb_cpi);
                speedup.set(
                    row, 1,
                    100.0 *
                        (btb_cpi -
                         cpi(grid.get("hyb-8K", name) / 100.0)) /
                        btb_cpi);
            }
            context.emit(speedup);
            context.note(
                "[CHP97] reported 14% (perl) and 5% (gcc) execution "
                "time reductions from a better indirect predictor on "
                "a wide-issue machine - the same order as this "
                "model's estimates for the hard benchmarks.");
        }});
    return def;
}
