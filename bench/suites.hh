/**
 * @file
 * Accessors for every bench experiment definition.
 *
 * Each bench .cc file defines one accessor that registers its
 * experiment in the process-wide registry (sim/experiment.hh) on
 * first use and returns the stable definition. A bench binary pulls
 * in exactly its own accessor (bench_main.cc); the ibpd daemon calls
 * registerAllBenchExperiments() to be able to serve every suite.
 */

#ifndef IBP_BENCH_SUITES_HH
#define IBP_BENCH_SUITES_HH

#include "sim/experiment.hh"

const ibp::ExperimentDef &ablMetapredictionExperiment();
const ibp::ExperimentDef &ablVariationsExperiment();
const ibp::ExperimentDef &extFutureWorkExperiment();
const ibp::ExperimentDef &extRelatedWorkExperiment();
const ibp::ExperimentDef &fig02Experiment();
const ibp::ExperimentDef &fig05Experiment();
const ibp::ExperimentDef &fig07Experiment();
const ibp::ExperimentDef &fig09Experiment();
const ibp::ExperimentDef &fig10Experiment();
const ibp::ExperimentDef &fig11Experiment();
const ibp::ExperimentDef &fig12Experiment();
const ibp::ExperimentDef &fig16Experiment();
const ibp::ExperimentDef &fig17Experiment();
const ibp::ExperimentDef &fig18Experiment();
const ibp::ExperimentDef &introOverheadExperiment();
const ibp::ExperimentDef &microThroughputExperiment();
const ibp::ExperimentDef &table01Experiment();
const ibp::ExperimentDef &table05Experiment();
const ibp::ExperimentDef &table06Experiment();
const ibp::ExperimentDef &tableA1Experiment();

namespace ibp {

/** Register every bench experiment (the daemon's startup call). */
void registerAllBenchExperiments();

} // namespace ibp

#endif // IBP_BENCH_SUITES_HH
