/**
 * @file
 * Reproduces Figure 7: influence of history-table sharing (the
 * second-level parameter h) for path length 8 with a global history
 * pattern, unconstrained tables, full precision.
 *
 * Paper anchors: AVG rises from 6.0% with per-address tables (h=2)
 * to 9.6% with one globally shared table (h=31); OO 5.6 -> 8.6,
 * C 6.8 -> 11.8. Per-address tables win, so h=2 is used everywhere
 * else in the paper.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig07Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig07", "History-table sharing sweep (Figure 7)",
        [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::fullSuite();

            std::vector<SweepColumn> columns;
            std::vector<unsigned> sweep = {2,  4,  6,  8,  10, 12,
                                           14, 16, 18, 20, 22, 32};
            if (context.quick())
                sweep = {2, 10, 18, 32};
            for (unsigned h : sweep) {
                columns.push_back(
                    {"h=" + std::to_string(h), [h]() {
                         return std::make_unique<TwoLevelPredictor>(
                             unconstrainedTwoLevel(8, 32, h));
                     }});
            }

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.groupTable(
                "Figure 7: misprediction (%) vs table sharing h "
                "(p=8, global history)",
                grid, columns));
            context.note("Paper anchors: AVG 6.0 (h=2) -> 9.6 "
                         "(shared); per-address tables win.");
        }});
    return def;
}
