/**
 * @file
 * Reproduces the section 6.1 metaprediction study: per-entry
 * confidence counters of width 1..4 bits versus a classic
 * branch-predictor-selection-table (BPST [McFar93]), and the effect
 * of component (tie-break) order.
 *
 * Paper anchors: 2-bit confidence counters usually perform best (1
 * bit is worse, 3/4 bits bring nothing); the fine-grained per-entry
 * scheme beats the per-branch BPST; component order matters little
 * (the Figure 17 grid is nearly symmetric).
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
ablMetapredictionExperiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "abl_meta", "Metaprediction ablation (section 6.1)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();

            const std::uint64_t comp = context.quick() ? 512 : 1024;
            const unsigned short_p = 1, long_p = 5;

            std::vector<SweepColumn> columns;
            for (unsigned bits : {1u, 2u, 3u, 4u}) {
                columns.push_back(
                    {"conf" + std::to_string(bits),
                     [bits, comp, short_p, long_p]() {
                         HybridConfig config = paperHybrid(
                             long_p, short_p,
                             TableSpec::setAssoc(comp, 4));
                         config.confidenceBits = bits;
                         return std::make_unique<HybridPredictor>(
                             config);
                     }});
            }
            columns.push_back(
                {"bpst", [comp, short_p, long_p]() {
                     HybridConfig config = paperHybrid(
                         long_p, short_p,
                         TableSpec::setAssoc(comp, 4));
                     config.meta = MetaKind::Selector;
                     return std::make_unique<HybridPredictor>(config);
                 }});
            columns.push_back(
                {"bpst-512", [comp, short_p, long_p]() {
                     HybridConfig config = paperHybrid(
                         long_p, short_p,
                         TableSpec::setAssoc(comp, 4));
                     config.meta = MetaKind::Selector;
                     config.selectorEntries = 512;
                     return std::make_unique<HybridPredictor>(config);
                 }});
            columns.push_back(
                {"swapped", [comp, short_p, long_p]() {
                     return std::make_unique<HybridPredictor>(
                         paperHybrid(short_p, long_p,
                                     TableSpec::setAssoc(comp, 4)));
                 }});

            const GridResult grid =
                runner.run(columns, context.session());
            context.emit(runner.groupTable(
                "Metaprediction variants (hybrid p=" +
                    std::to_string(long_p) + "." +
                    std::to_string(short_p) + ", 4-way, " +
                    std::to_string(comp) +
                    "-entry components), misprediction (%)",
                grid, columns));
            context.note(
                "Paper anchors: 2-bit confidence best (small "
                "margins); per-pattern confidence beats the "
                "per-branch BPST; component order barely matters.");
        }});
    return def;
}
