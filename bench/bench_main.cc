/**
 * @file
 * The shared main() of every bench binary. Each CMake target
 * compiles this file with IBP_BENCH_EXPERIMENT set to its
 * experiment's accessor (suites.hh); the accessor registers the
 * definition and runBenchMain() handles flags, daemon routing and
 * execution (common_flags.hh).
 */

#include "common_flags.hh"
#include "suites.hh"

#ifndef IBP_BENCH_EXPERIMENT
#error "compile with -DIBP_BENCH_EXPERIMENT=<accessor>"
#endif

int
main(int argc, char **argv)
{
    return ibp::runBenchMain(IBP_BENCH_EXPERIMENT(), argc, argv);
}
