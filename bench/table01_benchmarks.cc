/**
 * @file
 * Reproduces Tables 1 and 2 of the paper: benchmark characteristics
 * of the synthetic suite - dynamic branch counts, conditional
 * branches per indirect branch, virtual-call fraction, and the
 * number of static branch sites covering 90/95/99/100% of dynamic
 * indirect branches.
 *
 * "instr/ind" is profile metadata (we do not simulate non-branch
 * instructions); "cond/ind" is measured from the generated trace,
 * whose conditional stream is emission-capped at 8 per indirect
 * branch (DESIGN.md section 1), so large paper ratios saturate at 8.
 */

#include <memory>

#include "sim/experiment.hh"
#include "synth/benchmark_suite.hh"
#include "trace/trace_stats.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
table01Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "table01", "Benchmark suite characteristics (Tables 1 and 2)", [](ExperimentContext &context) {
            ResultTable table("Synthetic benchmark characteristics",
                              "benchmark");
            for (const auto &label :
                 {"branches(k)", "instr/ind", "cond/ind", "virt%",
                  "N90", "N95", "N99", "N100"}) {
                table.addColumn(label);
            }

            for (const auto &profile : benchmarkSuite()) {
                const Trace trace =
                    generateBenchmarkTrace(profile.name, true);
                const TraceStats stats = computeTraceStats(trace);
                // No simulation here; record the trace itself as
                // one telemetry cell so the artifact still carries
                // per-benchmark branch counts.
                CellMetrics cell;
                cell.column = "trace";
                cell.benchmark = profile.name;
                cell.branches = stats.indirectBranches;
                context.metrics().recordCell(cell);
                const unsigned row = table.addRow(profile.name);
                table.set(row, 0,
                          static_cast<double>(stats.indirectBranches) /
                              1000.0);
                table.set(row, 1, profile.instrPerIndirect);
                table.set(row, 2, stats.condPerIndirect);
                table.set(row, 3,
                          100.0 * stats.virtualCallFraction);
                table.set(row, 4, stats.activeSites90);
                table.set(row, 5, stats.activeSites95);
                table.set(row, 6, stats.activeSites99);
                table.set(row, 7, stats.activeSites100);
            }
            context.emit(table);

            context.note("Paper reference (Tables 1/2): e.g. idl "
                         "N90=6 N100=543, go N90=2, self N100=1855; "
                         "conditional ratios above 8 saturate at the "
                         "emission cap.");
        }});
    return def;
}
