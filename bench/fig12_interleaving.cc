/**
 * @file
 * Reproduces Figures 12-15: limited associativity and the way target
 * bits are assembled into the key pattern.
 *
 * Part 1 (Figure 12): a 4096-entry table with concatenated target
 * bits shows a saw-tooth - e.g. 1-way p=2 is *worse* than p=1,
 * because concatenation leaves older targets out of the index and
 * alternating paths collide in the same set.
 *
 * Part 2 (Figure 14): reverse interleaving repairs the saw-tooth and
 * dramatically lowers the curves.
 *
 * Part 3 (Figure 15's schemes): straight vs reverse vs ping-pong
 * interleaving; reverse (older targets most precise in the index) is
 * slightly best on average.
 *
 * Also prints the table-utilisation observation of section 5.2.1
 * (interleaving raises utilisation; paper: ixx 50% -> 79% for a 1K
 * 1-way table at p=4).
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

namespace {

TwoLevelConfig
config4k(unsigned p, unsigned ways, InterleaveKind interleave)
{
    TwoLevelConfig config = paperTwoLevel(
        p, ways == 0 ? TableSpec::tagless(4096)
                     : TableSpec::setAssoc(4096, ways));
    config.pattern.interleave = interleave;
    return config;
}

void
sweepTable(ExperimentContext &context, SuiteRunner &runner,
           const std::string &title, InterleaveKind interleave,
           unsigned max_p)
{
    const auto &avg = benchmarkGroups().avg;
    ResultTable table(title, "assoc");
    for (unsigned p = 0; p <= max_p; ++p)
        table.addColumn("p=" + std::to_string(p));

    for (unsigned ways : {0u, 1u, 2u, 4u}) {
        const std::string row =
            ways == 0 ? "tagless" : "assoc" + std::to_string(ways);
        std::vector<SweepColumn> columns;
        for (unsigned p = 0; p <= max_p; ++p) {
            columns.push_back(
                {"p=" + std::to_string(p), [p, ways, interleave]() {
                     return std::make_unique<TwoLevelPredictor>(
                         config4k(p, ways, interleave));
                 }});
        }
        const GridResult grid =
            runner.run(columns, context.session());
        for (const auto &column : columns) {
            table.set(row, column.label,
                      grid.average(column.label, avg));
        }
    }
    context.emit(table);
}

} // namespace

const ibp::ExperimentDef &
fig12Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig12", "Interleaving vs concatenation (Figures 12-15)", [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;
            const unsigned max_p = context.quick() ? 6 : 12;

            sweepTable(context, runner,
                       "Figure 12: 4096-entry table, concatenated "
                       "target bits, AVG misprediction (%)",
                       InterleaveKind::Concat, max_p);
            context.note("Paper anchor: saw-tooth - 1-way p=2 is far "
                         "worse than p=1 under concatenation.");

            sweepTable(context, runner,
                       "Figure 14: 4096-entry table, reverse "
                       "interleaving, AVG misprediction (%)",
                       InterleaveKind::Reverse, max_p);
            context.note("Paper anchor: interleaving repairs the "
                         "saw-tooth; higher associativity helps at "
                         "every path length.");

            // Figure 15 schemes, 1-way 4096 entries.
            ResultTable schemes(
                "Interleaving schemes (Figure 15), 4096-entry 1-way, "
                "AVG misprediction (%)",
                "scheme");
            const std::vector<unsigned> ps = {2, 4, 6, 8};
            for (unsigned p : ps)
                schemes.addColumn("p=" + std::to_string(p));
            for (const InterleaveKind kind :
                 {InterleaveKind::Straight, InterleaveKind::Reverse,
                  InterleaveKind::PingPong}) {
                std::vector<SweepColumn> columns;
                for (unsigned p : ps) {
                    columns.push_back(
                        {"p=" + std::to_string(p), [p, kind]() {
                             return std::make_unique<
                                 TwoLevelPredictor>(
                                 config4k(p, 1, kind));
                         }});
                }
                const GridResult grid =
                    runner.run(columns, context.session());
                for (const auto &column : columns) {
                    schemes.set(toString(kind), column.label,
                                grid.average(column.label, avg));
                }
            }
            context.emit(schemes);
            context.note("Paper anchor: reverse interleaving is "
                         "slightly best on average.");

            // Utilisation observation (section 5.2.1), ixx at p=4,
            // 1024-entry 1-way.
            ResultTable util("Table utilisation, ixx, 1024-entry "
                             "1-way, p=4 (section 5.2.1)",
                             "assembly");
            util.addColumn("utilisation%");
            for (const InterleaveKind kind :
                 {InterleaveKind::Concat, InterleaveKind::Reverse}) {
                TwoLevelConfig config = paperTwoLevel(
                    4, TableSpec::setAssoc(1024, 1));
                config.pattern.interleave = kind;
                TwoLevelPredictor predictor(config);
                const SimResult result =
                    simulate(predictor, runner.trace("ixx"));
                util.set(toString(kind), "utilisation%",
                         100.0 * result.utilisation());
            }
            context.emit(util);
            context.note("Paper anchor: interleaving raises ixx "
                         "utilisation from 50% to 79%.");
            (void)avg;
        }});
    return def;
}
