/**
 * @file
 * Reproduces Figure 17: prediction HIT rates of two-component hybrid
 * predictors for every path-length combination (p1, p2), 4-way
 * associative component tables with 2-bit confidence counters.
 * Component sizes 2048 and 8192 entries, as in the paper. The
 * diagonal p1 == p2 shows the non-hybrid predictor of twice the
 * component size.
 *
 * Paper anchors: the best combinations pair a short path (1..3) with
 * a long one (5..12); the grid is roughly symmetric (tie-break order
 * hardly matters); smaller tables peak at shorter path lengths.
 */

#include <memory>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/spec_columns.hh"
#include "sim/suite_runner.hh"

#include "suites.hh"

using namespace ibp;

const ibp::ExperimentDef &
fig17Experiment()
{
    static const ibp::ExperimentDef &def =
        ibp::registerExperiment({
        "fig17", "Hybrid path-length grid (Figure 17)",
        [](ExperimentContext &context) {
            SuiteRunner runner = SuiteRunner::avgSuite();
            const auto &avg = benchmarkGroups().avg;

            const unsigned max_p = context.quick() ? 6 : 12;
            std::vector<std::uint64_t> component_sizes = {2048, 8192};
            if (context.quick())
                component_sizes = {2048};

            for (const std::uint64_t comp : component_sizes) {
                ResultTable table(
                    "Figure 17: AVG hit rate (%), hybrid 4-way, "
                    "component size " + std::to_string(comp) +
                        " (diagonal = non-hybrid of twice the size)",
                    "p1\\p2");
                for (unsigned p2 = 0; p2 <= max_p; ++p2)
                    table.addColumn(std::to_string(p2));

                for (unsigned p1 = 0; p1 <= max_p; ++p1) {
                    std::vector<SweepColumn> columns;
                    for (unsigned p2 = 0; p2 <= max_p; ++p2) {
                        if (p1 == p2) {
                            columns.push_back(specColumn(
                                std::to_string(p2),
                                paperTwoLevel(
                                    p1, TableSpec::setAssoc(2 * comp,
                                                            4))));
                        } else {
                            columns.push_back(specColumn(
                                std::to_string(p2),
                                paperHybrid(
                                    p1, p2,
                                    TableSpec::setAssoc(comp, 4))));
                        }
                    }
                    const GridResult grid =
                        runner.run(columns, context.session());
                    const std::string row = std::to_string(p1);
                    for (const auto &column : columns) {
                        table.set(row, column.label,
                                  100.0 - grid.average(column.label,
                                                       avg));
                    }
                }
                context.emit(table);
            }
            context.note(
                "Paper anchors: best cells pair short (1..3) with "
                "long (5..12) paths; the grid is nearly symmetric.");
        },
        /*shardable=*/true});
    return def;
}
