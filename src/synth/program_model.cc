#include "synth/program_model.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "util/logging.hh"

namespace ibp {

namespace {

/** Deterministic hash chain over 64-bit words, mapped to [0, 1). */
class HashChain
{
  public:
    explicit HashChain(std::uint64_t seed) : _state(seed) {}

    HashChain &
    feed(std::uint64_t word)
    {
        _state = mix64(_state ^ (word * 0x9e3779b97f4a7c15ULL));
        return *this;
    }

    std::uint64_t value() const { return _state; }

    double
    unit() const
    {
        return static_cast<double>(_state >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

/**
 * Dominant-target share of a Zipf(alpha) distribution over k targets.
 */
double
zipfDominance(double alpha, unsigned k)
{
    double total = 0;
    for (unsigned r = 1; r <= k; ++r)
        total += 1.0 / std::pow(static_cast<double>(r), alpha);
    return 1.0 / total;
}

/** Solve for the Zipf exponent giving dominant share @p d over k. */
double
solveSkewForDominance(unsigned k, double d)
{
    if (k <= 1)
        return 1.0;
    d = std::clamp(d, 1.0 / k + 0.01, 0.98);
    double lo = 0.0, hi = 16.0;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = (lo + hi) / 2;
        if (zipfDominance(mid, k) < d)
            lo = mid;
        else
            hi = mid;
    }
    return (lo + hi) / 2;
}

/**
 * Solve for the site-activity Zipf exponent such that the expected
 * number of sites covering 90% of executions matches @p sites90.
 */
double
solveActivityAlpha(unsigned numSites, unsigned sites90)
{
    sites90 = std::clamp(sites90, 1u, numSites);
    const auto coverage90 = [&](double alpha) {
        double total = 0;
        std::vector<double> mass(numSites);
        for (unsigned r = 0; r < numSites; ++r) {
            mass[r] = 1.0 / std::pow(static_cast<double>(r + 1), alpha);
            total += mass[r];
        }
        double covered = 0;
        for (unsigned r = 0; r < numSites; ++r) {
            covered += mass[r];
            if (covered >= 0.90 * total)
                return r + 1;
        }
        return numSites;
    };
    // Higher alpha concentrates activity (fewer sites to reach 90%).
    double lo = 0.0, hi = 4.0;
    for (int iter = 0; iter < 50; ++iter) {
        const double mid = (lo + hi) / 2;
        if (coverage90(mid) > sites90)
            lo = mid;
        else
            hi = mid;
    }
    return (lo + hi) / 2;
}

enum class SiteBehavior
{
    Monomorphic,
    BiasedPoly,
    PathCorrelated,
    SelfCorrelated,
    SwitchLike,
};

} // namespace

ModelKnobs
deriveKnobs(const BenchmarkProfile &profile)
{
    ModelKnobs knobs;
    knobs.numSites = std::max(1u, profile.sites100);
    knobs.siteZipfAlpha =
        solveActivityAlpha(knobs.numSites, profile.sites90);

    const double btb_miss = profile.btbMissTarget / 100.0;
    const double floor_miss = profile.floorMissTarget / 100.0;

    // Lever 1: monomorphic sites absorb the easy part of the BTB
    // target (assigned rank-stratified in build(), so hot and cold
    // sites get the same mixture without per-seed luck).
    const double mono = std::clamp(1.0 - 2.5 * btb_miss, 0.05, 0.92);

    // Lever 2: dominant-target share d of the polymorphic sites.
    // BTB-2bc parks on the dominant target, but loop orbits make it
    // stickier than d alone suggests, hence the 1.15 boost.
    const double btb_corr = std::min(0.80, btb_miss / (1.0 - mono));
    const double dominance = std::clamp(1.0 - 1.15 * btb_corr,
                                        0.08, 0.95);

    // Lever 3: rule noise. Noise draws enter the global path and
    // cascade into fresh patterns for downstream branches, so only a
    // modest part of the two-level floor may come from noise; phases
    // (lever 4) supply the rest as relearnable transients.
    const double weight =
        std::max(0.02, (1.0 - mono) * (1.0 - dominance));
    const double noise =
        std::clamp(0.30 * floor_miss / weight, 0.002, 0.10);
    knobs.predictability = 1.0 - noise;

    knobs.monoFraction =
        profile.overrideMonoFraction >= 0.0 ? profile.overrideMonoFraction
                                            : mono;
    if (profile.overridePredictability > 0.0)
        knobs.predictability = profile.overridePredictability;

    // Polymorphism grows with BTB difficulty (compare Tables 1/2's
    // virtual-function columns against Figure 2).
    // Hard benchmarks need large target sets everywhere: a two-target
    // site cannot miss more than half the time under any schedule.
    knobs.minTargets =
        std::clamp(2u + static_cast<unsigned>(btb_miss * 8), 2u, 8u);
    knobs.maxTargets =
        std::clamp(3u + static_cast<unsigned>(btb_miss * 14), 4u, 16u);
    knobs.dominance = profile.overrideDominance > 0.0
                          ? profile.overrideDominance
                          : dominance;
    knobs.targetSkew = profile.overrideTargetSkew;

    // Loops are sticky for everyone: in the data-schedule model the
    // BTB's difficulty comes from the schedule period, not from
    // context churn, and a small recurrent context set keeps the
    // boundary-pattern space learnable.
    knobs.contextStickiness = profile.overrideStickiness > 0.0
                                  ? profile.overrideStickiness
                                  : 0.90;
    knobs.numContexts = std::clamp(knobs.numSites / 6, 12u, 96u);

    knobs.selfCorrelatedFraction = profile.selfCorrelatedFraction;
    // Switch-like sites are constant while their context holds and
    // period-1 contexts are constant outright - both are BTB-friendly
    // islands, so hard benchmarks get fewer of each.
    knobs.switchFraction =
        std::clamp((0.10 + 0.25 * (1.0 - profile.virtualCallFraction)) *
                       (1.0 - btb_miss),
                   0.02, 0.35);
    knobs.periodWeights[0] =
        0.16 * (1.0 - btb_miss) * (1.0 - btb_miss) + 0.01;
    knobs.transitionNoise =
        std::clamp(0.6 * floor_miss, 0.005, 0.08);
    // Data-driven iterations put an unpredictable first branch in
    // every pass, so their share scales with the benchmark's
    // two-level floor.
    knobs.dataDrivenFraction =
        std::clamp(2.5 * floor_miss, 0.08, 0.60);
    // Lever 4: phase changes re-salt part of the correlated sites,
    // creating relearnable transients that dominate the floor.
    knobs.phasePeriod = profile.overridePhasePeriod
                            ? profile.overridePhasePeriod
                            : 40000;
    knobs.phaseMutation = profile.overridePhaseMutation >= 0.0
                              ? profile.overridePhaseMutation
                              : std::clamp(2.0 * floor_miss, 0.02, 0.40);
    knobs.condPerIndirect = profile.condPerIndirect;
    knobs.virtualCallFraction = profile.virtualCallFraction;
    return knobs;
}

struct ProgramModel::Impl
{
    struct Site
    {
        Addr pc = 0;
        BranchKind kind = BranchKind::IndirectCall;
        SiteBehavior behavior = SiteBehavior::PathCorrelated;
        std::vector<Addr> targets;
        std::unique_ptr<CategoricalSampler> popularity;
        /** Own data-schedule period for SelfCorrelated sites. */
        unsigned period = 2;
        /** Own execution counter for SelfCorrelated sites. */
        std::uint64_t counter = 0;
        std::uint64_t baseSalt = 0;
        std::uint64_t salt = 0;
    };

    struct CondSite
    {
        Addr pc = 0;
        Addr takenTarget = 0;
        std::uint64_t salt = 0;
    };

    explicit Impl(const ModelKnobs &knobs, std::uint64_t seed)
        : knobs(knobs), buildRng(seed),
          runRng(seed ^ 0xABCDEF0123456789ULL),
          condRng(seed ^ 0x5DEECE66D1234567ULL)
    {
        build();
    }

    /** One dynamic indirect-branch occurrence chosen by nextSite(). */
    struct Step
    {
        unsigned site = 0;
        unsigned contextId = 0;
        unsigned slotPos = 0;
        std::uint64_t dataIndex = 0;
        /** Object type + 1 for data-driven iterations, else 0. */
        unsigned objectType = 0;
        /** This branch is the pass's type-revealing dispatch. */
        bool reveal = false;
    };

    void build();
    Addr randomCodeAddr(Rng &rng) const;
    Addr siteTarget(Site &site, const Step &step);
    Step nextSite();
    void applyPhase(std::uint64_t phaseIndex);
    Trace generate(const GeneratorOptions &options,
                   const std::string &name, std::uint64_t seed);

    ModelKnobs knobs;
    Rng buildRng;
    Rng runRng;
    /** Separate stream for the conditional/return side-channel, so
     *  emitting them never perturbs the indirect branch stream. */
    Rng condRng;

    std::vector<Site> sites;
    std::unique_ptr<ZipfSampler> siteSampler;
    std::unique_ptr<CategoricalSampler> objectPopularity;
    std::vector<CondSite> condSites;
    std::vector<Addr> returnSites;

    /**
     * Hidden context chain. A context is a loop body: an ordered
     * list of site slots executed in sequence while iterating over a
     * hidden *data schedule* of period P (think: walking a stable
     * list of polymorphic objects). Loop-structured control flow plus
     * the periodic schedule is what makes global path patterns
     * *recur*, the property two-level predictors rely on - and
     * because the schedule is independent of the emitted targets, a
     * noise draw perturbs at most the next few patterns instead of
     * cascading forever.
     *
     * A slot's probability models rarely-taken paths inside the
     * loop: tail sites live in low-probability slots so they appear
     * in the static site count without distorting the Zipf activity
     * profile.
     */
    struct Slot
    {
        unsigned site = 0;
        /**
         * 0 = executes every iteration. Otherwise the slot fires
         * only when iteration % every == offset - a rarely-taken but
         * *periodic* inner path, so tail sites stay predictable
         * instead of injecting random perturbations into the global
         * path.
         */
        std::uint16_t every = 0;
        std::uint16_t offset = 0;
    };

    struct Context
    {
        std::vector<Slot> slots;
        /** Data-schedule period (list length being iterated). */
        unsigned period = 1;
        /** Persistent iteration counter (resumes on re-entry). */
        std::uint64_t iteration = 0;
        /** Salt for the (mostly deterministic) successor choice. */
        std::uint64_t salt = 0;
        /** Loop-back probability (cold bodies exit quickly). */
        double stickiness = 0.9;
        /** Leading successor edges eligible for the deterministic
         *  pick (excludes the cold detour edge). */
        unsigned deterministicChoices = 1;
        /** Data-driven body: every iteration dispatches on a fresh
         *  polymorphic object (0 = periodic schedule instead). */
        bool dataDriven = false;
        /** Type of the object the current iteration dispatches on. */
        unsigned currentObject = 0;
        /** Slot whose target reveals the object type injectively
         *  (the "type check" of the pass). */
        unsigned revealerSlot = 0;
    };

    unsigned context = 0;
    unsigned slotIndex = 0;
    unsigned firstColdContext = 0;
    std::vector<Context> contexts;
    std::vector<std::unique_ptr<CategoricalSampler>> contextNext;
    std::vector<std::vector<unsigned>> contextSucc;
};

void
ProgramModel::Impl::build()
{
    const unsigned n = knobs.numSites;
    sites.resize(n);
    siteSampler =
        std::make_unique<ZipfSampler>(n, knobs.siteZipfAlpha);

    CategoricalSampler period_pick(knobs.periodWeights);

    // Monomorphic sites are chosen greedily down the activity ranks
    // so the *activity-weighted* fraction of every behaviour class
    // matches its knob even for benchmarks with a handful of sites
    // (no per-seed luck on which class the hot sites land in).
    double mass_seen = 0.0;
    double mono_mass = 0.0, switch_mass = 0.0, self_mass = 0.0,
           biased_mass = 0.0;
    const double f_mono = knobs.monoFraction;
    const double f_switch = (1.0 - f_mono) * knobs.switchFraction;
    const double f_self = (1.0 - f_mono - f_switch) *
                          knobs.selfCorrelatedFraction;
    const double f_biased = (1.0 - f_mono - f_switch) * 0.03;

    for (unsigned i = 0; i < n; ++i) {
        Site &site = sites[i];
        const double activity = siteSampler->probability(i);
        mass_seen += activity;
        const auto claim = [&](double target_frac, double &acc) {
            if ((acc + activity / 2) / mass_seen < target_frac) {
                acc += activity;
                return true;
            }
            return false;
        };

        if (claim(f_mono, mono_mass)) {
            site.behavior = SiteBehavior::Monomorphic;
        } else if (claim(f_switch, switch_mass)) {
            site.behavior = SiteBehavior::SwitchLike;
        } else if (claim(f_self, self_mass)) {
            site.behavior = SiteBehavior::SelfCorrelated;
        } else if (claim(f_biased, biased_mass)) {
            site.behavior = SiteBehavior::BiasedPoly;
        } else {
            site.behavior = SiteBehavior::PathCorrelated;
        }

        // Branch kind: switches are switch-jumps; the rest split into
        // virtual calls and other indirect jumps so that the dynamic
        // virtual-call fraction approximates the profile.
        if (site.behavior == SiteBehavior::SwitchLike) {
            site.kind = BranchKind::IndirectSwitch;
        } else {
            site.kind = buildRng.nextBool(knobs.virtualCallFraction)
                            ? BranchKind::IndirectCall
                            : BranchKind::IndirectJump;
        }

        // Target set with skewed popularity.
        const unsigned k =
            site.behavior == SiteBehavior::Monomorphic
                ? 1
                : static_cast<unsigned>(buildRng.nextInRange(
                      knobs.minTargets, knobs.maxTargets));
        site.targets.resize(k);
        for (auto &target : site.targets)
            target = randomCodeAddr(buildRng);
        // Solve the per-site popularity skew so the dominant target
        // carries the calibrated share (with mild per-site jitter).
        double skew = knobs.targetSkew;
        if (skew <= 0.0) {
            const double jitter =
                0.92 + 0.16 * buildRng.nextDouble();
            skew = solveSkewForDominance(
                k, std::clamp(knobs.dominance * jitter, 0.05, 0.97));
        }
        std::vector<double> weights(k);
        for (unsigned r = 0; r < k; ++r) {
            weights[r] =
                1.0 / std::pow(static_cast<double>(r + 1), skew);
        }
        site.popularity = std::make_unique<CategoricalSampler>(weights);

        site.period = 1 + period_pick.sample(buildRng);
        site.baseSalt = buildRng.next();
        site.salt = site.baseSalt;
    }

    // Hidden context chain: each context is a loop body whose slots
    // are drawn from the Zipf site-activity distribution (hot sites
    // land in many loop bodies), with sparse random successors.
    const unsigned context_count = std::max(2u, knobs.numContexts);
    contexts.resize(context_count);
    // Hot contexts first. Tail sites that Zipf sampling missed go
    // into *cold* contexts afterwards - rarely-visited loop bodies
    // that exercise the static site count (the tables' "100%"
    // column) while confining their path perturbations to their own
    // short visits instead of scattering them through hot loops.
    for (unsigned c = 0; c < context_count; ++c) {
        const unsigned body =
            static_cast<unsigned>(buildRng.nextInRange(3, 8));
        contexts[c].slots.resize(body);
        for (auto &slot : contexts[c].slots)
            slot.site = siteSampler->sample(buildRng);
        contexts[c].period = 1 + period_pick.sample(buildRng);
        contexts[c].salt = buildRng.next();
        contexts[c].stickiness = knobs.contextStickiness;
        contexts[c].dataDriven =
            buildRng.nextBool(knobs.dataDrivenFraction);
        if (contexts[c].dataDriven) {
            // The revealer is the first path-correlated slot; without
            // one, downstream branches could never observe the object
            // type, so the body falls back to a periodic schedule.
            contexts[c].dataDriven = false;
            for (unsigned pos = 0; pos < contexts[c].slots.size();
                 ++pos) {
                const Site &site =
                    sites[contexts[c].slots[pos].site];
                if (site.behavior == SiteBehavior::PathCorrelated) {
                    contexts[c].dataDriven = true;
                    contexts[c].revealerSlot = pos;
                    break;
                }
            }
        }
    }

    // Popularity of the object types data-driven iterations draw.
    // Type streams are dominant-heavy regardless of how polymorphic
    // the targets are, or the revealer branch alone would sink the
    // two-level floor.
    {
        const unsigned types = std::max(2u, knobs.numObjectTypes);
        const double skew = solveSkewForDominance(
            types, std::clamp(knobs.dominance + 0.35, 0.55, 0.92));
        std::vector<double> weights(types);
        for (unsigned t = 0; t < types; ++t) {
            weights[t] =
                1.0 / std::pow(static_cast<double>(t + 1), skew);
        }
        objectPopularity =
            std::make_unique<CategoricalSampler>(weights);
    }

    std::vector<bool> used(n, false);
    for (const auto &ctx : contexts) {
        for (const Slot &slot : ctx.slots)
            used[slot.site] = true;
    }
    std::vector<unsigned> tail;
    for (unsigned i = 0; i < n; ++i) {
        if (!used[i])
            tail.push_back(i);
    }
    const unsigned first_cold = context_count;
    firstColdContext = first_cold;
    for (std::size_t base = 0; base < tail.size(); base += 6) {
        Context cold;
        const std::size_t body = std::min<std::size_t>(
            6, tail.size() - base);
        cold.slots.resize(body);
        for (std::size_t s = 0; s < body; ++s)
            cold.slots[s].site = tail[base + s];
        cold.period = 1 + period_pick.sample(buildRng);
        cold.salt = buildRng.next();
        cold.stickiness = 0.4; // cold bodies exit quickly
        contexts.push_back(std::move(cold));
    }
    const unsigned total_contexts =
        static_cast<unsigned>(contexts.size());

    // Successor graph: hot contexts mostly chain to other hot ones,
    // occasionally detouring through a cold body; cold contexts
    // always return to a hot one.
    contextNext.resize(total_contexts);
    contextSucc.resize(total_contexts);
    for (unsigned c = 0; c < total_contexts; ++c) {
        const bool cold = c >= first_cold;
        const unsigned fanout =
            cold ? 1
                 : static_cast<unsigned>(buildRng.nextInRange(2, 3));
        std::vector<double> weights(fanout);
        contextSucc[c].resize(fanout);
        for (unsigned f = 0; f < fanout; ++f) {
            contextSucc[c][f] = static_cast<unsigned>(
                buildRng.nextBelow(context_count)); // a hot context
            weights[f] = 0.2 + buildRng.nextDouble();
        }
        // The deterministic successor rule only ever picks among
        // these hot edges; cold detours are reached via the random
        // 8% sampling path below.
        contexts[c].deterministicChoices = fanout;
        if (!cold && first_cold < total_contexts &&
            buildRng.nextBool(0.35)) {
            // A low-weight detour edge into one cold body.
            contextSucc[c].push_back(
                first_cold +
                static_cast<unsigned>(buildRng.nextBelow(
                    total_contexts - first_cold)));
            weights.push_back(0.12);
        }
        contextNext[c] =
            std::make_unique<CategoricalSampler>(weights);
    }

    // Lay out site addresses *by loop body*: branches that execute
    // together live near each other (they belong to the same
    // compilation unit in a real program), so the history-sharing
    // parameter s of Figure 4 groups branches that actually share
    // useful path context.
    {
        std::vector<bool> placed(n, false);
        std::unordered_map<Addr, bool> used_bases;
        for (const auto &ctx : contexts) {
            Addr base = randomCodeAddr(buildRng) & ~Addr{0x1ff};
            while (used_bases.count(base))
                base = randomCodeAddr(buildRng) & ~Addr{0x1ff};
            used_bases[base] = true;
            unsigned offset = 0;
            for (const Slot &slot : ctx.slots) {
                if (placed[slot.site])
                    continue;
                placed[slot.site] = true;
                sites[slot.site].pc = base + offset * 16;
                ++offset;
            }
        }
        for (unsigned i = 0; i < n; ++i) {
            if (!placed[i])
                sites[i].pc = randomCodeAddr(buildRng);
        }
    }

    // Conditional-branch and return populations.
    condSites.resize(knobs.numCondSites);
    for (auto &cond : condSites) {
        cond.pc = randomCodeAddr(buildRng);
        cond.takenTarget = randomCodeAddr(buildRng);
        cond.salt = buildRng.next();
    }
    returnSites.resize(16);
    for (auto &pc : returnSites)
        pc = randomCodeAddr(buildRng);
}

Addr
ProgramModel::Impl::randomCodeAddr(Rng &rng) const
{
    const Addr offset = static_cast<Addr>(
        rng.nextBelow(knobs.codeSpan));
    return (knobs.codeBase + offset) & ~Addr{3};
}

ProgramModel::Impl::Step
ProgramModel::Impl::nextSite()
{
    while (true) {
        if (slotIndex >= contexts[context].slots.size()) {
            // End of the loop body: the pass over the hidden data
            // schedule completes; iterate again with probability
            // contextStickiness, otherwise transfer to a successor
            // (whose own schedule resumes where it left off). The
            // successor is usually a deterministic function of the
            // iteration count - which loop follows which is
            // data-driven but repetitive in real programs, so the
            // transition patterns themselves are learnable.
            Context &ctx = contexts[context];
            ++ctx.iteration;
            if (!runRng.nextBool(ctx.stickiness)) {
                unsigned pick;
                if (!runRng.nextBool(knobs.transitionNoise)) {
                    pick = static_cast<unsigned>(
                        HashChain(ctx.salt)
                            .feed(ctx.iteration % 6)
                            .value() %
                        ctx.deterministicChoices);
                } else {
                    pick = contextNext[context]->sample(runRng);
                }
                context = contextSucc[context][pick];
            }
            slotIndex = 0;
            // A new iteration starts: data-driven bodies pick up the
            // next polymorphic object to dispatch on.
            Context &entered = contexts[context];
            if (entered.dataDriven) {
                entered.currentObject =
                    objectPopularity->sample(runRng);
            }
        }
        const unsigned pos = slotIndex++;
        const Context &ctx = contexts[context];
        const Slot &slot = ctx.slots[pos];
        if (slot.every == 0 ||
            ctx.iteration % slot.every == slot.offset) {
            return Step{slot.site, context, pos,
                        ctx.iteration % ctx.period,
                        ctx.dataDriven ? ctx.currentObject + 1 : 0,
                        ctx.dataDriven && pos == ctx.revealerSlot};
        }
    }
}

Addr
ProgramModel::Impl::siteTarget(Site &site, const Step &step)
{
    switch (site.behavior) {
      case SiteBehavior::Monomorphic:
        return site.targets[0];
      case SiteBehavior::BiasedPoly:
        return site.targets[site.popularity->sample(runRng)];
      case SiteBehavior::SwitchLike: {
        // Constant while the hidden context holds, like a switch on
        // a slowly-changing mode variable.
        const double u =
            HashChain(site.salt).feed(step.contextId + 1).unit();
        return site.targets[site.popularity->pickByUnit(u)];
      }
      case SiteBehavior::PathCorrelated: {
        // Deterministic function of (context, slot, position in the
        // hidden data schedule): the global target path encodes all
        // three, so a long-enough history makes this predictable.
        //
        // The schedule positions map onto a *small* set of target
        // variants (m = 2..3), so the schedule repeats targets, like
        // receiver types recurring in real object lists. A site's own
        // history is then ambiguous about the schedule position and
        // the targets of *other* branches are needed to disambiguate
        // it - the inter-branch correlation that makes a global
        // history outperform per-address histories (section 3.2.1).
        if (!runRng.nextBool(knobs.predictability))
            return site.targets[site.popularity->sample(runRng)];
        if (step.objectType != 0) {
            // Data-driven iteration: every slot dispatches on the
            // iteration's object, so this target is determined by
            // (and correlated with) the other branches of the pass.
            // The revealer maps the type to a target injectively (a
            // vtable dispatch distinguishing every receiver type);
            // once its target is in the global path, the pass's
            // other branches become predictable.
            if (step.reveal) {
                return site.targets[(step.objectType - 1) %
                                    site.targets.size()];
            }
            const double u_obj = HashChain(site.salt ^ 0x6f626a74)
                                     .feed(step.contextId + 1)
                                     .feed(step.slotPos + 1)
                                     .feed(step.objectType)
                                     .unit();
            return site.targets[site.popularity->pickByUnit(u_obj)];
        }
        const std::uint64_t variants =
            2 + (HashChain(site.salt ^ 0x76617269)
                     .feed(step.contextId + 1)
                     .feed(step.slotPos + 1)
                     .value() &
                 1);
        const std::uint64_t variant =
            HashChain(site.salt ^ 0x7363686c)
                .feed(step.contextId + 1)
                .feed(step.slotPos + 1)
                .feed(step.dataIndex + 1)
                .value() %
            variants;
        const double u = HashChain(site.salt)
                             .feed(step.contextId + 1)
                             .feed(step.slotPos + 1)
                             .feed(variant + 1)
                             .unit();
        return site.targets[site.popularity->pickByUnit(u)];
      }
      case SiteBehavior::SelfCorrelated: {
        // Periodic in the site's *own* execution count: the branch
        // correlates with itself but not with other branches (the
        // infrequent group's behaviour, section 3.2.1).
        const std::uint64_t position = site.counter++ % site.period;
        if (!runRng.nextBool(knobs.predictability))
            return site.targets[site.popularity->sample(runRng)];
        const double u =
            HashChain(site.salt).feed(position + 1).unit();
        return site.targets[site.popularity->pickByUnit(u)];
      }
    }
    panic("unreachable site behavior");
}

void
ProgramModel::Impl::applyPhase(std::uint64_t phase_index)
{
    // Deterministic per-site mutation decision: independent of how
    // many events were generated before the phase boundary.
    for (auto &site : sites) {
        if (site.behavior != SiteBehavior::PathCorrelated &&
            site.behavior != SiteBehavior::SelfCorrelated &&
            site.behavior != SiteBehavior::SwitchLike) {
            continue;
        }
        const double u =
            HashChain(site.baseSalt).feed(phase_index).unit();
        if (u < knobs.phaseMutation) {
            site.salt = HashChain(site.baseSalt)
                            .feed(phase_index ^ 0xf00dULL)
                            .value();
        }
    }
}

Trace
ProgramModel::Impl::generate(const GeneratorOptions &options,
                             const std::string &name,
                             std::uint64_t seed)
{
    const std::uint64_t events = options.events;
    Trace trace(name);
    trace.setSeed(seed);
    trace.reserve(events +
                  (options.emitConditionals
                       ? events * (std::min<double>(
                                       knobs.condPerIndirect,
                                       options.conditionalCap) +
                                   0.4)
                       : 0));

    double cond_accum = 0;
    std::uint64_t phase = 0;
    unsigned return_countdown = 3;

    // Startup sweep: execute every cold loop body once, modelling
    // the initialisation code that gives real programs their long
    // tail of once-executed indirect branch sites.
    std::vector<Step> startup;
    for (unsigned c = firstColdContext; c < contexts.size(); ++c) {
        for (unsigned pos = 0; pos < contexts[c].slots.size(); ++pos)
            startup.push_back(Step{contexts[c].slots[pos].site, c,
                                   pos, 0});
    }

    for (std::uint64_t i = 0; i < events; ++i) {
        if (knobs.phasePeriod != 0 && i != 0 &&
            i % knobs.phasePeriod == 0) {
            applyPhase(++phase);
        }

        const Step step = i < startup.size()
                              ? startup[i]
                              : nextSite();
        Site &site = sites[step.site];
        const Addr target = siteTarget(site, step);

        trace.append(BranchRecord{site.pc, target, site.kind, true});

        if (!options.emitConditionals)
            continue;

        // Interleave conditional branches at the profile's ratio,
        // capped per indirect branch (DESIGN.md section 1).
        cond_accum += knobs.condPerIndirect;
        unsigned emit = static_cast<unsigned>(cond_accum);
        emit = std::min(emit, options.conditionalCap);
        cond_accum = std::min(cond_accum - emit,
                              static_cast<double>(
                                  options.conditionalCap));
        for (unsigned c = 0; c < emit; ++c) {
            const std::size_t pick = static_cast<std::size_t>(
                HashChain(0xc0ffee).feed(context).feed(c).value() %
                condSites.size());
            CondSite &cond = condSites[pick];
            bool taken =
                HashChain(cond.salt).feed(context).unit() <
                knobs.condTakenBias + 0.4;
            if (condRng.nextBool(0.08))
                taken = !taken;
            trace.append(BranchRecord{cond.pc,
                                      taken ? cond.takenTarget
                                            : cond.pc + 8,
                                      BranchKind::Conditional, taken});
        }

        if (--return_countdown == 0) {
            return_countdown = 3;
            const Addr pc =
                returnSites[condRng.nextBelow(returnSites.size())];
            trace.append(BranchRecord{pc, randomCodeAddr(condRng),
                                      BranchKind::Return, true});
        }
    }
    // Lets simulate() pre-size its per-site accounting instead of
    // growing it during the measured loop.
    trace.setSiteCountHint(static_cast<std::uint32_t>(sites.size()));
    return trace;
}

ProgramModel::ProgramModel(const ModelKnobs &knobs, std::uint64_t seed)
    : _knobs(knobs), _impl(std::make_unique<Impl>(knobs, seed))
{
}

ProgramModel::~ProgramModel() = default;

Trace
ProgramModel::generate(const GeneratorOptions &options,
                       const std::string &name)
{
    GeneratorOptions resolved = options;
    if (resolved.events == 0)
        fatal("generator needs a nonzero event count");
    return _impl->generate(resolved, name, 0);
}

Trace
generateTrace(const BenchmarkProfile &profile,
              const GeneratorOptions &options)
{
    GeneratorOptions resolved = options;
    if (resolved.events == 0)
        resolved.events = profile.defaultEvents;
    IBP_ASSERT(resolved.events != 0, "profile '%s' has no event count",
               profile.name.c_str());
    ProgramModel model(deriveKnobs(profile), profile.seed);
    Trace trace = model.generate(resolved, profile.name);
    trace.setSeed(profile.seed);
    return trace;
}

} // namespace ibp
