/**
 * @file
 * The synthetic counterpart of the paper's benchmark suite.
 *
 * Provides calibrated profiles for all 17 programs of Tables 1 and 2
 * and the benchmark groups of Table 3 (AVG, AVG-OO, AVG-C, AVG-100,
 * AVG-200, AVG-infreq). Default event counts are scaled-down versions
 * of the paper's trace lengths; the IBP_EVENTS environment variable
 * multiplies them (e.g. IBP_EVENTS=2.0 doubles every trace).
 */

#ifndef IBP_SYNTH_BENCHMARK_SUITE_HH
#define IBP_SYNTH_BENCHMARK_SUITE_HH

#include <string>
#include <vector>

#include "synth/benchmark_profile.hh"
#include "synth/program_model.hh"
#include "trace/trace.hh"

namespace ibp {

/** All 17 benchmark profiles, OO suite first (Tables 1 and 2). */
const std::vector<BenchmarkProfile> &benchmarkSuite();

/** Look up one profile by name; calls fatal() if unknown. */
const BenchmarkProfile &benchmarkProfile(const std::string &name);

/** The paper's averaging groups (Table 3). */
struct BenchmarkGroups
{
    std::vector<std::string> oo;        ///< AVG-OO (9 programs)
    std::vector<std::string> c;         ///< AVG-C (4 programs)
    std::vector<std::string> avg;       ///< AVG = OO + C (13)
    std::vector<std::string> avg100;    ///< < 100 instr / indirect
    std::vector<std::string> avg200;    ///< 100..200 instr / indirect
    std::vector<std::string> infrequent;///< > 1000 instr / indirect
};

const BenchmarkGroups &benchmarkGroups();

/** Event-count scale factor from the IBP_EVENTS environment variable
 * (default 1.0, clamped to [0.01, 100]). */
double eventScale();

/** Generate a benchmark's trace at the scaled default length. */
Trace generateBenchmarkTrace(const std::string &name,
                             bool emitConditionals = false);

/**
 * Version stamp of the synthetic trace generator. Part of every
 * trace-cache key: bump it whenever program_model.cc, deriveKnobs(),
 * or the baked-in tunings change the bytes generateBenchmarkTrace()
 * produces, so stale cache entries miss instead of silently serving
 * output of the previous generator.
 */
constexpr unsigned kTraceGeneratorVersion = 1;

/**
 * Content address of the trace generateBenchmarkTrace(@p name,
 * @p emitConditionals) would produce under the current environment
 * (IBP_EVENTS scale included): `<name>-<16 hex digits>`, an FNV-1a
 * hash of the generator version, every profile field, the scaled
 * event count, the seed and the conditionals flag. Identical
 * configurations collide on purpose - that is the cache hit.
 */
std::string benchmarkTraceCacheKey(const std::string &name,
                                   bool emitConditionals = false);

} // namespace ibp

#endif // IBP_SYNTH_BENCHMARK_SUITE_HH
