#include "synth/benchmark_suite.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace ibp {

namespace {

/** Knob overrides produced by tools/autotune (closed-loop fit of the
 * generator against the paper's calibration targets). */
struct Tuning
{
    double dominance;
    double predictability;
    double stickiness;
    double phaseMutation;
    /** <0 keeps the derived monomorphic fraction. */
    double monoFraction = -1.0;
};

// Auto-tuned by tools/autotune; regenerate after structural changes
// to the program model.
const std::pair<const char *, Tuning> kTunings[] = {
    {"idl", {0.4450, 0.99900, 0.970, 0.0050}},
    {"jhm", {0.1250, 0.78581, 0.900, 0.3749}},
    {"self", {0.3900, 0.99601, 0.900, 0.0081}},
    {"troff", {0.3900, 0.99277, 0.900, 0.0103}},
    {"lcom", {0.1250, 0.99900, 0.900, 0.0050}},
    {"porky", {0.4650, 0.99900, 0.900, 0.0050}},
    {"ixx", {0.3400, 0.99900, 0.970, 0.0050}},
    {"eqn", {0.2050, 0.99300, 0.900, 0.0350}},
    {"beta", {0.3400, 0.99900, 0.970, 0.0050}},
    {"xlisp", {0.90, 0.99900, 0.970, 0.0050, 0.40}},
    {"perl", {0.2650, 0.99900, 0.970, 0.0050}},
    {"edg", {0.1250, 0.99900, 0.920, 0.0050}},
    {"gcc", {0.1300, 0.99900, 0.920, 0.0050}},
    {"m88ksim", {0.1750, 0.99597, 0.940, 0.0201}},
    {"vortex", {0.6550, 0.90620, 0.900, 0.1855}},
    {"ijpeg", {0.7900, 0.98689, 0.900, 0.0233}},
    {"go", {0.7300, 0.73524, 0.900, 0.6938}},
};

/**
 * Build one profile. Calibration targets (btb / floor) are the
 * paper's unconstrained BTB-2bc misprediction rate (Figure 2 /
 * Table A-1) and large-table two-level floor (Table A-1, fullassoc
 * column at 32K entries).
 */
BenchmarkProfile
profile(const std::string &name, const std::string &description,
        BenchmarkSuiteKind suite, std::uint64_t seed,
        std::uint64_t paper_branches, double instr_per_indirect,
        double cond_per_indirect, double vcall_fraction,
        unsigned sites90, unsigned sites100, double btb_target,
        double floor_target)
{
    BenchmarkProfile p;
    p.name = name;
    p.description = description;
    p.suite = suite;
    p.seed = seed;
    p.paperBranches = paper_branches;
    p.defaultEvents = std::min<std::uint64_t>(paper_branches, 300000);
    p.instrPerIndirect = instr_per_indirect;
    p.condPerIndirect = cond_per_indirect;
    p.virtualCallFraction = vcall_fraction;
    p.sites90 = sites90;
    p.sites100 = sites100;
    p.btbMissTarget = btb_target;
    p.floorMissTarget = floor_target;
    p.selfCorrelatedFraction =
        suite == BenchmarkSuiteKind::Infrequent ? 0.80 : 0.10;
    for (const auto &[tuned_name, tuning] : kTunings) {
        if (name == tuned_name) {
            p.overrideDominance = tuning.dominance;
            p.overridePredictability = tuning.predictability;
            p.overrideStickiness = tuning.stickiness;
            p.overridePhaseMutation = tuning.phaseMutation;
            p.overrideMonoFraction = tuning.monoFraction;
            break;
        }
    }
    return p;
}

std::vector<BenchmarkProfile>
buildSuite()
{
    using K = BenchmarkSuiteKind;
    std::vector<BenchmarkProfile> suite;

    // Table 1: large object-oriented applications.
    suite.push_back(profile("idl", "SunSoft's IDL compiler",
                            K::ObjectOriented, 0x1D7001, 1883641, 47, 6,
                            0.93, 6, 543, 2.40, 0.42));
    suite.push_back(profile("jhm", "Java High-level Class Modifier",
                            K::ObjectOriented, 0x1D7002, 6000000, 47, 5,
                            0.94, 11, 155, 11.13, 8.75));
    suite.push_back(profile("self", "Self-93 virtual machine",
                            K::ObjectOriented, 0x1D7003, 1000000, 56, 7,
                            0.76, 309, 1855, 15.68, 10.16));
    suite.push_back(profile("troff", "GNU groff 1.09",
                            K::ObjectOriented, 0x1D7004, 1110592, 90, 13,
                            0.74, 19, 161, 13.70, 7.15));
    suite.push_back(profile("lcom", "HDL compiler",
                            K::ObjectOriented, 0x1D7005, 1737751, 97, 10,
                            0.60, 8, 328, 4.25, 1.39));
    suite.push_back(profile("porky", "SUIF 1.0 scalar optimizer",
                            K::ObjectOriented, 0x1D7006, 5392890, 138,
                            19, 0.71, 35, 285, 20.80, 4.61));
    suite.push_back(profile("ixx", "Fresco IDL parser",
                            K::ObjectOriented, 0x1D7007, 212035, 139, 18,
                            0.47, 31, 203, 45.70, 5.58));
    suite.push_back(profile("eqn", "equation typesetter",
                            K::ObjectOriented, 0x1D7008, 296425, 159, 25,
                            0.34, 17, 114, 34.78, 12.56));
    suite.push_back(profile("beta", "BETA compiler",
                            K::ObjectOriented, 0x1D7009, 1005995, 188,
                            23, 0.50, 37, 376, 28.57, 2.20));

    // Table 2: C programs with frequent indirect branches.
    suite.push_back(profile("xlisp", "SPEC95 lisp interpreter", K::C,
                            0x1D700A, 6000000, 69, 11, 0.0, 3, 13,
                            13.51, 1.37));
    suite.push_back(profile("perl", "SPEC95 perl", K::C, 0x1D700B,
                            300000, 113, 17, 0.0, 6, 24, 31.80, 0.45));
    suite.push_back(profile("edg", "EDG C++ front end", K::C, 0x1D700C,
                            548893, 149, 23, 0.0, 91, 350, 35.91,
                            11.86));
    suite.push_back(profile("gcc", "SPEC95 gcc", K::C, 0x1D700D, 864838,
                            176, 31, 0.0, 38, 166, 65.70, 11.71));

    // Table 2: programs with infrequent indirect branches.
    suite.push_back(profile("m88ksim", "SPEC95 88K simulator",
                            K::Infrequent, 0x1D700E, 300000, 1827, 233,
                            0.0, 3, 17, 76.41, 3.07));
    suite.push_back(profile("vortex", "SPEC95 OO database",
                            K::Infrequent, 0x1D700F, 3000000, 3480, 525,
                            0.0, 5, 37, 20.19, 9.89));
    suite.push_back(profile("ijpeg", "SPEC95 JPEG codec",
                            K::Infrequent, 0x1D7010, 32975, 5770, 441,
                            0.0, 3, 60, 1.26, 0.62));
    suite.push_back(profile("go", "SPEC95 go player", K::Infrequent,
                            0x1D7011, 549656, 56355, 7123, 0.0, 2, 14,
                            29.25, 22.82));

    return suite;
}

BenchmarkGroups
buildGroups()
{
    BenchmarkGroups groups;
    groups.oo = {"idl", "jhm", "self", "troff", "lcom",
                 "porky", "ixx", "eqn", "beta"};
    groups.c = {"xlisp", "perl", "edg", "gcc"};
    groups.avg = groups.oo;
    groups.avg.insert(groups.avg.end(), groups.c.begin(),
                      groups.c.end());
    groups.avg100 = {"idl", "jhm", "self", "troff", "lcom", "xlisp"};
    groups.avg200 = {"porky", "ixx", "eqn", "beta",
                     "perl", "edg", "gcc"};
    groups.infrequent = {"m88ksim", "vortex", "ijpeg", "go"};
    return groups;
}

} // namespace

const std::vector<BenchmarkProfile> &
benchmarkSuite()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

const BenchmarkProfile &
benchmarkProfile(const std::string &name)
{
    for (const auto &profile : benchmarkSuite()) {
        if (profile.name == name)
            return profile;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

const BenchmarkGroups &
benchmarkGroups()
{
    static const BenchmarkGroups groups = buildGroups();
    return groups;
}

double
eventScale()
{
    const char *env = std::getenv("IBP_EVENTS");
    if (!env)
        return 1.0;
    const double scale = std::atof(env);
    return std::clamp(scale <= 0 ? 1.0 : scale, 0.01, 100.0);
}

namespace {

/** Scaled event count a default-length generation run emits. */
std::uint64_t
scaledEvents(const BenchmarkProfile &profile)
{
    return std::max<std::uint64_t>(
        1000, static_cast<std::uint64_t>(
                  static_cast<double>(profile.defaultEvents) *
                  eventScale()));
}

} // namespace

Trace
generateBenchmarkTrace(const std::string &name, bool emitConditionals)
{
    const BenchmarkProfile &profile = benchmarkProfile(name);
    GeneratorOptions options;
    options.events = scaledEvents(profile);
    options.emitConditionals = emitConditionals;
    return generateTrace(profile, options);
}

std::string
benchmarkTraceCacheKey(const std::string &name, bool emitConditionals)
{
    const BenchmarkProfile &profile = benchmarkProfile(name);
    const GeneratorOptions defaults;

    // Canonical description of everything the generated bytes depend
    // on. Doubles are printed with %.17g so any representable change
    // to a knob changes the key.
    std::ostringstream desc;
    const auto num = [&desc](const char *field, double value) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        desc << field << '=' << buf << '|';
    };
    desc << "gen=" << kTraceGeneratorVersion << '|'
         << "name=" << profile.name << '|'
         << "seed=" << profile.seed << '|'
         << "events=" << scaledEvents(profile) << '|'
         << "cond=" << (emitConditionals ? 1 : 0) << '|'
         << "condcap=" << defaults.conditionalCap << '|'
         << "suite=" << static_cast<int>(profile.suite) << '|'
         << "sites90=" << profile.sites90 << '|'
         << "sites100=" << profile.sites100 << '|';
    num("instr", profile.instrPerIndirect);
    num("condpi", profile.condPerIndirect);
    num("vcall", profile.virtualCallFraction);
    num("btb", profile.btbMissTarget);
    num("floor", profile.floorMissTarget);
    num("selfcorr", profile.selfCorrelatedFraction);
    num("opred", profile.overridePredictability);
    num("odom", profile.overrideDominance);
    num("oskew", profile.overrideTargetSkew);
    num("omono", profile.overrideMonoFraction);
    num("ostick", profile.overrideStickiness);
    num("ophase", profile.overridePhaseMutation);
    desc << "operiod=" << profile.overridePhasePeriod;

    // FNV-1a 64: stable across platforms, and collisions between
    // *different* configurations of the same benchmark would need
    // ~2^32 entries - far beyond the handful a suite ever has.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : desc.str()) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    return name + "-" + hex;
}

} // namespace ibp
