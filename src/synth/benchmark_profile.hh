/**
 * @file
 * Paper-facing description of one synthetic benchmark.
 *
 * Each of the paper's 17 benchmarks (Tables 1 and 2) is modelled by a
 * BenchmarkProfile holding the characteristics the paper reports
 * (branch counts, instructions and conditional branches per indirect
 * branch, virtual-call fraction, active-site counts) plus two
 * behavioural calibration targets taken from the paper's results:
 * the unconstrained BTB-2bc misprediction rate (Figure 2 /
 * Table A-1) and the large-table two-level floor (Table A-1,
 * fullassoc column). The generator derives its internal knobs from
 * these targets (see program_model.cc), so the synthetic suite
 * reproduces the paper's per-benchmark difficulty spread.
 */

#ifndef IBP_SYNTH_BENCHMARK_PROFILE_HH
#define IBP_SYNTH_BENCHMARK_PROFILE_HH

#include <cstdint>
#include <string>

namespace ibp {

/** Source language / suite of a benchmark (Tables 1 and 2). */
enum class BenchmarkSuiteKind
{
    ObjectOriented, ///< Table 1 (C++ applications and beta)
    C,              ///< Table 2, frequent indirect branches
    Infrequent,     ///< Table 2, > 1000 instructions per indirect
};

struct BenchmarkProfile
{
    std::string name;
    std::string description;
    BenchmarkSuiteKind suite = BenchmarkSuiteKind::ObjectOriented;

    /** Deterministic per-benchmark generator seed. */
    std::uint64_t seed = 1;

    /** Dynamic indirect branches in the paper's trace. */
    std::uint64_t paperBranches = 0;

    /** Default dynamic indirect branches generated (scaled down). */
    std::uint64_t defaultEvents = 0;

    /** Instructions per indirect branch (Table 1/2; metadata only). */
    double instrPerIndirect = 100;

    /** Conditional branches per indirect branch. */
    double condPerIndirect = 10;

    /** Fraction of indirect branches that are virtual calls. */
    double virtualCallFraction = 0.5;

    /** Static indirect branch sites (the tables' "100%" column). */
    unsigned sites100 = 100;

    /** Sites covering 90% of dynamic executions ("90%" column). */
    unsigned sites90 = 10;

    /** Calibration: unconstrained BTB-2bc misprediction %, Figure 2. */
    double btbMissTarget = 25.0;

    /** Calibration: two-level floor % (large fullassoc, Table A-1). */
    double floorMissTarget = 6.0;

    /**
     * Fraction of correlated sites whose rule reads their *own*
     * target history instead of the global path. High for the
     * infrequent group, whose branches do not correlate with each
     * other (section 3.2.1).
     */
    double selfCorrelatedFraction = 0.1;

    /**
     * Auto-tuned knob overrides (produced by tools/autotune, baked
     * into benchmark_suite.cc). Sentinel values mean "derive from the
     * calibration targets instead".
     */
    double overridePredictability = 0.0; ///< 0 = derive
    double overrideDominance = 0.0;      ///< 0 = derive
    double overrideTargetSkew = 0.0;     ///< 0 = solve from dominance
    double overrideMonoFraction = -1.0;  ///< <0 = derive
    double overrideStickiness = 0.0;     ///< 0 = derive
    double overridePhaseMutation = -1.0; ///< <0 = derive
    std::uint64_t overridePhasePeriod = 0; ///< 0 = derive
};

} // namespace ibp

#endif // IBP_SYNTH_BENCHMARK_PROFILE_HH
