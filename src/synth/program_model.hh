/**
 * @file
 * The synthetic program model that generates indirect-branch traces.
 *
 * This is the repository's substitute for the paper's shade-derived
 * traces (DESIGN.md section 1). A program is a population of indirect
 * branch sites driven by a hidden Markov "context" chain:
 *
 *  - Site activity is Zipf-distributed, calibrated so the number of
 *    sites covering 90% of executions matches the paper's tables.
 *  - Each site has a target set with a skewed (Zipf) popularity
 *    distribution, which gives BTBs their dominant-target hit rate.
 *  - Behaviour classes:
 *      Monomorphic    - a single target;
 *      BiasedPoly     - targets drawn independently from the skewed
 *                       distribution (irreducible noise);
 *      PathCorrelated - the target is a deterministic (hash) function
 *                       of the site and the *global* path of the last
 *                       k indirect targets, with probability
 *                       "predictability" (else a noise draw). This is
 *                       the signal two-level predictors exploit, and
 *                       why global histories beat per-address ones;
 *      SelfCorrelated - like PathCorrelated but reads the site's own
 *                       last-k targets (the infrequent group's
 *                       behaviour, where inter-branch correlation is
 *                       absent);
 *      SwitchLike     - the target is a function of the hidden
 *                       context (sticky, so short histories help).
 *  - Program phases: every phasePeriod branches a fraction of the
 *    correlated sites is re-salted, forcing predictors to relearn -
 *    long-path predictors relearn slowest (more patterns per site),
 *    producing the paper's path-length U-curve and the hybrid
 *    advantage.
 *
 * Conditional branches (for Table 1/2 ratios and the Target Cache
 * baseline) and returns are interleaved on request.
 */

#ifndef IBP_SYNTH_PROGRAM_MODEL_HH
#define IBP_SYNTH_PROGRAM_MODEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "synth/benchmark_profile.hh"
#include "trace/trace.hh"
#include "util/rng.hh"

namespace ibp {

/** Options controlling what the generator emits. */
struct GeneratorOptions
{
    /** Number of indirect branches to emit (0 = profile default). */
    std::uint64_t events = 0;

    /**
     * Emit conditional-branch and return records too. Off by default:
     * predictor sweeps only need the indirect stream, and the
     * conditional stream inflates traces by an order of magnitude.
     */
    bool emitConditionals = false;

    /**
     * Cap on conditional records emitted per indirect branch (the
     * statistics use the profile's true ratio; see DESIGN.md).
     */
    unsigned conditionalCap = 8;
};

/**
 * Derived internal knobs of the generator. Computed from a
 * BenchmarkProfile by deriveKnobs(), or built directly for custom
 * workloads (see examples/vcall_workload.cc).
 */
struct ModelKnobs
{
    unsigned numSites = 100;
    double siteZipfAlpha = 1.0;
    unsigned minTargets = 2;
    unsigned maxTargets = 8;
    /**
     * Dominant-target share of polymorphic sites. Each site's target
     * popularity is a Zipf distribution whose exponent is solved so
     * the top target carries this share (BTB-2bc accuracy anchor).
     */
    double dominance = 0.70;
    /** Explicit Zipf exponent override (0 = solve from dominance). */
    double targetSkew = 0.0;
    double monoFraction = 0.3;
    /** Of the non-mono sites: fraction behaving switch-like. */
    double switchFraction = 0.15;
    /** Of the correlated sites: fraction reading their own history. */
    double selfCorrelatedFraction = 0.1;
    /** P(correlated site follows its deterministic rule). */
    double predictability = 0.95;
    /**
     * Weights of the hidden data-schedule period P = 1, 2, ... of a
     * loop context (and of a self-correlated site's own schedule).
     * Longer periods need longer history paths to disambiguate,
     * which shapes the paper's path-length curve (Figure 9).
     */
    std::vector<double> periodWeights = {0.16, 0.22, 0.20, 0.14,
                                         0.10, 0.08, 0.06, 0.04};
    std::uint64_t phasePeriod = 50000;
    double phaseMutation = 0.30;
    unsigned numContexts = 64;
    double contextStickiness = 0.85;
    /** P(a context transfer ignores the deterministic successor). */
    double transitionNoise = 0.08;
    /**
     * Fraction of loop contexts that are *data-driven*: each
     * iteration handles a freshly drawn polymorphic object and all
     * slots dispatch on it. Only the iteration's first branch is
     * then unpredictable - the rest correlate with it through the
     * global path, which is the inter-branch correlation that makes
     * global histories win (section 3.2.1).
     */
    double dataDrivenFraction = 0.25;
    /** Distinct object types data-driven iterations draw from. */
    unsigned numObjectTypes = 8;
    /** Code placement. */
    std::uint32_t codeBase = 0x10000;
    std::uint32_t codeSpan = 1u << 21;
    unsigned clusterSize = 8;
    /** Conditional-branch population. */
    unsigned numCondSites = 300;
    double condTakenBias = 0.5;
    /** True conditional/indirect ratio (emission is capped). */
    double condPerIndirect = 10.0;
    /** Fraction of indirect branches that are virtual calls. */
    double virtualCallFraction = 0.5;
};

/** Translate a profile's calibration targets into generator knobs. */
ModelKnobs deriveKnobs(const BenchmarkProfile &profile);

/**
 * The generator itself. Deterministic: the same (knobs, seed,
 * options) triple always produces the same trace.
 */
class ProgramModel
{
  public:
    ProgramModel(const ModelKnobs &knobs, std::uint64_t seed);
    ~ProgramModel();

    ProgramModel(const ProgramModel &) = delete;
    ProgramModel &operator=(const ProgramModel &) = delete;

    /** Generate a trace of @p options.events indirect branches. */
    Trace generate(const GeneratorOptions &options,
                   const std::string &name);

    const ModelKnobs &knobs() const { return _knobs; }

  private:
    struct Impl;

    ModelKnobs _knobs;
    std::unique_ptr<Impl> _impl;
};

/** Generate the trace for a benchmark profile in one call. */
Trace generateTrace(const BenchmarkProfile &profile,
                    const GeneratorOptions &options = {});

} // namespace ibp

#endif // IBP_SYNTH_PROGRAM_MODEL_HH
