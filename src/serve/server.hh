/**
 * @file
 * The ibpd sweep server: a resident process that owns the warm
 * simulation state - the process-wide Executor, the on-disk trace
 * cache, and the experiment registry - and serves sweep requests
 * from many concurrent clients over a unix-domain socket
 * (docs/SERVICE.md).
 *
 * Design:
 *
 *  - One ACCEPT thread hands each connection to a short-lived
 *    connection thread, which parses the single request frame and
 *    streams reply frames (serve/protocol.hh).
 *  - JOB RUNNER threads execute queued jobs in priority order (FIFO
 *    within a level). With lanes == 0 a single runner executes jobs
 *    in-process, strictly one at a time: the full worker pool serves
 *    one sweep, exactly as a bench binary would, so every run is
 *    bit-identical to its in-process twin. With lanes >= 1 each
 *    runner drives one worker lane PROCESS through the lane
 *    supervisor (serve/supervisor.hh): jobs are crash-isolated,
 *    wall-clock deadlines are enforced with SIGKILL, and a dead lane
 *    is replaced while its job resumes from the checkpoint journal.
 *    A single job still owns a whole lane, so --lanes=1 artifacts
 *    are bit-identical to the in-process runner's.
 *  - ADMISSION CONTROL bounds the queue: a request that would push
 *    the queued depth past the configured bound is rejected with a
 *    retry-after hint instead of being buffered without limit.
 *  - COALESCING: a request whose signature (slug + quick) matches a
 *    queued or running job attaches to that job as an additional
 *    subscriber; both clients receive the identical artifact of one
 *    execution, and the artifact's metrics.serve.coalesced counts
 *    the shared riders.
 *  - GRACEFUL DRAIN: requestDrain() (SIGTERM in ibpd) stops
 *    admission, aborts the running sweep at the next cell boundary
 *    via RunSession::abort - completed cells are already in the
 *    job's checkpoint journal - persists every unfinished request to
 *    stateDir/pending.json, and notifies waiting subscribers with a
 *    "drained" frame so they can retry or fall back. A restarted
 *    server re-enqueues the pending requests and resumes them from
 *    their journals.
 */

#ifndef IBP_SERVE_SERVER_HH
#define IBP_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "robust/error.hh"
#include "serve/protocol.hh"
#include "serve/supervisor.hh"
#include "sim/experiment.hh"

namespace ibp {

struct ServerConfig
{
    /** Socket to listen on ("" resolves via daemonSocketPath()). */
    std::string socketPath;
    /** Durable state: per-job checkpoint journals, pending.json. */
    std::string stateDir = "out/ibpd-state";
    /** Admission bound: maximum QUEUED (not running) jobs. */
    std::size_t maxQueueDepth = 8;
    /** Retry-after hint sent with admission rejections. */
    double retryAfterSeconds = 0.25;
    /** Log one line per lifecycle event to stdout. */
    bool echo = true;
    /** Worker lane processes. 0 = run jobs in-process on one runner
     *  thread (the embedded/test mode); >= 1 = supervised lanes with
     *  crash isolation and hard deadlines (ibpd defaults to 2). */
    unsigned lanes = 0;
    /** SIGKILL a lane with no cell progress for this long; 0 off. */
    double cellCeilingSeconds = 0.0;
    /** SIGKILL a lane whose job runs past this (no retry); 0 off. */
    double jobCeilingSeconds = 0.0;
    /** SIGKILL a lane silent (no frame at all) for this long. */
    double heartbeatTimeoutSeconds = 10.0;
    /** Lane deaths tolerated per job without checkpoint progress. */
    unsigned laneMaxRetries = 3;
    /** Pause before re-dispatching a crashed job to a fresh lane. */
    double laneRetryBackoffSeconds = 0.1;
    /** Shard shardable jobs across the lane pool (lanes >= 2): each
     *  lane simulates one benchmark partition of the grid into the
     *  result store, then a single-lane merge pass assembles the
     *  artifact (bit-identical to an unsharded run). Requires an
     *  armed result store; off, every job owns one whole lane. */
    bool shardJobs = true;
    /** Re-dispatches allowed per shard after its lane pool gives up,
     *  before the shard is abandoned (the merge pass then simulates
     *  its unfinished cells on one lane). */
    unsigned shardRequeueBudget = 2;
};

/** Cumulative counters, exposed over the "stats" request. */
struct ServerStats
{
    std::uint64_t jobsAccepted = 0;
    std::uint64_t requestsCoalesced = 0;
    std::uint64_t requestsRejected = 0;
    std::uint64_t requestsIncompatible = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsDrained = 0;
    /** Completed jobs that paid zero trace generations. */
    std::uint64_t warmHits = 0;
    std::uint64_t jobsRestored = 0;
    /** Lane-pool counters (all zero with lanes == 0). */
    std::uint64_t lanesForked = 0;
    std::uint64_t laneCrashes = 0;
    std::uint64_t laneKills = 0;
    std::uint64_t jobsRetried = 0;
    /** Grid-sharder counters (all zero unless jobs were sharded). */
    std::uint64_t jobsSharded = 0;
    std::uint64_t shardsPlanned = 0;
    std::uint64_t shardsRequeued = 0;
    std::uint64_t shardsAbandoned = 0;
    std::uint64_t shardCellsStolen = 0;
    /** Cells one job deferred on and another claimant simulated
     *  (the cross-request overlap win of the cell-claim layer). */
    std::uint64_t overlapCellsCoalesced = 0;
};

class SweepServer
{
  public:
    explicit SweepServer(ServerConfig config);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /**
     * Bind the socket, re-enqueue any requests a previous drain
     * persisted, and start the accept and job-runner threads.
     */
    Result<void> start();

    /**
     * Begin a graceful drain (idempotent, non-blocking, callable
     * from any thread including connection threads): stop admission,
     * abort the running sweep at its next cell boundary, persist
     * unfinished requests, wake every waiter. Completion is observed
     * via waitStopped().
     */
    void requestDrain();

    /** Block until every server thread has exited (requires a prior
     *  or concurrent requestDrain()), then remove the socket. */
    void waitStopped();

    ServerStats stats() const;

    const ServerConfig &config() const { return _config; }

    /** Resolved socket path the server is (or will be) bound to. */
    const std::string &socketPath() const { return _socketPath; }

    /** Lane pids + current slugs (empty with lanes == 0). Chaos
     *  tests kill specific busy lanes through this. */
    std::vector<LaneView> laneViews() const;

  private:
    enum class JobState { Queued, Running, Done, Drained };

    /** One queued/running execution plus its subscribers' view. */
    struct Job
    {
        std::uint64_t id = 0;
        RunRequest request;
        /** Guards everything below; subscribers wait on cv. */
        std::mutex mutex;
        std::condition_variable cv;
        JobState state = JobState::Queued;
        std::size_t cellsDone = 0;
        /** Sum of subscriber requests (1 per attach). */
        unsigned subscribers = 0;
        /** Subscribers beyond the first (shared riders). */
        unsigned coalesced = 0;
        /** Sum of the subscribers' reported admission rejections. */
        unsigned clientRejects = 0;
        double queueSeconds = 0.0;
        std::chrono::steady_clock::time_point enqueuedAt;
        /** Stamped when the first task of the job starts running;
         *  meaningful only while state is Running or later. */
        std::chrono::steady_clock::time_point startedAt;
        ExperimentRunResult result;

        // ---- grid-sharder bookkeeping (zero for unsharded jobs;
        // guarded by mutex like everything above) ----
        /** Shards planned for this job; 0 = runs as one whole job. */
        unsigned shardCount = 0;
        /** Shards that reached a terminal state (finished, drained
         *  or abandoned); the merge pass is enqueued when this hits
         *  shardCount with no drain in flight. */
        unsigned shardsTerminal = 0;
        /** Any shard stopped for drain. */
        bool shardDrained = false;
        /** Monotonic per-shard resolved-cell maxima; streamed
         *  progress is their sum. */
        std::vector<std::size_t> shardCells;
        /** Dispatch count per shard (first run + re-queues), checked
         *  against ServerConfig::shardRequeueBudget. */
        std::vector<unsigned> shardDispatches;
        /** Aggregated fan-out telemetry, stamped onto the merge
         *  artifact's serve metrics. */
        ShardServeStats shardServe;
    };

    /** What a runner thread dequeues: a whole job, one shard of a
     *  sharded job's fan-out, or the final single-lane merge pass. */
    enum class TaskKind { Whole, Shard, Merge };
    struct Task
    {
        std::shared_ptr<Job> job;
        TaskKind kind = TaskKind::Whole;
        unsigned shardIndex = 0;
    };

    /** One client connection and the thread serving it. */
    struct Connection
    {
        std::thread thread;
        std::atomic<bool> finished{false};
        /** -1 once the serving thread has closed it. */
        int fd = -1;
    };

    void acceptLoop();
    void reapConnections();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    void handleRun(int fd, const RunRequest &request);
    void handleStats(int fd);
    void runnerLoop(unsigned laneIndex);
    void runJob(const std::shared_ptr<Job> &job, unsigned laneIndex);
    void runShardTask(const Task &task, unsigned laneIndex);
    void runMergeTask(const std::shared_ptr<Job> &job,
                      unsigned laneIndex);
    /** Plan the job (shard fan-out or whole) and push its task(s);
     *  caller holds _queueMutex. */
    void enqueueJobLocked(const std::shared_ptr<Job> &job);
    /** Distinct jobs with tasks in the queue (admission bound);
     *  caller holds _queueMutex. */
    std::size_t queuedJobCountLocked() const;
    /** Transition Queued -> Running once, stamping queue/start
     *  times; later tasks of the same job are no-ops. */
    void markJobStarted(const std::shared_ptr<Job> &job);
    std::string checkpointPathFor(const RunRequest &request) const;
    std::string shardCheckpointPathFor(const RunRequest &request,
                                       unsigned shardIndex,
                                       unsigned shardCount) const;
    /** Remove every shard journal of @p request (any shard count). */
    void removeShardCheckpoints(const RunRequest &request) const;
    void persistPendingLocked();
    void restorePending();
    void logLine(const char *format, ...) const;

    ServerConfig _config;
    std::string _socketPath;
    int _listenFd = -1;
    /** Self-pipe that wakes the accept loop's poll() on drain. */
    int _drainPipe[2] = {-1, -1};

    std::thread _acceptThread;
    /** One per lane; a single thread with lanes == 0. */
    std::vector<std::thread> _runnerThreads;

    /** Lane pool; null with lanes == 0 (in-process execution). */
    std::unique_ptr<LaneSupervisor> _supervisor;

    mutable std::mutex _connMutex;
    std::list<std::shared_ptr<Connection>> _connections;

    /** Guards the queue, _runningJobs, _draining and _nextJobId. */
    mutable std::mutex _queueMutex;
    std::condition_variable _queueCv;
    /** Pending tasks; a sharded job contributes several. */
    std::vector<Task> _queue;
    /** Job each runner thread is executing (index = lane); shards of
     *  one job can occupy several slots at once. */
    std::vector<std::shared_ptr<Job>> _runningJobs;
    bool _draining = false;
    std::uint64_t _nextJobId = 1;

    /** The drain flag handed to every job's RunSession::abort. */
    std::atomic<bool> _drainFlag{false};

    mutable std::mutex _statsMutex;
    ServerStats _stats;

    std::atomic<bool> _started{false};
    std::atomic<bool> _stopped{false};
};

} // namespace ibp

#endif // IBP_SERVE_SERVER_HH
