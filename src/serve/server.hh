/**
 * @file
 * The ibpd sweep server: a resident process that owns the warm
 * simulation state - the process-wide Executor, the on-disk trace
 * cache, and the experiment registry - and serves sweep requests
 * from many concurrent clients over a unix-domain socket
 * (docs/SERVICE.md).
 *
 * Design:
 *
 *  - One ACCEPT thread hands each connection to a short-lived
 *    connection thread, which parses the single request frame and
 *    streams reply frames (serve/protocol.hh).
 *  - One JOB RUNNER thread executes queued jobs strictly one at a
 *    time, in priority order (FIFO within a level). Serializing jobs
 *    keeps every run bit-identical to its in-process twin - the full
 *    worker pool serves one sweep, exactly as a bench binary would -
 *    and makes coalescing trivial.
 *  - ADMISSION CONTROL bounds the queue: a request that would push
 *    the queued depth past the configured bound is rejected with a
 *    retry-after hint instead of being buffered without limit.
 *  - COALESCING: a request whose signature (slug + quick) matches a
 *    queued or running job attaches to that job as an additional
 *    subscriber; both clients receive the identical artifact of one
 *    execution, and the artifact's metrics.serve.coalesced counts
 *    the shared riders.
 *  - GRACEFUL DRAIN: requestDrain() (SIGTERM in ibpd) stops
 *    admission, aborts the running sweep at the next cell boundary
 *    via RunSession::abort - completed cells are already in the
 *    job's checkpoint journal - persists every unfinished request to
 *    stateDir/pending.json, and notifies waiting subscribers with a
 *    "drained" frame so they can retry or fall back. A restarted
 *    server re-enqueues the pending requests and resumes them from
 *    their journals.
 */

#ifndef IBP_SERVE_SERVER_HH
#define IBP_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "robust/error.hh"
#include "serve/protocol.hh"
#include "sim/experiment.hh"

namespace ibp {

struct ServerConfig
{
    /** Socket to listen on ("" resolves via daemonSocketPath()). */
    std::string socketPath;
    /** Durable state: per-job checkpoint journals, pending.json. */
    std::string stateDir = "out/ibpd-state";
    /** Admission bound: maximum QUEUED (not running) jobs. */
    std::size_t maxQueueDepth = 8;
    /** Retry-after hint sent with admission rejections. */
    double retryAfterSeconds = 0.25;
    /** Log one line per lifecycle event to stdout. */
    bool echo = true;
};

/** Cumulative counters, exposed over the "stats" request. */
struct ServerStats
{
    std::uint64_t jobsAccepted = 0;
    std::uint64_t requestsCoalesced = 0;
    std::uint64_t requestsRejected = 0;
    std::uint64_t requestsIncompatible = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsDrained = 0;
    /** Completed jobs that paid zero trace generations. */
    std::uint64_t warmHits = 0;
    std::uint64_t jobsRestored = 0;
};

class SweepServer
{
  public:
    explicit SweepServer(ServerConfig config);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /**
     * Bind the socket, re-enqueue any requests a previous drain
     * persisted, and start the accept and job-runner threads.
     */
    Result<void> start();

    /**
     * Begin a graceful drain (idempotent, non-blocking, callable
     * from any thread including connection threads): stop admission,
     * abort the running sweep at its next cell boundary, persist
     * unfinished requests, wake every waiter. Completion is observed
     * via waitStopped().
     */
    void requestDrain();

    /** Block until every server thread has exited (requires a prior
     *  or concurrent requestDrain()), then remove the socket. */
    void waitStopped();

    ServerStats stats() const;

    const ServerConfig &config() const { return _config; }

    /** Resolved socket path the server is (or will be) bound to. */
    const std::string &socketPath() const { return _socketPath; }

  private:
    enum class JobState { Queued, Running, Done, Drained };

    /** One queued/running execution plus its subscribers' view. */
    struct Job
    {
        std::uint64_t id = 0;
        RunRequest request;
        /** Guards everything below; subscribers wait on cv. */
        std::mutex mutex;
        std::condition_variable cv;
        JobState state = JobState::Queued;
        std::size_t cellsDone = 0;
        /** Sum of subscriber requests (1 per attach). */
        unsigned subscribers = 0;
        /** Subscribers beyond the first (shared riders). */
        unsigned coalesced = 0;
        /** Sum of the subscribers' reported admission rejections. */
        unsigned clientRejects = 0;
        double queueSeconds = 0.0;
        std::chrono::steady_clock::time_point enqueuedAt;
        ExperimentRunResult result;
    };

    /** One client connection and the thread serving it. */
    struct Connection
    {
        std::thread thread;
        std::atomic<bool> finished{false};
        /** -1 once the serving thread has closed it. */
        int fd = -1;
    };

    void acceptLoop();
    void reapConnections();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    void handleRun(int fd, const RunRequest &request);
    void handleStats(int fd);
    void runnerLoop();
    void runJob(const std::shared_ptr<Job> &job);
    std::string checkpointPathFor(const RunRequest &request) const;
    void persistPendingLocked();
    void restorePending();
    void logLine(const char *format, ...) const;

    ServerConfig _config;
    std::string _socketPath;
    int _listenFd = -1;
    /** Self-pipe that wakes the accept loop's poll() on drain. */
    int _drainPipe[2] = {-1, -1};

    std::thread _acceptThread;
    std::thread _runnerThread;

    mutable std::mutex _connMutex;
    std::list<std::shared_ptr<Connection>> _connections;

    /** Guards the queue, _running, _draining and _nextJobId. */
    mutable std::mutex _queueMutex;
    std::condition_variable _queueCv;
    std::vector<std::shared_ptr<Job>> _queue;
    std::shared_ptr<Job> _running;
    bool _draining = false;
    std::uint64_t _nextJobId = 1;

    /** The drain flag handed to every job's RunSession::abort. */
    std::atomic<bool> _drainFlag{false};

    mutable std::mutex _statsMutex;
    ServerStats _stats;

    std::atomic<bool> _started{false};
    std::atomic<bool> _stopped{false};
};

} // namespace ibp

#endif // IBP_SERVE_SERVER_HH
