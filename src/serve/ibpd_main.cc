/**
 * @file
 * ibpd - the resident sweep daemon (docs/SERVICE.md).
 *
 * Registers every bench experiment, arms the process-wide trace
 * cache (so the second client of any suite runs warm), binds the
 * service socket, and serves until a SIGTERM/SIGINT or a client
 * "shutdown" request drains it. Draining checkpoints the in-flight
 * suite and persists queued requests; the next ibpd on the same
 * state directory resumes them.
 *
 * Usage:
 *   ibpd [--socket=PATH] [--state=DIR] [--queue-depth=N]
 *        [--lanes=N] [--cell-ceiling=SECONDS]
 *        [--job-ceiling=SECONDS] [--heartbeat-timeout=SECONDS]
 *        [--lane-retries=N] [--no-shard] [--shard-requeues=N]
 *        [--quiet]
 *   ibpd --stats [--socket=PATH]
 *
 * --stats is a CLIENT subcommand: it connects to the running daemon
 * at the socket, prints its lane/shard/coalescing counters, and
 * exits (0 on success, 1 when no daemon answers).
 *
 * The socket defaults to $IBP_DAEMON, else out/ibpd.sock - the same
 * resolution every bench's --daemon flag uses. Exit code 0 after a
 * clean drain, 1 on a startup failure.
 *
 * Jobs run in supervised worker lane PROCESSES (--lanes, default 2):
 * a crashing or hung experiment kills its lane, not the daemon, and
 * resumes from its checkpoint journal on a fresh lane. --lanes=1
 * serves jobs strictly one at a time (bit-identical to the
 * in-process runner); --lanes=0 reverts to in-process execution
 * with no isolation. The ceilings are hard wall-clock deadlines
 * enforced with SIGKILL; see docs/ROBUSTNESS.md.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/server.hh"
#include "sim/result_store.hh"
#include "trace/trace_cache.hh"

#include "suites.hh"

namespace {

/** Self-pipe bridging async signals to the drain path: the handler
 *  only write()s (async-signal-safe); a watcher thread does the
 *  locking work of SweepServer::requestDrain(). */
int g_signal_pipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe[1], &byte, 1);
}

bool
parseFlag(const std::string &arg, const char *name,
          std::string *value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    *value = arg.substr(prefix.size());
    return true;
}

/** The --stats client: query the running daemon and pretty-print
 *  its counters. Returns the process exit code. */
int
runStatsClient(const std::string &socket_override)
{
    const std::string path = ibp::daemonSocketPath(socket_override);
    const auto fd = ibp::connectDaemon(path);
    if (!fd.ok()) {
        std::fprintf(stderr, "ibpd: no daemon at %s: %s\n",
                     path.c_str(),
                     fd.error().describe().c_str());
        return 1;
    }
    ibp::Json request = ibp::Json::object();
    request.set("type", "stats");
    const auto written = ibp::writeFrame(fd.value(), request);
    auto reply = written.ok()
                     ? ibp::readFrame(fd.value(), 10.0)
                     : ibp::Result<ibp::Json>(written.error());
    ::close(fd.value());
    if (!reply.ok()) {
        std::fprintf(stderr, "ibpd: stats request failed: %s\n",
                     reply.error().describe().c_str());
        return 1;
    }
    const ibp::Json &stats = reply.value();
    const auto count = [&stats](const char *key) {
        return static_cast<unsigned long long>(
            stats.numberOr(key, 0));
    };
    std::printf("ibpd at %s\n", path.c_str());
    std::printf("jobs:      accepted %llu, completed %llu, "
                "drained %llu, restored %llu, warm %llu\n",
                count("jobs_accepted"), count("jobs_completed"),
                count("jobs_drained"), count("jobs_restored"),
                count("warm_hits"));
    std::printf("requests:  coalesced %llu, rejected %llu, "
                "incompatible %llu\n",
                count("requests_coalesced"),
                count("requests_rejected"),
                count("requests_incompatible"));
    std::printf("lanes:     %llu (forked %llu, crashes %llu, "
                "kills %llu, job retries %llu)\n",
                count("lanes"), count("lanes_forked"),
                count("lane_crashes"), count("lane_kills"),
                count("jobs_retried"));
    std::printf("shards:    jobs sharded %llu, planned %llu, "
                "requeued %llu, abandoned %llu\n",
                count("jobs_sharded"), count("shards_planned"),
                count("shards_requeued"),
                count("shards_abandoned"));
    std::printf("overlap:   cells stolen %llu, "
                "overlap cells coalesced %llu\n",
                count("shard_cells_stolen"),
                count("overlap_cells_coalesced"));
    std::printf("queue:     depth %llu", count("queue_depth"));
    if (stats.contains("running_jobs") &&
        stats.at("running_jobs").isArray() &&
        stats.at("running_jobs").size() > 0) {
        std::printf(", running:");
        const ibp::Json &running = stats.at("running_jobs");
        for (std::size_t i = 0; i < running.size(); ++i)
            std::printf(" %s", running.at(i).asString().c_str());
    }
    std::printf("\n");
    return 0;
}

void
printUsage()
{
    std::printf(
        "usage: ibpd [--socket=PATH] [--state=DIR]\n"
        "            [--queue-depth=N] [--lanes=N]\n"
        "            [--cell-ceiling=SECONDS]\n"
        "            [--job-ceiling=SECONDS]\n"
        "            [--heartbeat-timeout=SECONDS]\n"
        "            [--lane-retries=N] [--no-shard]\n"
        "            [--shard-requeues=N] [--quiet]\n"
        "       ibpd --stats [--socket=PATH]\n"
        "\n"
        "--stats asks the RUNNING daemon for its lane, shard and\n"
        "coalescing counters and exits.\n"
        "\n"
        "Resident sweep daemon: serves bench runs over a unix\n"
        "socket (see docs/SERVICE.md). Clients connect via the\n"
        "benches' --daemon flag or the IBP_DAEMON variable.\n"
        "SIGTERM drains gracefully: the in-flight suite is\n"
        "checkpointed and queued requests persist; restarting with\n"
        "the same --state resumes them.\n"
        "\n"
        "Jobs run in supervised worker lane processes (--lanes,\n"
        "default 2; 0 = in-process, no isolation). A lane that\n"
        "crashes or busts a ceiling is SIGKILLed and replaced; its\n"
        "job resumes from the checkpoint journal. The ceilings are\n"
        "hard wall-clock deadlines (0 = disabled); see\n"
        "docs/ROBUSTNESS.md.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ibp::ServerConfig config;
    config.lanes = 2; // the daemon defaults to crash isolation
    bool stats_mode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--stats") {
            stats_mode = true;
        } else if (parseFlag(arg, "--socket", &value)) {
            config.socketPath = value;
        } else if (parseFlag(arg, "--state", &value)) {
            config.stateDir = value;
        } else if (parseFlag(arg, "--queue-depth", &value)) {
            config.maxQueueDepth =
                static_cast<std::size_t>(std::atoi(value.c_str()));
        } else if (parseFlag(arg, "--lanes", &value)) {
            config.lanes =
                static_cast<unsigned>(std::atoi(value.c_str()));
        } else if (parseFlag(arg, "--cell-ceiling", &value)) {
            config.cellCeilingSeconds = std::atof(value.c_str());
        } else if (parseFlag(arg, "--job-ceiling", &value)) {
            config.jobCeilingSeconds = std::atof(value.c_str());
        } else if (parseFlag(arg, "--heartbeat-timeout", &value)) {
            config.heartbeatTimeoutSeconds =
                std::atof(value.c_str());
        } else if (parseFlag(arg, "--lane-retries", &value)) {
            config.laneMaxRetries =
                static_cast<unsigned>(std::atoi(value.c_str()));
        } else if (arg == "--no-shard") {
            config.shardJobs = false;
        } else if (parseFlag(arg, "--shard-requeues", &value)) {
            config.shardRequeueBudget =
                static_cast<unsigned>(std::atoi(value.c_str()));
        } else if (arg == "--quiet") {
            config.echo = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "ibpd: unknown argument '%s'\n",
                         arg.c_str());
            printUsage();
            return 1;
        }
    }

    if (stats_mode)
        return runStatsClient(config.socketPath);

    ibp::registerAllBenchExperiments();

    // Warm state is the daemon's whole point: arm the trace cache
    // and the content-addressed result store unless the user already
    // pinned them via the environment.
    if (!std::getenv("IBP_TRACE_CACHE")) {
        ibp::TraceCache::configureGlobal(config.stateDir +
                                         "/trace-cache");
    }
    if (!std::getenv("IBP_RESULT_STORE")) {
        ibp::ResultStore::configureGlobal(config.stateDir +
                                          "/result-store");
    }

    ibp::SweepServer server(config);
    const auto started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "ibpd: %s\n",
                     started.error().describe().c_str());
        return 1;
    }

    if (::pipe(g_signal_pipe) != 0) {
        std::fprintf(stderr, "ibpd: pipe() failed: %s\n",
                     std::strerror(errno));
        return 1;
    }
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    std::thread signal_watcher([&server] {
        char byte = 0;
        while (::read(g_signal_pipe[0], &byte, 1) < 0 &&
               errno == EINTR) {
        }
        server.requestDrain();
    });

    // Blocks until a signal or a client "shutdown" drains us.
    server.waitStopped();

    // Wake the watcher if the drain came over the socket instead of
    // a signal (requestDrain is idempotent).
    onSignal(0);
    signal_watcher.join();
    return 0;
}
