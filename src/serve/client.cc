#include "serve/client.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include "robust/fault_injection.hh"
#include "robust/retry.hh"
#include "serve/protocol.hh"

namespace ibp {

namespace {

struct FdCloser
{
    int fd;
    ~FdCloser()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** Outcome of one complete client<->daemon conversation attempt. */
struct Conversation
{
    enum class Verdict {
        Served,        ///< Artifact received.
        Fallback,      ///< Give up on the daemon, run in-process.
        RetryLater,    ///< Transient trouble; back off and retry.
        Resubmit,      ///< Admission rejection; honour retry-after.
    };
    Verdict verdict = Verdict::Fallback;
    std::string reason;
    double retryAfterSeconds = 0.0;
    ExperimentRunResult result;
};

bool
startsWith(const std::string &text, const char *prefix)
{
    return text.rfind(prefix, 0) == 0;
}

void
sleepSeconds(double seconds)
{
    if (seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
    }
}

/** Effective per-frame receive deadline (see ClientOptions). */
double
resolveReceiveTimeout(double configured)
{
    if (configured >= 0.0)
        return configured;
    if (const char *env = std::getenv("IBP_DAEMON_TIMEOUT")) {
        const double seconds = std::atof(env);
        if (seconds >= 0.0)
            return seconds;
    }
    return 300.0;
}

Conversation
converse(const std::string &socket_path, const RunRequest &request,
         unsigned attempt, bool echo, double receive_timeout)
{
    Conversation out;
    auto connected = connectDaemon(socket_path);
    if (!connected.ok()) {
        const std::string cause = connected.error().describe();
        out.verdict = startsWith(connected.error().message,
                                 "no daemon")
                          ? Conversation::Verdict::Fallback
                          : Conversation::Verdict::RetryLater;
        out.reason = cause;
        return out;
    }
    FdCloser closer{connected.value()};
    const int fd = closer.fd;
    bool progress_echoed = false;
    const auto end_progress_line = [&] {
        if (progress_echoed) {
            std::printf("\n");
            progress_echoed = false;
        }
    };
    try {
        // The serve.io site models a flaky transport on the CLIENT
        // side: the retry-then-fallback ladder is tested by arming
        // it, no misbehaving server needed (docs/SERVICE.md).
        const FaultInjector &injector = FaultInjector::global();
        injector.check("serve.io", request.slug, attempt);
        const auto sent = writeFrame(fd, request.toJson());
        if (!sent.ok()) {
            out.verdict = Conversation::Verdict::RetryLater;
            out.reason = sent.error().describe();
            return out;
        }
        for (;;) {
            injector.check("serve.io", request.slug, attempt);
            auto frame = readFrame(fd, receive_timeout);
            if (!frame.ok()) {
                end_progress_line();
                out.verdict = Conversation::Verdict::RetryLater;
                out.reason = frame.error().describe();
                return out;
            }
            const Json &message = frame.value();
            const std::string type = message.stringOr("type", "");
            if (type == "accepted") {
                if (echo) {
                    const bool coalesced =
                        message.contains("coalesced") &&
                        message.at("coalesced").asBool();
                    std::printf("(daemon accepted job %.0f%s)\n",
                                message.numberOr("job", 0),
                                coalesced
                                    ? ", coalesced onto a running "
                                      "twin"
                                    : "");
                    std::fflush(stdout);
                }
            } else if (type == "progress") {
                if (echo) {
                    std::printf("\r  [served] %.0f cell(s) done",
                                message.numberOr("cells", 0));
                    std::fflush(stdout);
                    progress_echoed = true;
                }
            } else if (type == "rejected") {
                out.verdict = Conversation::Verdict::Resubmit;
                out.reason = "admission rejected (queue full)";
                out.retryAfterSeconds =
                    message.numberOr("retry_after_ms", 250.0) /
                    1000.0;
                return out;
            } else if (type == "incompatible") {
                out.verdict = Conversation::Verdict::Fallback;
                out.reason = "daemon incompatible: " +
                             message.stringOr("reason", "?");
                return out;
            } else if (type == "drained") {
                end_progress_line();
                out.verdict = Conversation::Verdict::RetryLater;
                out.reason = "daemon drained mid-run";
                return out;
            } else if (type == "error") {
                end_progress_line();
                out.verdict = Conversation::Verdict::Fallback;
                out.reason = "daemon error: " +
                             message.stringOr("message", "?");
                return out;
            } else if (type == "artifact") {
                end_progress_line();
                if (!message.contains("artifact")) {
                    out.verdict = Conversation::Verdict::Fallback;
                    out.reason = "artifact frame without artifact";
                    return out;
                }
                out.result.artifact =
                    std::make_shared<RunArtifact>(
                        RunArtifact::fromJson(
                            message.at("artifact")));
                out.result.exitCode = static_cast<int>(
                    message.numberOr("exit_code", 0));
                out.result.restoredCells = static_cast<std::size_t>(
                    message.numberOr("restored_cells", 0));
                out.result.seconds =
                    message.numberOr("seconds", 0.0);
                out.verdict = Conversation::Verdict::Served;
                return out;
            }
            // Unknown frame types are skipped for forward compat.
        }
    } catch (const RunException &exception) {
        end_progress_line();
        out.verdict = exception.error().retryable()
                          ? Conversation::Verdict::RetryLater
                          : Conversation::Verdict::Fallback;
        out.reason = exception.error().describe();
        return out;
    } catch (const std::exception &exception) {
        end_progress_line();
        out.verdict = Conversation::Verdict::Fallback;
        out.reason = exception.what();
        return out;
    }
}

/**
 * Render a served artifact exactly as the in-process path would:
 * tables and notes to stdout, CSVs to csvDir, the artifact JSON to
 * jsonDir, the failed-cell warning to stderr.
 */
void
renderServed(const ExperimentDef &def,
             const ExperimentOptions &options,
             ExperimentRunResult &result)
{
    const RunArtifact &artifact = *result.artifact;
    if (options.echo) {
        std::printf("=== %s: %s ===\n", def.slug.c_str(),
                    def.title.c_str());
        const ServeMetrics serve = artifact.metrics.serve();
        std::printf("(served by ibpd: %u request(s)%s, queued "
                    "%.3f s)\n\n",
                    serve.requests, serve.warm ? ", warm" : "",
                    serve.queueSeconds);
        for (const ResultTable &table : artifact.tables)
            table.print();
        for (const std::string &note : artifact.notes)
            std::printf("%s\n\n", note.c_str());
        std::fflush(stdout);
    }
    try {
        if (!options.csvDir.empty()) {
            std::filesystem::create_directories(options.csvDir);
            for (std::size_t i = 0; i < artifact.tables.size();
                 ++i) {
                const std::string path =
                    options.csvDir + "/" + def.slug + "_" +
                    std::to_string(i) + ".csv";
                artifact.tables[i].writeCsv(path);
                if (options.echo)
                    std::printf("(csv written to %s)\n\n",
                                path.c_str());
            }
        }
        if (!options.jsonDir.empty()) {
            std::filesystem::create_directories(options.jsonDir);
            const std::string path =
                options.jsonDir + "/" + def.slug + ".json";
            const auto written = runWithRetries(
                options.retry, [&](unsigned attempt) {
                    FaultInjector::global().check("artifact", path,
                                                  attempt);
                    const auto wrote = artifact.write(path);
                    if (!wrote.ok())
                        throw RunException(wrote.error());
                });
            if (!written.ok()) {
                throw RunException(RunError::permanent(
                    "artifact write failed: " +
                    written.error().describe()));
            }
            if (options.echo)
                std::printf("(json artifact written to %s)\n",
                            path.c_str());
        }
    } catch (const std::exception &exception) {
        result.exitCode = 1;
        result.error = exception.what();
        if (options.echo)
            std::fprintf(stderr, "experiment failed: %s\n",
                         exception.what());
        return;
    }
    const std::size_t failed_cells =
        artifact.metrics.failureCount();
    if (failed_cells > 0 && options.echo) {
        std::fprintf(stderr,
                     "warning: %zu cell%s failed permanently:\n",
                     failed_cells, failed_cells == 1 ? "" : "s");
        for (const auto &failure : artifact.metrics.failures()) {
            std::fprintf(stderr, "  [%s][%s] %s: %s\n",
                         failure.column.c_str(),
                         failure.benchmark.c_str(),
                         failure.kind.c_str(),
                         failure.error.c_str());
        }
    }
    if (options.echo && result.exitCode != 1) {
        std::printf("[%s done in %.1f s, served]\n",
                    def.slug.c_str(), result.seconds);
    }
}

} // namespace

ExperimentRunResult
runExperimentViaDaemon(const ExperimentDef &def,
                       const ExperimentOptions &options,
                       const ClientOptions &client,
                       ServedOutcome *outcome)
{
    ServedOutcome scratch;
    ServedOutcome &served = outcome != nullptr ? *outcome : scratch;
    served = ServedOutcome{};

    const std::string socket_path =
        daemonSocketPath(client.socketPath);
    RunRequest base = makeRunRequest(def.slug, options.quick);
    base.priority = client.priority;

    const unsigned max_attempts =
        client.maxAttempts == 0 ? 1 : client.maxAttempts;
    const double receive_timeout =
        resolveReceiveTimeout(client.receiveTimeoutSeconds);
    std::string fallback_reason;
    unsigned attempt = 1;
    while (true) {
        served.attempts = attempt;
        RunRequest request = base;
        request.rejects = served.rejects;
        Conversation conversation =
            converse(socket_path, request, attempt, options.echo,
                     receive_timeout);
        if (conversation.verdict ==
            Conversation::Verdict::Served) {
            served.served = true;
            renderServed(def, options, conversation.result);
            return conversation.result;
        }
        if (conversation.verdict ==
            Conversation::Verdict::Fallback) {
            fallback_reason = conversation.reason;
            break;
        }
        if (conversation.verdict ==
            Conversation::Verdict::Resubmit) {
            ++served.rejects;
            if (served.rejects > client.maxRejects) {
                fallback_reason =
                    "admission retries exhausted (" +
                    std::to_string(served.rejects) +
                    " rejections)";
                break;
            }
            sleepSeconds(conversation.retryAfterSeconds);
            continue; // a rejection does not consume an attempt
        }
        // RetryLater: transient transport trouble.
        if (attempt >= max_attempts) {
            fallback_reason = conversation.reason + " (after " +
                              std::to_string(attempt) +
                              " attempt(s))";
            break;
        }
        sleepSeconds(client.backoffSeconds *
                     static_cast<double>(attempt));
        ++attempt;
    }

    served.served = false;
    served.fallbackReason = fallback_reason;
    if (options.echo) {
        std::printf("(daemon unavailable: %s; running "
                    "in-process)\n\n",
                    fallback_reason.c_str());
        std::fflush(stdout);
    }
    return runExperimentInProcess(def, options);
}

} // namespace ibp
