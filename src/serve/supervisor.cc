#include "serve/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/worker.hh"

namespace ibp {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point then)
{
    return std::chrono::duration<double>(Clock::now() - then).count();
}

/** Human-readable death cause from a waitpid status. */
std::string
describeExit(int status)
{
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        const char *name = ::strsignal(sig);
        return "killed by signal " + std::to_string(sig) + " (" +
               (name ? name : "?") + ")";
    }
    if (WIFEXITED(status))
        return "exited with status " +
               std::to_string(WEXITSTATUS(status));
    return "died with wait status " + std::to_string(status);
}

/** What ended one monitored dispatch. */
enum class MonitorEnd
{
    Result,          // lane sent the job's result frame
    LaneDied,        // EOF/read error: the lane is gone
    HeartbeatLost,   // no frame at all for too long
    CellDeadline,    // no cell resolved within the ceiling
    JobDeadline,     // whole job ran past its ceiling
    DispatchFailed,  // could not even write the job frame
};

} // namespace

LaneSupervisor::LaneSupervisor(SupervisorConfig config)
    : _config(config)
{
    if (_config.lanes == 0)
        _config.lanes = 1;
    _lanes.reserve(_config.lanes);
    for (unsigned i = 0; i < _config.lanes; ++i)
        _lanes.push_back(std::make_unique<Lane>());
}

LaneSupervisor::~LaneSupervisor() { shutdown(); }

void
LaneSupervisor::logLine(const char *format, ...) const
{
    if (!_config.echo)
        return;
    std::va_list args;
    va_start(args, format);
    std::printf("[ibpd] ");
    std::vprintf(format, args);
    std::printf("\n");
    std::fflush(stdout);
    va_end(args);
}

Result<void>
LaneSupervisor::start()
{
    for (auto &lane : _lanes) {
        const auto spawned = respawnLane(*lane);
        if (!spawned.ok()) {
            shutdown();
            return spawned;
        }
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _started = true;
    }
    logLine("lane supervisor up: %u lane%s", _config.lanes,
            _config.lanes == 1 ? "" : "s");
    return {};
}

Result<void>
LaneSupervisor::respawnLane(Lane &lane)
{
    auto spawned = spawnWorkerLane();
    if (!spawned.ok())
        return spawned.error();
    {
        std::lock_guard<std::mutex> guard(_mutex);
        std::lock_guard<std::mutex> write_guard(lane.writeMutex);
        lane.pid = spawned.value().pid;
        lane.fd = spawned.value().fd;
        ++_stats.lanesForked;
    }
    logLine("lane %d forked", static_cast<int>(lane.pid));
    return {};
}

void
LaneSupervisor::reapLane(Lane &lane, bool kill)
{
    if (lane.pid < 0)
        return;
    if (kill)
        ::kill(lane.pid, SIGKILL);
    int status = 0;
    pid_t reaped;
    do {
        reaped = ::waitpid(lane.pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    if (reaped == lane.pid)
        logLine("lane %d reaped: %s", static_cast<int>(lane.pid),
                describeExit(status).c_str());
    std::lock_guard<std::mutex> guard(_mutex);
    std::lock_guard<std::mutex> write_guard(lane.writeMutex);
    if (lane.fd >= 0)
        ::close(lane.fd);
    lane.fd = -1;
    lane.pid = -1;
}

LaneJobOutcome
LaneSupervisor::runJob(
    unsigned lane_index, const RunRequest &request,
    const std::string &checkpoint_path,
    const std::function<void(std::size_t)> &on_progress,
    const LaneShard &shard)
{
    Lane &lane = *_lanes.at(lane_index);

    const auto fail = [](const std::string &message) {
        LaneJobOutcome outcome;
        outcome.result.exitCode = 1;
        outcome.result.error = message;
        return outcome;
    };
    const auto drained_outcome = [] {
        LaneJobOutcome outcome;
        outcome.drained = true;
        return outcome;
    };

    const auto job_start = Clock::now();
    unsigned deaths_without_progress = 0;
    unsigned dispatches = 0;

    for (;;) {
        if (lane.fd < 0) {
            const auto spawned = respawnLane(lane);
            if (!spawned.ok()) {
                return fail("cannot fork a replacement lane: " +
                            spawned.error().message);
            }
        }

        Json job = Json::object();
        job.set("type", "job");
        job.set("checkpoint", checkpoint_path);
        job.set("request", request.toJson());
        // Shard fields ride on the lane frame, not the client
        // request: sharding is a daemon scheduling decision and must
        // not perturb RunRequest::signature() coalescing.
        if (shard.count > 1) {
            job.set("shard_index", static_cast<double>(shard.index));
            job.set("shard_count", static_cast<double>(shard.count));
            if (shard.steal)
                job.set("shard_steal", true);
        }
        if (shard.cellClaims)
            job.set("cell_claims", true);
        bool dispatched;
        {
            std::lock_guard<std::mutex> guard(lane.writeMutex);
            dispatched = writeFrame(lane.fd, job).ok();
        }
        ++dispatches;
        {
            std::lock_guard<std::mutex> guard(_mutex);
            lane.currentSlug = request.slug;
            if (dispatches > 1)
                ++_stats.jobsRetried;
        }

        // ---- monitor this dispatch until a terminal condition ----
        MonitorEnd end = MonitorEnd::DispatchFailed;
        Json result_frame;
        std::size_t cells_this_incarnation = 0;
        auto last_frame = Clock::now();
        auto last_progress = last_frame;

        while (dispatched) {
            // The nearest of three deadlines bounds the poll; -1
            // blocks forever when every ceiling is disabled.
            double wait = -1.0;
            const auto consider = [&wait](double ceiling,
                                          double elapsed) {
                if (ceiling <= 0.0)
                    return;
                // Clamp: negative would read as "no deadline".
                const double left =
                    ceiling > elapsed ? ceiling - elapsed : 0.0;
                if (wait < 0.0 || left < wait)
                    wait = left;
            };
            consider(_config.heartbeatTimeoutSeconds,
                     secondsSince(last_frame));
            consider(_config.cellCeilingSeconds,
                     secondsSince(last_progress));
            consider(_config.jobCeilingSeconds,
                     secondsSince(job_start));

            // Re-measures the clocks, so a poll that timed out a
            // hair early (ms rounding) reports nothing and loops.
            const auto expired = [&]() -> bool {
                if (_config.jobCeilingSeconds > 0.0 &&
                    secondsSince(job_start) >=
                        _config.jobCeilingSeconds) {
                    end = MonitorEnd::JobDeadline;
                    return true;
                }
                if (_config.cellCeilingSeconds > 0.0 &&
                    secondsSince(last_progress) >=
                        _config.cellCeilingSeconds) {
                    end = MonitorEnd::CellDeadline;
                    return true;
                }
                if (_config.heartbeatTimeoutSeconds > 0.0 &&
                    secondsSince(last_frame) >=
                        _config.heartbeatTimeoutSeconds) {
                    end = MonitorEnd::HeartbeatLost;
                    return true;
                }
                return false;
            };

            if (wait >= 0.0 && wait <= 0.0001) {
                if (expired())
                    break;
                continue;
            }
            pollfd poller;
            poller.fd = lane.fd;
            poller.events = POLLIN;
            poller.revents = 0;
            const int timeout_ms =
                wait < 0.0 ? -1
                           : static_cast<int>(wait * 1000.0) + 1;
            const int ready = ::poll(&poller, 1, timeout_ms);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                end = MonitorEnd::LaneDied;
                break;
            }
            if (ready == 0) {
                if (expired())
                    break;
                continue;
            }
            auto frame = readFrame(lane.fd);
            if (!frame.ok()) {
                end = MonitorEnd::LaneDied;
                break;
            }
            last_frame = Clock::now();
            const std::string type =
                frame.value().stringOr("type", "");
            if (type == "progress") {
                last_progress = last_frame;
                cells_this_incarnation = static_cast<std::size_t>(
                    frame.value().numberOr("cells", 0));
                if (on_progress)
                    on_progress(cells_this_incarnation);
            } else if (type == "result") {
                result_frame = std::move(frame).value();
                end = MonitorEnd::Result;
                break;
            }
            // "heartbeat" and unknown types only refresh last_frame.
        }

        {
            std::lock_guard<std::mutex> guard(_mutex);
            lane.currentSlug.clear();
        }

        // ---- act on how the dispatch ended ----
        if (end == MonitorEnd::Result) {
            LaneJobOutcome outcome;
            outcome.drained =
                result_frame.contains("drained") &&
                result_frame.at("drained").asBool();
            outcome.result.exitCode = static_cast<int>(
                result_frame.numberOr("exit_code", 1));
            outcome.result.restoredCells =
                static_cast<std::size_t>(
                    result_frame.numberOr("restored_cells", 0));
            outcome.result.seconds =
                result_frame.numberOr("seconds", 0.0);
            outcome.result.error =
                result_frame.stringOr("error", "");
            if (result_frame.contains("artifact")) {
                try {
                    outcome.result.artifact =
                        std::make_shared<RunArtifact>(
                            RunArtifact::fromJson(
                                result_frame.at("artifact")));
                } catch (const std::exception &error) {
                    return fail(
                        std::string(
                            "lane returned a malformed artifact: ") +
                        error.what());
                }
            }
            return outcome;
        }

        const bool deadline_kill = end == MonitorEnd::HeartbeatLost ||
                                   end == MonitorEnd::CellDeadline ||
                                   end == MonitorEnd::JobDeadline;
        if (deadline_kill) {
            const char *why =
                end == MonitorEnd::JobDeadline ? "job deadline"
                : end == MonitorEnd::CellDeadline
                    ? "cell deadline"
                    : "heartbeat timeout";
            logLine("lane %d busted its %s on '%s'; killing",
                    static_cast<int>(lane.pid), why,
                    request.slug.c_str());
            reapLane(lane, /*kill=*/true);
            std::lock_guard<std::mutex> guard(_mutex);
            ++_stats.laneKills;
        } else {
            // The lane died on its own (or dispatch failed because
            // it was already gone); reap without killing.
            reapLane(lane, /*kill=*/false);
            std::lock_guard<std::mutex> guard(_mutex);
            ++_stats.laneCrashes;
        }

        bool draining;
        {
            std::lock_guard<std::mutex> guard(_mutex);
            draining = _draining;
        }
        if (draining) {
            // Shutdown is in progress: the job is persisted for
            // resume; spinning up replacement lanes now would fight
            // the drain.
            return drained_outcome();
        }
        if (end == MonitorEnd::JobDeadline) {
            return fail("job deadline exceeded (" +
                        std::to_string(_config.jobCeilingSeconds) +
                        " s); not retrying");
        }

        // Crash/kill containment: retry on a fresh lane, bounded by
        // deaths since the job last made journal progress. A cell
        // resolving in this incarnation proves the journal moved, so
        // the replacement resumes FURTHER along - that is progress
        // even if the lane later died.
        if (cells_this_incarnation > 0)
            deaths_without_progress = 1;
        else
            ++deaths_without_progress;
        if (deaths_without_progress >
            _config.maxRetriesWithoutProgress) {
            return fail(
                "job '" + request.slug + "' lost " +
                std::to_string(deaths_without_progress) +
                " lanes without checkpoint progress; giving up");
        }
        logLine("retrying '%s' on a fresh lane "
                "(death %u without progress, backoff %.2f s)",
                request.slug.c_str(), deaths_without_progress,
                _config.retryBackoffSeconds);
        if (_config.retryBackoffSeconds > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(
                    _config.retryBackoffSeconds));
        }
    }
}

void
LaneSupervisor::requestDrain()
{
    std::lock_guard<std::mutex> guard(_mutex);
    if (_draining)
        return;
    _draining = true;
    Json drain = Json::object();
    drain.set("type", "drain");
    for (auto &lane : _lanes) {
        std::lock_guard<std::mutex> write_guard(lane->writeMutex);
        if (lane->fd >= 0)
            (void)writeFrame(lane->fd, drain);
    }
}

void
LaneSupervisor::shutdown()
{
    // Closing the socket is the exit request (EOF); lanes finish the
    // current cell and _exit. Stragglers get SIGKILL after a grace
    // period - by shutdown time every job result has been consumed,
    // so nothing of value can be lost.
    std::vector<pid_t> pids;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        for (auto &lane : _lanes) {
            std::lock_guard<std::mutex> write_guard(
                lane->writeMutex);
            if (lane->fd >= 0) {
                ::close(lane->fd);
                lane->fd = -1;
            }
            if (lane->pid >= 0) {
                pids.push_back(lane->pid);
                lane->pid = -1;
            }
        }
    }
    if (pids.empty())
        return;
    const auto grace_end =
        Clock::now() + std::chrono::milliseconds(2000);
    std::vector<pid_t> alive = pids;
    while (!alive.empty() && Clock::now() < grace_end) {
        std::vector<pid_t> still;
        for (const pid_t pid : alive) {
            int status = 0;
            const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
            if (reaped == 0)
                still.push_back(pid);
        }
        alive.swap(still);
        if (!alive.empty()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }
    for (const pid_t pid : alive) {
        logLine("lane %d ignored shutdown; killing",
                static_cast<int>(pid));
        ::kill(pid, SIGKILL);
        int status = 0;
        pid_t reaped;
        do {
            reaped = ::waitpid(pid, &status, 0);
        } while (reaped < 0 && errno == EINTR);
    }
    logLine("lane supervisor down");
}

LaneStats
LaneSupervisor::stats() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stats;
}

std::vector<LaneView>
LaneSupervisor::laneViews() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    std::vector<LaneView> views;
    views.reserve(_lanes.size());
    for (const auto &lane : _lanes) {
        LaneView view;
        view.pid = static_cast<int>(lane->pid);
        view.slug = lane->currentSlug;
        views.push_back(view);
    }
    return views;
}

} // namespace ibp
