/**
 * @file
 * Client side of the ibpd sweep service (docs/SERVICE.md).
 *
 * runExperimentViaDaemon() is what a bench binary calls when
 * --daemon is in effect: it sends the run request to the resident
 * daemon, follows the streamed progress, and renders the returned
 * artifact exactly as the in-process path would have (tables to
 * stdout, CSVs to --csv, the JSON artifact to --json). Because the
 * daemon refuses configuration mismatches and runs the identical
 * engine, the rendered artifact is bit-identical to an in-process
 * run - the only observable difference is the metrics.serve block.
 *
 * Degradation ladder, in order:
 *  - admission rejection ("queue full"): sleep the server's
 *    retry-after hint and resubmit, up to maxRejects times;
 *  - transient transport trouble (torn frame, daemon draining,
 *    injected `serve.io` fault): back off and retry the whole
 *    conversation, up to maxAttempts times;
 *  - no daemon, incompatible configuration, server-side error, or
 *    retries exhausted: FALL BACK to runExperimentInProcess(), so
 *    `--daemon` can be left on unconditionally - a missing daemon
 *    costs one connect() and changes nothing.
 */

#ifndef IBP_SERVE_CLIENT_HH
#define IBP_SERVE_CLIENT_HH

#include <string>

#include "sim/experiment.hh"

namespace ibp {

/** Knobs of the daemon client. */
struct ClientOptions
{
    /** Socket override ("" resolves via daemonSocketPath()). */
    std::string socketPath;
    /** Queue priority of the submitted request. */
    int priority = 0;
    /** Whole-conversation attempts before falling back. */
    unsigned maxAttempts = 3;
    /** Base backoff between conversation attempts, in seconds
     *  (grows linearly with the attempt number). */
    double backoffSeconds = 0.05;
    /** Resubmissions after admission rejections before falling
     *  back (each sleeps the server's retry-after hint). */
    unsigned maxRejects = 64;
    /** Receive deadline per reply frame, in seconds: a daemon that
     *  goes silent for this long (hung, wedged, SIGSTOPped) is
     *  treated as transient transport trouble instead of blocking
     *  the client forever. Progress frames reset the clock, so long
     *  sweeps are fine as long as cells keep resolving. Negative =
     *  resolve from $IBP_DAEMON_TIMEOUT, else 300; 0 = no deadline
     *  (wait forever). The benches expose this as --daemon-timeout. */
    double receiveTimeoutSeconds = -1.0;
};

/** How a runExperimentViaDaemon() call was actually satisfied. */
struct ServedOutcome
{
    /** True when the daemon produced the result. */
    bool served = false;
    /** Why the daemon path was abandoned ("" when served). */
    std::string fallbackReason;
    /** Conversation attempts consumed (0 = first try worked). */
    unsigned attempts = 0;
    /** Admission rejections ridden out before acceptance. */
    unsigned rejects = 0;
};

/**
 * Run @p def through the daemon, falling back to
 * runExperimentInProcess(@p def, @p options) when the daemon is
 * absent, incompatible, or persistently unreachable. The
 * ExperimentOptions govern local rendering (echo/csvDir/jsonDir) in
 * both modes; abort/onCellFinished/checkpointPath only apply to the
 * in-process fallback (the daemon manages its own journals).
 */
ExperimentRunResult
runExperimentViaDaemon(const ExperimentDef &def,
                       const ExperimentOptions &options,
                       const ClientOptions &client,
                       ServedOutcome *outcome = nullptr);

} // namespace ibp

#endif // IBP_SERVE_CLIENT_HH
