/**
 * @file
 * Lane supervisor of the ibpd sweep daemon (docs/SERVICE.md,
 * docs/ROBUSTNESS.md).
 *
 * The supervisor owns a fixed pool of worker lane processes
 * (serve/worker.hh) and gives the server three guarantees the
 * in-process runner cannot:
 *
 *  - CRASH CONTAINMENT. A lane that dies - SIGSEGV, injected
 *    std::abort(), external SIGKILL - takes only its own job down.
 *    The supervisor reaps it, forks a replacement, and re-dispatches
 *    the job, which resumes from its checkpoint journal; other lanes
 *    never notice. Retries are bounded: a job whose lane keeps dying
 *    WITHOUT journal progress is failed cleanly after
 *    maxRetriesWithoutProgress attempts (the client sees a normal
 *    retryable error frame, and poisoned cells are skipped by the
 *    journal's start records - robust/checkpoint.hh).
 *
 *  - HARD DEADLINES. Cooperative cancellation cannot interrupt a
 *    cell stuck in an infinite loop. The supervisor enforces
 *    wall-clock ceilings from OUTSIDE with SIGKILL: no progress
 *    frame for cellCeilingSeconds, or a whole job running past
 *    jobCeilingSeconds, kills the lane. A heartbeat timeout
 *    (process wedged enough that not even the heartbeat thread
 *    runs, or the socket died) is handled the same way.
 *
 *  - ISOLATED DRAIN. requestDrain() tells every lane to stop at the
 *    next cell boundary; lanes report their partial runs with the
 *    drained flag and the daemon persists the jobs for resume, with
 *    no retry machinery kicking in during shutdown.
 *
 * Threading: each lane is driven by exactly one server runner
 * thread through runJob(laneIndex, ...) - the monitor loop runs on
 * the caller. requestDrain()/shutdown() come from other threads and
 * only WRITE frames (per-lane write mutex) or kill pids; the
 * monitor remains each socket's only reader.
 */

#ifndef IBP_SERVE_SUPERVISOR_HH
#define IBP_SERVE_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "robust/error.hh"
#include "serve/protocol.hh"
#include "sim/experiment.hh"

namespace ibp {

/** Knobs of the lane pool; ibpd maps flags onto these. */
struct SupervisorConfig
{
    /** Lane processes (and concurrent jobs). */
    unsigned lanes = 2;
    /** SIGKILL a lane when no cell resolves for this long; 0
     *  disables. Spans trace acquisition before the first cell. */
    double cellCeilingSeconds = 0.0;
    /** SIGKILL a lane when one job runs past this; the job is NOT
     *  retried (it would only bust the ceiling again). 0 disables. */
    double jobCeilingSeconds = 0.0;
    /** SIGKILL a lane silent for this long (no frame of any kind;
     *  lanes heartbeat every ~250 ms while running a job). */
    double heartbeatTimeoutSeconds = 10.0;
    /** Lane deaths tolerated per job without journal progress before
     *  the job is failed cleanly. Deaths WITH progress reset the
     *  count: a job crossing a poisoned cell may legitimately lose a
     *  lane per cell until the journal's start records fence the
     *  cell off. */
    unsigned maxRetriesWithoutProgress = 3;
    /** Pause before re-dispatching a crashed job to a fresh lane. */
    double retryBackoffSeconds = 0.1;
    /** Log lane lifecycle to stdout ([ibpd] lines). */
    bool echo = true;
};

/** Lane-pool counters, merged into the server's stats frame. */
struct LaneStats
{
    std::uint64_t lanesForked = 0;
    /** Lanes that died on their own (signal or exit) mid-job. */
    std::uint64_t laneCrashes = 0;
    /** Lanes the supervisor killed for busting a deadline. */
    std::uint64_t laneKills = 0;
    /** Job dispatches beyond each job's first (retries). */
    std::uint64_t jobsRetried = 0;
};

/**
 * Shard assignment riding on one dispatched job. Defaults mean "run
 * the whole job". With count > 1 the lane simulates only its
 * benchmark partition of the grid into the shared result store
 * (sim/suite_runner.hh); cellClaims arms the store's cell-claim
 * layer so concurrent shards and overlapping jobs each compute a
 * cell exactly once.
 */
struct LaneShard
{
    unsigned index = 0;
    unsigned count = 1;
    /** Steal unclaimed foreign cells after finishing the
     *  partition. */
    bool steal = false;
    /** Claim store cells before simulating them. */
    bool cellClaims = false;
};

/** What one supervised job run came to. */
struct LaneJobOutcome
{
    ExperimentRunResult result;
    /** Job stopped at a cell boundary for drain; persist, don't
     *  retire. */
    bool drained = false;
};

/** A lane's identity for tests and diagnostics. */
struct LaneView
{
    int pid = -1;
    /** Slug the lane is currently running; empty when idle. */
    std::string slug;
};

class LaneSupervisor
{
  public:
    explicit LaneSupervisor(SupervisorConfig config);
    ~LaneSupervisor();

    LaneSupervisor(const LaneSupervisor &) = delete;
    LaneSupervisor &operator=(const LaneSupervisor &) = delete;

    /**
     * Fork the initial lanes. Call BEFORE the server starts its own
     * threads where possible - fork from a quiet process is the
     * cheap, safe case; replacement forks later pay the full
     * multi-threaded-parent discipline (serve/worker.hh).
     */
    Result<void> start();

    /**
     * Run @p request on lane @p laneIndex, blocking until the job
     * completes, drains, or is failed after bounded retries. The
     * monitor loop streams per-cell progress through @p onProgress
     * (cumulative count, from this thread) and enforces every
     * deadline in SupervisorConfig. Must be called by the single
     * runner thread owning @p laneIndex.
     */
    LaneJobOutcome
    runJob(unsigned laneIndex, const RunRequest &request,
           const std::string &checkpointPath,
           const std::function<void(std::size_t)> &onProgress,
           const LaneShard &shard = {});

    /**
     * Ask every lane to stop at its next cell boundary. Idempotent;
     * jobs in flight return through runJob with drained set.
     */
    void requestDrain();

    /**
     * Close every lane socket (EOF = exit), give lanes a short grace
     * to finish, then SIGKILL stragglers and reap everything.
     * runJob must no longer be in flight.
     */
    void shutdown();

    LaneStats stats() const;

    unsigned lanes() const { return _config.lanes; }

    /** Snapshot of pid + current slug per lane (chaos tests kill
     *  specific busy lanes through this). */
    std::vector<LaneView> laneViews() const;

  private:
    struct Lane
    {
        pid_t pid = -1;
        int fd = -1;
        /** Serialises job/drain frames from runner vs drain threads. */
        std::mutex writeMutex;
        std::string currentSlug;
    };

    /** Kill (if alive) and reap a lane, closing its socket. */
    void reapLane(Lane &lane, bool kill);
    /** Fork a replacement into @p lane. */
    Result<void> respawnLane(Lane &lane);
    void logLine(const char *format, ...) const;

    SupervisorConfig _config;
    /** unique_ptr: Lane holds a mutex and must not move. */
    std::vector<std::unique_ptr<Lane>> _lanes;
    mutable std::mutex _mutex;
    LaneStats _stats;
    bool _draining = false;
    bool _started = false;
};

} // namespace ibp

#endif // IBP_SERVE_SUPERVISOR_HH
