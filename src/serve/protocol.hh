/**
 * @file
 * Wire protocol of the ibpd sweep service (docs/SERVICE.md).
 *
 * Transport: a unix-domain stream socket carrying length-prefixed
 * JSON frames - a 4-byte little-endian payload length followed by
 * that many bytes of compact JSON. Frames above kMaxFrameBytes are
 * rejected before allocation, so a corrupt peer cannot make either
 * side swallow a bogus multi-gigabyte length.
 *
 * Conversation: the client sends exactly ONE request frame ("run",
 * "ping", "stats" or "shutdown") and then only reads. For a "run"
 * the server streams event frames - "accepted" or "rejected" or
 * "incompatible" first, then zero or more "progress" events, then a
 * terminal "artifact", "drained" or "error" frame - and closes.
 * Keeping the client write-once/read-rest gives each side a single
 * writer per socket and makes torn-frame handling trivial.
 *
 * Every frame I/O on the CLIENT side passes the `serve.io` fault
 * injection site (IBP_FAULT_INJECT=serve.io:PROB), which is how the
 * retry-then-fallback path is tested without a misbehaving server.
 */

#ifndef IBP_SERVE_PROTOCOL_HH
#define IBP_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>

#include "robust/error.hh"
#include "util/json.hh"

namespace ibp {

/** Default daemon socket; overridable via IBP_DAEMON and the
 *  --daemon=SOCKET / ibpd --socket=PATH flags. */
constexpr const char *kDefaultDaemonSocket = "out/ibpd.sock";

/** Frame payload ceiling (a full-suite artifact is ~1 MiB). */
constexpr std::size_t kMaxFrameBytes = 64u << 20;

/**
 * Resolve the effective socket path: @p override when non-empty,
 * else the IBP_DAEMON environment variable, else the default.
 */
std::string daemonSocketPath(const std::string &override_ = "");

/**
 * Write @p message as one frame to @p fd. Partial writes and EINTR
 * are retried; a closed peer or I/O error is a transient RunError
 * (the client's retry/fallback machinery handles it).
 */
Result<void> writeFrame(int fd, const Json &message);

/**
 * Read one frame from @p fd. EOF before a complete frame, an
 * oversized length prefix, or malformed JSON is a transient
 * RunError.
 */
Result<Json> readFrame(int fd);

/**
 * readFrame with a receive deadline: a frame that does not complete
 * within @p timeoutSeconds of the call is a transient RunError whose
 * message contains "timed out", so the client's retry/fallback
 * ladder treats a hung daemon like any other transport failure.
 * timeoutSeconds <= 0 blocks forever (plain readFrame).
 */
Result<Json> readFrame(int fd, double timeoutSeconds);

/** Connect to the daemon socket. ENOENT/ECONNREFUSED (no daemon) is
 *  a transient RunError whose message starts with "no daemon". */
Result<int> connectDaemon(const std::string &socketPath);

/**
 * Bind and listen on @p socketPath (parent directories created, a
 * stale socket file from a dead daemon replaced). Permanent RunError
 * when the path cannot be bound.
 */
Result<int> listenDaemon(const std::string &socketPath);

/**
 * One "run" request. The compatibility fields (eventScale, threads,
 * tableImpl, gitSha) describe the CLIENT's effective configuration;
 * the server refuses requests whose configuration differs from its
 * own (frame "incompatible"), because a served artifact must be
 * bit-identical to the one the client would produce in-process.
 */
struct RunRequest
{
    std::string slug;
    bool quick = false;
    /** Higher runs first among queued jobs (FIFO within a level). */
    int priority = 0;
    /** Admission rejections this request already rode out; folded
     *  into the artifact's metrics.serve.admission_rejects. */
    unsigned rejects = 0;
    double eventScale = 1.0;
    unsigned threads = 0;
    std::string tableImpl;
    std::string gitSha;
    /** The client's IBP_FAULT_INJECT spec ("" = no injection). An
     *  armed injector changes which cells fail, so it must match
     *  like any other artifact-shaping knob. */
    std::string faultSpec;

    /**
     * Coalescing signature: requests with equal signatures share one
     * execution. Folds in EVERY artifact-affecting knob (slug, quick,
     * event scale, threads, table implementation, fault-injection
     * spec); priority/rejects stay out on purpose, and the git sha
     * is left to the compatibility check (incompatibilityWith),
     * which knows how to treat unknown shas.
     */
    std::string signature() const;

    /**
     * Why a server whose own configuration is @p server must refuse
     * this request, or "" when compatible. A daemon-served artifact
     * must be bit-identical to the client's in-process run, so every
     * knob that shapes results has to match; git shas are only
     * compared when both sides know theirs (release builds may not).
     */
    std::string incompatibilityWith(const RunRequest &server) const;

    Json toJson() const;
    static Result<RunRequest> fromJson(const Json &json);
};

/** The client's effective configuration for @p slug/@p quick. */
RunRequest makeRunRequest(const std::string &slug, bool quick);

} // namespace ibp

#endif // IBP_SERVE_PROTOCOL_HH
