#include "serve/worker.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include <dirent.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hh"
#include "sim/executor.hh"
#include "sim/experiment.hh"

namespace ibp {

namespace {

/** Everything a lane's three threads share. Frame writes from the
 *  main thread (result), sim worker threads (progress) and the
 *  heartbeat thread interleave on one socket, so they serialise on
 *  writeMutex; the reader thread is the socket's only reader. */
struct LaneState
{
    int fd = -1;
    std::mutex writeMutex;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Json> jobs;
    bool quit = false;

    /** Sticky daemon-wide drain: once set, the current job stops at
     *  the next cell boundary and no further job will arrive. */
    std::atomic<bool> abort{false};
};

void
sendLaneFrame(LaneState &state, const Json &frame)
{
    std::lock_guard<std::mutex> lock(state.writeMutex);
    // A failed write means the supervisor is gone; PDEATHSIG will
    // reap this process, so the error itself needs no handling.
    (void)writeFrame(state.fd, frame);
}

/** Close every inherited descriptor except stdio and @p keep_fd.
 *  The child of a daemon inherits the listen socket, every client
 *  connection, the drain pipe and its sibling lanes' sockets; any
 *  of them held open here would defeat EOF-based shutdown. */
void
closeInheritedFds(int keep_fd)
{
    DIR *dir = ::opendir("/proc/self/fd");
    if (dir == nullptr) {
        // Conservative fallback: sweep a fixed range.
        for (int fd = 3; fd < 1024; ++fd) {
            if (fd != keep_fd)
                ::close(fd);
        }
        return;
    }
    const int dir_fd = ::dirfd(dir);
    while (dirent *entry = ::readdir(dir)) {
        const int fd = std::atoi(entry->d_name);
        if (fd <= 2 || fd == keep_fd || fd == dir_fd)
            continue;
        ::close(fd);
    }
    ::closedir(dir);
}

/** Sole reader of the lane socket: queues jobs for the main thread,
 *  flips the drain flag, and turns "exit" or EOF into quit. */
void
readerLoop(LaneState &state)
{
    for (;;) {
        auto frame = readFrame(state.fd);
        std::string type;
        if (frame.ok())
            type = frame.value().stringOr("type", "");
        if (!frame.ok() || type == "exit") {
            std::lock_guard<std::mutex> lock(state.mutex);
            state.quit = true;
            // EOF mid-job: wind the job down at the next cell
            // boundary instead of finishing a sweep nobody will
            // read. The supervisor escalates to SIGKILL anyway if
            // this takes too long.
            state.abort.store(true, std::memory_order_release);
            state.cv.notify_all();
            return;
        }
        if (type == "job") {
            std::lock_guard<std::mutex> lock(state.mutex);
            state.jobs.push_back(std::move(frame).value());
            state.cv.notify_all();
        } else if (type == "drain") {
            state.abort.store(true, std::memory_order_release);
        }
        // Unknown frame types are ignored: a newer supervisor may
        // speak a slightly richer dialect.
    }
}

void
runLaneJob(LaneState &state, const Json &frame)
{
    Json reply = Json::object();
    reply.set("type", "result");

    const ExperimentDef *def = nullptr;
    RunRequest request;
    std::string error;
    if (frame.contains("request")) {
        auto parsed = RunRequest::fromJson(frame.at("request"));
        if (parsed.ok()) {
            request = std::move(parsed).value();
            def = findExperiment(request.slug);
            if (def == nullptr)
                error = "lane: unknown experiment '" + request.slug +
                        "'";
        } else {
            error = "lane: bad job frame: " + parsed.error().message;
        }
    } else {
        error = "lane: job frame without a request";
    }
    if (def == nullptr) {
        reply.set("exit_code", 1);
        reply.set("error", error);
        reply.set("drained",
                  Json(state.abort.load(std::memory_order_acquire)));
        sendLaneFrame(state, reply);
        return;
    }

    ExperimentOptions options;
    options.quick = request.quick;
    options.checkpointPath = frame.stringOr("checkpoint", "");
    options.echo = false;
    options.abort = &state.abort;
    // Shard assignment from the supervisor frame (absent for a
    // whole-job dispatch; see serve/supervisor.hh LaneShard).
    options.shardCount = static_cast<unsigned>(
        frame.numberOr("shard_count", 1));
    options.shardIndex = static_cast<unsigned>(
        frame.numberOr("shard_index", 0));
    options.shardSteal = frame.contains("shard_steal") &&
                         frame.at("shard_steal").asBool();
    options.cellClaims = frame.contains("cell_claims") &&
                         frame.at("cell_claims").asBool();
    std::atomic<std::size_t> cells{0};
    options.onCellFinished = [&state, &cells] {
        const std::size_t done =
            cells.fetch_add(1, std::memory_order_relaxed) + 1;
        Json progress = Json::object();
        progress.set("type", "progress");
        progress.set("cells", static_cast<double>(done));
        sendLaneFrame(state, progress);
    };

    // Heartbeats run only while a job does: an idle lane writing
    // unread frames would eventually fill the socket buffer, since
    // the supervisor only reads during its per-job monitor loop.
    std::atomic<bool> done{false};
    std::thread heartbeat([&state, &done] {
        auto last = std::chrono::steady_clock::now();
        while (!done.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
            const auto now = std::chrono::steady_clock::now();
            if (now - last < std::chrono::milliseconds(250))
                continue;
            last = now;
            Json beat = Json::object();
            beat.set("type", "heartbeat");
            sendLaneFrame(state, beat);
        }
    });

    const ExperimentRunResult result =
        runExperimentInProcess(*def, options);

    done.store(true, std::memory_order_release);
    heartbeat.join();

    reply.set("exit_code", result.exitCode);
    reply.set("restored_cells",
              static_cast<double>(result.restoredCells));
    reply.set("seconds", result.seconds);
    reply.set("drained",
              Json(state.abort.load(std::memory_order_acquire)));
    if (!result.error.empty())
        reply.set("error", result.error);
    if (result.artifact)
        reply.set("artifact", result.artifact->toJson());
    sendLaneFrame(state, reply);
}

} // namespace

void
runWorkerLane(int fd)
{
    LaneState state;
    state.fd = fd;
    std::thread reader([&state] { readerLoop(state); });
    for (;;) {
        Json job;
        {
            std::unique_lock<std::mutex> lock(state.mutex);
            state.cv.wait(lock, [&state] {
                return state.quit || !state.jobs.empty();
            });
            if (state.jobs.empty())
                break; // quit, nothing pending
            job = std::move(state.jobs.front());
            state.jobs.pop_front();
        }
        runLaneJob(state, job);
    }
    reader.join();
    // _exit, not exit: static destructors and atexit handlers of the
    // parent image must not run in the child.
    ::_exit(0);
}

Result<LaneProcess>
spawnWorkerLane()
{
    int fds[2];
    // A socketpair, not a pipe: the frame protocol reads and writes
    // with recv/send, which demand a socket.
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        return RunError::permanent(
            std::string("socketpair() failed: ") +
            std::strerror(errno));
    }
    // Flush user-space stdio buffers: a fork would duplicate them
    // and the child's exit path could emit the parent's pending
    // output a second time.
    std::fflush(nullptr);
    const pid_t parent = ::getpid();
    const pid_t pid = ::fork();
    if (pid < 0) {
        const RunError error = RunError::transient(
            std::string("fork() failed: ") + std::strerror(errno));
        ::close(fds[0]);
        ::close(fds[1]);
        return error;
    }
    if (pid == 0) {
        // Child: become a lane. Die with the daemon, whatever kills
        // it; close the window where the parent died before prctl.
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() != parent)
            ::_exit(1);
        // The daemon's signal handlers write to a pipe this child
        // just closes; default dispositions are the predictable
        // choice for a lane (a stray SIGTERM kills it, and the
        // supervisor handles lane death as a matter of course).
        std::signal(SIGTERM, SIG_DFL);
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGHUP, SIG_DFL);
        ::close(fds[0]);
        closeInheritedFds(fds[1]);
        // The parent is multi-threaded; only this thread crossed the
        // fork. Re-initialise every lock another parent thread may
        // have held at the fork instant.
        Executor::global().resetAfterFork();
        resetExperimentRegistryAfterFork();
        runWorkerLane(fds[1]);
    }
    ::close(fds[1]);
    LaneProcess lane;
    lane.pid = pid;
    lane.fd = fds[0];
    return lane;
}

} // namespace ibp
