#include "serve/server.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "robust/atomic_file.hh"

namespace ibp {

namespace {

Json
errorFrame(const std::string &message)
{
    Json json = Json::object();
    json.set("type", "error");
    json.set("message", message);
    return json;
}

Json
drainedFrame()
{
    Json json = Json::object();
    json.set("type", "drained");
    return json;
}

} // namespace

SweepServer::SweepServer(ServerConfig config)
    : _config(std::move(config)),
      _socketPath(daemonSocketPath(_config.socketPath))
{
}

SweepServer::~SweepServer()
{
    if (_started.load() && !_stopped.load()) {
        requestDrain();
        waitStopped();
    }
}

Result<void>
SweepServer::start()
{
    std::error_code ec;
    std::filesystem::create_directories(_config.stateDir, ec);
    if (ec) {
        return RunError::permanent("cannot create state dir '" +
                                   _config.stateDir +
                                   "': " + ec.message());
    }
    // Fork the lane pool FIRST: before the listen socket, the drain
    // pipe and our own threads exist, so the initial lanes inherit
    // as little as possible and fork from the quietest process this
    // server will ever be.
    if (_config.lanes > 0) {
        SupervisorConfig lanes;
        lanes.lanes = _config.lanes;
        lanes.cellCeilingSeconds = _config.cellCeilingSeconds;
        lanes.jobCeilingSeconds = _config.jobCeilingSeconds;
        lanes.heartbeatTimeoutSeconds =
            _config.heartbeatTimeoutSeconds;
        lanes.maxRetriesWithoutProgress = _config.laneMaxRetries;
        lanes.retryBackoffSeconds = _config.laneRetryBackoffSeconds;
        lanes.echo = _config.echo;
        _supervisor = std::make_unique<LaneSupervisor>(lanes);
        const auto started = _supervisor->start();
        if (!started.ok()) {
            _supervisor.reset();
            return started;
        }
    }
    auto listening = listenDaemon(_socketPath);
    if (!listening.ok()) {
        if (_supervisor)
            _supervisor->shutdown();
        return listening.error();
    }
    _listenFd = listening.value();
    if (::pipe(_drainPipe) != 0) {
        const RunError error = RunError::permanent(
            std::string("pipe() failed: ") + std::strerror(errno));
        ::close(_listenFd);
        _listenFd = -1;
        if (_supervisor)
            _supervisor->shutdown();
        return error;
    }
    restorePending();
    _started.store(true);
    const unsigned runners =
        _config.lanes > 0 ? _config.lanes : 1u;
    _runningJobs.assign(runners, nullptr);
    _acceptThread = std::thread([this] { acceptLoop(); });
    for (unsigned lane = 0; lane < runners; ++lane) {
        _runnerThreads.emplace_back(
            [this, lane] { runnerLoop(lane); });
    }
    logLine("listening on %s (%zu experiments registered, %u %s)",
            _socketPath.c_str(), experimentSlugs().size(), runners,
            _config.lanes > 0 ? "lanes" : "in-process runner");
    return {};
}

void
SweepServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = _listenFd;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = _drainPipe[0];
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // drain requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(_connMutex);
            _connections.push_back(conn);
        }
        conn->thread =
            std::thread([this, conn] { serveConnection(conn); });
        reapConnections();
    }
}

void
SweepServer::reapConnections()
{
    std::lock_guard<std::mutex> lock(_connMutex);
    for (auto it = _connections.begin(); it != _connections.end();) {
        // finished is set only after the serving thread's last
        // statement touching shared state, so the join is immediate.
        if ((*it)->finished.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            it = _connections.erase(it);
        } else {
            ++it;
        }
    }
}

void
SweepServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    const int fd = conn->fd;
    auto frame = readFrame(fd);
    if (frame.ok()) {
        const Json &message = frame.value();
        const std::string type = message.stringOr("type", "");
        if (type == "ping") {
            Json reply = Json::object();
            reply.set("type", "pong");
            reply.set("pid", static_cast<double>(::getpid()));
            reply.set("experiments", experimentSlugs().size());
            writeFrame(fd, reply);
        } else if (type == "stats") {
            handleStats(fd);
        } else if (type == "shutdown") {
            Json reply = Json::object();
            reply.set("type", "shutting_down");
            writeFrame(fd, reply);
            requestDrain();
        } else if (type == "run") {
            auto request = RunRequest::fromJson(message);
            if (!request.ok())
                writeFrame(fd,
                           errorFrame(request.error().describe()));
            else
                handleRun(fd, request.value());
        } else {
            writeFrame(fd, errorFrame("unknown request type '" +
                                      type + "'"));
        }
    }
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    conn->finished.store(true, std::memory_order_release);
}

void
SweepServer::handleStats(int fd)
{
    const ServerStats counters = stats();
    Json reply = Json::object();
    reply.set("type", "stats");
    reply.set("jobs_accepted", counters.jobsAccepted);
    reply.set("requests_coalesced", counters.requestsCoalesced);
    reply.set("requests_rejected", counters.requestsRejected);
    reply.set("requests_incompatible",
              counters.requestsIncompatible);
    reply.set("jobs_completed", counters.jobsCompleted);
    reply.set("jobs_drained", counters.jobsDrained);
    reply.set("warm_hits", counters.warmHits);
    reply.set("jobs_restored", counters.jobsRestored);
    reply.set("lanes", _config.lanes);
    reply.set("lanes_forked", counters.lanesForked);
    reply.set("lane_crashes", counters.laneCrashes);
    reply.set("lane_kills", counters.laneKills);
    reply.set("jobs_retried", counters.jobsRetried);
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        reply.set("queue_depth", _queue.size());
        // "running": first busy runner's slug (compat with the
        // single-runner era); "running_jobs" lists all of them.
        Json running_jobs = Json::array();
        Json first;
        for (const auto &job : _runningJobs) {
            if (!job)
                continue;
            if (first.isNull())
                first = Json(job->request.slug);
            running_jobs.push(Json(job->request.slug));
        }
        reply.set("running", first);
        reply.set("running_jobs", std::move(running_jobs));
    }
    writeFrame(fd, reply);
}

void
SweepServer::handleRun(int fd, const RunRequest &request)
{
    const RunRequest mine = makeRunRequest(request.slug,
                                           request.quick);
    const std::string reason = request.incompatibilityWith(mine);
    if (!reason.empty()) {
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_stats.requestsIncompatible;
        }
        logLine("refusing %s: %s", request.slug.c_str(),
                reason.c_str());
        Json reply = Json::object();
        reply.set("type", "incompatible");
        reply.set("reason", reason);
        writeFrame(fd, reply);
        return;
    }
    if (findExperiment(request.slug) == nullptr) {
        writeFrame(fd, errorFrame("unknown experiment '" +
                                  request.slug + "'"));
        return;
    }

    std::shared_ptr<Job> job;
    bool coalesced = false;
    std::size_t queue_depth = 0;
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        if (_draining) {
            writeFrame(fd, drainedFrame());
            return;
        }
        // Coalesce onto an identical queued or running job. The
        // state check happens under the job's own mutex: a job that
        // just finished (Done under job->mutex, _running not yet
        // cleared) must not gain a rider that missed its artifact's
        // serve record.
        const std::string signature = request.signature();
        auto try_attach = [&](const std::shared_ptr<Job> &candidate) {
            if (!candidate ||
                candidate->request.signature() != signature)
                return false;
            std::lock_guard<std::mutex> job_lock(candidate->mutex);
            if (candidate->state != JobState::Queued &&
                candidate->state != JobState::Running)
                return false;
            ++candidate->subscribers;
            ++candidate->coalesced;
            candidate->clientRejects += request.rejects;
            job = candidate;
            return true;
        };
        for (const auto &running : _runningJobs) {
            if (try_attach(running)) {
                coalesced = true;
                break;
            }
        }
        if (!coalesced) {
            for (const auto &queued : _queue) {
                if (try_attach(queued)) {
                    coalesced = true;
                    break;
                }
            }
        }
        if (!coalesced) {
            if (_queue.size() >= _config.maxQueueDepth) {
                {
                    std::lock_guard<std::mutex> stats_lock(
                        _statsMutex);
                    ++_stats.requestsRejected;
                }
                Json reply = Json::object();
                reply.set("type", "rejected");
                reply.set("retry_after_ms",
                          _config.retryAfterSeconds * 1000.0);
                writeFrame(fd, reply);
                return;
            }
            job = std::make_shared<Job>();
            job->id = _nextJobId++;
            job->request = request;
            job->subscribers = 1;
            job->clientRejects = request.rejects;
            job->enqueuedAt = std::chrono::steady_clock::now();
            _queue.push_back(job);
            _queueCv.notify_one();
        }
        queue_depth = _queue.size();
    }
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        if (coalesced)
            ++_stats.requestsCoalesced;
        else
            ++_stats.jobsAccepted;
    }
    logLine("%s job %llu: %s%s", coalesced ? "joined" : "queued",
            static_cast<unsigned long long>(job->id),
            request.slug.c_str(), request.quick ? " (quick)" : "");

    Json accepted = Json::object();
    accepted.set("type", "accepted");
    accepted.set("job", job->id);
    accepted.set("coalesced", Json(coalesced));
    accepted.set("queue_depth", queue_depth);
    if (!writeFrame(fd, accepted).ok())
        return;

    // Stream progress until the job reaches a terminal state. The
    // socket write happens OUTSIDE job->mutex so a slow client can
    // never stall onCellFinished (which runs on worker threads).
    std::size_t last_cells = 0;
    std::unique_lock<std::mutex> lock(job->mutex);
    for (;;) {
        job->cv.wait(lock, [&] {
            return job->state == JobState::Done ||
                   job->state == JobState::Drained ||
                   job->cellsDone != last_cells;
        });
        if (job->state == JobState::Done ||
            job->state == JobState::Drained)
            break;
        last_cells = job->cellsDone;
        lock.unlock();
        Json progress = Json::object();
        progress.set("type", "progress");
        progress.set("job", job->id);
        progress.set("cells", last_cells);
        if (!writeFrame(fd, progress).ok())
            return; // client went away; the job runs on
        lock.lock();
    }
    const JobState state = job->state;
    const ExperimentRunResult result = job->result;
    lock.unlock();

    if (state == JobState::Drained) {
        writeFrame(fd, drainedFrame());
        return;
    }
    if (result.exitCode == 1 || !result.artifact) {
        writeFrame(fd, errorFrame(result.error.empty()
                                      ? "experiment failed"
                                      : result.error));
        return;
    }
    Json reply = Json::object();
    reply.set("type", "artifact");
    reply.set("exit_code", result.exitCode);
    reply.set("restored_cells", result.restoredCells);
    reply.set("seconds", result.seconds);
    reply.set("artifact", result.artifact->toJson());
    writeFrame(fd, reply);
}

void
SweepServer::runnerLoop(unsigned lane_index)
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(_queueMutex);
            _queueCv.wait(lock, [&] {
                return _draining || !_queue.empty();
            });
            if (_draining)
                break;
            auto best = _queue.begin();
            for (auto it = std::next(best); it != _queue.end();
                 ++it) {
                if ((*it)->request.priority >
                        (*best)->request.priority ||
                    ((*it)->request.priority ==
                         (*best)->request.priority &&
                     (*it)->id < (*best)->id))
                    best = it;
            }
            job = *best;
            _queue.erase(best);
            _runningJobs[lane_index] = job;
        }
        runJob(job, lane_index);
        {
            std::lock_guard<std::mutex> lock(_queueMutex);
            _runningJobs[lane_index].reset();
        }
    }
}

void
SweepServer::runJob(const std::shared_ptr<Job> &job,
                    unsigned lane_index)
{
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        job->state = JobState::Running;
        job->queueSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - job->enqueuedAt)
                .count();
    }
    logLine("running job %llu: %s%s",
            static_cast<unsigned long long>(job->id),
            job->request.slug.c_str(),
            _supervisor ? " (lane)" : "");

    ExperimentRunResult result;
    bool lane_drained = false;
    if (_supervisor) {
        // Supervised path: the lane process runs the experiment and
        // streams progress + the artifact back; the monitor loop
        // below us handles crashes, deadlines and retries. Progress
        // counts restart per lane incarnation, so only move forward.
        const LaneJobOutcome outcome = _supervisor->runJob(
            lane_index, job->request, checkpointPathFor(job->request),
            [job](std::size_t cells) {
                std::lock_guard<std::mutex> lock(job->mutex);
                if (cells > job->cellsDone) {
                    job->cellsDone = cells;
                    job->cv.notify_all();
                }
            });
        result = outcome.result;
        lane_drained = outcome.drained;
    } else {
        ExperimentOptions options;
        options.quick = job->request.quick;
        options.echo = false;
        options.checkpointPath = checkpointPathFor(job->request);
        options.abort = &_drainFlag;
        options.onCellFinished = [job] {
            std::lock_guard<std::mutex> lock(job->mutex);
            ++job->cellsDone;
            job->cv.notify_all();
        };

        const ExperimentDef *def = findExperiment(job->request.slug);
        if (def == nullptr) {
            result.exitCode = 1;
            result.error =
                "experiment '" + job->request.slug + "' vanished";
        } else {
            result = runExperimentInProcess(*def, options);
        }
    }

    bool drained = false;
    bool warm = false;
    {
        // One critical section decides the terminal state, reads the
        // final subscriber counts, and stamps the serve telemetry:
        // a late coalescing attach either lands before this (and is
        // counted) or observes a terminal state (and starts a fresh
        // job). The drain flag is read here too, so persistPending
        // (which inspects state under this mutex) and this section
        // agree on whether the job drained.
        std::lock_guard<std::mutex> lock(job->mutex);
        drained = lane_drained ||
                  _drainFlag.load(std::memory_order_acquire);
        if (!drained && result.artifact) {
            const RunMetrics &metrics = result.artifact->metrics;
            ServeMetrics serve;
            serve.requests = job->subscribers;
            serve.coalesced = job->coalesced;
            serve.admissionRejects = job->clientRejects;
            serve.queueSeconds = job->queueSeconds;
            serve.warm = metrics.hasTraceSource() &&
                         metrics.tracesGenerated() == 0 &&
                         metrics.traceCacheHits() > 0;
            warm = serve.warm;
            result.artifact->metrics.recordServe(serve);
        }
        job->result = result;
        job->state =
            drained ? JobState::Drained : JobState::Done;
        job->cv.notify_all();
    }

    if (!drained && result.exitCode == 0) {
        // A clean completion retires the job's journal; a drained or
        // partial run keeps it so a restart resumes from it.
        std::error_code ec;
        std::filesystem::remove(checkpointPathFor(job->request), ec);
    }
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        if (drained) {
            ++_stats.jobsDrained;
        } else {
            ++_stats.jobsCompleted;
            if (warm)
                ++_stats.warmHits;
        }
    }
    logLine("job %llu %s (%zu cells%s)",
            static_cast<unsigned long long>(job->id),
            drained ? "drained" : "finished", job->cellsDone,
            warm ? ", warm" : "");
}

void
SweepServer::requestDrain()
{
    if (_drainFlag.exchange(true, std::memory_order_acq_rel))
        return;
    logLine("drain requested");
    std::size_t drained_queued = 0;
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        _draining = true;
        persistPendingLocked();
        for (const auto &job : _queue) {
            std::lock_guard<std::mutex> job_lock(job->mutex);
            job->state = JobState::Drained;
            job->cv.notify_all();
            ++drained_queued;
        }
        _queue.clear();
    }
    if (drained_queued > 0) {
        std::lock_guard<std::mutex> lock(_statsMutex);
        _stats.jobsDrained += drained_queued;
    }
    // Lanes stop at their next cell boundary and report their jobs
    // drained; their runner threads then observe _draining and exit.
    if (_supervisor)
        _supervisor->requestDrain();
    _queueCv.notify_all();
    if (_drainPipe[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(_drainPipe[1], &byte, 1);
    }
    // Unblock connection threads parked in readFrame. Only the read
    // side: subscribers of the aborting run still need their
    // "drained" frame written.
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        for (const auto &conn : _connections) {
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RD);
        }
    }
}

void
SweepServer::waitStopped()
{
    if (!_started.load())
        return;
    if (_acceptThread.joinable())
        _acceptThread.join();
    for (std::thread &runner : _runnerThreads) {
        if (runner.joinable())
            runner.join();
    }
    _runnerThreads.clear();
    // Every job result has been consumed by now; the lanes are idle
    // and EOF on their sockets is their exit signal.
    if (_supervisor)
        _supervisor->shutdown();
    // Connection threads exit once the runner has pushed every job
    // to a terminal state. Copy the list out: their epilogues take
    // _connMutex to close their fd.
    for (;;) {
        std::vector<std::shared_ptr<Connection>> remaining;
        {
            std::lock_guard<std::mutex> lock(_connMutex);
            remaining.assign(_connections.begin(),
                             _connections.end());
            _connections.clear();
        }
        if (remaining.empty())
            break;
        for (const auto &conn : remaining) {
            if (conn->thread.joinable())
                conn->thread.join();
        }
    }
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
    for (int &fd : _drainPipe) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::unlink(_socketPath.c_str());
    _stopped.store(true);
    logLine("stopped");
}

ServerStats
SweepServer::stats() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        out = _stats;
    }
    if (_supervisor) {
        const LaneStats lanes = _supervisor->stats();
        out.lanesForked = lanes.lanesForked;
        out.laneCrashes = lanes.laneCrashes;
        out.laneKills = lanes.laneKills;
        out.jobsRetried = lanes.jobsRetried;
    }
    return out;
}

std::vector<LaneView>
SweepServer::laneViews() const
{
    if (!_supervisor)
        return {};
    return _supervisor->laneViews();
}

std::string
SweepServer::checkpointPathFor(const RunRequest &request) const
{
    return _config.stateDir + "/" + request.slug +
           (request.quick ? "-quick" : "") + ".ckpt";
}

void
SweepServer::persistPendingLocked()
{
    const std::string path = _config.stateDir + "/pending.json";
    Json jobs = Json::array();
    auto persist = [&](const std::shared_ptr<Job> &job) {
        if (!job)
            return;
        std::lock_guard<std::mutex> job_lock(job->mutex);
        if (job->state == JobState::Done ||
            job->state == JobState::Drained)
            return;
        jobs.push(job->request.toJson());
    };
    for (const auto &job : _runningJobs)
        persist(job);
    for (const auto &job : _queue)
        persist(job);
    if (jobs.size() == 0) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return;
    }
    const std::size_t count = jobs.size();
    Json pending = Json::object();
    pending.set("version", 1);
    pending.set("jobs", std::move(jobs));
    const auto written = writeFileAtomic(path, pending.dump(2));
    if (written.ok()) {
        logLine("persisted %zu pending request(s) to %s", count,
                path.c_str());
    } else {
        logLine("WARNING: cannot persist pending requests: %s",
                written.error().describe().c_str());
    }
}

void
SweepServer::restorePending()
{
    const std::string path = _config.stateDir + "/pending.json";
    std::ifstream in(path);
    if (!in)
        return;
    std::ostringstream text;
    text << in.rdbuf();
    in.close();

    // Validate BEFORE touching the file: a corrupt or truncated
    // pending.json (daemon died mid-write of a non-atomic editor
    // save, disk full, ...) is quarantined aside for forensics, and
    // startup proceeds - a bad state file must never brick the
    // daemon or be silently destroyed.
    const auto quarantine = [&](const std::string &why) {
        const std::string aside = path + ".corrupt";
        std::error_code rename_ec;
        std::filesystem::rename(path, aside, rename_ec);
        if (rename_ec) {
            std::error_code remove_ec;
            std::filesystem::remove(path, remove_ec);
            logLine("WARNING: dropping malformed %s (%s); "
                    "quarantine failed: %s",
                    path.c_str(), why.c_str(),
                    rename_ec.message().c_str());
        } else {
            logLine("WARNING: quarantined malformed %s to %s (%s)",
                    path.c_str(), aside.c_str(), why.c_str());
        }
    };

    Json pending;
    try {
        pending = Json::parse(text.str());
    } catch (const std::exception &error) {
        quarantine(error.what());
        return;
    }
    if (!pending.contains("jobs") || !pending.at("jobs").isArray()) {
        quarantine("no jobs array");
        return;
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
    const Json &jobs = pending.at("jobs");
    std::size_t restored = 0;
    std::lock_guard<std::mutex> lock(_queueMutex);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto request = RunRequest::fromJson(jobs.at(i));
        if (!request.ok()) {
            logLine("WARNING: dropping pending request: %s",
                    request.error().describe().c_str());
            continue;
        }
        if (findExperiment(request.value().slug) == nullptr) {
            logLine("WARNING: dropping pending request for unknown "
                    "experiment '%s'",
                    request.value().slug.c_str());
            continue;
        }
        auto job = std::make_shared<Job>();
        job->id = _nextJobId++;
        job->request = request.value();
        job->subscribers = 0; // original clients are long gone
        job->enqueuedAt = std::chrono::steady_clock::now();
        _queue.push_back(job);
        ++restored;
    }
    if (restored > 0) {
        std::lock_guard<std::mutex> stats_lock(_statsMutex);
        _stats.jobsRestored += restored;
        logLine("restored %zu pending request(s); resuming from "
                "their journals",
                restored);
    }
}

void
SweepServer::logLine(const char *format, ...) const
{
    if (!_config.echo)
        return;
    std::fputs("[ibpd] ", stdout);
    va_list args;
    va_start(args, format);
    std::vfprintf(stdout, format, args);
    va_end(args);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

} // namespace ibp
