#include "serve/server.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "robust/atomic_file.hh"
#include "robust/fault_injection.hh"
#include "sim/result_store.hh"

namespace ibp {

namespace {

Json
errorFrame(const std::string &message)
{
    Json json = Json::object();
    json.set("type", "error");
    json.set("message", message);
    return json;
}

Json
drainedFrame()
{
    Json json = Json::object();
    json.set("type", "drained");
    return json;
}

double
secondsSince(std::chrono::steady_clock::time_point then)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - then)
        .count();
}

} // namespace

SweepServer::SweepServer(ServerConfig config)
    : _config(std::move(config)),
      _socketPath(daemonSocketPath(_config.socketPath))
{
}

SweepServer::~SweepServer()
{
    if (_started.load() && !_stopped.load()) {
        requestDrain();
        waitStopped();
    }
}

Result<void>
SweepServer::start()
{
    std::error_code ec;
    std::filesystem::create_directories(_config.stateDir, ec);
    if (ec) {
        return RunError::permanent("cannot create state dir '" +
                                   _config.stateDir +
                                   "': " + ec.message());
    }
    // Fork the lane pool FIRST: before the listen socket, the drain
    // pipe and our own threads exist, so the initial lanes inherit
    // as little as possible and fork from the quietest process this
    // server will ever be.
    if (_config.lanes > 0) {
        SupervisorConfig lanes;
        lanes.lanes = _config.lanes;
        lanes.cellCeilingSeconds = _config.cellCeilingSeconds;
        lanes.jobCeilingSeconds = _config.jobCeilingSeconds;
        lanes.heartbeatTimeoutSeconds =
            _config.heartbeatTimeoutSeconds;
        lanes.maxRetriesWithoutProgress = _config.laneMaxRetries;
        lanes.retryBackoffSeconds = _config.laneRetryBackoffSeconds;
        lanes.echo = _config.echo;
        _supervisor = std::make_unique<LaneSupervisor>(lanes);
        const auto started = _supervisor->start();
        if (!started.ok()) {
            _supervisor.reset();
            return started;
        }
    }
    auto listening = listenDaemon(_socketPath);
    if (!listening.ok()) {
        if (_supervisor)
            _supervisor->shutdown();
        return listening.error();
    }
    _listenFd = listening.value();
    if (::pipe(_drainPipe) != 0) {
        const RunError error = RunError::permanent(
            std::string("pipe() failed: ") + std::strerror(errno));
        ::close(_listenFd);
        _listenFd = -1;
        if (_supervisor)
            _supervisor->shutdown();
        return error;
    }
    restorePending();
    _started.store(true);
    const unsigned runners =
        _config.lanes > 0 ? _config.lanes : 1u;
    _runningJobs.assign(runners, nullptr);
    _acceptThread = std::thread([this] { acceptLoop(); });
    for (unsigned lane = 0; lane < runners; ++lane) {
        _runnerThreads.emplace_back(
            [this, lane] { runnerLoop(lane); });
    }
    logLine("listening on %s (%zu experiments registered, %u %s)",
            _socketPath.c_str(), experimentSlugs().size(), runners,
            _config.lanes > 0 ? "lanes" : "in-process runner");
    return {};
}

void
SweepServer::acceptLoop()
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = _listenFd;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = _drainPipe[0];
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // drain requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(_connMutex);
            _connections.push_back(conn);
        }
        conn->thread =
            std::thread([this, conn] { serveConnection(conn); });
        reapConnections();
    }
}

void
SweepServer::reapConnections()
{
    std::lock_guard<std::mutex> lock(_connMutex);
    for (auto it = _connections.begin(); it != _connections.end();) {
        // finished is set only after the serving thread's last
        // statement touching shared state, so the join is immediate.
        if ((*it)->finished.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            it = _connections.erase(it);
        } else {
            ++it;
        }
    }
}

void
SweepServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    const int fd = conn->fd;
    auto frame = readFrame(fd);
    if (frame.ok()) {
        const Json &message = frame.value();
        const std::string type = message.stringOr("type", "");
        if (type == "ping") {
            Json reply = Json::object();
            reply.set("type", "pong");
            reply.set("pid", static_cast<double>(::getpid()));
            reply.set("experiments", experimentSlugs().size());
            writeFrame(fd, reply);
        } else if (type == "stats") {
            handleStats(fd);
        } else if (type == "shutdown") {
            Json reply = Json::object();
            reply.set("type", "shutting_down");
            writeFrame(fd, reply);
            requestDrain();
        } else if (type == "run") {
            auto request = RunRequest::fromJson(message);
            if (!request.ok())
                writeFrame(fd,
                           errorFrame(request.error().describe()));
            else
                handleRun(fd, request.value());
        } else {
            writeFrame(fd, errorFrame("unknown request type '" +
                                      type + "'"));
        }
    }
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    conn->finished.store(true, std::memory_order_release);
}

void
SweepServer::handleStats(int fd)
{
    const ServerStats counters = stats();
    Json reply = Json::object();
    reply.set("type", "stats");
    reply.set("jobs_accepted", counters.jobsAccepted);
    reply.set("requests_coalesced", counters.requestsCoalesced);
    reply.set("requests_rejected", counters.requestsRejected);
    reply.set("requests_incompatible",
              counters.requestsIncompatible);
    reply.set("jobs_completed", counters.jobsCompleted);
    reply.set("jobs_drained", counters.jobsDrained);
    reply.set("warm_hits", counters.warmHits);
    reply.set("jobs_restored", counters.jobsRestored);
    reply.set("lanes", _config.lanes);
    reply.set("lanes_forked", counters.lanesForked);
    reply.set("lane_crashes", counters.laneCrashes);
    reply.set("lane_kills", counters.laneKills);
    reply.set("jobs_retried", counters.jobsRetried);
    reply.set("jobs_sharded", counters.jobsSharded);
    reply.set("shards_planned", counters.shardsPlanned);
    reply.set("shards_requeued", counters.shardsRequeued);
    reply.set("shards_abandoned", counters.shardsAbandoned);
    reply.set("shard_cells_stolen", counters.shardCellsStolen);
    reply.set("overlap_cells_coalesced",
              counters.overlapCellsCoalesced);
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        reply.set("queue_depth", queuedJobCountLocked());
        // "running": first busy runner's slug (compat with the
        // single-runner era); "running_jobs" lists all of them.
        Json running_jobs = Json::array();
        Json first;
        for (const auto &job : _runningJobs) {
            if (!job)
                continue;
            if (first.isNull())
                first = Json(job->request.slug);
            running_jobs.push(Json(job->request.slug));
        }
        reply.set("running", first);
        reply.set("running_jobs", std::move(running_jobs));
    }
    writeFrame(fd, reply);
}

void
SweepServer::handleRun(int fd, const RunRequest &request)
{
    const RunRequest mine = makeRunRequest(request.slug,
                                           request.quick);
    const std::string reason = request.incompatibilityWith(mine);
    if (!reason.empty()) {
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_stats.requestsIncompatible;
        }
        logLine("refusing %s: %s", request.slug.c_str(),
                reason.c_str());
        Json reply = Json::object();
        reply.set("type", "incompatible");
        reply.set("reason", reason);
        writeFrame(fd, reply);
        return;
    }
    if (findExperiment(request.slug) == nullptr) {
        writeFrame(fd, errorFrame("unknown experiment '" +
                                  request.slug + "'"));
        return;
    }

    std::shared_ptr<Job> job;
    bool coalesced = false;
    std::size_t queue_depth = 0;
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        if (_draining) {
            writeFrame(fd, drainedFrame());
            return;
        }
        // Coalesce onto an identical queued or running job. The
        // state check happens under the job's own mutex: a job that
        // just finished (Done under job->mutex, _running not yet
        // cleared) must not gain a rider that missed its artifact's
        // serve record.
        const std::string signature = request.signature();
        auto try_attach = [&](const std::shared_ptr<Job> &candidate) {
            if (!candidate ||
                candidate->request.signature() != signature)
                return false;
            std::lock_guard<std::mutex> job_lock(candidate->mutex);
            if (candidate->state != JobState::Queued &&
                candidate->state != JobState::Running)
                return false;
            ++candidate->subscribers;
            ++candidate->coalesced;
            candidate->clientRejects += request.rejects;
            job = candidate;
            return true;
        };
        for (const auto &running : _runningJobs) {
            if (try_attach(running)) {
                coalesced = true;
                break;
            }
        }
        if (!coalesced) {
            for (const auto &queued : _queue) {
                if (try_attach(queued.job)) {
                    coalesced = true;
                    break;
                }
            }
        }
        if (!coalesced) {
            if (queuedJobCountLocked() >= _config.maxQueueDepth) {
                {
                    std::lock_guard<std::mutex> stats_lock(
                        _statsMutex);
                    ++_stats.requestsRejected;
                }
                Json reply = Json::object();
                reply.set("type", "rejected");
                reply.set("retry_after_ms",
                          _config.retryAfterSeconds * 1000.0);
                writeFrame(fd, reply);
                return;
            }
            job = std::make_shared<Job>();
            job->id = _nextJobId++;
            job->request = request;
            job->subscribers = 1;
            job->clientRejects = request.rejects;
            job->enqueuedAt = std::chrono::steady_clock::now();
            enqueueJobLocked(job);
        }
        queue_depth = queuedJobCountLocked();
    }
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        if (coalesced)
            ++_stats.requestsCoalesced;
        else
            ++_stats.jobsAccepted;
    }
    logLine("%s job %llu: %s%s", coalesced ? "joined" : "queued",
            static_cast<unsigned long long>(job->id),
            request.slug.c_str(), request.quick ? " (quick)" : "");

    Json accepted = Json::object();
    accepted.set("type", "accepted");
    accepted.set("job", job->id);
    accepted.set("coalesced", Json(coalesced));
    accepted.set("queue_depth", queue_depth);
    if (!writeFrame(fd, accepted).ok())
        return;

    // Stream progress until the job reaches a terminal state. The
    // socket write happens OUTSIDE job->mutex so a slow client can
    // never stall onCellFinished (which runs on worker threads).
    std::size_t last_cells = 0;
    std::unique_lock<std::mutex> lock(job->mutex);
    for (;;) {
        job->cv.wait(lock, [&] {
            return job->state == JobState::Done ||
                   job->state == JobState::Drained ||
                   job->cellsDone != last_cells;
        });
        if (job->state == JobState::Done ||
            job->state == JobState::Drained)
            break;
        last_cells = job->cellsDone;
        lock.unlock();
        Json progress = Json::object();
        progress.set("type", "progress");
        progress.set("job", job->id);
        progress.set("cells", last_cells);
        if (!writeFrame(fd, progress).ok())
            return; // client went away; the job runs on
        lock.lock();
    }
    const JobState state = job->state;
    const ExperimentRunResult result = job->result;
    lock.unlock();

    if (state == JobState::Drained) {
        writeFrame(fd, drainedFrame());
        return;
    }
    if (result.exitCode == 1 || !result.artifact) {
        writeFrame(fd, errorFrame(result.error.empty()
                                      ? "experiment failed"
                                      : result.error));
        return;
    }
    Json reply = Json::object();
    reply.set("type", "artifact");
    reply.set("exit_code", result.exitCode);
    reply.set("restored_cells", result.restoredCells);
    reply.set("seconds", result.seconds);
    reply.set("artifact", result.artifact->toJson());
    writeFrame(fd, reply);
}

void
SweepServer::runnerLoop(unsigned lane_index)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(_queueMutex);
            _queueCv.wait(lock, [&] {
                return _draining || !_queue.empty();
            });
            if (_draining)
                break;
            // Highest priority first, then oldest job, then shard
            // order - so every lane converges on the same fan-out
            // instead of interleaving unrelated jobs.
            const auto better = [](const Task &a, const Task &b) {
                if (a.job->request.priority !=
                    b.job->request.priority)
                    return a.job->request.priority >
                           b.job->request.priority;
                if (a.job->id != b.job->id)
                    return a.job->id < b.job->id;
                return a.shardIndex < b.shardIndex;
            };
            auto best = _queue.begin();
            for (auto it = std::next(best); it != _queue.end();
                 ++it) {
                if (better(*it, *best))
                    best = it;
            }
            task = *best;
            _queue.erase(best);
            _runningJobs[lane_index] = task.job;
        }
        switch (task.kind) {
        case TaskKind::Whole:
            runJob(task.job, lane_index);
            break;
        case TaskKind::Shard:
            runShardTask(task, lane_index);
            break;
        case TaskKind::Merge:
            runMergeTask(task.job, lane_index);
            break;
        }
        {
            std::lock_guard<std::mutex> lock(_queueMutex);
            _runningJobs[lane_index].reset();
        }
    }
}

void
SweepServer::runJob(const std::shared_ptr<Job> &job,
                    unsigned lane_index)
{
    markJobStarted(job);
    logLine("running job %llu: %s%s",
            static_cast<unsigned long long>(job->id),
            job->request.slug.c_str(),
            _supervisor ? " (lane)" : "");

    ExperimentRunResult result;
    bool lane_drained = false;
    if (_supervisor) {
        // Supervised path: the lane process runs the experiment and
        // streams progress + the artifact back; the monitor loop
        // below us handles crashes, deadlines and retries. Progress
        // counts restart per lane incarnation, so only move forward.
        // Cell claims are on whenever a store is armed: two lanes
        // running overlapping whole jobs then compute each shared
        // cell exactly once (the laggard defers and is served).
        LaneShard whole;
        whole.cellClaims = ResultStore::global() != nullptr;
        const LaneJobOutcome outcome = _supervisor->runJob(
            lane_index, job->request, checkpointPathFor(job->request),
            [job](std::size_t cells) {
                std::lock_guard<std::mutex> lock(job->mutex);
                if (cells > job->cellsDone) {
                    job->cellsDone = cells;
                    job->cv.notify_all();
                }
            },
            whole);
        result = outcome.result;
        lane_drained = outcome.drained;
    } else {
        ExperimentOptions options;
        options.quick = job->request.quick;
        options.echo = false;
        options.checkpointPath = checkpointPathFor(job->request);
        options.abort = &_drainFlag;
        options.onCellFinished = [job] {
            std::lock_guard<std::mutex> lock(job->mutex);
            ++job->cellsDone;
            job->cv.notify_all();
        };

        const ExperimentDef *def = findExperiment(job->request.slug);
        if (def == nullptr) {
            result.exitCode = 1;
            result.error =
                "experiment '" + job->request.slug + "' vanished";
        } else {
            result = runExperimentInProcess(*def, options);
        }
    }

    bool drained = false;
    bool warm = false;
    {
        // One critical section decides the terminal state, reads the
        // final subscriber counts, and stamps the serve telemetry:
        // a late coalescing attach either lands before this (and is
        // counted) or observes a terminal state (and starts a fresh
        // job). The drain flag is read here too, so persistPending
        // (which inspects state under this mutex) and this section
        // agree on whether the job drained.
        std::lock_guard<std::mutex> lock(job->mutex);
        drained = lane_drained ||
                  _drainFlag.load(std::memory_order_acquire);
        if (!drained && result.artifact) {
            const RunMetrics &metrics = result.artifact->metrics;
            ServeMetrics serve;
            serve.requests = job->subscribers;
            serve.coalesced = job->coalesced;
            serve.admissionRejects = job->clientRejects;
            serve.queueSeconds = job->queueSeconds;
            serve.jobSeconds = secondsSince(job->startedAt);
            serve.warm = metrics.hasTraceSource() &&
                         metrics.tracesGenerated() == 0 &&
                         metrics.traceCacheHits() > 0;
            warm = serve.warm;
            result.artifact->metrics.recordServe(serve);
        }
        job->result = result;
        job->state =
            drained ? JobState::Drained : JobState::Done;
        job->cv.notify_all();
    }

    if (!drained && result.exitCode == 0) {
        // A clean completion retires the job's journal; a drained or
        // partial run keeps it so a restart resumes from it.
        std::error_code ec;
        std::filesystem::remove(checkpointPathFor(job->request), ec);
    }
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        if (drained) {
            ++_stats.jobsDrained;
        } else {
            ++_stats.jobsCompleted;
            if (warm)
                ++_stats.warmHits;
        }
    }
    logLine("job %llu %s (%zu cells%s)",
            static_cast<unsigned long long>(job->id),
            drained ? "drained" : "finished", job->cellsDone,
            warm ? ", warm" : "");
}

void
SweepServer::markJobStarted(const std::shared_ptr<Job> &job)
{
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state != JobState::Queued)
        return;
    job->state = JobState::Running;
    job->startedAt = std::chrono::steady_clock::now();
    job->queueSeconds = std::chrono::duration<double>(
                            job->startedAt - job->enqueuedAt)
                            .count();
}

std::size_t
SweepServer::queuedJobCountLocked() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < _queue.size(); ++i) {
        bool seen = false;
        for (std::size_t j = 0; j < i && !seen; ++j)
            seen = _queue[j].job == _queue[i].job;
        if (!seen)
            ++count;
    }
    return count;
}

void
SweepServer::enqueueJobLocked(const std::shared_ptr<Job> &job)
{
    // Shard when the grid can be reassembled from the store: a
    // supervised pool of at least two lanes, a shardable experiment
    // (every cell store-keyed) and an armed result store. Everything
    // else runs as one whole job on one lane, exactly as before.
    // Fault injection disarms the store inside SuiteRunner, so a
    // sharded fan-out would just repeat the whole grid per lane -
    // don't plan one.
    const ExperimentDef *def = findExperiment(job->request.slug);
    const bool shard = _supervisor != nullptr && _config.shardJobs &&
                       _config.lanes >= 2 && def != nullptr &&
                       def->shardable &&
                       ResultStore::global() != nullptr &&
                       !FaultInjector::global().armed();
    if (!shard) {
        Task task;
        task.job = job;
        _queue.push_back(task);
        _queueCv.notify_one();
        return;
    }
    job->shardCount = _config.lanes;
    job->shardCells.assign(job->shardCount, 0);
    job->shardDispatches.assign(job->shardCount, 0);
    for (unsigned k = 0; k < job->shardCount; ++k) {
        Task task;
        task.job = job;
        task.kind = TaskKind::Shard;
        task.shardIndex = k;
        _queue.push_back(task);
    }
    {
        std::lock_guard<std::mutex> stats_lock(_statsMutex);
        ++_stats.jobsSharded;
        _stats.shardsPlanned += job->shardCount;
    }
    _queueCv.notify_all();
}

void
SweepServer::runShardTask(const Task &task, unsigned lane_index)
{
    const std::shared_ptr<Job> &job = task.job;
    const unsigned shard_index = task.shardIndex;
    markJobStarted(job);
    unsigned shard_count = 0;
    unsigned dispatch = 0;
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        shard_count = job->shardCount;
        dispatch = ++job->shardDispatches[shard_index];
    }
    logLine("running job %llu shard %u/%u: %s%s",
            static_cast<unsigned long long>(job->id), shard_index,
            shard_count, job->request.slug.c_str(),
            job->request.quick ? " (quick)" : "");

    LaneShard shard;
    shard.index = shard_index;
    shard.count = shard_count;
    shard.steal = true;
    shard.cellClaims = true;
    const LaneJobOutcome outcome = _supervisor->runJob(
        lane_index, job->request,
        shardCheckpointPathFor(job->request, shard_index,
                               shard_count),
        [job, shard_index](std::size_t cells) {
            // Aggregated progress: the sum of per-shard monotonic
            // maxima, so lane restarts (whose counts reset) and
            // out-of-order shard ticks never move the stream
            // backwards.
            std::lock_guard<std::mutex> lock(job->mutex);
            if (cells <= job->shardCells[shard_index])
                return;
            job->shardCells[shard_index] = cells;
            std::size_t sum = 0;
            for (const std::size_t done : job->shardCells)
                sum += done;
            if (sum > job->cellsDone) {
                job->cellsDone = sum;
                job->cv.notify_all();
            }
        },
        shard);

    const bool drained =
        outcome.drained || _drainFlag.load(std::memory_order_acquire);
    bool requeue = false;
    bool enqueue_merge = false;
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        if (drained) {
            job->shardDrained = true;
            ++job->shardsTerminal;
        } else if (outcome.result.exitCode == 1) {
            // The lane pool gave up on this shard (bounded crash
            // retries exhausted, or a hard failure). Re-dispatch it
            // within budget - its journal already holds whatever
            // finished, so only the remaining cells rerun - else
            // abandon it and let the merge pass sweep its cells.
            if (job->shardDispatches[shard_index] <=
                _config.shardRequeueBudget) {
                requeue = true;
                ++job->shardServe.requeued;
            } else {
                ++job->shardServe.abandoned;
                ++job->shardsTerminal;
            }
        } else {
            ++job->shardsTerminal;
            if (outcome.result.artifact) {
                const ResultStoreStats cells =
                    outcome.result.artifact->metrics.resultStore();
                job->shardServe.stolenCells += cells.stolen;
                job->shardServe.overlapCoalesced += cells.claimServed;
            }
        }
        if (!drained && !requeue &&
            job->shardsTerminal == job->shardCount) {
            enqueue_merge = true;
            job->shardServe.fanoutSeconds =
                secondsSince(job->startedAt);
        }
    }
    if (requeue || outcome.result.exitCode == 1) {
        std::lock_guard<std::mutex> stats_lock(_statsMutex);
        if (requeue)
            ++_stats.shardsRequeued;
        else if (!drained)
            ++_stats.shardsAbandoned;
    }
    if (!requeue && !enqueue_merge && !drained) {
        logLine("job %llu shard %u/%u done",
                static_cast<unsigned long long>(job->id), shard_index,
                shard_count);
    }

    const auto markDrained = [&] {
        bool counted = false;
        {
            std::lock_guard<std::mutex> lock(job->mutex);
            if (job->state != JobState::Drained) {
                job->state = JobState::Drained;
                job->cv.notify_all();
                counted = true;
            }
        }
        if (counted) {
            std::lock_guard<std::mutex> stats_lock(_statsMutex);
            ++_stats.jobsDrained;
        }
    };
    if (drained) {
        markDrained();
        return;
    }
    if (requeue || enqueue_merge) {
        Task next;
        next.job = job;
        next.kind = requeue ? TaskKind::Shard : TaskKind::Merge;
        next.shardIndex = requeue ? shard_index : 0;
        bool queued = false;
        {
            std::lock_guard<std::mutex> lock(_queueMutex);
            if (!_draining) {
                _queue.push_back(next);
                _queueCv.notify_one();
                queued = true;
            }
        }
        if (!queued) {
            // Drain won the race for the queue: the job was already
            // persisted (this lane still holds its running slot), so
            // it resumes after restart instead of running on.
            markDrained();
            return;
        }
        if (requeue) {
            logLine("re-queued job %llu shard %u/%u (dispatch %u)",
                    static_cast<unsigned long long>(job->id),
                    shard_index, shard_count, dispatch);
        }
    }
}

void
SweepServer::runMergeTask(const std::shared_ptr<Job> &job,
                          unsigned lane_index)
{
    logLine("merging job %llu: %s",
            static_cast<unsigned long long>(job->id),
            job->request.slug.c_str());
    // The merge IS the job, run unsharded on one lane against the
    // store the fan-out just warmed: every cell the shards finished
    // is served bit-identically from the store, and any straggler
    // cells of drained, abandoned or failed shards are simulated
    // here - shard failures degrade to slowness, never to a wrong
    // or partial artifact. Claims stay on so a concurrent
    // overlapping job still shares cells with the merge.
    LaneShard merge;
    merge.cellClaims = true;
    const LaneJobOutcome outcome = _supervisor->runJob(
        lane_index, job->request, checkpointPathFor(job->request),
        [job](std::size_t cells) {
            std::lock_guard<std::mutex> lock(job->mutex);
            if (cells > job->cellsDone) {
                job->cellsDone = cells;
                job->cv.notify_all();
            }
        },
        merge);
    ExperimentRunResult result = outcome.result;

    bool drained = false;
    bool counted_drained = false;
    std::uint64_t stolen = 0;
    std::uint64_t overlap = 0;
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        drained = outcome.drained ||
                  _drainFlag.load(std::memory_order_acquire);
        if (!drained && result.artifact) {
            ServeMetrics serve;
            serve.requests = job->subscribers;
            serve.coalesced = job->coalesced;
            serve.admissionRejects = job->clientRejects;
            serve.queueSeconds = job->queueSeconds;
            serve.jobSeconds = secondsSince(job->startedAt);
            const RunMetrics &metrics = result.artifact->metrics;
            serve.warm = metrics.hasTraceSource() &&
                         metrics.tracesGenerated() == 0 &&
                         metrics.traceCacheHits() > 0;
            job->shardServe.planned = job->shardCount;
            job->shardServe.mergeSeconds = result.seconds;
            job->shardServe.laneCells.assign(job->shardCells.begin(),
                                             job->shardCells.end());
            serve.shard = job->shardServe;
            stolen = job->shardServe.stolenCells;
            overlap = job->shardServe.overlapCoalesced;
            result.artifact->metrics.recordServe(serve);
        }
        job->result = result;
        if (job->state != JobState::Drained) {
            job->state =
                drained ? JobState::Drained : JobState::Done;
            counted_drained = drained;
        }
        job->cv.notify_all();
    }

    if (!drained && result.exitCode == 0) {
        std::error_code ec;
        std::filesystem::remove(checkpointPathFor(job->request), ec);
        removeShardCheckpoints(job->request);
    }
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        if (drained) {
            if (counted_drained)
                ++_stats.jobsDrained;
        } else {
            ++_stats.jobsCompleted;
            _stats.shardCellsStolen += stolen;
            _stats.overlapCellsCoalesced += overlap;
        }
    }
    logLine("job %llu %s (%zu cells, sharded x%u)",
            static_cast<unsigned long long>(job->id),
            drained ? "drained" : "finished", job->cellsDone,
            job->shardCount);
}

void
SweepServer::requestDrain()
{
    if (_drainFlag.exchange(true, std::memory_order_acq_rel))
        return;
    logLine("drain requested");
    std::size_t drained_queued = 0;
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        _draining = true;
        persistPendingLocked();
        // Mark every job still holding queue tasks drained, once per
        // job: a sharded job contributes several tasks, and one with
        // a shard mid-flight on a lane is marked here too - the lane
        // reports that shard drained shortly, and the runner's own
        // terminal path sees the state already set.
        for (std::size_t i = 0; i < _queue.size(); ++i) {
            bool seen = false;
            for (std::size_t j = 0; j < i && !seen; ++j)
                seen = _queue[j].job == _queue[i].job;
            if (seen)
                continue;
            const auto &job = _queue[i].job;
            std::lock_guard<std::mutex> job_lock(job->mutex);
            if (job->state == JobState::Drained)
                continue;
            job->state = JobState::Drained;
            job->cv.notify_all();
            ++drained_queued;
        }
        _queue.clear();
    }
    if (drained_queued > 0) {
        std::lock_guard<std::mutex> lock(_statsMutex);
        _stats.jobsDrained += drained_queued;
    }
    // Lanes stop at their next cell boundary and report their jobs
    // drained; their runner threads then observe _draining and exit.
    if (_supervisor)
        _supervisor->requestDrain();
    _queueCv.notify_all();
    if (_drainPipe[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(_drainPipe[1], &byte, 1);
    }
    // Unblock connection threads parked in readFrame. Only the read
    // side: subscribers of the aborting run still need their
    // "drained" frame written.
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        for (const auto &conn : _connections) {
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RD);
        }
    }
}

void
SweepServer::waitStopped()
{
    if (!_started.load())
        return;
    if (_acceptThread.joinable())
        _acceptThread.join();
    for (std::thread &runner : _runnerThreads) {
        if (runner.joinable())
            runner.join();
    }
    _runnerThreads.clear();
    // Every job result has been consumed by now; the lanes are idle
    // and EOF on their sockets is their exit signal.
    if (_supervisor)
        _supervisor->shutdown();
    // Connection threads exit once the runner has pushed every job
    // to a terminal state. Copy the list out: their epilogues take
    // _connMutex to close their fd.
    for (;;) {
        std::vector<std::shared_ptr<Connection>> remaining;
        {
            std::lock_guard<std::mutex> lock(_connMutex);
            remaining.assign(_connections.begin(),
                             _connections.end());
            _connections.clear();
        }
        if (remaining.empty())
            break;
        for (const auto &conn : remaining) {
            if (conn->thread.joinable())
                conn->thread.join();
        }
    }
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
    for (int &fd : _drainPipe) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::unlink(_socketPath.c_str());
    _stopped.store(true);
    logLine("stopped");
}

ServerStats
SweepServer::stats() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        out = _stats;
    }
    if (_supervisor) {
        const LaneStats lanes = _supervisor->stats();
        out.lanesForked = lanes.lanesForked;
        out.laneCrashes = lanes.laneCrashes;
        out.laneKills = lanes.laneKills;
        out.jobsRetried = lanes.jobsRetried;
    }
    return out;
}

std::vector<LaneView>
SweepServer::laneViews() const
{
    if (!_supervisor)
        return {};
    return _supervisor->laneViews();
}

std::string
SweepServer::checkpointPathFor(const RunRequest &request) const
{
    return _config.stateDir + "/" + request.slug +
           (request.quick ? "-quick" : "") + ".ckpt";
}

std::string
SweepServer::shardCheckpointPathFor(const RunRequest &request,
                                    unsigned shard_index,
                                    unsigned shard_count) const
{
    // The shard count is part of the name: a restart that re-plans
    // against a different lane count starts fresh journals, and the
    // cells the old plan finished are still served by the store.
    return _config.stateDir + "/" + request.slug +
           (request.quick ? "-quick" : "") + ".shard" +
           std::to_string(shard_index) + "of" +
           std::to_string(shard_count) + ".ckpt";
}

void
SweepServer::removeShardCheckpoints(const RunRequest &request) const
{
    const std::string prefix =
        request.slug + (request.quick ? "-quick" : "") + ".shard";
    std::error_code ec;
    std::filesystem::directory_iterator it(_config.stateDir, ec);
    if (ec)
        return;
    for (const auto &entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) == 0 &&
            name.size() > prefix.size() + 5 &&
            name.compare(name.size() - 5, 5, ".ckpt") == 0) {
            std::error_code remove_ec;
            std::filesystem::remove(entry.path(), remove_ec);
        }
    }
}

void
SweepServer::persistPendingLocked()
{
    const std::string path = _config.stateDir + "/pending.json";
    Json jobs = Json::array();
    // ONE entry per job, however many shard/merge tasks it has in
    // flight: the entry is just the request, and the restarted
    // daemon re-plans shards against its then-current lane count.
    // The union of the job's unfinished cells needs no persisting -
    // finished cells live in the result store (and the journals),
    // so the re-planned run serves them and simulates only the rest.
    std::vector<const Job *> seen;
    auto persist = [&](const std::shared_ptr<Job> &job) {
        if (!job)
            return;
        for (const Job *prior : seen) {
            if (prior == job.get())
                return;
        }
        std::lock_guard<std::mutex> job_lock(job->mutex);
        if (job->state == JobState::Done ||
            job->state == JobState::Drained)
            return;
        seen.push_back(job.get());
        jobs.push(job->request.toJson());
    };
    for (const auto &job : _runningJobs)
        persist(job);
    for (const auto &task : _queue)
        persist(task.job);
    if (jobs.size() == 0) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return;
    }
    const std::size_t count = jobs.size();
    Json pending = Json::object();
    pending.set("version", 1);
    pending.set("jobs", std::move(jobs));
    const auto written = writeFileAtomic(path, pending.dump(2));
    if (written.ok()) {
        logLine("persisted %zu pending request(s) to %s", count,
                path.c_str());
    } else {
        logLine("WARNING: cannot persist pending requests: %s",
                written.error().describe().c_str());
    }
}

void
SweepServer::restorePending()
{
    const std::string path = _config.stateDir + "/pending.json";
    std::ifstream in(path);
    if (!in)
        return;
    std::ostringstream text;
    text << in.rdbuf();
    in.close();

    // Validate BEFORE touching the file: a corrupt or truncated
    // pending.json (daemon died mid-write of a non-atomic editor
    // save, disk full, ...) is quarantined aside for forensics, and
    // startup proceeds - a bad state file must never brick the
    // daemon or be silently destroyed.
    const auto quarantine = [&](const std::string &why) {
        const std::string aside = path + ".corrupt";
        std::error_code rename_ec;
        std::filesystem::rename(path, aside, rename_ec);
        if (rename_ec) {
            std::error_code remove_ec;
            std::filesystem::remove(path, remove_ec);
            logLine("WARNING: dropping malformed %s (%s); "
                    "quarantine failed: %s",
                    path.c_str(), why.c_str(),
                    rename_ec.message().c_str());
        } else {
            logLine("WARNING: quarantined malformed %s to %s (%s)",
                    path.c_str(), aside.c_str(), why.c_str());
        }
    };

    Json pending;
    try {
        pending = Json::parse(text.str());
    } catch (const std::exception &error) {
        quarantine(error.what());
        return;
    }
    if (!pending.contains("jobs") || !pending.at("jobs").isArray()) {
        quarantine("no jobs array");
        return;
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
    const Json &jobs = pending.at("jobs");
    std::size_t restored = 0;
    std::lock_guard<std::mutex> lock(_queueMutex);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto request = RunRequest::fromJson(jobs.at(i));
        if (!request.ok()) {
            logLine("WARNING: dropping pending request: %s",
                    request.error().describe().c_str());
            continue;
        }
        if (findExperiment(request.value().slug) == nullptr) {
            logLine("WARNING: dropping pending request for unknown "
                    "experiment '%s'",
                    request.value().slug.c_str());
            continue;
        }
        auto job = std::make_shared<Job>();
        job->id = _nextJobId++;
        job->request = request.value();
        job->subscribers = 0; // original clients are long gone
        job->enqueuedAt = std::chrono::steady_clock::now();
        // Re-plans the shard fan-out against the CURRENT lane
        // count; a drain under the old plan left its cells in the
        // store, so only unfinished work reruns.
        enqueueJobLocked(job);
        ++restored;
    }
    if (restored > 0) {
        std::lock_guard<std::mutex> stats_lock(_statsMutex);
        _stats.jobsRestored += restored;
        logLine("restored %zu pending request(s); resuming from "
                "their journals",
                restored);
    }
}

void
SweepServer::logLine(const char *format, ...) const
{
    if (!_config.echo)
        return;
    std::fputs("[ibpd] ", stdout);
    va_list args;
    va_start(args, format);
    std::vfprintf(stdout, format, args);
    va_end(args);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

} // namespace ibp
