#include "serve/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/table_spec.hh"
#include "report/artifact.hh"
#include "sim/suite_runner.hh"
#include "synth/benchmark_suite.hh"

namespace ibp {

namespace {

RunError
ioError(const std::string &what)
{
    return RunError::transient(what + ": " +
                               std::strerror(errno));
}

/** Write all of @p data, riding out EINTR and partial writes.
 *  MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not
 *  kill the process with SIGPIPE. */
Result<void>
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::send(fd, data + written, size - written,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("socket write failed");
        }
        written += static_cast<std::size_t>(n);
    }
    return {};
}

Result<void>
readAll(int fd, char *data, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, data + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("socket read failed");
        }
        if (n == 0) {
            return RunError::transient(
                "connection closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return {};
}

/** readAll against an absolute deadline: poll for readability with
 *  the remaining budget before every recv (EINTR re-computes the
 *  remainder instead of restarting the full timeout). */
Result<void>
readAllUntil(int fd, char *data, std::size_t size,
             std::chrono::steady_clock::time_point deadline)
{
    std::size_t got = 0;
    while (got < size) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0) {
            return RunError::transient(
                "socket read timed out mid-frame");
        }
        pollfd poller;
        poller.fd = fd;
        poller.events = POLLIN;
        poller.revents = 0;
        const int ready = ::poll(
            &poller, 1,
            static_cast<int>(std::min<long long>(remaining,
                                                 60 * 1000)));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return ioError("socket poll failed");
        }
        if (ready == 0)
            continue; // re-check the deadline
        const ssize_t n = ::recv(fd, data + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return ioError("socket read failed");
        }
        if (n == 0) {
            return RunError::transient(
                "connection closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return {};
}

Result<void>
fillSocketAddress(const std::string &path, sockaddr_un &address)
{
    std::memset(&address, 0, sizeof(address));
    address.sun_family = AF_UNIX;
    if (path.size() >= sizeof(address.sun_path)) {
        return RunError::permanent("socket path too long: '" + path +
                                   "'");
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    return {};
}

} // namespace

std::string
daemonSocketPath(const std::string &override_)
{
    if (!override_.empty())
        return override_;
    if (const char *env = std::getenv("IBP_DAEMON")) {
        if (*env)
            return env;
    }
    return kDefaultDaemonSocket;
}

Result<void>
writeFrame(int fd, const Json &message)
{
    const std::string body = message.dump();
    if (body.size() > kMaxFrameBytes)
        return RunError::permanent("frame exceeds size ceiling");
    char prefix[4];
    const auto size = static_cast<std::uint32_t>(body.size());
    prefix[0] = static_cast<char>(size & 0xff);
    prefix[1] = static_cast<char>((size >> 8) & 0xff);
    prefix[2] = static_cast<char>((size >> 16) & 0xff);
    prefix[3] = static_cast<char>((size >> 24) & 0xff);
    const auto wrote_prefix = writeAll(fd, prefix, sizeof(prefix));
    if (!wrote_prefix.ok())
        return wrote_prefix;
    return writeAll(fd, body.data(), body.size());
}

Result<Json>
readFrame(int fd)
{
    unsigned char prefix[4];
    const auto got_prefix =
        readAll(fd, reinterpret_cast<char *>(prefix), sizeof(prefix));
    if (!got_prefix.ok())
        return got_prefix.error();
    const std::uint32_t size =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    if (size > kMaxFrameBytes) {
        return RunError::transient(
            "frame length " + std::to_string(size) +
            " exceeds ceiling (corrupt stream?)");
    }
    std::string body(size, '\0');
    const auto got_body = readAll(fd, body.data(), body.size());
    if (!got_body.ok())
        return got_body.error();
    try {
        return Json::parse(body);
    } catch (const std::exception &error) {
        return RunError::transient(std::string("malformed frame: ") +
                                   error.what());
    }
}

Result<Json>
readFrame(int fd, double timeout_seconds)
{
    if (timeout_seconds <= 0.0)
        return readFrame(fd);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    unsigned char prefix[4];
    const auto got_prefix = readAllUntil(
        fd, reinterpret_cast<char *>(prefix), sizeof(prefix),
        deadline);
    if (!got_prefix.ok())
        return got_prefix.error();
    const std::uint32_t size =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    if (size > kMaxFrameBytes) {
        return RunError::transient(
            "frame length " + std::to_string(size) +
            " exceeds ceiling (corrupt stream?)");
    }
    std::string body(size, '\0');
    const auto got_body =
        readAllUntil(fd, body.data(), body.size(), deadline);
    if (!got_body.ok())
        return got_body.error();
    try {
        return Json::parse(body);
    } catch (const std::exception &error) {
        return RunError::transient(std::string("malformed frame: ") +
                                   error.what());
    }
}

Result<int>
connectDaemon(const std::string &socket_path)
{
    sockaddr_un address;
    const auto filled = fillSocketAddress(socket_path, address);
    if (!filled.ok())
        return filled.error();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return ioError("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&address),
                  sizeof(address)) != 0) {
        int cause = errno;
        if (cause == EINTR) {
            // POSIX: an interrupted connect() keeps completing in
            // the background; calling connect() again would return
            // EALREADY. Wait for writability and read the final
            // status instead.
            pollfd poller;
            poller.fd = fd;
            poller.events = POLLOUT;
            poller.revents = 0;
            int ready;
            do {
                ready = ::poll(&poller, 1, -1);
            } while (ready < 0 && errno == EINTR);
            int status = 0;
            socklen_t length = sizeof(status);
            if (ready > 0 &&
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &status,
                             &length) == 0 &&
                status == 0) {
                return fd;
            }
            cause = status != 0 ? status : errno;
        }
        ::close(fd);
        if (cause == ENOENT || cause == ECONNREFUSED) {
            return RunError::transient("no daemon at '" +
                                       socket_path + "'");
        }
        errno = cause;
        return ioError("connect to '" + socket_path + "' failed");
    }
    return fd;
}

Result<int>
listenDaemon(const std::string &socket_path)
{
    const auto parent =
        std::filesystem::path(socket_path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec) {
            return RunError::permanent(
                "cannot create socket directory '" +
                parent.string() + "': " + ec.message());
        }
    }
    sockaddr_un address;
    const auto filled = fillSocketAddress(socket_path, address);
    if (!filled.ok())
        return filled.error();

    // A connectable socket file means another daemon is alive there;
    // refusing beats silently stealing its clients. A stale file
    // (daemon died without unlinking) is replaced.
    struct stat info;
    if (::stat(socket_path.c_str(), &info) == 0) {
        auto probe = connectDaemon(socket_path);
        if (probe.ok()) {
            ::close(probe.value());
            return RunError::permanent(
                "another daemon is already listening on '" +
                socket_path + "'");
        }
        ::unlink(socket_path.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return RunError::permanent(
            std::string("socket() failed: ") + std::strerror(errno));
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&address),
               sizeof(address)) != 0 ||
        ::listen(fd, 64) != 0) {
        const RunError error = RunError::permanent(
            "cannot listen on '" + socket_path +
            "': " + std::strerror(errno));
        ::close(fd);
        return error;
    }
    return fd;
}

std::string
RunRequest::signature() const
{
    // Every knob that shapes the artifact, canonically rendered.
    // The old slug+quick signature let two requests differing only
    // in event scale or table implementation coalesce onto one
    // execution - one of them got the other's artifact. %.17g keeps
    // distinct doubles distinct (to_string truncates at 6 digits).
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%.17g", eventScale);
    return slug + "|" + (quick ? "q" : "f") + "|e" + scale + "|t" +
           std::to_string(threads) + "|i" + tableImpl + "|x" +
           faultSpec;
}

std::string
RunRequest::incompatibilityWith(const RunRequest &mine) const
{
    if (eventScale != mine.eventScale) {
        return "event scale mismatch (client " +
               std::to_string(eventScale) + ", server " +
               std::to_string(mine.eventScale) + ")";
    }
    if (threads != mine.threads) {
        return "thread count mismatch (client " +
               std::to_string(threads) + ", server " +
               std::to_string(mine.threads) + ")";
    }
    if (tableImpl != mine.tableImpl) {
        return "table implementation mismatch (client '" + tableImpl +
               "', server '" + mine.tableImpl + "')";
    }
    if (faultSpec != mine.faultSpec) {
        return "fault injection mismatch (client '" + faultSpec +
               "', server '" + mine.faultSpec + "')";
    }
    const bool shas_known = !gitSha.empty() && gitSha != "unknown" &&
                            !mine.gitSha.empty() &&
                            mine.gitSha != "unknown";
    if (shas_known && gitSha != mine.gitSha) {
        return "build mismatch (client " + gitSha + ", server " +
               mine.gitSha + ")";
    }
    return "";
}

Json
RunRequest::toJson() const
{
    Json json = Json::object();
    json.set("type", "run");
    json.set("slug", slug);
    json.set("quick", Json(quick));
    json.set("priority", priority);
    json.set("rejects", rejects);
    json.set("event_scale", eventScale);
    json.set("threads", threads);
    json.set("table_impl", tableImpl);
    json.set("git_sha", gitSha);
    json.set("fault_inject", faultSpec);
    return json;
}

Result<RunRequest>
RunRequest::fromJson(const Json &json)
{
    RunRequest request;
    request.slug = json.stringOr("slug", "");
    if (request.slug.empty())
        return RunError::permanent("run request without a slug");
    request.quick =
        json.contains("quick") && json.at("quick").asBool();
    request.priority =
        static_cast<int>(json.numberOr("priority", 0));
    request.rejects =
        static_cast<unsigned>(json.numberOr("rejects", 0));
    request.eventScale = json.numberOr("event_scale", 1.0);
    request.threads =
        static_cast<unsigned>(json.numberOr("threads", 0));
    request.tableImpl = json.stringOr("table_impl", "");
    request.gitSha = json.stringOr("git_sha", "");
    request.faultSpec = json.stringOr("fault_inject", "");
    return request;
}

RunRequest
makeRunRequest(const std::string &slug, bool quick)
{
    RunRequest request;
    request.slug = slug;
    request.quick = quick;
    request.eventScale = eventScale();
    request.threads = simulationThreads();
    request.tableImpl = tableImplName();
    request.gitSha = buildManifest().gitSha;
    if (const char *env = std::getenv("IBP_FAULT_INJECT"))
        request.faultSpec = env;
    return request;
}

} // namespace ibp
