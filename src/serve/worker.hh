/**
 * @file
 * Worker lane processes for the ibpd sweep daemon (docs/SERVICE.md).
 *
 * A lane is a forked child of the daemon that runs experiment jobs
 * in its own address space: a SIGSEGV, std::bad_alloc or truly hung
 * cell kills the LANE, never the daemon, and the supervisor
 * (serve/supervisor.hh) resumes the job on a fresh lane from its
 * checkpoint journal. Supervisor and lane speak the existing
 * length-prefixed frame protocol (serve/protocol.hh) over a
 * socketpair:
 *
 *   supervisor -> lane   "job"    checkpoint path + RunRequest
 *                        "drain"  finish the current cell, stop
 *                        "exit"   quit when idle (EOF means the same)
 *   lane -> supervisor   "progress"   cumulative resolved cells
 *                        "heartbeat"  liveness while a job runs
 *                        "result"     terminal frame of one job:
 *                                     exit code, restored cells,
 *                                     seconds, drained flag, error
 *                                     or full artifact JSON
 *
 * The lane never outlives the daemon: it asks the kernel for SIGKILL
 * on parent death (PR_SET_PDEATHSIG) and treats EOF on its socket as
 * an exit request.
 */

#ifndef IBP_SERVE_WORKER_HH
#define IBP_SERVE_WORKER_HH

#include <sys/types.h>

#include "robust/error.hh"

namespace ibp {

/** A forked lane as the supervisor sees it. */
struct LaneProcess
{
    pid_t pid = -1;
    /** Supervisor end of the socketpair. */
    int fd = -1;
};

/**
 * Fork one worker lane. The child re-initialises every inherited
 * multi-threading hazard (executor pool, experiment registry lock),
 * closes every file descriptor except its lane socket and stdio,
 * resets termination signals to their defaults, and enters the lane
 * serving loop - it never returns and exits only via _exit(). The
 * parent gets the pid and its end of the socketpair.
 *
 * Safe to call from a multi-threaded parent (replacement lanes are
 * forked while connection threads run); the caller must not hold
 * locks the child could need, which in practice means: do not fork
 * while holding serve-layer mutexes.
 */
Result<LaneProcess> spawnWorkerLane();

/**
 * The lane serving loop (child side). Exposed for spawnWorkerLane;
 * never call it in a process you intend to keep.
 */
[[noreturn]] void runWorkerLane(int fd);

} // namespace ibp

#endif // IBP_SERVE_WORKER_HH
