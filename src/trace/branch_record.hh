/**
 * @file
 * The unit record of a branch trace.
 *
 * The paper's traces were produced by the shade instruction-level
 * simulator and contain all indirect branches (procedure returns
 * excluded from prediction, because a return address stack predicts
 * them accurately). Our records also carry conditional branches so
 * that (a) benchmark statistics like the conditional/indirect ratio
 * of Tables 1/2 can be reproduced and (b) the Target Cache baseline
 * [CHP97] and the rejected "conditional targets in history" variant
 * (section 3.3) can be simulated.
 */

#ifndef IBP_TRACE_BRANCH_RECORD_HH
#define IBP_TRACE_BRANCH_RECORD_HH

#include <cstdint>
#include <string_view>

#include "util/bits.hh"

namespace ibp {

/** Classification of a dynamic branch. */
enum class BranchKind : std::uint8_t
{
    /** Conditional direct branch (taken/not-taken). */
    Conditional = 0,
    /** Indirect call through a register (virtual calls, fn pointers). */
    IndirectCall = 1,
    /** Indirect jump (computed goto and the like). */
    IndirectJump = 2,
    /** Indirect jump implementing a switch statement. */
    IndirectSwitch = 3,
    /** Procedure return (predicted by a return-address stack). */
    Return = 4,
};

/** Human-readable name of a BranchKind. */
constexpr std::string_view
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Conditional:    return "cond";
      case BranchKind::IndirectCall:   return "icall";
      case BranchKind::IndirectJump:   return "ijump";
      case BranchKind::IndirectSwitch: return "iswitch";
      case BranchKind::Return:         return "return";
    }
    return "unknown";
}

/**
 * One dynamic branch execution.
 *
 * For indirect kinds, @c target is the resolved target address and
 * @c taken is always true. For conditional branches, @c taken is the
 * outcome and @c target is the taken-path target (used only by
 * history variants that fold conditional targets in).
 */
struct BranchRecord
{
    Addr pc = 0;
    Addr target = 0;
    BranchKind kind = BranchKind::IndirectCall;
    bool taken = true;

    /** True for the kinds the paper's predictors are asked to predict. */
    bool
    isPredictedIndirect() const
    {
        return kind == BranchKind::IndirectCall ||
               kind == BranchKind::IndirectJump ||
               kind == BranchKind::IndirectSwitch;
    }

    bool operator==(const BranchRecord &other) const = default;
};

/**
 * One-byte columnar form of (kind, taken): the meta stream of the
 * v3 `.ibpm` layout and of in-memory trace blocks (trace_block.hh).
 * Low 7 bits hold the kind, the high bit the taken flag, so a block
 * classifier can test kinds with one masked byte compare per record.
 */
constexpr std::uint8_t
packBranchMeta(BranchKind kind, bool taken)
{
    return static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(kind) | (taken ? 0x80u : 0u));
}

constexpr BranchKind
branchMetaKind(std::uint8_t meta)
{
    return static_cast<BranchKind>(meta & 0x7fu);
}

constexpr bool
branchMetaTaken(std::uint8_t meta)
{
    return (meta & 0x80u) != 0;
}

/** Meta-byte mirror of BranchRecord::isPredictedIndirect(). */
constexpr bool
branchMetaIsPredictedIndirect(std::uint8_t meta)
{
    return static_cast<std::uint8_t>((meta & 0x7fu) - 1u) < 3u;
}

} // namespace ibp

#endif // IBP_TRACE_BRANCH_RECORD_HH
