#include "trace/trace_stats.hh"

#include <algorithm>
#include <unordered_map>

#include "util/stats.hh"

namespace ibp {

std::map<Addr, std::uint64_t>
siteExecutionCounts(const Trace &trace)
{
    std::map<Addr, std::uint64_t> counts;
    for (const auto &record : trace) {
        if (record.isPredictedIndirect())
            ++counts[record.pc];
    }
    return counts;
}

TraceStats
computeTraceStats(const Trace &trace)
{
    TraceStats stats;
    stats.name = trace.name();
    stats.totalRecords = trace.size();

    // Per-site target histograms.
    struct SiteAccum
    {
        std::uint64_t executions = 0;
        std::unordered_map<Addr, std::uint64_t> targets;
    };
    std::map<Addr, SiteAccum> sites;

    for (const auto &record : trace) {
        switch (record.kind) {
          case BranchKind::Conditional:
            ++stats.conditionalBranches;
            break;
          case BranchKind::Return:
            ++stats.returns;
            break;
          case BranchKind::IndirectCall:
          case BranchKind::IndirectJump:
          case BranchKind::IndirectSwitch:
            ++stats.indirectBranches;
            if (record.kind == BranchKind::IndirectCall)
                ++stats.virtualCalls;
            auto &site = sites[record.pc];
            ++site.executions;
            ++site.targets[record.target];
            break;
        }
    }

    stats.condPerIndirect =
        stats.indirectBranches
            ? static_cast<double>(stats.conditionalBranches) /
                  static_cast<double>(stats.indirectBranches)
            : 0.0;
    stats.virtualCallFraction =
        stats.indirectBranches
            ? static_cast<double>(stats.virtualCalls) /
                  static_cast<double>(stats.indirectBranches)
            : 0.0;

    std::vector<std::uint64_t> execution_counts;
    execution_counts.reserve(sites.size());
    double poly_weighted = 0.0;
    for (const auto &[pc, accum] : sites) {
        SiteStats site;
        site.pc = pc;
        site.executions = accum.executions;
        site.distinctTargets =
            static_cast<unsigned>(accum.targets.size());
        std::uint64_t dominant = 0;
        for (const auto &[target, count] : accum.targets)
            dominant = std::max(dominant, count);
        site.dominantTargetShare =
            accum.executions
                ? static_cast<double>(dominant) /
                      static_cast<double>(accum.executions)
                : 0.0;
        stats.sites.push_back(site);
        execution_counts.push_back(accum.executions);
        poly_weighted += static_cast<double>(site.distinctTargets) *
                         static_cast<double>(accum.executions);
    }
    std::sort(stats.sites.begin(), stats.sites.end(),
              [](const SiteStats &a, const SiteStats &b) {
                  return a.executions > b.executions;
              });

    stats.activeSites90 = coverageCount(execution_counts, 0.90);
    stats.activeSites95 = coverageCount(execution_counts, 0.95);
    stats.activeSites99 = coverageCount(execution_counts, 0.99);
    stats.activeSites100 = coverageCount(execution_counts, 1.00);
    stats.meanPolymorphism =
        stats.indirectBranches
            ? poly_weighted / static_cast<double>(stats.indirectBranches)
            : 0.0;

    return stats;
}

} // namespace ibp
