/**
 * @file
 * In-memory branch trace with benchmark metadata.
 */

#ifndef IBP_TRACE_TRACE_HH
#define IBP_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/branch_record.hh"

namespace ibp {

/**
 * A branch trace: an ordered sequence of BranchRecord plus metadata
 * identifying the (synthetic) benchmark it came from. Traces are
 * value types; the simulator only ever reads them.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /** Seed the trace was generated from (0 if unknown/recorded). */
    std::uint64_t seed() const { return _seed; }
    void setSeed(std::uint64_t seed) { _seed = seed; }

    void reserve(std::size_t n) { _records.reserve(n); }
    void append(const BranchRecord &record) { _records.push_back(record); }

    const std::vector<BranchRecord> &records() const { return _records; }
    std::size_t size() const { return _records.size(); }
    bool empty() const { return _records.empty(); }

    const BranchRecord &operator[](std::size_t i) const
    {
        return _records[i];
    }

    auto begin() const { return _records.begin(); }
    auto end() const { return _records.end(); }

    /** Count records of the kinds predicted as indirect branches. */
    std::uint64_t countPredictedIndirect() const;

    /** Count records of one specific kind. */
    std::uint64_t countKind(BranchKind kind) const;

    bool operator==(const Trace &other) const = default;

  private:
    std::string _name;
    std::uint64_t _seed = 0;
    std::vector<BranchRecord> _records;
};

} // namespace ibp

#endif // IBP_TRACE_TRACE_HH
