/**
 * @file
 * In-memory branch trace with benchmark metadata.
 */

#ifndef IBP_TRACE_TRACE_HH
#define IBP_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/branch_record.hh"

namespace ibp {

/** How a trace's records reached memory (artifact telemetry). */
enum class TraceReadPath : std::uint8_t
{
    Generated = 0, ///< Produced by the synthetic generator.
    Stream = 1,    ///< Parsed from the legacy .ibpt stream format.
    Mmap = 2,      ///< Zero-copy view of an mmap'ed .ibpm cache file.
};

/** "generated" / "stream" / "mmap". */
const char *traceReadPathName(TraceReadPath path);

/**
 * A branch trace: an ordered sequence of BranchRecord plus metadata
 * identifying the (synthetic) benchmark it came from. Traces are
 * value types; the simulator only ever reads them.
 *
 * Records live in one of two places: an owned vector (generated or
 * parsed traces) or a borrowed read-only view whose lifetime is held
 * by a shared backing object (the mmap'ed cache file — see
 * trace/trace_mmap.hh). Readers only ever touch data()/size(), so
 * the two are indistinguishable; a mutation (append/reserve) on a
 * view-backed trace first materialises a private copy.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /** Seed the trace was generated from (0 if unknown/recorded). */
    std::uint64_t seed() const { return _seed; }
    void setSeed(std::uint64_t seed) { _seed = seed; }

    /**
     * Number of distinct indirect branch sites the generator emitted
     * (0 when unknown). Pre-sizes per-site accounting in simulate().
     */
    std::uint32_t siteCountHint() const { return _siteCountHint; }
    void setSiteCountHint(std::uint32_t count) { _siteCountHint = count; }

    /** Transport the records arrived by; metadata only, not
     * identity (excluded from operator==). */
    TraceReadPath readPath() const { return _readPath; }
    void setReadPath(TraceReadPath path) { _readPath = path; }

    void
    reserve(std::size_t n)
    {
        materialise();
        _owned.reserve(n);
    }

    void
    append(const BranchRecord &record)
    {
        materialise();
        _owned.push_back(record);
    }

    const BranchRecord *
    data() const
    {
        return _backing ? _view : _owned.data();
    }

    std::size_t
    size() const
    {
        return _backing ? _viewSize : _owned.size();
    }

    bool empty() const { return size() == 0; }

    std::span<const BranchRecord>
    records() const
    {
        return {data(), size()};
    }

    const BranchRecord &operator[](std::size_t i) const
    {
        return data()[i];
    }

    const BranchRecord *begin() const { return data(); }
    const BranchRecord *end() const { return data() + size(); }

    /**
     * Build a trace over a borrowed record array; @p backing keeps
     * the storage (e.g. an mmap'ed file) alive for as long as any
     * copy of the returned trace exists.
     */
    static Trace
    fromView(std::string name, std::uint64_t seed,
             std::shared_ptr<const void> backing,
             const BranchRecord *records, std::size_t count)
    {
        Trace trace(std::move(name));
        trace._seed = seed;
        trace._backing = std::move(backing);
        trace._view = records;
        trace._viewSize = count;
        return trace;
    }

    /** Count records of the kinds predicted as indirect branches. */
    std::uint64_t countPredictedIndirect() const;

    /** Count records of one specific kind. */
    std::uint64_t countKind(BranchKind kind) const;

    /**
     * Trace identity: name, seed and records. Transport metadata
     * (read path, site-count hint, owned-vs-view storage) is
     * excluded, so a cache round trip compares equal to the
     * generated original.
     */
    bool operator==(const Trace &other) const;

  private:
    /** Copy a borrowed view into owned storage before mutating. */
    void
    materialise()
    {
        if (!_backing)
            return;
        _owned.assign(_view, _view + _viewSize);
        _backing.reset();
        _view = nullptr;
        _viewSize = 0;
    }

    std::string _name;
    std::uint64_t _seed = 0;
    std::uint32_t _siteCountHint = 0;
    TraceReadPath _readPath = TraceReadPath::Generated;
    std::vector<BranchRecord> _owned;
    std::shared_ptr<const void> _backing;
    const BranchRecord *_view = nullptr;
    std::size_t _viewSize = 0;
};

} // namespace ibp

#endif // IBP_TRACE_TRACE_HH
