/**
 * @file
 * In-memory branch trace with benchmark metadata.
 */

#ifndef IBP_TRACE_TRACE_HH
#define IBP_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/branch_record.hh"

namespace ibp {

/** How a trace's records reached memory (artifact telemetry). */
enum class TraceReadPath : std::uint8_t
{
    Generated = 0, ///< Produced by the synthetic generator.
    Stream = 1,    ///< Parsed from the legacy .ibpt stream format.
    Mmap = 2,      ///< Zero-copy view of an mmap'ed .ibpm cache file.
};

/** "generated" / "stream" / "mmap". */
const char *traceReadPathName(TraceReadPath path);

/**
 * Borrowed column pointers of a columnar trace (see
 * Trace::fromColumnarView): parallel pc/target arrays and the packed
 * meta byte per record (packBranchMeta). Valid while the Trace that
 * produced them (or a copy) is alive.
 */
struct TraceColumns
{
    const Addr *pc = nullptr;
    const Addr *target = nullptr;
    const std::uint8_t *meta = nullptr;
};

/**
 * A branch trace: an ordered sequence of BranchRecord plus metadata
 * identifying the (synthetic) benchmark it came from. Traces are
 * value types; the simulator only ever reads them.
 *
 * Records live in one of three places: an owned vector (generated or
 * parsed traces), a borrowed read-only record view whose lifetime is
 * held by a shared backing object (the mmap'ed v2 cache file — see
 * trace/trace_mmap.hh), or borrowed *columns* (separate pc/target/
 * meta streams, the mmap'ed v3 layout). Readers that touch
 * data()/size() see all three identically — a columnar trace
 * materialises an AoS shadow on first such demand (once, shared
 * across copies) — while block consumers (trace_block.hh) read the
 * columns zero-copy. A mutation (append/reserve) on any borrowed
 * form first materialises a private owned copy.
 */
class Trace
{
  public:
    /**
     * Shared storage of a columnar trace: borrowed column pointers,
     * the backing object that keeps them alive, and a lazily built
     * AoS shadow for record-oriented readers. Shared (not copied)
     * between copies of the owning Trace so the shadow is transposed
     * at most once per underlying file.
     */
    struct ColumnarStorage
    {
        std::shared_ptr<const void> backing;
        const Addr *pc = nullptr;
        const Addr *target = nullptr;
        const std::uint8_t *meta = nullptr;
        std::size_t count = 0;
        std::once_flag aosOnce;
        std::vector<BranchRecord> aos;
    };

    Trace() = default;
    explicit Trace(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /** Seed the trace was generated from (0 if unknown/recorded). */
    std::uint64_t seed() const { return _seed; }
    void setSeed(std::uint64_t seed) { _seed = seed; }

    /**
     * Number of distinct indirect branch sites the generator emitted
     * (0 when unknown). Pre-sizes per-site accounting in simulate().
     */
    std::uint32_t siteCountHint() const { return _siteCountHint; }
    void setSiteCountHint(std::uint32_t count) { _siteCountHint = count; }

    /** Transport the records arrived by; metadata only, not
     * identity (excluded from operator==). */
    TraceReadPath readPath() const { return _readPath; }
    void setReadPath(TraceReadPath path) { _readPath = path; }

    void
    reserve(std::size_t n)
    {
        materialise();
        _owned.reserve(n);
    }

    void
    append(const BranchRecord &record)
    {
        materialise();
        _owned.push_back(record);
    }

    const BranchRecord *
    data() const
    {
        if (_columnar)
            return columnarAos();
        return _backing ? _view : _owned.data();
    }

    std::size_t
    size() const
    {
        if (_columnar)
            return _columnar->count;
        return _backing ? _viewSize : _owned.size();
    }

    bool empty() const { return size() == 0; }

    std::span<const BranchRecord>
    records() const
    {
        return {data(), size()};
    }

    const BranchRecord &operator[](std::size_t i) const
    {
        return data()[i];
    }

    const BranchRecord *begin() const { return data(); }
    const BranchRecord *end() const { return data() + size(); }

    /**
     * Build a trace over a borrowed record array; @p backing keeps
     * the storage (e.g. an mmap'ed file) alive for as long as any
     * copy of the returned trace exists.
     */
    static Trace
    fromView(std::string name, std::uint64_t seed,
             std::shared_ptr<const void> backing,
             const BranchRecord *records, std::size_t count)
    {
        Trace trace(std::move(name));
        trace._seed = seed;
        trace._backing = std::move(backing);
        trace._view = records;
        trace._viewSize = count;
        return trace;
    }

    /**
     * Build a trace over borrowed SoA columns (the v3 `.ibpm`
     * layout): parallel @p pc / @p target arrays and a packed meta
     * byte per record (packBranchMeta). @p backing keeps the columns
     * alive as long as any copy of the returned trace exists.
     */
    static Trace
    fromColumnarView(std::string name, std::uint64_t seed,
                     std::shared_ptr<const void> backing,
                     const Addr *pc, const Addr *target,
                     const std::uint8_t *meta, std::size_t count)
    {
        Trace trace(std::move(name));
        trace._seed = seed;
        trace._columnar = std::make_shared<ColumnarStorage>();
        trace._columnar->backing = std::move(backing);
        trace._columnar->pc = pc;
        trace._columnar->target = target;
        trace._columnar->meta = meta;
        trace._columnar->count = count;
        return trace;
    }

    /** True when the records live as SoA columns (see columns()). */
    bool isColumnar() const { return _columnar != nullptr; }

    /**
     * Borrowed column pointers; only meaningful when isColumnar().
     * Block consumers read these zero-copy instead of forcing the
     * AoS shadow through data().
     */
    TraceColumns
    columns() const
    {
        if (!_columnar)
            return {};
        return {_columnar->pc, _columnar->target, _columnar->meta};
    }

    /** Count records of the kinds predicted as indirect branches. */
    std::uint64_t countPredictedIndirect() const;

    /** Count records of one specific kind. */
    std::uint64_t countKind(BranchKind kind) const;

    /**
     * Trace identity: name, seed and records. Transport metadata
     * (read path, site-count hint, owned-vs-view storage) is
     * excluded, so a cache round trip compares equal to the
     * generated original.
     */
    bool operator==(const Trace &other) const;

  private:
    /** Copy a borrowed view into owned storage before mutating. */
    void
    materialise()
    {
        if (_columnar) {
            const BranchRecord *aos = columnarAos();
            _owned.assign(aos, aos + _columnar->count);
            _columnar.reset();
            return;
        }
        if (!_backing)
            return;
        _owned.assign(_view, _view + _viewSize);
        _backing.reset();
        _view = nullptr;
        _viewSize = 0;
    }

    /** Transpose the columns into the shared AoS shadow (once). */
    const BranchRecord *columnarAos() const;

    std::string _name;
    std::uint64_t _seed = 0;
    std::uint32_t _siteCountHint = 0;
    TraceReadPath _readPath = TraceReadPath::Generated;
    std::vector<BranchRecord> _owned;
    std::shared_ptr<const void> _backing;
    const BranchRecord *_view = nullptr;
    std::size_t _viewSize = 0;
    std::shared_ptr<ColumnarStorage> _columnar;
};

} // namespace ibp

#endif // IBP_TRACE_TRACE_HH
