#include "trace/trace.hh"

#include <algorithm>

namespace ibp {

const char *
traceReadPathName(TraceReadPath path)
{
    switch (path) {
      case TraceReadPath::Generated: return "generated";
      case TraceReadPath::Stream:    return "stream";
      case TraceReadPath::Mmap:      return "mmap";
    }
    return "unknown";
}

std::uint64_t
Trace::countPredictedIndirect() const
{
    // Columnar traces answer from the meta stream so a statistics
    // pass does not force the AoS shadow into memory.
    if (_columnar) {
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < _columnar->count; ++i)
            count += branchMetaIsPredictedIndirect(_columnar->meta[i]);
        return count;
    }
    std::uint64_t count = 0;
    for (const auto &record : records())
        count += record.isPredictedIndirect() ? 1 : 0;
    return count;
}

std::uint64_t
Trace::countKind(BranchKind kind) const
{
    if (_columnar) {
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < _columnar->count; ++i)
            count += branchMetaKind(_columnar->meta[i]) == kind;
        return count;
    }
    std::uint64_t count = 0;
    for (const auto &record : records())
        count += record.kind == kind ? 1 : 0;
    return count;
}

const BranchRecord *
Trace::columnarAos() const
{
    ColumnarStorage &cols = *_columnar;
    std::call_once(cols.aosOnce, [&cols] {
        cols.aos.resize(cols.count);
        for (std::size_t i = 0; i < cols.count; ++i) {
            cols.aos[i] = BranchRecord{
                cols.pc[i], cols.target[i],
                branchMetaKind(cols.meta[i]),
                branchMetaTaken(cols.meta[i])};
        }
    });
    return cols.aos.data();
}

bool
Trace::operator==(const Trace &other) const
{
    return _name == other._name && _seed == other._seed &&
           size() == other.size() &&
           std::equal(begin(), end(), other.begin());
}

} // namespace ibp
