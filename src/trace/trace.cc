#include "trace/trace.hh"

#include <algorithm>

namespace ibp {

const char *
traceReadPathName(TraceReadPath path)
{
    switch (path) {
      case TraceReadPath::Generated: return "generated";
      case TraceReadPath::Stream:    return "stream";
      case TraceReadPath::Mmap:      return "mmap";
    }
    return "unknown";
}

std::uint64_t
Trace::countPredictedIndirect() const
{
    std::uint64_t count = 0;
    for (const auto &record : records())
        count += record.isPredictedIndirect() ? 1 : 0;
    return count;
}

std::uint64_t
Trace::countKind(BranchKind kind) const
{
    std::uint64_t count = 0;
    for (const auto &record : records())
        count += record.kind == kind ? 1 : 0;
    return count;
}

bool
Trace::operator==(const Trace &other) const
{
    return _name == other._name && _seed == other._seed &&
           size() == other.size() &&
           std::equal(begin(), end(), other.begin());
}

} // namespace ibp
