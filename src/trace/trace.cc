#include "trace/trace.hh"

namespace ibp {

std::uint64_t
Trace::countPredictedIndirect() const
{
    std::uint64_t count = 0;
    for (const auto &record : _records)
        count += record.isPredictedIndirect() ? 1 : 0;
    return count;
}

std::uint64_t
Trace::countKind(BranchKind kind) const
{
    std::uint64_t count = 0;
    for (const auto &record : _records)
        count += record.kind == kind ? 1 : 0;
    return count;
}

} // namespace ibp
