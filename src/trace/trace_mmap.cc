#include "trace/trace_mmap.hh"

#include <bit>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "robust/atomic_file.hh"
#include "util/bits.hh"

#if defined(__unix__) || defined(__APPLE__)
#define IBP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define IBP_HAVE_MMAP 0
#endif

namespace ibp {

namespace {

constexpr char kMagic[8] = {'I', 'B', 'P', 'M', 'A', 'P', '2', '\0'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kChecksumOffset = 56;
constexpr std::size_t kRecordAlign = 16;

// The on-disk record is BranchRecord's in-memory layout. Pin that
// layout down so a compiler/ABI change fails the build, not the
// reader.
static_assert(sizeof(BranchRecord) == 12);
static_assert(offsetof(BranchRecord, pc) == 0);
static_assert(offsetof(BranchRecord, target) == 4);
static_assert(offsetof(BranchRecord, kind) == 8);
static_assert(offsetof(BranchRecord, taken) == 9);
static_assert(std::is_trivially_copyable_v<BranchRecord>);

constexpr std::size_t
alignUp(std::size_t value, std::size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

[[maybe_unused]] void
putU32(std::string &blob, std::size_t offset, std::uint32_t value)
{
    std::memcpy(blob.data() + offset, &value, sizeof(value));
}

[[maybe_unused]] void
putU64(std::string &blob, std::size_t offset, std::uint64_t value)
{
    std::memcpy(blob.data() + offset, &value, sizeof(value));
}

[[maybe_unused]] std::uint32_t
getU32(const char *base, std::size_t offset)
{
    std::uint32_t value = 0;
    std::memcpy(&value, base + offset, sizeof(value));
    return value;
}

[[maybe_unused]] std::uint64_t
getU64(const char *base, std::size_t offset)
{
    std::uint64_t value = 0;
    std::memcpy(&value, base + offset, sizeof(value));
    return value;
}

/** FNV-1a over the first 56 header bytes (7 little-endian words). */
[[maybe_unused]] std::uint64_t
headerChecksum(const char *base)
{
    std::uint64_t words[7];
    std::memcpy(words, base, kChecksumOffset);
    return fnv1a64(words, 7, 0xcbf29ce484222325ULL);
}

[[maybe_unused]] RunError
badFile(const std::string &path, const std::string &what)
{
    return RunError::permanent("mmap trace '" + path + "': " + what);
}

#if IBP_HAVE_MMAP

/** Owns one read-only file mapping; unmapped with the last Trace
 * copy that references it. */
struct Mapping
{
    void *base = nullptr;
    std::size_t length = 0;

    Mapping(void *base, std::size_t length)
        : base(base), length(length)
    {
    }

    Mapping(const Mapping &) = delete;
    Mapping &operator=(const Mapping &) = delete;

    ~Mapping()
    {
        if (base != nullptr)
            ::munmap(base, length);
    }
};

#endif // IBP_HAVE_MMAP

} // namespace

bool
traceMmapSupported()
{
    return IBP_HAVE_MMAP != 0 &&
           std::endian::native == std::endian::little;
}

Result<std::string>
encodeTraceMmap(const Trace &trace)
{
    if (!traceMmapSupported()) {
        return RunError::permanent(
            "mmap trace format unsupported on this platform");
    }

    const std::size_t name_bytes = trace.name().size();
    const std::size_t records_offset =
        alignUp(kHeaderBytes + name_bytes, kRecordAlign);
    const std::size_t count = trace.size();

    // Zero-filled up front so padding (header gap, name tail, record
    // tail bytes) is deterministic: storing the same trace twice
    // must produce byte-identical files.
    std::string blob(records_offset + count * sizeof(BranchRecord),
                     '\0');
    std::memcpy(blob.data(), kMagic, sizeof(kMagic));
    putU32(blob, 8, kVersion);
    putU32(blob, 12, kEndianTag);
    putU32(blob, 16, sizeof(BranchRecord));
    putU32(blob, 20, kHeaderBytes);
    putU64(blob, 24, trace.seed());
    putU64(blob, 32, count);
    putU32(blob, 40, static_cast<std::uint32_t>(name_bytes));
    putU32(blob, 44, trace.siteCountHint());
    putU64(blob, 48, records_offset);
    putU64(blob, kChecksumOffset, headerChecksum(blob.data()));
    std::memcpy(blob.data() + kHeaderBytes, trace.name().data(),
                name_bytes);

    // Field-by-field rather than one bulk memcpy of the array, so
    // the two padding bytes of every record stay zero even if the
    // in-memory copies carry garbage there.
    char *out = blob.data() + records_offset;
    for (const BranchRecord &record : trace.records()) {
        std::memcpy(out + 0, &record.pc, sizeof(record.pc));
        std::memcpy(out + 4, &record.target, sizeof(record.target));
        out[8] = static_cast<char>(record.kind);
        out[9] = record.taken ? 1 : 0;
        out += sizeof(BranchRecord);
    }
    return blob;
}

Result<void>
saveTraceMmap(const Trace &trace, const std::string &path)
{
    auto blob = encodeTraceMmap(trace);
    if (!blob.ok())
        return blob.error();
    return writeFileAtomic(path, blob.value());
}

#if IBP_HAVE_MMAP

Result<Trace>
loadTraceMmap(const std::string &path)
{
    if (!traceMmapSupported())
        return badFile(path, "format unsupported on this platform");

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return badFile(path, "cannot open");

    struct stat info = {};
    if (::fstat(fd, &info) != 0 || info.st_size < 0) {
        ::close(fd);
        return badFile(path, "cannot stat");
    }
    const std::size_t file_size = static_cast<std::size_t>(info.st_size);
    if (file_size < kHeaderBytes) {
        ::close(fd);
        return badFile(path, "truncated header");
    }

    void *base =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (base == MAP_FAILED)
        return badFile(path, "mmap failed");
    auto mapping = std::make_shared<Mapping>(base, file_size);

    const char *bytes = static_cast<const char *>(base);
    if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0)
        return badFile(path, "bad magic");
    if (getU32(bytes, 8) != kVersion)
        return badFile(path, "version skew");
    if (getU32(bytes, 12) != kEndianTag)
        return badFile(path, "foreign endianness");
    if (getU32(bytes, 16) != sizeof(BranchRecord))
        return badFile(path, "record size mismatch");
    if (getU32(bytes, 20) != kHeaderBytes)
        return badFile(path, "header size mismatch");
    if (getU64(bytes, kChecksumOffset) != headerChecksum(bytes))
        return badFile(path, "header checksum mismatch");

    const std::uint64_t seed = getU64(bytes, 24);
    const std::uint64_t count = getU64(bytes, 32);
    const std::uint32_t name_bytes = getU32(bytes, 40);
    const std::uint32_t site_hint = getU32(bytes, 44);
    const std::uint64_t records_offset = getU64(bytes, 48);

    if (records_offset % kRecordAlign != 0)
        return badFile(path, "misaligned record array");
    if (records_offset != alignUp(kHeaderBytes + name_bytes,
                                  kRecordAlign) ||
        records_offset > file_size) {
        return badFile(path, "bad records offset");
    }
    if (count > (file_size - records_offset) / sizeof(BranchRecord))
        return badFile(path, "truncated record array");

    std::string name(bytes + kHeaderBytes, name_bytes);
    const auto *records = reinterpret_cast<const BranchRecord *>(
        bytes + records_offset);
    Trace trace = Trace::fromView(std::move(name), seed,
                                  std::move(mapping), records,
                                  static_cast<std::size_t>(count));
    trace.setSiteCountHint(site_hint);
    trace.setReadPath(TraceReadPath::Mmap);
    return trace;
}

#else // !IBP_HAVE_MMAP

Result<Trace>
loadTraceMmap(const std::string &path)
{
    return badFile(path, "format unsupported on this platform");
}

#endif // IBP_HAVE_MMAP

} // namespace ibp
