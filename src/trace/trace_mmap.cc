#include "trace/trace_mmap.hh"

#include <bit>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <utility>

#include "robust/atomic_file.hh"
#include "util/bits.hh"

#if defined(__unix__) || defined(__APPLE__)
#define IBP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define IBP_HAVE_MMAP 0
#endif

namespace ibp {

namespace {

constexpr char kMagicV2[8] = {'I', 'B', 'P', 'M', 'A', 'P', '2', '\0'};
constexpr char kMagicV3[8] = {'I', 'B', 'P', 'M', 'A', 'P', '3', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// v2 (record-array) layout constants.
constexpr std::uint32_t kVersionV2 = 2;
constexpr std::size_t kHeaderBytesV2 = 64;
constexpr std::size_t kChecksumOffsetV2 = 56;
constexpr std::size_t kRecordAlign = 16;

// v3 (columnar) layout constants.
constexpr std::uint32_t kVersionV3 = 3;
constexpr std::size_t kHeaderBytesV3 = 128;
constexpr std::size_t kChecksumOffsetV3 = 80;
constexpr std::size_t kColumnAlign = 64;

// The v2 on-disk record is BranchRecord's in-memory layout, and the
// v3 columns assume 4-byte addresses. Pin both down so a
// compiler/ABI change fails the build, not the reader.
static_assert(sizeof(BranchRecord) == 12);
static_assert(offsetof(BranchRecord, pc) == 0);
static_assert(offsetof(BranchRecord, target) == 4);
static_assert(offsetof(BranchRecord, kind) == 8);
static_assert(offsetof(BranchRecord, taken) == 9);
static_assert(std::is_trivially_copyable_v<BranchRecord>);
static_assert(sizeof(Addr) == 4);

constexpr std::size_t
alignUp(std::size_t value, std::size_t align)
{
    return (value + align - 1) & ~(align - 1);
}

[[maybe_unused]] void
putU32(std::string &blob, std::size_t offset, std::uint32_t value)
{
    std::memcpy(blob.data() + offset, &value, sizeof(value));
}

[[maybe_unused]] void
putU64(std::string &blob, std::size_t offset, std::uint64_t value)
{
    std::memcpy(blob.data() + offset, &value, sizeof(value));
}

[[maybe_unused]] std::uint32_t
getU32(const char *base, std::size_t offset)
{
    std::uint32_t value = 0;
    std::memcpy(&value, base + offset, sizeof(value));
    return value;
}

[[maybe_unused]] std::uint64_t
getU64(const char *base, std::size_t offset)
{
    std::uint64_t value = 0;
    std::memcpy(&value, base + offset, sizeof(value));
    return value;
}

/** FNV-1a over the header bytes before the checksum field
 * (little-endian words; @p words is 7 for v2, 10 for v3). */
[[maybe_unused]] std::uint64_t
headerChecksum(const char *base, std::size_t words)
{
    std::uint64_t buffer[10];
    std::memcpy(buffer, base, words * sizeof(std::uint64_t));
    return fnv1a64(buffer, words, 0xcbf29ce484222325ULL);
}

[[maybe_unused]] RunError
badFile(const std::string &path, const std::string &what)
{
    return RunError::permanent("mmap trace '" + path + "': " + what);
}

std::string
encodeV2(const Trace &trace)
{
    const std::size_t name_bytes = trace.name().size();
    const std::size_t records_offset =
        alignUp(kHeaderBytesV2 + name_bytes, kRecordAlign);
    const std::size_t count = trace.size();

    // Zero-filled up front so padding (header gap, name tail, record
    // tail bytes) is deterministic: storing the same trace twice
    // must produce byte-identical files.
    std::string blob(records_offset + count * sizeof(BranchRecord),
                     '\0');
    std::memcpy(blob.data(), kMagicV2, sizeof(kMagicV2));
    putU32(blob, 8, kVersionV2);
    putU32(blob, 12, kEndianTag);
    putU32(blob, 16, sizeof(BranchRecord));
    putU32(blob, 20, kHeaderBytesV2);
    putU64(blob, 24, trace.seed());
    putU64(blob, 32, count);
    putU32(blob, 40, static_cast<std::uint32_t>(name_bytes));
    putU32(blob, 44, trace.siteCountHint());
    putU64(blob, 48, records_offset);
    putU64(blob, kChecksumOffsetV2, headerChecksum(blob.data(), 7));
    std::memcpy(blob.data() + kHeaderBytesV2, trace.name().data(),
                name_bytes);

    // Field-by-field rather than one bulk memcpy of the array, so
    // the two padding bytes of every record stay zero even if the
    // in-memory copies carry garbage there.
    char *out = blob.data() + records_offset;
    for (const BranchRecord &record : trace.records()) {
        std::memcpy(out + 0, &record.pc, sizeof(record.pc));
        std::memcpy(out + 4, &record.target, sizeof(record.target));
        out[8] = static_cast<char>(record.kind);
        out[9] = record.taken ? 1 : 0;
        out += sizeof(BranchRecord);
    }
    return blob;
}

std::string
encodeV3(const Trace &trace)
{
    const std::size_t name_bytes = trace.name().size();
    const std::size_t count = trace.size();
    const std::size_t pc_offset =
        alignUp(kHeaderBytesV3 + name_bytes, kColumnAlign);
    const std::size_t target_offset =
        alignUp(pc_offset + count * sizeof(Addr), kColumnAlign);
    const std::size_t meta_offset =
        alignUp(target_offset + count * sizeof(Addr), kColumnAlign);
    const std::size_t file_size = meta_offset + count;

    // Zero-filled so all padding gaps are deterministic.
    std::string blob(file_size, '\0');
    std::memcpy(blob.data(), kMagicV3, sizeof(kMagicV3));
    putU32(blob, 8, kVersionV3);
    putU32(blob, 12, kEndianTag);
    putU32(blob, 16, sizeof(Addr));
    putU32(blob, 20, kHeaderBytesV3);
    putU64(blob, 24, trace.seed());
    putU64(blob, 32, count);
    putU32(blob, 40, static_cast<std::uint32_t>(name_bytes));
    putU32(blob, 44, trace.siteCountHint());
    putU64(blob, 48, pc_offset);
    putU64(blob, 56, target_offset);
    putU64(blob, 64, meta_offset);
    putU64(blob, 72, file_size);
    putU64(blob, kChecksumOffsetV3, headerChecksum(blob.data(), 10));
    std::memcpy(blob.data() + kHeaderBytesV3, trace.name().data(),
                name_bytes);

    char *pc_out = blob.data() + pc_offset;
    char *target_out = blob.data() + target_offset;
    char *meta_out = blob.data() + meta_offset;
    if (trace.isColumnar()) {
        // Re-storing an already columnar trace: bulk column copies,
        // no AoS shadow needed.
        const TraceColumns columns = trace.columns();
        std::memcpy(pc_out, columns.pc, count * sizeof(Addr));
        std::memcpy(target_out, columns.target, count * sizeof(Addr));
        std::memcpy(meta_out, columns.meta, count);
    } else {
        const BranchRecord *records = trace.data();
        for (std::size_t i = 0; i < count; ++i) {
            const BranchRecord &record = records[i];
            std::memcpy(pc_out + i * sizeof(Addr), &record.pc,
                        sizeof(Addr));
            std::memcpy(target_out + i * sizeof(Addr), &record.target,
                        sizeof(Addr));
            meta_out[i] = static_cast<char>(
                packBranchMeta(record.kind, record.taken));
        }
    }
    return blob;
}

#if IBP_HAVE_MMAP

/** Owns one read-only file mapping; unmapped with the last Trace
 * copy that references it. */
struct Mapping
{
    void *base = nullptr;
    std::size_t length = 0;

    Mapping(void *base, std::size_t length)
        : base(base), length(length)
    {
    }

    Mapping(const Mapping &) = delete;
    Mapping &operator=(const Mapping &) = delete;

    ~Mapping()
    {
        if (base != nullptr)
            ::munmap(base, length);
    }
};

Result<Trace>
loadV2(const std::string &path, std::shared_ptr<Mapping> mapping,
       const char *bytes, std::size_t file_size)
{
    if (file_size < kHeaderBytesV2)
        return badFile(path, "truncated header");
    if (getU32(bytes, 8) != kVersionV2)
        return badFile(path, "version skew");
    if (getU32(bytes, 12) != kEndianTag)
        return badFile(path, "foreign endianness");
    if (getU32(bytes, 16) != sizeof(BranchRecord))
        return badFile(path, "record size mismatch");
    if (getU32(bytes, 20) != kHeaderBytesV2)
        return badFile(path, "header size mismatch");
    if (getU64(bytes, kChecksumOffsetV2) != headerChecksum(bytes, 7))
        return badFile(path, "header checksum mismatch");

    const std::uint64_t seed = getU64(bytes, 24);
    const std::uint64_t count = getU64(bytes, 32);
    const std::uint32_t name_bytes = getU32(bytes, 40);
    const std::uint32_t site_hint = getU32(bytes, 44);
    const std::uint64_t records_offset = getU64(bytes, 48);

    if (records_offset % kRecordAlign != 0)
        return badFile(path, "misaligned record array");
    if (records_offset != alignUp(kHeaderBytesV2 + name_bytes,
                                  kRecordAlign) ||
        records_offset > file_size) {
        return badFile(path, "bad records offset");
    }
    if (count > (file_size - records_offset) / sizeof(BranchRecord))
        return badFile(path, "truncated record array");

    std::string name(bytes + kHeaderBytesV2, name_bytes);
    const auto *records = reinterpret_cast<const BranchRecord *>(
        bytes + records_offset);
    Trace trace = Trace::fromView(std::move(name), seed,
                                  std::move(mapping), records,
                                  static_cast<std::size_t>(count));
    trace.setSiteCountHint(site_hint);
    trace.setReadPath(TraceReadPath::Mmap);
    return trace;
}

Result<Trace>
loadV3(const std::string &path, std::shared_ptr<Mapping> mapping,
       const char *bytes, std::size_t file_size)
{
    if (file_size < kHeaderBytesV3)
        return badFile(path, "truncated header");
    if (getU32(bytes, 8) != kVersionV3)
        return badFile(path, "version skew");
    if (getU32(bytes, 12) != kEndianTag)
        return badFile(path, "foreign endianness");
    if (getU32(bytes, 16) != sizeof(Addr))
        return badFile(path, "address size mismatch");
    if (getU32(bytes, 20) != kHeaderBytesV3)
        return badFile(path, "header size mismatch");
    if (getU64(bytes, kChecksumOffsetV3) != headerChecksum(bytes, 10))
        return badFile(path, "header checksum mismatch");

    const std::uint64_t seed = getU64(bytes, 24);
    const std::uint64_t count = getU64(bytes, 32);
    const std::uint32_t name_bytes = getU32(bytes, 40);
    const std::uint32_t site_hint = getU32(bytes, 44);
    const std::uint64_t pc_offset = getU64(bytes, 48);
    const std::uint64_t target_offset = getU64(bytes, 56);
    const std::uint64_t meta_offset = getU64(bytes, 64);
    const std::uint64_t stored_size = getU64(bytes, 72);

    // The real file size bounds the count, which keeps the offset
    // recomputation below free of overflow.
    if (count > file_size)
        return badFile(path, "truncated column arrays");
    const std::size_t records = static_cast<std::size_t>(count);
    if (pc_offset !=
        alignUp(kHeaderBytesV3 + name_bytes, kColumnAlign)) {
        return badFile(path, "bad pc column offset");
    }
    if (target_offset !=
        alignUp(pc_offset + records * sizeof(Addr), kColumnAlign))
        return badFile(path, "bad target column offset");
    if (meta_offset !=
        alignUp(target_offset + records * sizeof(Addr), kColumnAlign))
        return badFile(path, "bad meta column offset");
    // Strict equality: a tail-truncated or tail-padded file is
    // rejected rather than partially served.
    if (stored_size != meta_offset + records ||
        stored_size != file_size) {
        return badFile(path, "file size mismatch");
    }

    std::string name(bytes + kHeaderBytesV3, name_bytes);
    const auto *pc =
        reinterpret_cast<const Addr *>(bytes + pc_offset);
    const auto *target =
        reinterpret_cast<const Addr *>(bytes + target_offset);
    const auto *meta =
        reinterpret_cast<const std::uint8_t *>(bytes + meta_offset);
    Trace trace = Trace::fromColumnarView(std::move(name), seed,
                                          std::move(mapping), pc,
                                          target, meta, records);
    trace.setSiteCountHint(site_hint);
    trace.setReadPath(TraceReadPath::Mmap);
    return trace;
}

#endif // IBP_HAVE_MMAP

} // namespace

bool
traceMmapSupported()
{
    return IBP_HAVE_MMAP != 0 &&
           std::endian::native == std::endian::little;
}

Result<std::string>
encodeTraceMmap(const Trace &trace)
{
    if (!traceMmapSupported()) {
        return RunError::permanent(
            "mmap trace format unsupported on this platform");
    }
    // IBP_TRACE_FORMAT=v2 pins the writer to the record-array layout
    // (used by the migration smoke test to seed a v2 cache; handy as
    // an escape hatch if a v3 consumer regresses).
    const char *format = std::getenv("IBP_TRACE_FORMAT");
    if (format != nullptr && std::string_view(format) == "v2")
        return encodeV2(trace);
    return encodeV3(trace);
}

Result<void>
saveTraceMmap(const Trace &trace, const std::string &path)
{
    auto blob = encodeTraceMmap(trace);
    if (!blob.ok())
        return blob.error();
    return writeFileAtomic(path, blob.value());
}

#if IBP_HAVE_MMAP

Result<Trace>
loadTraceMmap(const std::string &path)
{
    if (!traceMmapSupported())
        return badFile(path, "format unsupported on this platform");

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return badFile(path, "cannot open");

    struct stat info = {};
    if (::fstat(fd, &info) != 0 || info.st_size < 0) {
        ::close(fd);
        return badFile(path, "cannot stat");
    }
    const std::size_t file_size = static_cast<std::size_t>(info.st_size);
    if (file_size < sizeof(kMagicV3)) {
        ::close(fd);
        return badFile(path, "truncated header");
    }

    void *base =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (base == MAP_FAILED)
        return badFile(path, "mmap failed");
    auto mapping = std::make_shared<Mapping>(base, file_size);

    // The magic selects the layout: v3 columnar is what we write
    // today, v2 record arrays stay readable so a warm cache carries
    // across the format change without regeneration.
    const char *bytes = static_cast<const char *>(base);
    if (std::memcmp(bytes, kMagicV3, sizeof(kMagicV3)) == 0)
        return loadV3(path, std::move(mapping), bytes, file_size);
    if (std::memcmp(bytes, kMagicV2, sizeof(kMagicV2)) == 0)
        return loadV2(path, std::move(mapping), bytes, file_size);
    return badFile(path, "bad magic");
}

#else // !IBP_HAVE_MMAP

Result<Trace>
loadTraceMmap(const std::string &path)
{
    return badFile(path, "format unsupported on this platform");
}

#endif // IBP_HAVE_MMAP

} // namespace ibp
