#include "trace/trace_io.hh"

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <new>
#include <ostream>
#include <sstream>

namespace ibp {

namespace {

constexpr std::array<char, 4> binaryMagic = {'I', 'B', 'P', 'T'};
constexpr std::uint32_t binaryVersion = 1;

/** Internal helpers throw RunException; the public entry points
 * catch it at the format boundary and return a Result. */
[[noreturn]] void
badTrace(const std::string &message)
{
    throw RunException(RunError::permanent(message));
}

void
writeU32(std::ostream &out, std::uint32_t value)
{
    // Explicit little-endian byte order for portability.
    const std::array<char, 4> bytes = {
        static_cast<char>(value & 0xff),
        static_cast<char>((value >> 8) & 0xff),
        static_cast<char>((value >> 16) & 0xff),
        static_cast<char>((value >> 24) & 0xff),
    };
    out.write(bytes.data(), bytes.size());
}

void
writeU64(std::ostream &out, std::uint64_t value)
{
    writeU32(out, static_cast<std::uint32_t>(value));
    writeU32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t
readU32(std::istream &in)
{
    std::array<unsigned char, 4> bytes{};
    in.read(reinterpret_cast<char *>(bytes.data()), bytes.size());
    if (!in)
        badTrace("truncated binary trace");
    return static_cast<std::uint32_t>(bytes[0]) |
           static_cast<std::uint32_t>(bytes[1]) << 8 |
           static_cast<std::uint32_t>(bytes[2]) << 16 |
           static_cast<std::uint32_t>(bytes[3]) << 24;
}

std::uint64_t
readU64(std::istream &in)
{
    const std::uint64_t lo = readU32(in);
    const std::uint64_t hi = readU32(in);
    return lo | (hi << 32);
}

BranchKind
kindFromByte(unsigned byte)
{
    if (byte > static_cast<unsigned>(BranchKind::Return)) {
        badTrace("bad branch kind " + std::to_string(byte) +
                 " in trace");
    }
    return static_cast<BranchKind>(byte);
}

BranchKind
kindFromName(const std::string &name)
{
    for (unsigned k = 0; k <= static_cast<unsigned>(BranchKind::Return);
         ++k) {
        const auto kind = static_cast<BranchKind>(k);
        if (name == branchKindName(kind))
            return kind;
    }
    badTrace("bad branch kind '" + name + "' in text trace");
}

Trace
readTraceBinaryOrThrow(std::istream &in)
{
    std::array<char, 4> magic{};
    in.read(magic.data(), magic.size());
    if (!in || magic != binaryMagic)
        badTrace("not a libibp binary trace (bad magic)");
    const std::uint32_t version = readU32(in);
    if (version != binaryVersion) {
        badTrace("unsupported trace version " +
                 std::to_string(version));
    }
    const std::uint64_t seed = readU64(in);
    const std::uint32_t name_len = readU32(in);
    if (name_len > 4096) {
        badTrace("implausible trace name length " +
                 std::to_string(name_len));
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in)
        badTrace("truncated binary trace");
    const std::uint64_t count = readU64(in);
    // The count comes straight from the file, so validate it against
    // the bytes actually left in the stream before reserve() turns a
    // corrupt header into a multi-exabyte allocation. Each record is
    // 9 bytes on disk (pc + target + flags).
    constexpr std::uint64_t record_bytes = 9;
    const auto body_start = in.tellg();
    if (body_start != std::istream::pos_type(-1)) {
        in.seekg(0, std::ios::end);
        const auto stream_end = in.tellg();
        in.seekg(body_start);
        if (stream_end != std::istream::pos_type(-1) &&
            count > static_cast<std::uint64_t>(
                        stream_end - body_start) /
                        record_bytes) {
            badTrace("trace record count " + std::to_string(count) +
                     " exceeds the bytes remaining in the stream");
        }
    }

    Trace trace(name);
    trace.setSeed(seed);
    try {
        trace.reserve(count);
    } catch (const std::bad_alloc &) {
        // Unseekable streams skip the size check above; a count too
        // large to reserve is still corrupt input, not an abort.
        badTrace("trace record count " + std::to_string(count) +
                 " is too large to allocate");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        BranchRecord record;
        record.pc = readU32(in);
        record.target = readU32(in);
        const int flags = in.get();
        if (flags < 0)
            badTrace("truncated binary trace");
        record.kind = kindFromByte(static_cast<unsigned>(flags) & 0x7f);
        record.taken = (static_cast<unsigned>(flags) & 0x80u) != 0;
        trace.append(record);
    }
    return trace;
}

/** strtoull wrapper that rejects garbage instead of throwing or
 * silently parsing a prefix, and rejects values that do not fit an
 * Addr instead of truncating them to a different address. */
Addr
parseAddr(const std::string &text, std::uint64_t line_no)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0') {
        badTrace("malformed address '" + text + "' on text trace line " +
                 std::to_string(line_no));
    }
    if (errno == ERANGE ||
        value > std::numeric_limits<Addr>::max()) {
        badTrace("address '" + text + "' out of range on text trace "
                 "line " + std::to_string(line_no));
    }
    return static_cast<Addr>(value);
}

Trace
readTraceTextOrThrow(std::istream &in)
{
    Trace trace;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream meta(line.substr(1));
            std::string key;
            meta >> key;
            if (key == "name") {
                // The writer emits the full name, which may contain
                // spaces; take the rest of the line, not one token.
                std::string name;
                std::getline(meta, name);
                const auto start = name.find_first_not_of(' ');
                trace.setName(start == std::string::npos
                                  ? ""
                                  : name.substr(start));
            } else if (key == "seed") {
                std::uint64_t seed = 0;
                meta >> seed;
                trace.setSeed(seed);
            }
            continue;
        }
        std::istringstream fields(line);
        std::string kind_name;
        std::string pc_str, target_str;
        int taken = 1;
        if (!(fields >> kind_name >> pc_str >> target_str >> taken)) {
            badTrace("malformed text trace line " +
                     std::to_string(line_no) + ": '" + line + "'");
        }
        BranchRecord record;
        record.kind = kindFromName(kind_name);
        record.pc = parseAddr(pc_str, line_no);
        record.target = parseAddr(target_str, line_no);
        record.taken = taken != 0;
        trace.append(record);
    }
    return trace;
}

} // namespace

Result<void>
writeTraceBinary(const Trace &trace, std::ostream &out)
{
    out.write(binaryMagic.data(), binaryMagic.size());
    writeU32(out, binaryVersion);
    writeU64(out, trace.seed());
    writeU32(out, static_cast<std::uint32_t>(trace.name().size()));
    out.write(trace.name().data(),
              static_cast<std::streamsize>(trace.name().size()));
    writeU64(out, trace.size());
    for (const auto &record : trace) {
        writeU32(out, record.pc);
        writeU32(out, record.target);
        const unsigned flags = static_cast<unsigned>(record.kind) |
                               (record.taken ? 0x80u : 0u);
        out.put(static_cast<char>(flags));
    }
    if (!out)
        return RunError::permanent("error writing binary trace");
    return Result<void>();
}

Result<Trace>
readTraceBinary(std::istream &in)
{
    try {
        return readTraceBinaryOrThrow(in);
    } catch (const RunException &exception) {
        return exception.error();
    } catch (const std::bad_alloc &) {
        // A corrupt input must never escape the Result boundary as
        // an allocation failure and abort the process.
        return RunError::permanent(
            "out of memory reading binary trace");
    }
}

Result<void>
writeTraceText(const Trace &trace, std::ostream &out)
{
    out << "# ibp-trace v1\n";
    out << "# name " << trace.name() << '\n';
    out << "# seed " << trace.seed() << '\n';
    for (const auto &record : trace) {
        out << branchKindName(record.kind) << ' ' << std::hex
            << "0x" << record.pc << " 0x" << record.target << std::dec
            << ' ' << (record.taken ? 1 : 0) << '\n';
    }
    if (!out)
        return RunError::permanent("error writing text trace");
    return Result<void>();
}

Result<Trace>
readTraceText(std::istream &in)
{
    try {
        return readTraceTextOrThrow(in);
    } catch (const RunException &exception) {
        return exception.error();
    } catch (const std::bad_alloc &) {
        return RunError::permanent(
            "out of memory reading text trace");
    }
}

Result<void>
saveTrace(const Trace &trace, const std::string &path)
{
    const bool binary = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".ibpt") == 0;
    std::ofstream out(path,
                      binary ? std::ios::binary : std::ios::out);
    if (!out) {
        return RunError::permanent("cannot open '" + path +
                                   "' for writing");
    }
    return binary ? writeTraceBinary(trace, out)
                  : writeTraceText(trace, out);
}

Result<Trace>
loadTrace(const std::string &path)
{
    const bool binary = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".ibpt") == 0;
    std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
    if (!in) {
        return RunError::permanent("cannot open '" + path +
                                   "' for reading");
    }
    Result<Trace> result =
        binary ? readTraceBinary(in) : readTraceText(in);
    if (!result.ok()) {
        return RunError::permanent(path + ": " +
                                   result.error().message);
    }
    return result;
}

} // namespace ibp
