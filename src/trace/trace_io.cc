#include "trace/trace_io.hh"

#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace ibp {

namespace {

constexpr std::array<char, 4> binaryMagic = {'I', 'B', 'P', 'T'};
constexpr std::uint32_t binaryVersion = 1;

/** Internal helpers throw RunException; the public entry points
 * catch it at the format boundary and return a Result. */
[[noreturn]] void
badTrace(const std::string &message)
{
    throw RunException(RunError::permanent(message));
}

void
writeU32(std::ostream &out, std::uint32_t value)
{
    // Explicit little-endian byte order for portability.
    const std::array<char, 4> bytes = {
        static_cast<char>(value & 0xff),
        static_cast<char>((value >> 8) & 0xff),
        static_cast<char>((value >> 16) & 0xff),
        static_cast<char>((value >> 24) & 0xff),
    };
    out.write(bytes.data(), bytes.size());
}

void
writeU64(std::ostream &out, std::uint64_t value)
{
    writeU32(out, static_cast<std::uint32_t>(value));
    writeU32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t
readU32(std::istream &in)
{
    std::array<unsigned char, 4> bytes{};
    in.read(reinterpret_cast<char *>(bytes.data()), bytes.size());
    if (!in)
        badTrace("truncated binary trace");
    return static_cast<std::uint32_t>(bytes[0]) |
           static_cast<std::uint32_t>(bytes[1]) << 8 |
           static_cast<std::uint32_t>(bytes[2]) << 16 |
           static_cast<std::uint32_t>(bytes[3]) << 24;
}

std::uint64_t
readU64(std::istream &in)
{
    const std::uint64_t lo = readU32(in);
    const std::uint64_t hi = readU32(in);
    return lo | (hi << 32);
}

BranchKind
kindFromByte(unsigned byte)
{
    if (byte > static_cast<unsigned>(BranchKind::Return)) {
        badTrace("bad branch kind " + std::to_string(byte) +
                 " in trace");
    }
    return static_cast<BranchKind>(byte);
}

BranchKind
kindFromName(const std::string &name)
{
    for (unsigned k = 0; k <= static_cast<unsigned>(BranchKind::Return);
         ++k) {
        const auto kind = static_cast<BranchKind>(k);
        if (name == branchKindName(kind))
            return kind;
    }
    badTrace("bad branch kind '" + name + "' in text trace");
}

Trace
readTraceBinaryOrThrow(std::istream &in)
{
    std::array<char, 4> magic{};
    in.read(magic.data(), magic.size());
    if (!in || magic != binaryMagic)
        badTrace("not a libibp binary trace (bad magic)");
    const std::uint32_t version = readU32(in);
    if (version != binaryVersion) {
        badTrace("unsupported trace version " +
                 std::to_string(version));
    }
    const std::uint64_t seed = readU64(in);
    const std::uint32_t name_len = readU32(in);
    if (name_len > 4096) {
        badTrace("implausible trace name length " +
                 std::to_string(name_len));
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in)
        badTrace("truncated binary trace");
    const std::uint64_t count = readU64(in);

    Trace trace(name);
    trace.setSeed(seed);
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        BranchRecord record;
        record.pc = readU32(in);
        record.target = readU32(in);
        const int flags = in.get();
        if (flags < 0)
            badTrace("truncated binary trace");
        record.kind = kindFromByte(static_cast<unsigned>(flags) & 0x7f);
        record.taken = (static_cast<unsigned>(flags) & 0x80u) != 0;
        trace.append(record);
    }
    return trace;
}

/** strtoul wrapper that rejects garbage instead of throwing or
 * silently parsing a prefix. */
Addr
parseAddr(const std::string &text, std::uint64_t line_no)
{
    char *end = nullptr;
    const unsigned long value = std::strtoul(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0') {
        badTrace("malformed address '" + text + "' on text trace line " +
                 std::to_string(line_no));
    }
    return static_cast<Addr>(value);
}

Trace
readTraceTextOrThrow(std::istream &in)
{
    Trace trace;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream meta(line.substr(1));
            std::string key;
            meta >> key;
            if (key == "name") {
                std::string name;
                meta >> name;
                trace.setName(name);
            } else if (key == "seed") {
                std::uint64_t seed = 0;
                meta >> seed;
                trace.setSeed(seed);
            }
            continue;
        }
        std::istringstream fields(line);
        std::string kind_name;
        std::string pc_str, target_str;
        int taken = 1;
        if (!(fields >> kind_name >> pc_str >> target_str >> taken)) {
            badTrace("malformed text trace line " +
                     std::to_string(line_no) + ": '" + line + "'");
        }
        BranchRecord record;
        record.kind = kindFromName(kind_name);
        record.pc = parseAddr(pc_str, line_no);
        record.target = parseAddr(target_str, line_no);
        record.taken = taken != 0;
        trace.append(record);
    }
    return trace;
}

} // namespace

Result<void>
writeTraceBinary(const Trace &trace, std::ostream &out)
{
    out.write(binaryMagic.data(), binaryMagic.size());
    writeU32(out, binaryVersion);
    writeU64(out, trace.seed());
    writeU32(out, static_cast<std::uint32_t>(trace.name().size()));
    out.write(trace.name().data(),
              static_cast<std::streamsize>(trace.name().size()));
    writeU64(out, trace.size());
    for (const auto &record : trace) {
        writeU32(out, record.pc);
        writeU32(out, record.target);
        const unsigned flags = static_cast<unsigned>(record.kind) |
                               (record.taken ? 0x80u : 0u);
        out.put(static_cast<char>(flags));
    }
    if (!out)
        return RunError::permanent("error writing binary trace");
    return Result<void>();
}

Result<Trace>
readTraceBinary(std::istream &in)
{
    try {
        return readTraceBinaryOrThrow(in);
    } catch (const RunException &exception) {
        return exception.error();
    }
}

Result<void>
writeTraceText(const Trace &trace, std::ostream &out)
{
    out << "# ibp-trace v1\n";
    out << "# name " << trace.name() << '\n';
    out << "# seed " << trace.seed() << '\n';
    for (const auto &record : trace) {
        out << branchKindName(record.kind) << ' ' << std::hex
            << "0x" << record.pc << " 0x" << record.target << std::dec
            << ' ' << (record.taken ? 1 : 0) << '\n';
    }
    if (!out)
        return RunError::permanent("error writing text trace");
    return Result<void>();
}

Result<Trace>
readTraceText(std::istream &in)
{
    try {
        return readTraceTextOrThrow(in);
    } catch (const RunException &exception) {
        return exception.error();
    }
}

Result<void>
saveTrace(const Trace &trace, const std::string &path)
{
    const bool binary = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".ibpt") == 0;
    std::ofstream out(path,
                      binary ? std::ios::binary : std::ios::out);
    if (!out) {
        return RunError::permanent("cannot open '" + path +
                                   "' for writing");
    }
    return binary ? writeTraceBinary(trace, out)
                  : writeTraceText(trace, out);
}

Result<Trace>
loadTrace(const std::string &path)
{
    const bool binary = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".ibpt") == 0;
    std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
    if (!in) {
        return RunError::permanent("cannot open '" + path +
                                   "' for reading");
    }
    Result<Trace> result =
        binary ? readTraceBinary(in) : readTraceText(in);
    if (!result.ok()) {
        return RunError::permanent(path + ": " +
                                   result.error().message);
    }
    return result;
}

} // namespace ibp
