/**
 * @file
 * Zero-copy mmap trace format (`.ibpm`, cache format v2).
 *
 * The legacy `.ibpt` stream format deserialises every record through
 * an istream, so a warm trace-cache hit still pays a full parse plus
 * a vector copy per benchmark. The v2 format instead lays the record
 * array out on disk exactly as BranchRecord is laid out in memory
 * (little-endian, 12 bytes per record, explicitly zeroed padding),
 * 16-byte aligned behind a 64-byte header, so a reader can mmap the
 * file read-only and hand the simulator a borrowed view of the page
 * cache - no parse, no copy, and the records are shared between
 * concurrent worker processes by the kernel.
 *
 * Layout (all integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "IBPMAP2\0"
 *        8     4  version (2)
 *       12     4  endian tag (0x01020304 as stored)
 *       16     4  record size in bytes (sizeof(BranchRecord) == 12)
 *       20     4  header size in bytes (64)
 *       24     8  generator seed
 *       32     8  record count
 *       40     4  benchmark-name byte count
 *       44     4  site-count hint
 *       48     8  records offset (align16(64 + nameBytes))
 *       56     8  FNV-1a checksum of the first 56 header bytes
 *       64     -  name bytes, zero padding to the records offset,
 *                 then the record array
 *
 * Every validation failure (bad magic, version skew, foreign
 * endianness, checksum mismatch, truncation, misaligned or
 * out-of-bounds records) is a permanent RunError; the trace cache
 * treats all of them as a miss and falls back to the `.ibpt` stream
 * reader or regeneration. See docs/PERFORMANCE.md.
 */

#ifndef IBP_TRACE_TRACE_MMAP_HH
#define IBP_TRACE_TRACE_MMAP_HH

#include <string>

#include "robust/error.hh"
#include "trace/trace.hh"

namespace ibp {

/**
 * True when this platform can produce and consume `.ibpm` files:
 * little-endian, 12-byte BranchRecord layout, POSIX mmap. On other
 * platforms the cache transparently sticks to the stream format.
 */
bool traceMmapSupported();

/**
 * Serialise @p trace to the v2 byte layout. Deterministic: the same
 * trace always encodes to the same bytes (padding is zeroed).
 * Fails (permanent) when the platform is unsupported.
 */
Result<std::string> encodeTraceMmap(const Trace &trace);

/**
 * Map @p path read-only and wrap its record array in a Trace view
 * (readPath() == TraceReadPath::Mmap). The mapping stays alive for
 * as long as any copy of the returned Trace does. Any validation
 * failure is a permanent RunError.
 */
Result<Trace> loadTraceMmap(const std::string &path);

/** encodeTraceMmap() + crash-safe atomic write to @p path. */
Result<void> saveTraceMmap(const Trace &trace, const std::string &path);

} // namespace ibp

#endif // IBP_TRACE_TRACE_MMAP_HH
