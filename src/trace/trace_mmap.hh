/**
 * @file
 * Zero-copy mmap trace formats (`.ibpm`, cache formats v2 and v3).
 *
 * The legacy `.ibpt` stream format deserialises every record through
 * an istream, so a warm trace-cache hit still pays a full parse plus
 * a vector copy per benchmark. The mmap formats instead lay the
 * records out on disk in directly consumable shape, so a reader can
 * mmap the file read-only and hand the simulator a borrowed view of
 * the page cache - no parse, no copy, and the bytes are shared
 * between concurrent worker processes by the kernel.
 *
 * v2 stores one 12-byte BranchRecord per branch (the in-memory
 * layout, explicitly zeroed padding), 16-byte aligned behind a
 * 64-byte header. v3 - what the writer produces today - stores the
 * same branches as three separate 64-byte-aligned columns (pc,
 * target, packed meta byte; see packBranchMeta), which is the shape
 * the SIMD block engine (trace/trace_block.hh) consumes zero-copy.
 * The reader sniffs the magic and accepts both, so a warm v2 cache
 * keeps serving across the format change. Setting IBP_TRACE_FORMAT=v2
 * in the environment pins the writer back to v2.
 *
 * v2 layout (all integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "IBPMAP2\0"
 *        8     4  version (2)
 *       12     4  endian tag (0x01020304 as stored)
 *       16     4  record size in bytes (sizeof(BranchRecord) == 12)
 *       20     4  header size in bytes (64)
 *       24     8  generator seed
 *       32     8  record count
 *       40     4  benchmark-name byte count
 *       44     4  site-count hint
 *       48     8  records offset (align16(64 + nameBytes))
 *       56     8  FNV-1a checksum of the first 56 header bytes
 *       64     -  name bytes, zero padding to the records offset,
 *                 then the record array
 *
 * v3 layout (all integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "IBPMAP3\0"
 *        8     4  version (3)
 *       12     4  endian tag (0x01020304 as stored)
 *       16     4  address size in bytes (sizeof(Addr) == 4)
 *       20     4  header size in bytes (128)
 *       24     8  generator seed
 *       32     8  record count
 *       40     4  benchmark-name byte count
 *       44     4  site-count hint
 *       48     8  pc column offset (align64(128 + nameBytes))
 *       56     8  target column offset (align64(pc + 4*count))
 *       64     8  meta column offset (align64(target + 4*count))
 *       72     8  file size (meta + count; must equal st_size)
 *       80     8  FNV-1a checksum of the first 80 header bytes
 *       88    40  zero padding to the 128-byte header boundary
 *      128     -  name bytes, then the zero-padded aligned columns
 *
 * Every validation failure (bad magic, version skew, foreign
 * endianness, checksum mismatch, truncation, misaligned or
 * out-of-bounds arrays) is a permanent RunError; the trace cache
 * treats all of them as a miss and falls back to the `.ibpt` stream
 * reader or regeneration. See docs/PERFORMANCE.md.
 */

#ifndef IBP_TRACE_TRACE_MMAP_HH
#define IBP_TRACE_TRACE_MMAP_HH

#include <string>

#include "robust/error.hh"
#include "trace/trace.hh"

namespace ibp {

/**
 * True when this platform can produce and consume `.ibpm` files:
 * little-endian, 12-byte BranchRecord layout, POSIX mmap. On other
 * platforms the cache transparently sticks to the stream format.
 */
bool traceMmapSupported();

/**
 * Serialise @p trace to the v3 columnar byte layout (or v2 when
 * IBP_TRACE_FORMAT=v2 is set). Deterministic: the same trace always
 * encodes to the same bytes (padding is zeroed). Fails (permanent)
 * when the platform is unsupported.
 */
Result<std::string> encodeTraceMmap(const Trace &trace);

/**
 * Map @p path read-only and wrap its records in a Trace view
 * (readPath() == TraceReadPath::Mmap): a columnar view for v3
 * files, a record-array view for v2. The mapping stays alive for
 * as long as any copy of the returned Trace does. Any validation
 * failure is a permanent RunError.
 */
Result<Trace> loadTraceMmap(const std::string &path);

/** encodeTraceMmap() + crash-safe atomic write to @p path. */
Result<void> saveTraceMmap(const Trace &trace, const std::string &path);

} // namespace ibp

#endif // IBP_TRACE_TRACE_MMAP_HH
