/**
 * @file
 * Content-addressed on-disk cache of generated traces.
 *
 * Regenerating the 17 synthetic benchmark traces is the dominant
 * startup cost of every bench binary; the cache makes it a one-time
 * cost per configuration. Entries are stored in the zero-copy mmap
 * `.ibpm` format (see trace/trace_mmap.hh) under a single directory,
 * one file per *key* - an opaque content address computed by the
 * producer from everything that determines the trace bytes (see
 * benchmarkTraceCacheKey() in src/synth, which hashes the generator
 * version, the full benchmark profile, the scaled event count, the
 * seed and the emit-conditionals flag). A configuration change
 * therefore changes the key and misses cleanly; stale entries are
 * never consulted and the directory can be deleted at any time.
 *
 * A warm load mmaps the entry read-only and hands the simulator a
 * borrowed view (Trace::readPath() == TraceReadPath::Mmap). When the
 * `.ibpm` entry is absent or fails validation, load() falls back to
 * a legacy `.ibpt` stream entry at the same key; when the platform
 * cannot produce the mmap format at all (big-endian, no POSIX mmap),
 * store() degrades to the stream format.
 *
 * Writes go through the shared tmp+fsync+atomic-rename path, so
 * concurrent producers and a crash mid-store can never leave a
 * truncated entry behind; a corrupt entry (torn by external
 * interference) fails the binary reader's validation and is treated
 * as a miss. See docs/PERFORMANCE.md.
 */

#ifndef IBP_TRACE_TRACE_CACHE_HH
#define IBP_TRACE_TRACE_CACHE_HH

#include <string>

#include "robust/error.hh"
#include "trace/trace.hh"

namespace ibp {

class TraceCache
{
  public:
    /** Default directory used by `--trace-cache` with no value. */
    static constexpr const char *kDefaultDirectory = "out/trace-cache";

    explicit TraceCache(std::string directory);

    /**
     * The process-wide cache, armed from the IBP_TRACE_CACHE
     * environment variable (its value is the cache directory) on
     * first use, or by configureGlobal(). nullptr when disabled.
     */
    static TraceCache *global();

    /**
     * Re-point the process-wide cache at @p directory ("" disables).
     * Not thread-safe against concurrent global() users; call from
     * startup or single-threaded test setup only.
     */
    static void configureGlobal(const std::string &directory);

    const std::string &directory() const { return _directory; }

    /** File an entry for @p key lives in: `<dir>/<key>.ibpm`. */
    std::string pathFor(const std::string &key) const;

    /** Legacy stream-format entry: `<dir>/<key>.ibpt`. Consulted as
     * a load fallback; written only when mmap is unsupported. */
    std::string streamPathFor(const std::string &key) const;

    /**
     * Load the entry for @p key. A missing, truncated, or otherwise
     * malformed entry is a permanent RunError - callers treat any
     * error as a cache miss and regenerate.
     */
    Result<Trace> load(const std::string &key) const;

    /**
     * Durably store @p trace under @p key (tmp+fsync+rename; the
     * directory is created if needed). Failures are reported, not
     * fatal: a full disk degrades the cache, never the run.
     */
    Result<void> store(const std::string &key,
                       const Trace &trace) const;

  private:
    std::string _directory;
};

} // namespace ibp

#endif // IBP_TRACE_TRACE_CACHE_HH
