/**
 * @file
 * Content-addressed on-disk cache of generated traces.
 *
 * Regenerating the 17 synthetic benchmark traces is the dominant
 * startup cost of every bench binary; the cache makes it a one-time
 * cost per configuration. Entries are stored in the zero-copy mmap
 * `.ibpm` format (see trace/trace_mmap.hh) under a single directory,
 * one file per *key* - an opaque content address computed by the
 * producer from everything that determines the trace bytes (see
 * benchmarkTraceCacheKey() in src/synth, which hashes the generator
 * version, the full benchmark profile, the scaled event count, the
 * seed and the emit-conditionals flag). A configuration change
 * therefore changes the key and misses cleanly; stale entries are
 * never consulted and the directory can be deleted at any time.
 *
 * A warm load mmaps the entry read-only and hands the simulator a
 * borrowed view (Trace::readPath() == TraceReadPath::Mmap). When the
 * `.ibpm` entry is absent or fails validation, load() falls back to
 * a legacy `.ibpt` stream entry at the same key; when the platform
 * cannot produce the mmap format at all (big-endian, no POSIX mmap),
 * store() degrades to the stream format.
 *
 * Writes go through the shared tmp+fsync+atomic-rename path, so
 * concurrent producers and a crash mid-store can never leave a
 * truncated entry behind; a corrupt entry (torn by external
 * interference) fails the binary reader's validation and is treated
 * as a miss. See docs/PERFORMANCE.md.
 */

#ifndef IBP_TRACE_TRACE_CACHE_HH
#define IBP_TRACE_TRACE_CACHE_HH

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "robust/error.hh"
#include "trace/trace.hh"

namespace ibp {

/** Outcome of TraceCache::getOrGenerate. */
struct TraceAcquisition
{
    Trace trace;
    /** True when the trace was served from the on-disk cache (a
     *  load, including one that waited for a concurrent generator);
     *  false when this caller ran the generator itself. */
    bool fromCache = false;
};

class TraceCache
{
  public:
    /** Default directory used by `--trace-cache` with no value. */
    static constexpr const char *kDefaultDirectory = "out/trace-cache";

    explicit TraceCache(std::string directory);

    /**
     * The process-wide cache, armed from the IBP_TRACE_CACHE
     * environment variable (its value is the cache directory) on
     * first use, or by configureGlobal(). nullptr when disabled.
     */
    static TraceCache *global();

    /**
     * Re-point the process-wide cache at @p directory ("" disables).
     * Not thread-safe against concurrent global() users; call from
     * startup or single-threaded test setup only.
     */
    static void configureGlobal(const std::string &directory);

    const std::string &directory() const { return _directory; }

    /** File an entry for @p key lives in: `<dir>/<key>.ibpm`. */
    std::string pathFor(const std::string &key) const;

    /** Legacy stream-format entry: `<dir>/<key>.ibpt`. Consulted as
     * a load fallback; written only when mmap is unsupported. */
    std::string streamPathFor(const std::string &key) const;

    /**
     * Load the entry for @p key. A missing, truncated, or otherwise
     * malformed entry is a permanent RunError - callers treat any
     * error as a cache miss and regenerate.
     */
    Result<Trace> load(const std::string &key) const;

    /**
     * Durably store @p trace under @p key (tmp+fsync+rename; the
     * directory is created if needed). Failures are reported, not
     * fatal: a full disk degrades the cache, never the run.
     */
    Result<void> store(const std::string &key,
                       const Trace &trace) const;

    /**
     * Load the entry for @p key, or run @p generate (and store the
     * result) on a miss - with in-process coordination so concurrent
     * callers of the same cold key produce ONE generation: the first
     * caller becomes the leader (load, else generate + store), every
     * other caller blocks until the leader publishes and then loads
     * the freshly stored entry from disk, which the atomic
     * tmp+fsync+rename write guarantees is never torn. This is what
     * lets many daemon clients share one warm trace cache safely.
     *
     * @p expectName, when non-empty, rejects a loaded entry whose
     * trace name differs (a foreign file under our key) as a miss.
     *
     * Degradation: if the leader's store fails (full disk) or its
     * generation fails, waiters fall back to generating themselves;
     * a permanent generation error from the leader is propagated to
     * waiters without re-running the generator.
     */
    Result<TraceAcquisition>
    getOrGenerate(const std::string &key,
                  const std::function<Result<Trace>()> &generate,
                  const std::string &expectName = "") const;

  private:
    /** One in-flight cold-key generation; waiters block on cv. */
    struct Inflight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        /** Leader outcome: entry on disk worth loading. */
        bool storedToDisk = false;
        /** Leader outcome: generation failed with this error. */
        bool failed = false;
        RunError error;
    };

    Result<TraceAcquisition>
    loadValidated(const std::string &key,
                  const std::string &expectName) const;

    std::string _directory;

    /** Guards _inflight; per-key waiting happens on Inflight::cv. */
    mutable std::mutex _inflightMutex;
    mutable std::map<std::string, std::shared_ptr<Inflight>> _inflight;
};

} // namespace ibp

#endif // IBP_TRACE_TRACE_CACHE_HH
