#include "trace/trace_cache.hh"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "robust/atomic_file.hh"
#include "trace/trace_io.hh"
#include "trace/trace_mmap.hh"

namespace ibp {

namespace {

std::unique_ptr<TraceCache> &
globalSlot()
{
    // Armed lazily from the environment so tools and tests that
    // never touch the option plumbing still get caching by exporting
    // IBP_TRACE_CACHE=<dir>.
    static std::unique_ptr<TraceCache> cache = [] {
        const char *env = std::getenv("IBP_TRACE_CACHE");
        return (env && *env) ? std::make_unique<TraceCache>(env)
                             : nullptr;
    }();
    return cache;
}

} // namespace

TraceCache::TraceCache(std::string directory)
    : _directory(std::move(directory))
{
}

TraceCache *
TraceCache::global()
{
    return globalSlot().get();
}

void
TraceCache::configureGlobal(const std::string &directory)
{
    globalSlot() = directory.empty()
                       ? nullptr
                       : std::make_unique<TraceCache>(directory);
}

std::string
TraceCache::pathFor(const std::string &key) const
{
    return _directory + "/" + key + ".ibpm";
}

std::string
TraceCache::streamPathFor(const std::string &key) const
{
    return _directory + "/" + key + ".ibpt";
}

Result<Trace>
TraceCache::load(const std::string &key) const
{
    // Both readers classify a missing file, bad magic, version skew,
    // a bad checksum, or truncation as permanent errors; every one
    // of them reads as "miss" to the caller. A corrupt or
    // foreign-platform .ibpm entry degrades to the stream entry (if
    // any) rather than to regeneration.
    auto mapped = loadTraceMmap(pathFor(key));
    if (mapped.ok())
        return mapped;
    auto streamed = loadTrace(streamPathFor(key));
    if (streamed.ok())
        streamed.value().setReadPath(TraceReadPath::Stream);
    return streamed;
}

Result<void>
TraceCache::store(const std::string &key, const Trace &trace) const
{
    if (traceMmapSupported())
        return saveTraceMmap(trace, pathFor(key));
    std::ostringstream body(std::ios::binary);
    const auto serialised = writeTraceBinary(trace, body);
    if (!serialised.ok())
        return serialised.error();
    return writeFileAtomic(streamPathFor(key), body.str());
}

} // namespace ibp
