#include "trace/trace_cache.hh"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "robust/atomic_file.hh"
#include "robust/cache_sweep.hh"
#include "trace/trace_io.hh"
#include "trace/trace_mmap.hh"
#include "util/logging.hh"

namespace ibp {

namespace {

std::unique_ptr<TraceCache> &
globalSlot()
{
    // Armed lazily from the environment so tools and tests that
    // never touch the option plumbing still get caching by exporting
    // IBP_TRACE_CACHE=<dir>.
    static std::unique_ptr<TraceCache> cache = [] {
        const char *env = std::getenv("IBP_TRACE_CACHE");
        return (env && *env) ? std::make_unique<TraceCache>(env)
                             : nullptr;
    }();
    return cache;
}

} // namespace

TraceCache::TraceCache(std::string directory)
    : _directory(std::move(directory))
{
}

TraceCache *
TraceCache::global()
{
    return globalSlot().get();
}

void
TraceCache::configureGlobal(const std::string &directory)
{
    globalSlot() = directory.empty()
                       ? nullptr
                       : std::make_unique<TraceCache>(directory);
}

std::string
TraceCache::pathFor(const std::string &key) const
{
    return _directory + "/" + key + ".ibpm";
}

std::string
TraceCache::streamPathFor(const std::string &key) const
{
    return _directory + "/" + key + ".ibpt";
}

Result<Trace>
TraceCache::load(const std::string &key) const
{
    // Both readers classify a missing file, bad magic, version skew,
    // a bad checksum, or truncation as permanent errors; every one
    // of them reads as "miss" to the caller. A corrupt or
    // foreign-platform .ibpm entry degrades to the stream entry (if
    // any) rather than to regeneration.
    auto mapped = loadTraceMmap(pathFor(key));
    if (mapped.ok())
        return mapped;
    auto streamed = loadTrace(streamPathFor(key));
    if (streamed.ok())
        streamed.value().setReadPath(TraceReadPath::Stream);
    return streamed;
}

Result<void>
TraceCache::store(const std::string &key, const Trace &trace) const
{
    // A successful write sweeps the directory back under the
    // IBP_CACHE_MAX_BYTES budget when one is set (off by default;
    // eviction is atomic unlink only, so concurrent readers holding
    // an open or mmap'ed entry are never corrupted).
    if (traceMmapSupported()) {
        const auto saved = saveTraceMmap(trace, pathFor(key));
        if (saved.ok())
            maybeSweepCacheDirectory(_directory);
        return saved;
    }
    std::ostringstream body(std::ios::binary);
    const auto serialised = writeTraceBinary(trace, body);
    if (!serialised.ok())
        return serialised.error();
    const auto written =
        writeFileAtomic(streamPathFor(key), body.str());
    if (written.ok())
        maybeSweepCacheDirectory(_directory);
    return written;
}

Result<TraceAcquisition>
TraceCache::loadValidated(const std::string &key,
                          const std::string &expect_name) const
{
    auto hit = load(key);
    if (!hit.ok())
        return hit.error();
    if (!expect_name.empty() && hit.value().name() != expect_name) {
        return RunError::permanent(
            "cache entry for key '" + key + "' names trace '" +
            hit.value().name() + "', expected '" + expect_name + "'");
    }
    return TraceAcquisition{std::move(hit).value(), true};
}

Result<TraceAcquisition>
TraceCache::getOrGenerate(
    const std::string &key,
    const std::function<Result<Trace>()> &generate,
    const std::string &expect_name) const
{
    std::shared_ptr<Inflight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(_inflightMutex);
        auto &slot = _inflight[key];
        if (!slot) {
            slot = std::make_shared<Inflight>();
            leader = true;
        }
        flight = slot;
    }

    if (!leader) {
        // Wait for the leader's verdict, then read its published
        // entry from disk. The atomic store means the file is either
        // absent or complete - never torn.
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&] { return flight->done; });
        const bool stored = flight->storedToDisk;
        const bool failed = flight->failed;
        const RunError error = flight->error;
        lock.unlock();
        if (stored) {
            auto loaded = loadValidated(key, expect_name);
            if (loaded.ok())
                return loaded;
            warn("trace cache re-load after concurrent store of '%s' "
                 "failed (%s); regenerating",
                 key.c_str(), loaded.error().describe().c_str());
        } else if (failed && !error.retryable()) {
            // The leader's generation failed permanently; rerunning
            // the same generator would fail the same way.
            return error;
        }
        auto made = generate();
        if (!made.ok())
            return made.error();
        return TraceAcquisition{std::move(made).value(), false};
    }

    // Leader: publish the outcome on every exit path so waiters can
    // never hang, and retire the in-flight slot so a later cold pass
    // (e.g. after an external cache wipe) elects a fresh leader.
    bool stored_to_disk = false;
    bool failed = false;
    RunError error;
    Result<TraceAcquisition> outcome = error; // overwritten below
    auto hit = loadValidated(key, expect_name);
    if (hit.ok()) {
        stored_to_disk = true;
        outcome = std::move(hit);
    } else {
        auto made = generate();
        if (!made.ok()) {
            failed = true;
            error = made.error();
            outcome = error;
        } else {
            Trace trace = std::move(made).value();
            auto stored = store(key, trace);
            if (stored.ok()) {
                stored_to_disk = true;
            } else {
                // Best effort: a full disk degrades the cache (every
                // waiter regenerates), never the run.
                warn("trace cache store for key '%s' failed: %s",
                     key.c_str(), stored.error().describe().c_str());
            }
            outcome = TraceAcquisition{std::move(trace), false};
        }
    }
    {
        std::lock_guard<std::mutex> lock(_inflightMutex);
        _inflight.erase(key);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->done = true;
        flight->storedToDisk = stored_to_disk;
        flight->failed = failed;
        flight->error = error;
    }
    flight->cv.notify_all();
    return outcome;
}

} // namespace ibp
