/**
 * @file
 * Cache-resident block iteration over a branch trace.
 *
 * The SIMD sweep engine wants the trace as short SoA columns: a few
 * thousand pc/target/meta entries that fit in L1/L2 while every
 * bound predictor replays them. TraceBlockCursor produces exactly
 * that from either trace storage form:
 *
 *  - columnar traces (the v3 `.ibpm` mmap layout) are sliced
 *    zero-copy — each block is three pointers into the file;
 *  - record traces (owned vectors, v2 views, stream parses) are
 *    transposed block-by-block into a reused scratch buffer, so the
 *    transpose cost stays inside the cache-resident window instead
 *    of materialising a second full-trace copy.
 *
 * Either way consumers see the same TraceBlock and the same record
 * order as Trace::records(), so block-based simulation is a pure
 * traversal change, not a semantic one.
 */

#ifndef IBP_TRACE_TRACE_BLOCK_HH
#define IBP_TRACE_TRACE_BLOCK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace ibp {

/** Records per block: 4096 × (4+4+1)B columns ≈ 36 KiB, L2-resident
 * alongside predictor metadata while still amortising per-block
 * bookkeeping over thousands of branches. */
inline constexpr std::size_t kTraceBlockRecords = 4096;

/** One SoA window of a trace: @c count records starting at global
 * record index @c base. */
struct TraceBlock
{
    const Addr *pc = nullptr;
    const Addr *target = nullptr;
    const std::uint8_t *meta = nullptr;
    std::size_t count = 0;
    std::size_t base = 0;
};

/**
 * Forward iterator over a trace in TraceBlock windows. The trace
 * must outlive the cursor; blocks are invalidated by the next call
 * to next() (the scratch buffer is reused).
 */
class TraceBlockCursor
{
  public:
    explicit TraceBlockCursor(const Trace &trace,
                              std::size_t blockRecords = kTraceBlockRecords)
        : _block(blockRecords), _columnar(trace.isColumnar())
    {
        if (_columnar) {
            _columns = trace.columns();
            _size = trace.size();
        } else {
            _records = trace.data();
            _size = trace.size();
            _pc.resize(blockRecords);
            _target.resize(blockRecords);
            _meta.resize(blockRecords);
        }
    }

    /** True when blocks alias the trace's own columns (no per-block
     * transpose happens). Telemetry only. */
    bool columnarSource() const { return _columnar; }

    /**
     * Produce the next block. Returns false (and leaves @p out
     * untouched) once the trace is exhausted.
     */
    bool
    next(TraceBlock &out)
    {
        if (_next >= _size)
            return false;
        const std::size_t base = _next;
        const std::size_t count = std::min(_block, _size - base);
        _next = base + count;
        if (_columnar) {
            out.pc = _columns.pc + base;
            out.target = _columns.target + base;
            out.meta = _columns.meta + base;
        } else {
            const BranchRecord *records = _records + base;
            for (std::size_t i = 0; i < count; ++i) {
                const BranchRecord &record = records[i];
                _pc[i] = record.pc;
                _target[i] = record.target;
                _meta[i] = packBranchMeta(record.kind, record.taken);
            }
            out.pc = _pc.data();
            out.target = _target.data();
            out.meta = _meta.data();
        }
        out.count = count;
        out.base = base;
        return true;
    }

  private:
    const std::size_t _block;
    const bool _columnar;
    TraceColumns _columns;
    const BranchRecord *_records = nullptr;
    std::size_t _size = 0;
    std::size_t _next = 0;
    std::vector<Addr> _pc;
    std::vector<Addr> _target;
    std::vector<std::uint8_t> _meta;
};

} // namespace ibp

#endif // IBP_TRACE_TRACE_BLOCK_HH
