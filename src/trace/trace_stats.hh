/**
 * @file
 * Trace characterisation, mirroring Tables 1 and 2 of the paper.
 *
 * For each trace we compute: dynamic branch counts by kind, the
 * conditional/indirect ratio, the number of static indirect branch
 * sites responsible for 90/95/99/100% of dynamic indirect branches
 * ("active branch sites"), per-site polymorphism (distinct target
 * counts), and the fraction of indirect branches that are virtual
 * function calls.
 */

#ifndef IBP_TRACE_TRACE_STATS_HH
#define IBP_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace ibp {

/** Per-site dynamic behaviour of one static indirect branch. */
struct SiteStats
{
    Addr pc = 0;
    std::uint64_t executions = 0;
    unsigned distinctTargets = 0;
    /** Fraction of executions going to the most frequent target. */
    double dominantTargetShare = 0.0;
};

/** Summary statistics for a whole trace (Tables 1/2 of the paper). */
struct TraceStats
{
    std::string name;
    std::uint64_t totalRecords = 0;
    std::uint64_t indirectBranches = 0;
    std::uint64_t conditionalBranches = 0;
    std::uint64_t returns = 0;
    std::uint64_t virtualCalls = 0;

    /** Conditional branches per indirect branch ("cond./indirect"). */
    double condPerIndirect = 0.0;
    /** Fraction of indirect branches that are virtual calls. */
    double virtualCallFraction = 0.0;

    /** Static indirect sites covering 90/95/99/100% of executions. */
    unsigned activeSites90 = 0;
    unsigned activeSites95 = 0;
    unsigned activeSites99 = 0;
    unsigned activeSites100 = 0;

    /** Average distinct targets per site, weighted by execution. */
    double meanPolymorphism = 0.0;

    std::vector<SiteStats> sites;
};

/** Compute TraceStats for @p trace. */
TraceStats computeTraceStats(const Trace &trace);

/**
 * Histogram of dynamic executions per static indirect site, keyed by
 * site PC. Exposed separately because the synthetic-benchmark
 * calibration tests use it directly.
 */
std::map<Addr, std::uint64_t> siteExecutionCounts(const Trace &trace);

} // namespace ibp

#endif // IBP_TRACE_TRACE_STATS_HH
