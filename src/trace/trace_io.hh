/**
 * @file
 * Trace serialisation.
 *
 * Two formats:
 *  - a compact little-endian binary format with a versioned header
 *    ("IBPT"), for bulk storage of generated traces;
 *  - a line-oriented text format (one record per line:
 *    "<kind> <pc-hex> <target-hex> <taken>"), for debugging and for
 *    importing traces produced by external tools (Pin/ChampSim-style
 *    dumps can be converted to this with a one-line awk script).
 *
 * All entry points return Result rather than fatal()ing: a malformed
 * or truncated trace is external input, and one bad file must not be
 * able to kill a multi-hour sweep (see docs/ROBUSTNESS.md). Errors
 * are permanent - re-reading a corrupt file cannot succeed.
 */

#ifndef IBP_TRACE_TRACE_IO_HH
#define IBP_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "robust/error.hh"
#include "trace/trace.hh"

namespace ibp {

/** Write @p trace to @p out in the binary format. */
Result<void> writeTraceBinary(const Trace &trace, std::ostream &out);

/** Read a binary-format trace; error on malformed input. */
Result<Trace> readTraceBinary(std::istream &in);

/** Write @p trace to @p out in the text format (with '#' metadata). */
Result<void> writeTraceText(const Trace &trace, std::ostream &out);

/** Read a text-format trace; error on malformed input. */
Result<Trace> readTraceText(std::istream &in);

/** Convenience file wrappers; format chosen by extension
 * (".ibpt" binary, anything else text). */
Result<void> saveTrace(const Trace &trace, const std::string &path);
Result<Trace> loadTrace(const std::string &path);

} // namespace ibp

#endif // IBP_TRACE_TRACE_IO_HH
