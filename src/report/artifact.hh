/**
 * @file
 * Structured run artifacts: the machine-readable record of one bench
 * binary execution.
 *
 * An artifact bundles every ResultTable a bench emitted with the run
 * telemetry (RunMetrics) and an environment manifest (git SHA,
 * compiler, trace scale, thread count). Bench binaries write one
 * `<slug>.json` per run via `--json=DIR`; `tools/report_diff`
 * compares a fresh artifact against a golden baseline to gate
 * regressions. The schema is versioned so downstream consumers can
 * detect incompatible changes.
 */

#ifndef IBP_REPORT_ARTIFACT_HH
#define IBP_REPORT_ARTIFACT_HH

#include <string>
#include <vector>

#include "report/run_metrics.hh"
#include "robust/error.hh"
#include "util/format.hh"
#include "util/json.hh"

namespace ibp {

/** Bumped whenever the artifact layout changes incompatibly. */
constexpr int kArtifactSchemaVersion = 1;

/** Environment and configuration of one bench run. */
struct RunManifest
{
    std::string slug;
    std::string title;
    std::string gitSha = "unknown";
    std::string compiler = "unknown";
    std::string buildType = "unknown";
    std::string timestamp; // ISO-8601 UTC, e.g. 2026-08-06T12:00:00Z
    double eventScale = 1.0;
    unsigned threads = 0;
    bool quick = false;

    Json toJson() const;
    static RunManifest fromJson(const Json &json);
};

/** Compiler/git identity of this build (filled at compile time). */
RunManifest buildManifest();

/** Convert a ResultTable to/from its JSON representation. */
Json tableToJson(const ResultTable &table);
ResultTable tableFromJson(const Json &json);

/** One bench run: manifest + emitted tables + notes + telemetry. */
struct RunArtifact
{
    RunManifest manifest;
    std::vector<ResultTable> tables;
    std::vector<std::string> notes;
    RunMetrics metrics;

    /** Find an emitted table by title; nullptr when absent. */
    const ResultTable *findTable(const std::string &title) const;

    Json toJson() const;

    /**
     * Parse an artifact from JSON. Throws RunException (permanent)
     * on a wrong schema, unsupported version, or malformed tables -
     * a bad artifact must never abort the consuming process.
     */
    static RunArtifact fromJson(const Json &json);

    /**
     * Write crash-safely as pretty-printed JSON: parent directories
     * are created recursively, content goes to a temp file in the
     * target directory, is fsynced, and atomically renamed over
     * @p path - a crash mid-write can never leave a truncated
     * artifact behind. Errors (unwritable directory, full disk) come
     * back as a permanent RunError.
     */
    Result<void> write(const std::string &path) const;

    /**
     * Load and validate an artifact file. A missing file, malformed
     * JSON, or an unsupported schema version is a permanent
     * RunError, never an abort.
     */
    static Result<RunArtifact> load(const std::string &path);
};

} // namespace ibp

#endif // IBP_REPORT_ARTIFACT_HH
