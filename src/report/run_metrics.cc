#include "report/run_metrics.hh"

#include <algorithm>

namespace ibp {

RunMetrics::RunMetrics(const RunMetrics &other)
{
    *this = other;
}

RunMetrics &
RunMetrics::operator=(const RunMetrics &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(_mutex, other._mutex);
    _cells = other._cells;
    _failures = other._failures;
    _runSeconds = other._runSeconds;
    _threads = other._threads;
    _hasTraceSource = other._hasTraceSource;
    _tracesGenerated = other._tracesGenerated;
    _traceCacheHits = other._traceCacheHits;
    _traceMmapHits = other._traceMmapHits;
    _traceStreamHits = other._traceStreamHits;
    _traceSeconds = other._traceSeconds;
    _tableImpl = other._tableImpl;
    _hasSweepKernel = other._hasSweepKernel;
    _sweepKernel = other._sweepKernel;
    _hasSimd = other._hasSimd;
    _simd = other._simd;
    _hasServe = other._hasServe;
    _serve = other._serve;
    _hasResultStore = other._hasResultStore;
    _resultStore = other._resultStore;
    return *this;
}

void
RunMetrics::recordCell(const CellMetrics &cell)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _cells.push_back(cell);
}

void
RunMetrics::recordFailure(const FailureRecord &failure)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _failures.push_back(failure);
}

std::vector<FailureRecord>
RunMetrics::failures() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _failures;
}

std::size_t
RunMetrics::failureCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _failures.size();
}

void
RunMetrics::recordRunWindow(double seconds)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _runSeconds += seconds;
}

void
RunMetrics::recordThreads(unsigned count)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _threads = std::max(_threads, count);
}

void
RunMetrics::recordTraceSource(unsigned generated, unsigned mmap_hits,
                              unsigned stream_hits, double seconds)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _hasTraceSource = true;
    _tracesGenerated += generated;
    _traceCacheHits += mmap_hits + stream_hits;
    _traceMmapHits += mmap_hits;
    _traceStreamHits += stream_hits;
    _traceSeconds += seconds;
}

void
RunMetrics::recordTableImpl(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _tableImpl = name;
}

void
RunMetrics::recordSweepKernel(const SweepKernelStats &stats)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _hasSweepKernel = true;
    _sweepKernel.groupsFused += stats.groupsFused;
    _sweepKernel.groupsPerCell += stats.groupsPerCell;
    _sweepKernel.predictorsBound += stats.predictorsBound;
    _sweepKernel.predictorsUnbound += stats.predictorsUnbound;
    _sweepKernel.predictorsDeduped += stats.predictorsDeduped;
    _sweepKernel.fallbackFactory += stats.fallbackFactory;
    _sweepKernel.fallbackCancelled += stats.fallbackCancelled;
    _sweepKernel.fallbackInjected += stats.fallbackInjected;
    _sweepKernel.fallbackInjectorArmed += stats.fallbackInjectorArmed;
    _sweepKernel.fallbackError += stats.fallbackError;
}

void
RunMetrics::recordSimd(const SimdStats &stats)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _hasSimd = true;
    // The dispatch level describes the process, not one run: the
    // most recent record is as good as any earlier one.
    _simd.dispatchLevel = stats.dispatchLevel;
    _simd.fallbackReason = stats.fallbackReason;
    _simd.columnarBlocks += stats.columnarBlocks;
    _simd.transposedBlocks += stats.transposedBlocks;
    _simd.skippedRecords += stats.skippedRecords;
    _simd.laneColumns += stats.laneColumns;
    _simd.genericColumns += stats.genericColumns;
    _simd.laneMachines += stats.laneMachines;
}

bool
RunMetrics::hasSimd() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hasSimd;
}

SimdStats
RunMetrics::simd() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _simd;
}

void
RunMetrics::recordServe(const ServeMetrics &stats)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _hasServe = true;
    _serve.requests += stats.requests;
    _serve.coalesced += stats.coalesced;
    _serve.admissionRejects += stats.admissionRejects;
    _serve.warm = _serve.warm || stats.warm;
    _serve.queueSeconds =
        std::max(_serve.queueSeconds, stats.queueSeconds);
    _serve.jobSeconds =
        std::max(_serve.jobSeconds, stats.jobSeconds);
    _serve.shard.planned += stats.shard.planned;
    _serve.shard.requeued += stats.shard.requeued;
    _serve.shard.abandoned += stats.shard.abandoned;
    _serve.shard.stolenCells += stats.shard.stolenCells;
    _serve.shard.overlapCoalesced += stats.shard.overlapCoalesced;
    if (_serve.shard.laneCells.size() <
        stats.shard.laneCells.size()) {
        _serve.shard.laneCells.resize(stats.shard.laneCells.size());
    }
    for (std::size_t i = 0; i < stats.shard.laneCells.size(); ++i)
        _serve.shard.laneCells[i] += stats.shard.laneCells[i];
    _serve.shard.fanoutSeconds =
        std::max(_serve.shard.fanoutSeconds,
                 stats.shard.fanoutSeconds);
    _serve.shard.mergeSeconds =
        std::max(_serve.shard.mergeSeconds, stats.shard.mergeSeconds);
}

bool
RunMetrics::hasServe() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hasServe;
}

ServeMetrics
RunMetrics::serve() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _serve;
}

void
RunMetrics::recordResultStore(const ResultStoreStats &stats)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _hasResultStore = true;
    _resultStore.hits += stats.hits;
    _resultStore.misses += stats.misses;
    _resultStore.stores += stats.stores;
    _resultStore.invalidated += stats.invalidated;
    _resultStore.journalWritebacks += stats.journalWritebacks;
    _resultStore.claims += stats.claims;
    _resultStore.claimBusy += stats.claimBusy;
    _resultStore.claimServed += stats.claimServed;
    _resultStore.stolen += stats.stolen;
}

bool
RunMetrics::hasResultStore() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hasResultStore;
}

ResultStoreStats
RunMetrics::resultStore() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _resultStore;
}

bool
RunMetrics::hasSweepKernel() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hasSweepKernel;
}

SweepKernelStats
RunMetrics::sweepKernel() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _sweepKernel;
}

unsigned
RunMetrics::tracesGenerated() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _tracesGenerated;
}

unsigned
RunMetrics::traceCacheHits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _traceCacheHits;
}

unsigned
RunMetrics::traceMmapHits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _traceMmapHits;
}

unsigned
RunMetrics::traceStreamHits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _traceStreamHits;
}

std::string
RunMetrics::traceReadPath() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_traceCacheHits == 0)
        return _tracesGenerated > 0 ? "generated" : "none";
    if (_traceMmapHits > 0 && _traceStreamHits == 0)
        return "mmap";
    if (_traceStreamHits > 0 && _traceMmapHits == 0)
        return "stream";
    if (_traceMmapHits > 0 && _traceStreamHits > 0)
        return "mixed";
    // Hits whose transport predates the mmap/stream split (a legacy
    // artifact loaded through fromJson).
    return "cache";
}

std::string
RunMetrics::tableImpl() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _tableImpl;
}

double
RunMetrics::traceSeconds() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _traceSeconds;
}

bool
RunMetrics::hasTraceSource() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hasTraceSource;
}

std::vector<CellMetrics>
RunMetrics::cells() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _cells;
}

std::size_t
RunMetrics::cellCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _cells.size();
}

std::uint64_t
RunMetrics::totalBranches() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::uint64_t total = 0;
    for (const auto &cell : _cells)
        total += cell.branches;
    return total;
}

double
RunMetrics::cellSeconds() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    double total = 0.0;
    for (const auto &cell : _cells)
        total += cell.seconds;
    return total;
}

double
RunMetrics::runSeconds() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _runSeconds;
}

double
RunMetrics::branchesPerSecond() const
{
    const double seconds = runSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(totalBranches()) / seconds;
}

std::uint64_t
RunMetrics::peakTableOccupancy() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::uint64_t peak = 0;
    for (const auto &cell : _cells)
        peak = std::max(peak, cell.tableOccupancy);
    return peak;
}

unsigned
RunMetrics::threads() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _threads;
}

Json
RunMetrics::toJson() const
{
    Json json = Json::object();
    json.set("threads", threads());
    json.set("run_seconds", runSeconds());
    json.set("cell_seconds", cellSeconds());
    json.set("total_branches", totalBranches());
    json.set("branches_per_second", branchesPerSecond());
    json.set("peak_table_occupancy", peakTableOccupancy());

    Json cells_json = Json::array();
    for (const auto &cell : cells()) {
        Json entry = Json::object();
        entry.set("column", cell.column);
        entry.set("benchmark", cell.benchmark);
        entry.set("branches", cell.branches);
        entry.set("seconds", cell.seconds);
        entry.set("group_seconds", cell.groupSeconds);
        // Only emitted when true, so per-cell artifacts don't carry
        // a redundant false for every cell.
        if (cell.secondsSynthetic)
            entry.set("seconds_synthetic", true);
        entry.set("table_occupancy", cell.tableOccupancy);
        entry.set("table_capacity", cell.tableCapacity);
        cells_json.push(std::move(entry));
    }
    json.set("cells", std::move(cells_json));

    // Only emitted when the run was partial, so fault-free
    // artifacts (and the committed baselines) stay byte-identical
    // to schema version 1 output.
    const auto failed = failures();
    if (!failed.empty()) {
        Json failures_json = Json::array();
        for (const auto &failure : failed) {
            Json entry = Json::object();
            entry.set("column", failure.column);
            entry.set("benchmark", failure.benchmark);
            entry.set("error", failure.error);
            entry.set("kind", failure.kind);
            entry.set("attempts", failure.attempts);
            failures_json.push(std::move(entry));
        }
        json.set("failures", std::move(failures_json));
    }

    // Only emitted when a trace source was recorded, for the same
    // baseline byte-compatibility reason as "failures".
    if (hasTraceSource()) {
        Json source = Json::object();
        source.set("generated", tracesGenerated());
        source.set("cache_hits", traceCacheHits());
        source.set("mmap_hits", traceMmapHits());
        source.set("stream_hits", traceStreamHits());
        source.set("read_path", traceReadPath());
        source.set("seconds", traceSeconds());
        json.set("trace_source", std::move(source));
    }

    // Likewise emitted only when recorded, so artifacts produced
    // before the fused engine existed keep their schema.
    if (hasSweepKernel()) {
        const SweepKernelStats sweep = sweepKernel();
        Json kernel = Json::object();
        kernel.set("groups_fused", sweep.groupsFused);
        kernel.set("groups_per_cell", sweep.groupsPerCell);
        kernel.set("predictors_bound", sweep.predictorsBound);
        kernel.set("predictors_unbound", sweep.predictorsUnbound);
        kernel.set("predictors_deduped", sweep.predictorsDeduped);
        kernel.set("fallback_factory_error", sweep.fallbackFactory);
        kernel.set("fallback_cancelled", sweep.fallbackCancelled);
        kernel.set("fallback_fault_injected", sweep.fallbackInjected);
        kernel.set("fallback_injector_armed",
                   sweep.fallbackInjectorArmed);
        kernel.set("fallback_error", sweep.fallbackError);
        json.set("sweep_kernel", std::move(kernel));
    }

    // Likewise emitted only when recorded, so artifacts produced
    // before the SIMD/SoA engine keep their schema. The table diff
    // never compares this block: a columnar warm run and a
    // transposing cold run legitimately differ here while their
    // simulation results are bit-identical.
    if (hasSimd()) {
        const SimdStats stats = simd();
        Json block = Json::object();
        block.set("dispatch_level", stats.dispatchLevel);
        block.set("fallback_reason", stats.fallbackReason);
        block.set("columnar_blocks", stats.columnarBlocks);
        block.set("transposed_blocks", stats.transposedBlocks);
        block.set("skipped_records", stats.skippedRecords);
        block.set("lane_columns", stats.laneColumns);
        block.set("generic_columns", stats.genericColumns);
        block.set("lane_machines", stats.laneMachines);
        json.set("simd", std::move(block));
    }

    // Likewise emitted only when the run went through the ibpd
    // daemon; in-process artifacts stay byte-identical to their
    // pre-daemon schema, which is also what lets report_diff hold
    // served-vs-in-process runs to zero tolerance outside this
    // block.
    if (hasServe()) {
        const ServeMetrics stats = serve();
        Json served = Json::object();
        served.set("requests", stats.requests);
        served.set("coalesced", stats.coalesced);
        served.set("admission_rejects", stats.admissionRejects);
        served.set("warm", stats.warm);
        served.set("queue_seconds", stats.queueSeconds);
        served.set("job_seconds", stats.jobSeconds);
        // The shard sub-block only exists for sharded jobs, so
        // unsharded served artifacts keep their schema.
        if (stats.shard.planned > 0) {
            Json shard = Json::object();
            shard.set("shards_planned", stats.shard.planned);
            shard.set("shards_requeued", stats.shard.requeued);
            shard.set("shards_abandoned", stats.shard.abandoned);
            shard.set("stolen_cells", stats.shard.stolenCells);
            shard.set("overlap_cells_coalesced",
                      stats.shard.overlapCoalesced);
            Json lanes = Json::array();
            for (const auto cells : stats.shard.laneCells)
                lanes.push(Json(cells));
            shard.set("lane_cells", std::move(lanes));
            shard.set("fanout_seconds", stats.shard.fanoutSeconds);
            shard.set("merge_seconds", stats.shard.mergeSeconds);
            served.set("shard", std::move(shard));
        }
        json.set("serve", std::move(served));
    }

    // Likewise emitted only when a result store was armed, so
    // store-less artifacts (and the committed baselines) keep their
    // bytes; the CI warm-store gate greps these counters.
    if (hasResultStore()) {
        const ResultStoreStats stats = resultStore();
        Json store = Json::object();
        store.set("hits", stats.hits);
        store.set("misses", stats.misses);
        store.set("stores", stats.stores);
        store.set("invalidated", stats.invalidated);
        store.set("journal_writebacks", stats.journalWritebacks);
        // Claim counters appear only once the claim layer engaged,
        // so claim-free store artifacts keep their schema.
        if (stats.claims > 0 || stats.claimBusy > 0 ||
            stats.claimServed > 0 || stats.stolen > 0) {
            store.set("claims", stats.claims);
            store.set("claims_busy", stats.claimBusy);
            store.set("claims_served", stats.claimServed);
            store.set("cells_stolen", stats.stolen);
        }
        json.set("result_store", std::move(store));
    }

    // Likewise emitted only when recorded, so artifacts produced
    // before the flat/reference toggle keep their bytes.
    const std::string table_impl = tableImpl();
    if (!table_impl.empty())
        json.set("table_impl", table_impl);
    return json;
}

RunMetrics
RunMetrics::fromJson(const Json &json)
{
    RunMetrics metrics;
    metrics.recordThreads(
        static_cast<unsigned>(json.numberOr("threads", 0)));
    metrics.recordRunWindow(json.numberOr("run_seconds", 0.0));
    if (json.contains("cells")) {
        const Json &cells = json.at("cells");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Json &entry = cells.at(i);
            CellMetrics cell;
            cell.column = entry.stringOr("column", "");
            cell.benchmark = entry.stringOr("benchmark", "");
            cell.branches = entry.at("branches").asUint();
            cell.seconds = entry.numberOr("seconds", 0.0);
            // Artifacts predating the fused engine carry no
            // group_seconds; for those the cell time is its own
            // traversal time.
            cell.groupSeconds =
                entry.numberOr("group_seconds", cell.seconds);
            cell.secondsSynthetic =
                entry.contains("seconds_synthetic") &&
                entry.at("seconds_synthetic").asBool();
            cell.tableOccupancy =
                entry.at("table_occupancy").asUint();
            cell.tableCapacity = entry.at("table_capacity").asUint();
            metrics.recordCell(cell);
        }
    }
    if (json.contains("failures")) {
        const Json &failures = json.at("failures");
        for (std::size_t i = 0; i < failures.size(); ++i) {
            const Json &entry = failures.at(i);
            FailureRecord failure;
            failure.column = entry.stringOr("column", "");
            failure.benchmark = entry.stringOr("benchmark", "");
            failure.error = entry.stringOr("error", "");
            failure.kind = entry.stringOr("kind", "permanent");
            failure.attempts = static_cast<unsigned>(
                entry.numberOr("attempts", 1));
            metrics.recordFailure(failure);
        }
    }
    if (json.contains("trace_source")) {
        const Json &source = json.at("trace_source");
        const auto mmap_hits =
            static_cast<unsigned>(source.numberOr("mmap_hits", 0));
        const auto stream_hits =
            static_cast<unsigned>(source.numberOr("stream_hits", 0));
        metrics.recordTraceSource(
            static_cast<unsigned>(source.numberOr("generated", 0)),
            mmap_hits, stream_hits, source.numberOr("seconds", 0.0));
        // Legacy artifacts carry only the aggregate hit count; keep
        // it without inventing a transport split (traceReadPath()
        // reports "cache" for these).
        const auto cache_hits =
            static_cast<unsigned>(source.numberOr("cache_hits", 0));
        if (cache_hits > mmap_hits + stream_hits)
            metrics._traceCacheHits = cache_hits;
    }
    if (json.contains("sweep_kernel")) {
        const Json &kernel = json.at("sweep_kernel");
        SweepKernelStats sweep;
        sweep.groupsFused = static_cast<unsigned>(
            kernel.numberOr("groups_fused", 0));
        sweep.groupsPerCell = static_cast<unsigned>(
            kernel.numberOr("groups_per_cell", 0));
        sweep.predictorsBound = static_cast<unsigned>(
            kernel.numberOr("predictors_bound", 0));
        sweep.predictorsUnbound = static_cast<unsigned>(
            kernel.numberOr("predictors_unbound", 0));
        sweep.predictorsDeduped = static_cast<unsigned>(
            kernel.numberOr("predictors_deduped", 0));
        sweep.fallbackFactory = static_cast<unsigned>(
            kernel.numberOr("fallback_factory_error", 0));
        sweep.fallbackCancelled = static_cast<unsigned>(
            kernel.numberOr("fallback_cancelled", 0));
        sweep.fallbackInjected = static_cast<unsigned>(
            kernel.numberOr("fallback_fault_injected", 0));
        sweep.fallbackInjectorArmed = static_cast<unsigned>(
            kernel.numberOr("fallback_injector_armed", 0));
        sweep.fallbackError = static_cast<unsigned>(
            kernel.numberOr("fallback_error", 0));
        metrics.recordSweepKernel(sweep);
    }
    if (json.contains("simd")) {
        const Json &block = json.at("simd");
        SimdStats stats;
        stats.dispatchLevel = block.stringOr("dispatch_level", "");
        stats.fallbackReason = block.stringOr("fallback_reason", "");
        stats.columnarBlocks = static_cast<std::uint64_t>(
            block.numberOr("columnar_blocks", 0));
        stats.transposedBlocks = static_cast<std::uint64_t>(
            block.numberOr("transposed_blocks", 0));
        stats.skippedRecords = static_cast<std::uint64_t>(
            block.numberOr("skipped_records", 0));
        stats.laneColumns = static_cast<std::uint64_t>(
            block.numberOr("lane_columns", 0));
        stats.genericColumns = static_cast<std::uint64_t>(
            block.numberOr("generic_columns", 0));
        stats.laneMachines = static_cast<std::uint64_t>(
            block.numberOr("lane_machines", 0));
        metrics.recordSimd(stats);
    }
    if (json.contains("serve")) {
        const Json &served = json.at("serve");
        ServeMetrics stats;
        stats.requests = static_cast<unsigned>(
            served.numberOr("requests", 0));
        stats.coalesced = static_cast<unsigned>(
            served.numberOr("coalesced", 0));
        stats.admissionRejects = static_cast<unsigned>(
            served.numberOr("admission_rejects", 0));
        stats.warm = served.contains("warm") &&
                     served.at("warm").asBool();
        stats.queueSeconds = served.numberOr("queue_seconds", 0.0);
        stats.jobSeconds = served.numberOr("job_seconds", 0.0);
        if (served.contains("shard")) {
            const Json &shard = served.at("shard");
            stats.shard.planned = static_cast<unsigned>(
                shard.numberOr("shards_planned", 0));
            stats.shard.requeued = static_cast<unsigned>(
                shard.numberOr("shards_requeued", 0));
            stats.shard.abandoned = static_cast<unsigned>(
                shard.numberOr("shards_abandoned", 0));
            stats.shard.stolenCells = static_cast<std::uint64_t>(
                shard.numberOr("stolen_cells", 0));
            stats.shard.overlapCoalesced =
                static_cast<std::uint64_t>(
                    shard.numberOr("overlap_cells_coalesced", 0));
            if (shard.contains("lane_cells")) {
                const Json &lanes = shard.at("lane_cells");
                for (std::size_t i = 0; i < lanes.size(); ++i) {
                    stats.shard.laneCells.push_back(
                        lanes.at(i).asUint());
                }
            }
            stats.shard.fanoutSeconds =
                shard.numberOr("fanout_seconds", 0.0);
            stats.shard.mergeSeconds =
                shard.numberOr("merge_seconds", 0.0);
        }
        metrics.recordServe(stats);
    }
    if (json.contains("result_store")) {
        const Json &store = json.at("result_store");
        ResultStoreStats stats;
        stats.hits =
            static_cast<unsigned>(store.numberOr("hits", 0));
        stats.misses =
            static_cast<unsigned>(store.numberOr("misses", 0));
        stats.stores =
            static_cast<unsigned>(store.numberOr("stores", 0));
        stats.invalidated =
            static_cast<unsigned>(store.numberOr("invalidated", 0));
        stats.journalWritebacks = static_cast<unsigned>(
            store.numberOr("journal_writebacks", 0));
        stats.claims =
            static_cast<unsigned>(store.numberOr("claims", 0));
        stats.claimBusy =
            static_cast<unsigned>(store.numberOr("claims_busy", 0));
        stats.claimServed = static_cast<unsigned>(
            store.numberOr("claims_served", 0));
        stats.stolen = static_cast<unsigned>(
            store.numberOr("cells_stolen", 0));
        metrics.recordResultStore(stats);
    }
    metrics._tableImpl = json.stringOr("table_impl", "");
    return metrics;
}

} // namespace ibp
