#include "report/artifact.hh"

#include <ctime>
#include <fstream>
#include <sstream>

#include "robust/atomic_file.hh"
#include "util/logging.hh"

#ifndef IBP_GIT_SHA
#define IBP_GIT_SHA "unknown"
#endif
#ifndef IBP_BUILD_TYPE
#define IBP_BUILD_TYPE "unknown"
#endif

namespace ibp {

Json
RunManifest::toJson() const
{
    Json json = Json::object();
    json.set("slug", slug);
    json.set("title", title);
    json.set("git_sha", gitSha);
    json.set("compiler", compiler);
    json.set("build_type", buildType);
    json.set("timestamp", timestamp);
    json.set("event_scale", eventScale);
    json.set("threads", threads);
    json.set("quick", quick);
    return json;
}

RunManifest
RunManifest::fromJson(const Json &json)
{
    RunManifest manifest;
    manifest.slug = json.stringOr("slug", "");
    manifest.title = json.stringOr("title", "");
    manifest.gitSha = json.stringOr("git_sha", "unknown");
    manifest.compiler = json.stringOr("compiler", "unknown");
    manifest.buildType = json.stringOr("build_type", "unknown");
    manifest.timestamp = json.stringOr("timestamp", "");
    manifest.eventScale = json.numberOr("event_scale", 1.0);
    manifest.threads =
        static_cast<unsigned>(json.numberOr("threads", 0));
    manifest.quick =
        json.contains("quick") && json.at("quick").asBool();
    return manifest;
}

RunManifest
buildManifest()
{
    RunManifest manifest;
    manifest.gitSha = IBP_GIT_SHA;
    manifest.buildType = IBP_BUILD_TYPE;
#if defined(__VERSION__)
#if defined(__clang__)
    manifest.compiler = std::string("clang ") + __VERSION__;
#else
    manifest.compiler = std::string("gcc ") + __VERSION__;
#endif
#endif
    char buf[32];
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    manifest.timestamp = buf;
    return manifest;
}

Json
tableToJson(const ResultTable &table)
{
    Json json = Json::object();
    json.set("title", table.title());
    json.set("row_header", table.rowHeader());
    json.set("precision", table.precision());

    Json columns = Json::array();
    for (unsigned c = 0; c < table.numCols(); ++c)
        columns.push(table.colLabel(c));
    json.set("columns", std::move(columns));

    Json rows = Json::array();
    for (unsigned r = 0; r < table.numRows(); ++r)
        rows.push(table.rowLabel(r));
    json.set("rows", std::move(rows));

    Json cells = Json::array();
    for (unsigned r = 0; r < table.numRows(); ++r) {
        Json row = Json::array();
        for (unsigned c = 0; c < table.numCols(); ++c) {
            const auto cell = table.get(r, c);
            row.push(cell ? Json(*cell) : Json());
        }
        cells.push(std::move(row));
    }
    json.set("cells", std::move(cells));
    return json;
}

ResultTable
tableFromJson(const Json &json)
{
    ResultTable table(json.stringOr("title", ""),
                      json.stringOr("row_header", ""));
    table.setPrecision(
        static_cast<unsigned>(json.numberOr("precision", 2)));
    const Json &columns = json.at("columns");
    for (std::size_t c = 0; c < columns.size(); ++c)
        table.addColumn(columns.at(c).asString());
    const Json &rows = json.at("rows");
    const Json &cells = json.at("cells");
    if (cells.size() != rows.size()) {
        throw RunException(RunError::permanent(
            "table '" + table.title() + "': " +
            std::to_string(cells.size()) + " cell rows but " +
            std::to_string(rows.size()) + " row labels"));
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const unsigned row = table.addRow(rows.at(r).asString());
        const Json &cell_row = cells.at(r);
        if (cell_row.size() != columns.size()) {
            throw RunException(RunError::permanent(
                "table '" + table.title() + "' row " +
                std::to_string(r) + ": " +
                std::to_string(cell_row.size()) + " cells but " +
                std::to_string(columns.size()) + " columns"));
        }
        for (std::size_t c = 0; c < cell_row.size(); ++c) {
            const Json &cell = cell_row.at(c);
            if (!cell.isNull())
                table.set(row, static_cast<unsigned>(c),
                          cell.asNumber());
        }
    }
    return table;
}

const ResultTable *
RunArtifact::findTable(const std::string &title) const
{
    for (const auto &table : tables) {
        if (table.title() == title)
            return &table;
    }
    return nullptr;
}

Json
RunArtifact::toJson() const
{
    Json json = Json::object();
    json.set("schema", "ibp-run-artifact");
    json.set("version", kArtifactSchemaVersion);
    json.set("manifest", manifest.toJson());

    Json tables_json = Json::array();
    for (const auto &table : tables)
        tables_json.push(tableToJson(table));
    json.set("tables", std::move(tables_json));

    Json notes_json = Json::array();
    for (const auto &note : notes)
        notes_json.push(note);
    json.set("notes", std::move(notes_json));

    json.set("metrics", metrics.toJson());
    return json;
}

RunArtifact
RunArtifact::fromJson(const Json &json)
{
    if (json.stringOr("schema", "") != "ibp-run-artifact") {
        throw RunException(
            RunError::permanent("not an ibp run artifact"));
    }
    const int version =
        static_cast<int>(json.numberOr("version", -1));
    if (version != kArtifactSchemaVersion) {
        throw RunException(RunError::permanent(
            "unsupported artifact schema version " +
            std::to_string(version)));
    }

    RunArtifact artifact;
    artifact.manifest = RunManifest::fromJson(json.at("manifest"));
    const Json &tables = json.at("tables");
    for (std::size_t i = 0; i < tables.size(); ++i)
        artifact.tables.push_back(tableFromJson(tables.at(i)));
    if (json.contains("notes")) {
        const Json &notes = json.at("notes");
        for (std::size_t i = 0; i < notes.size(); ++i)
            artifact.notes.push_back(notes.at(i).asString());
    }
    artifact.metrics = RunMetrics::fromJson(json.at("metrics"));
    return artifact;
}

Result<void>
RunArtifact::write(const std::string &path) const
{
    // Crash safety is delegated to the shared tmp+fsync+rename path;
    // readers either see the old artifact or the complete new one.
    return writeFileAtomic(path, toJson().dump(2) + "\n");
}

Result<RunArtifact>
RunArtifact::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return RunError::permanent("cannot open artifact '" + path +
                                   "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return fromJson(Json::parse(buffer.str()));
    } catch (const RunException &error) {
        return RunError::permanent("artifact '" + path +
                                   "': " + error.error().message);
    } catch (const JsonParseError &error) {
        return RunError::permanent("artifact '" + path +
                                   "': " + error.what());
    } catch (const JsonError &error) {
        return RunError::permanent("artifact '" + path +
                                   "': " + error.what());
    }
}

} // namespace ibp
