/**
 * @file
 * Baseline comparison of run artifacts: the regression gate.
 *
 * diffArtifacts() compares a fresh run artifact against a golden
 * baseline cell by cell. A cell passes when the absolute difference
 * is within `absTolerance` (percentage points for misprediction
 * tables) OR within `relTolerance` of the baseline magnitude;
 * structural drift (missing tables, rows, or columns, or a trace
 * scale mismatch) always fails, because comparing different
 * workloads is meaningless. Optional throughput checks enforce an
 * absolute branches/sec floor and a relative floor against the
 * baseline's recorded throughput. `tools/report_diff` wraps this as
 * a CLI for local use and CI.
 */

#ifndef IBP_REPORT_DIFF_HH
#define IBP_REPORT_DIFF_HH

#include <string>
#include <vector>

#include "report/artifact.hh"

namespace ibp {

struct DiffOptions
{
    /** Cell tolerance: absolute (in table units, e.g. pp). */
    double absTolerance = 0.1;

    /** Cell tolerance: relative to the baseline magnitude. */
    double relTolerance = 0.02;

    /** Minimum fresh branches/sec; 0 disables the check. */
    double minThroughput = 0.0;

    /**
     * Fresh throughput must be at least this fraction of the
     * baseline's recorded throughput; 0 disables. Only meaningful
     * when fresh and baseline ran on comparable hardware.
     */
    double throughputRatio = 0.0;

    /** Check manifest compatibility (slug, event scale). */
    bool checkManifest = true;

    /**
     * Accept a fresh artifact that records failed cells. Off by
     * default: a partial run must not silently pass the gate just
     * because the cells that *did* complete match the baseline.
     */
    bool allowPartial = false;
};

/** One detected regression or structural mismatch. */
struct DiffIssue
{
    /** Location, e.g. "table 'Figure 2...' [AVG][BTB-2bc]". */
    std::string where;
    std::string message;
};

struct DiffReport
{
    std::vector<DiffIssue> issues;

    /** Cells compared and found within tolerance. */
    std::size_t cellsCompared = 0;

    bool passed() const { return issues.empty(); }

    /** Multi-line human-readable verdict. */
    std::string summary() const;
};

/** Compare @p fresh against @p baseline under @p options. */
DiffReport diffArtifacts(const RunArtifact &fresh,
                         const RunArtifact &baseline,
                         const DiffOptions &options = {});

} // namespace ibp

#endif // IBP_REPORT_DIFF_HH
