/**
 * @file
 * Telemetry collected while a bench binary runs its simulations.
 *
 * A RunMetrics instance aggregates one counter record per
 * (configuration x benchmark) simulation cell: branches simulated,
 * wall time, and final table occupancy. SuiteRunner::run() records
 * cells from its worker threads; recording happens once per cell
 * (never inside the per-branch hot loop), so the overhead on the
 * simulation itself is two clock reads and one mutex acquisition per
 * grid cell.
 *
 * The aggregates (total branches, branches/sec throughput, peak
 * occupancy, thread count) land in the JSON run artifact where the
 * baseline regression gate can enforce a throughput floor.
 */

#ifndef IBP_REPORT_RUN_METRICS_HH
#define IBP_REPORT_RUN_METRICS_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hh"

namespace ibp {

/** Counters of one (configuration x benchmark) simulation. */
struct CellMetrics
{
    std::string column;
    std::string benchmark;
    std::uint64_t branches = 0;
    /** Per-cell wall time. Synthetic (an even split of the shared
     *  traversal time) when secondsSynthetic is set. */
    double seconds = 0.0;
    /** Wall time of the traversal that produced this cell: equals
     *  `seconds` for an isolated per-cell run, the undivided group
     *  time when the cell came out of a fused traversal. */
    double groupSeconds = 0.0;
    /** True when `seconds` is a synthetic even split of
     *  groupSeconds (fused single-pass engine). */
    bool secondsSynthetic = false;
    std::uint64_t tableOccupancy = 0;
    std::uint64_t tableCapacity = 0;
};

/**
 * Telemetry of the fused sweep engine (docs/PERFORMANCE.md): how many
 * benchmark chunks ran fused versus falling back to the per-cell
 * isolated path, and why. Counters are cumulative across run() calls
 * of one session, mirroring the trace-source counters.
 */
struct SweepKernelStats
{
    /** Chunks simulated by the fused single-pass engine. */
    unsigned groupsFused = 0;
    /** Chunks that fell back to the per-cell path (sum of the
     *  per-reason counters below). */
    unsigned groupsPerCell = 0;
    /** Predictors that joined a SweepKernel (shared history). */
    unsigned predictorsBound = 0;
    /** Predictors in fused chunks that declined to join (they still
     *  rode the shared traversal with private history). */
    unsigned predictorsUnbound = 0;
    /** Two-level columns deduplicated into replicas of an
     *  equal-configuration primary (SweepKernel::dedupe()). */
    unsigned predictorsDeduped = 0;
    /** Fallback cause: a predictor factory threw. */
    unsigned fallbackFactory = 0;
    /** Fallback cause: the watchdog cancelled the fused traversal. */
    unsigned fallbackCancelled = 0;
    /** Fallback cause: an injected fault at the "fused" site. */
    unsigned fallbackInjected = 0;
    /** Fallback cause: a sim-armed fault injector disabled the fused
     *  engine wholesale (per-cell attempt accounting must hold). */
    unsigned fallbackInjectorArmed = 0;
    /** Fallback cause: any other error during the fused attempt. */
    unsigned fallbackError = 0;
};

/**
 * Telemetry of the ibpd sweep daemon (docs/SERVICE.md), recorded by
 * the server into artifacts it serves and by the client into the
 * artifact it writes locally. Its presence is what distinguishes a
 * daemon-served artifact from an in-process one (report_diff
 * --require-served gates on it); everything else about a served
 * artifact is bit-identical to the in-process run.
 */
/**
 * Telemetry of the grid sharder (docs/SERVICE.md): how the daemon
 * split one job's cells across worker lanes, what the steal/requeue
 * machinery did, and how much of the grid overlapping concurrent
 * requests shared through the cell-claim layer. Recorded by the
 * server onto the artifacts of sharded jobs only; lanes that run a
 * whole job leave it empty (planned == 0 means absent).
 */
struct ShardServeStats
{
    /** Shards the planner fanned out for this job. */
    unsigned planned = 0;
    /** Shard re-dispatches after a lane failure. */
    unsigned requeued = 0;
    /** Shards abandoned after the re-queue budget; their cells were
     *  swept up by the merge pass instead. */
    unsigned abandoned = 0;
    /** Cells a shard stole from a slower peer's partition. */
    std::uint64_t stolenCells = 0;
    /** Cells served from the store after deferring to another
     *  claimer (the cross-request overlap win). */
    std::uint64_t overlapCoalesced = 0;
    /** Cells simulated per lane index during the fan-out. */
    std::vector<std::uint64_t> laneCells;
    /** Wall time of the parallel shard fan-out. */
    double fanoutSeconds = 0.0;
    /** Wall time of the single-lane merge pass. */
    double mergeSeconds = 0.0;
};

struct ServeMetrics
{
    /** Requests this run absorbed: 1 for a dedicated job, more when
     *  coalesced subscribers shared it. */
    unsigned requests = 0;
    /** Requests served by attaching to an existing identical job
     *  instead of queueing a new execution. */
    unsigned coalesced = 0;
    /** Admission rejections (queue full) the request rode out with
     *  retry-after backoff before being accepted. */
    unsigned admissionRejects = 0;
    /** True when the serving daemon paid zero trace generations for
     *  this run (its warm state absorbed the acquisition cost). */
    bool warm = false;
    /** Wall time the request spent queued before its job started. */
    double queueSeconds = 0.0;
    /** Server-side wall time from job start to terminal state (the
     *  lane-scaling gates compare this across --lanes values). */
    double jobSeconds = 0.0;
    /** Grid-sharder telemetry; planned == 0 when the job ran
     *  unsharded. */
    ShardServeStats shard;
};

/**
 * Telemetry of the content-addressed result store
 * (sim/result_store.hh): how many grid cells were loaded instead of
 * simulated, how many were computed and persisted, and how many
 * stored entries were quarantined. Counters are cumulative across
 * run() calls of one session, mirroring the trace-source counters.
 * The CI warm-store gate asserts hits == cells with zero misses on
 * a warm re-run (report_diff --require-result-cached).
 */
struct ResultStoreStats
{
    /** Cells restored from a stored entry instead of simulating. */
    unsigned hits = 0;
    /** Cells probed but absent from the store (then simulated). */
    unsigned misses = 0;
    /** Cells simulated and persisted into the store. */
    unsigned stores = 0;
    /** Stored entries that failed validation and were quarantined
     *  to `<file>.corrupt` (then re-simulated). */
    unsigned invalidated = 0;
    /** Journal-restored cells written back into the store (exactly
     *  once each); these are NOT hits - the checkpoint journal, not
     *  the store, resurrected them. */
    unsigned journalWritebacks = 0;
    /** Cell claims this run acquired (then simulated the cell). */
    unsigned claims = 0;
    /** Claim attempts that lost to a live peer (the cell was
     *  deferred instead of simulated). */
    unsigned claimBusy = 0;
    /** Deferred cells eventually served from the entry the claim
     *  owner persisted - each one a simulation NOT repeated. The
     *  overlapping-request test asserts the intersection shows up
     *  here, not in `stores`. */
    unsigned claimServed = 0;
    /** Foreign-partition cells this runner claimed and simulated in
     *  its steal sweep (shard rebalancing). */
    unsigned stolen = 0;
};

/**
 * Telemetry of the SIMD/SoA batch engine (docs/PERFORMANCE.md): the
 * vector dispatch level the process resolved, why it is not at full
 * width, and how the fused traversals fed their records (zero-copy
 * columnar blocks vs per-block transposes) and partitioned their
 * predictor columns (batched lane engine vs generic
 * record-at-a-time). Counters are cumulative across run() calls of
 * one session, mirroring the sweep-kernel counters; the strings are
 * process-global and simply kept current.
 */
struct SimdStats
{
    /** Resolved dispatch level: "scalar", "sse2" or "avx2". */
    std::string dispatchLevel;
    /** Why the process is below full width ("" at full width,
     *  else e.g. "IBP_SIMD=off" or "cpu-lacks-avx2"). */
    std::string fallbackReason;
    /** Trace blocks served zero-copy from columnar (v3 mmap)
     *  storage. */
    std::uint64_t columnarBlocks = 0;
    /** Trace blocks transposed from record storage into scratch
     *  columns. */
    std::uint64_t transposedBlocks = 0;
    /** Records skipped wholesale by the vectorized block
     *  classifier. */
    std::uint64_t skippedRecords = 0;
    /** Predictor columns executed by the batched lane engine,
     *  summed over fused traversals. */
    std::uint64_t laneColumns = 0;
    /** Columns that ran the generic record-at-a-time path. */
    std::uint64_t genericColumns = 0;
    /** Distinct state machines (dedup owners) the lane engine
     *  drove, summed over fused traversals. */
    std::uint64_t laneMachines = 0;
};

/**
 * Record of one cell that permanently failed (all retries
 * exhausted, or a non-retryable error). Artifacts carrying any of
 * these are *partial*: report_diff rejects them unless explicitly
 * allowed (see docs/ROBUSTNESS.md).
 */
struct FailureRecord
{
    std::string column;
    std::string benchmark;
    std::string error; ///< Human-readable cause.
    std::string kind;  ///< "transient" / "permanent" / "timeout".
    unsigned attempts = 1;
};

class RunMetrics
{
  public:
    RunMetrics() = default;
    RunMetrics(const RunMetrics &other);
    RunMetrics &operator=(const RunMetrics &other);

    /** Record one finished simulation cell. Thread-safe. */
    void recordCell(const CellMetrics &cell);

    /** Record one permanently failed cell. Thread-safe. */
    void recordFailure(const FailureRecord &failure);

    /** Record the wall time of one parallel grid run. Thread-safe. */
    void recordRunWindow(double seconds);

    /** Record the worker-thread count (the maximum is kept). */
    void recordThreads(unsigned count);

    /**
     * Record how the run's traces were obtained: @p generated ran
     * the generator (trace-cache misses or no cache), @p mmapHits
     * were served zero-copy from mmap'ed `.ibpm` cache entries,
     * @p streamHits were parsed from legacy `.ibpt` stream entries,
     * @p seconds is the wall time of the acquisition phase.
     * Cumulative across runners; a warm fully-cached run shows
     * tracesGenerated() == 0, which is what the CI cache-smoke gate
     * asserts (and --require-mmap additionally demands
     * mmapHits > 0 == streamHits). Thread-safe.
     */
    void recordTraceSource(unsigned generated, unsigned mmapHits,
                           unsigned streamHits, double seconds);

    /**
     * Record which predictor-table implementation produced the run
     * ("flat" or "reference", see core/table_spec.hh). Shows up as
     * "table_impl" in the artifact so a regression-gate comparison
     * against a baseline produced by the other implementation is
     * visible in the diff context.
     */
    void recordTableImpl(const std::string &name);

    std::vector<CellMetrics> cells() const;
    std::size_t cellCount() const;

    std::vector<FailureRecord> failures() const;
    std::size_t failureCount() const;

    /** Sum of branches over all recorded cells. */
    std::uint64_t totalBranches() const;

    /** Sum of per-cell simulation time (CPU-side, across workers). */
    double cellSeconds() const;

    /** Sum of recorded grid wall-clock windows. */
    double runSeconds() const;

    /**
     * Aggregate throughput: total branches divided by grid wall
     * time (so it credits parallelism). 0 when nothing was timed.
     */
    double branchesPerSecond() const;

    /** Largest per-cell final table occupancy observed. */
    std::uint64_t peakTableOccupancy() const;

    unsigned threads() const;

    /** Traces produced by the generator (0 on a fully warm cache). */
    unsigned tracesGenerated() const;

    /** Traces served from the on-disk trace cache (all transports). */
    unsigned traceCacheHits() const;

    /** Cache hits served zero-copy via mmap. */
    unsigned traceMmapHits() const;

    /** Cache hits parsed from legacy stream entries. */
    unsigned traceStreamHits() const;

    /**
     * Dominant trace read path: "generated", "mmap", "stream",
     * "mixed" (both cache transports), "cache" (hits from an
     * artifact predating the transport split), or "none".
     */
    std::string traceReadPath() const;

    /** Wall time of the trace acquisition phase(s), in seconds. */
    double traceSeconds() const;

    /** True when recordTraceSource() was ever called. */
    bool hasTraceSource() const;

    /** Table implementation recorded for this run ("" if never). */
    std::string tableImpl() const;

    /**
     * Record fused-engine telemetry for one grid run. Cumulative
     * across calls (counters add up). Thread-safe.
     */
    void recordSweepKernel(const SweepKernelStats &stats);

    /** True when recordSweepKernel() was ever called. */
    bool hasSweepKernel() const;

    /** Aggregated fused-engine telemetry (zeros if never recorded). */
    SweepKernelStats sweepKernel() const;

    /**
     * Record SIMD/SoA engine telemetry for one grid run. Counters
     * add up across calls; the dispatch strings are overwritten
     * (they describe the process, not the run). Thread-safe.
     */
    void recordSimd(const SimdStats &stats);

    /** True when recordSimd() was ever called. */
    bool hasSimd() const;

    /** SIMD/SoA engine telemetry (zeros if never recorded). */
    SimdStats simd() const;

    /**
     * Record daemon-service telemetry for this run. Counters add up
     * across calls (a coalesced request layers onto the job's own
     * record); `warm` and `queueSeconds` keep the maximum.
     * Thread-safe.
     */
    void recordServe(const ServeMetrics &stats);

    /** True when recordServe() was ever called, i.e. the run was
     *  served by (or through) an ibpd daemon. */
    bool hasServe() const;

    /** Daemon-service telemetry (zeros if never recorded). */
    ServeMetrics serve() const;

    /**
     * Record result-store telemetry for one grid run. Cumulative
     * across calls (counters add up). Thread-safe.
     */
    void recordResultStore(const ResultStoreStats &stats);

    /** True when recordResultStore() was ever called, i.e. the run
     *  executed with an armed result store. */
    bool hasResultStore() const;

    /** Result-store telemetry (zeros if never recorded). */
    ResultStoreStats resultStore() const;

    Json toJson() const;
    static RunMetrics fromJson(const Json &json);

  private:
    mutable std::mutex _mutex;
    std::vector<CellMetrics> _cells;
    std::vector<FailureRecord> _failures;
    double _runSeconds = 0.0;
    unsigned _threads = 0;
    bool _hasTraceSource = false;
    unsigned _tracesGenerated = 0;
    unsigned _traceCacheHits = 0;
    unsigned _traceMmapHits = 0;
    unsigned _traceStreamHits = 0;
    double _traceSeconds = 0.0;
    std::string _tableImpl;
    bool _hasSweepKernel = false;
    SweepKernelStats _sweepKernel;
    bool _hasSimd = false;
    SimdStats _simd;
    bool _hasServe = false;
    ServeMetrics _serve;
    bool _hasResultStore = false;
    ResultStoreStats _resultStore;
};

} // namespace ibp

#endif // IBP_REPORT_RUN_METRICS_HH
