#include "report/diff.hh"

#include <cmath>
#include <sstream>

#include "util/format.hh"

namespace ibp {

namespace {

void
addIssue(DiffReport &report, std::string where, std::string message)
{
    report.issues.push_back(
        DiffIssue{std::move(where), std::move(message)});
}

void
diffManifests(const RunManifest &fresh, const RunManifest &baseline,
              DiffReport &report)
{
    if (fresh.slug != baseline.slug) {
        addIssue(report, "manifest",
                 "slug mismatch: fresh '" + fresh.slug +
                     "' vs baseline '" + baseline.slug + "'");
    }
    // Different trace scales simulate different workloads; the cell
    // comparison below would be meaningless noise.
    if (std::fabs(fresh.eventScale - baseline.eventScale) > 1e-9) {
        addIssue(report, "manifest",
                 "event scale mismatch: fresh " +
                     formatFixed(fresh.eventScale, 2) +
                     " vs baseline " +
                     formatFixed(baseline.eventScale, 2));
    }
}

void
diffTables(const ResultTable &fresh, const ResultTable &baseline,
           const DiffOptions &options, DiffReport &report)
{
    const std::string where = "table '" + baseline.title() + "'";
    if (fresh.numRows() != baseline.numRows() ||
        fresh.numCols() != baseline.numCols()) {
        addIssue(report, where,
                 "shape mismatch: fresh " +
                     std::to_string(fresh.numRows()) + "x" +
                     std::to_string(fresh.numCols()) +
                     " vs baseline " +
                     std::to_string(baseline.numRows()) + "x" +
                     std::to_string(baseline.numCols()));
        return;
    }

    for (unsigned r = 0; r < baseline.numRows(); ++r) {
        if (fresh.rowLabel(r) != baseline.rowLabel(r)) {
            addIssue(report, where,
                     "row " + std::to_string(r) + " is '" +
                         fresh.rowLabel(r) + "', baseline has '" +
                         baseline.rowLabel(r) + "'");
            return;
        }
    }
    for (unsigned c = 0; c < baseline.numCols(); ++c) {
        if (fresh.colLabel(c) != baseline.colLabel(c)) {
            addIssue(report, where,
                     "column " + std::to_string(c) + " is '" +
                         fresh.colLabel(c) + "', baseline has '" +
                         baseline.colLabel(c) + "'");
            return;
        }
    }

    for (unsigned r = 0; r < baseline.numRows(); ++r) {
        for (unsigned c = 0; c < baseline.numCols(); ++c) {
            const auto fresh_cell = fresh.get(r, c);
            const auto base_cell = baseline.get(r, c);
            const std::string cell_where =
                where + " [" + baseline.rowLabel(r) + "][" +
                baseline.colLabel(c) + "]";
            if (fresh_cell.has_value() != base_cell.has_value()) {
                addIssue(report, cell_where,
                         fresh_cell ? "cell present but empty in "
                                      "baseline"
                                    : "cell empty but present in "
                                      "baseline");
                continue;
            }
            if (!base_cell)
                continue;
            ++report.cellsCompared;
            const double delta =
                std::fabs(*fresh_cell - *base_cell);
            const bool within =
                delta <= options.absTolerance ||
                delta <=
                    options.relTolerance * std::fabs(*base_cell);
            if (!within) {
                addIssue(report, cell_where,
                         "value " + formatFixed(*fresh_cell, 4) +
                             " deviates from baseline " +
                             formatFixed(*base_cell, 4) +
                             " by " + formatFixed(delta, 4) +
                             " (abs tol " +
                             formatFixed(options.absTolerance, 4) +
                             ", rel tol " +
                             formatFixed(options.relTolerance, 4) +
                             ")");
            }
        }
    }
}

void
diffThroughput(const RunMetrics &fresh, const RunMetrics &baseline,
               const DiffOptions &options, DiffReport &report)
{
    const double fresh_bps = fresh.branchesPerSecond();
    if (options.minThroughput > 0.0 &&
        fresh_bps < options.minThroughput) {
        addIssue(report, "metrics",
                 "throughput " + formatFixed(fresh_bps, 0) +
                     " branches/sec below floor " +
                     formatFixed(options.minThroughput, 0));
    }
    if (options.throughputRatio > 0.0) {
        const double base_bps = baseline.branchesPerSecond();
        const double floor = options.throughputRatio * base_bps;
        if (base_bps > 0.0 && fresh_bps < floor) {
            addIssue(report, "metrics",
                     "throughput " + formatFixed(fresh_bps, 0) +
                         " branches/sec below " +
                         formatFixed(options.throughputRatio, 2) +
                         "x baseline (" + formatFixed(base_bps, 0) +
                         ")");
        }
    }
}

} // namespace

std::string
DiffReport::summary() const
{
    std::ostringstream out;
    if (passed()) {
        out << "PASS: " << cellsCompared
            << " cells within tolerance\n";
        return out.str();
    }
    out << "FAIL: " << issues.size() << " issue"
        << (issues.size() == 1 ? "" : "s") << " (" << cellsCompared
        << " cells compared)\n";
    for (const auto &issue : issues)
        out << "  " << issue.where << ": " << issue.message << '\n';
    return out.str();
}

DiffReport
diffArtifacts(const RunArtifact &fresh, const RunArtifact &baseline,
              const DiffOptions &options)
{
    DiffReport report;
    if (options.checkManifest)
        diffManifests(fresh.manifest, baseline.manifest, report);

    // A partial fresh run (recorded cell failures) fails the gate
    // outright unless explicitly allowed: its tables can look fine
    // while whole benchmarks are missing from the averages.
    const std::size_t failed = fresh.metrics.failureCount();
    if (failed > 0 && !options.allowPartial) {
        addIssue(report, "metrics",
                 "fresh artifact is partial: " +
                     std::to_string(failed) + " failed cell" +
                     (failed == 1 ? "" : "s") +
                     " recorded (pass --allow-partial to accept)");
    }

    for (const auto &base_table : baseline.tables) {
        const ResultTable *fresh_table =
            fresh.findTable(base_table.title());
        if (!fresh_table) {
            addIssue(report, "table '" + base_table.title() + "'",
                     "missing from fresh run");
            continue;
        }
        diffTables(*fresh_table, base_table, options, report);
    }
    for (const auto &fresh_table : fresh.tables) {
        if (!baseline.findTable(fresh_table.title())) {
            addIssue(report, "table '" + fresh_table.title() + "'",
                     "not present in baseline (regenerate the "
                     "baseline after schema changes)");
        }
    }

    diffThroughput(fresh.metrics, baseline.metrics, options, report);
    return report;
}

} // namespace ibp
