/**
 * @file
 * Deterministic random-number generation and discrete samplers.
 *
 * Every source of randomness in libibp flows from a named 64-bit seed
 * through these generators, so that every synthetic trace and every
 * experiment is exactly reproducible across runs and machines. We do
 * not use std::mt19937 / std::*_distribution because their outputs are
 * not guaranteed identical across standard-library implementations.
 */

#ifndef IBP_UTIL_RNG_HH
#define IBP_UTIL_RNG_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"

namespace ibp {

/**
 * xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, and
 * fully specified (no implementation-defined behaviour).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with success probability @p probability. */
    bool nextBool(double probability);

    /** Fork an independent stream (for per-site / per-phase RNGs). */
    Rng fork();

  private:
    std::uint64_t _state[4];
};

/**
 * Zipf(alpha) sampler over ranks {0, .., n-1}: rank r is drawn with
 * probability proportional to 1 / (r+1)^alpha. Used to model the
 * heavy-tailed activity of indirect branch sites observed in
 * Tables 1/2 of the paper (a handful of sites dominate execution).
 */
class ZipfSampler
{
  public:
    ZipfSampler(unsigned n, double alpha);

    unsigned sample(Rng &rng) const;

    /** Deterministic inverse-CDF pick for a unit value in [0, 1). */
    unsigned pickByUnit(double unit) const;

    unsigned size() const { return static_cast<unsigned>(_cdf.size()); }

    /** Probability mass of rank @p rank. */
    double probability(unsigned rank) const;

  private:
    std::vector<double> _cdf;
};

/**
 * Categorical sampler over an arbitrary weight vector (weights need
 * not be normalised). Linear-scan CDF; the vectors here are tiny
 * (target sets of a branch site), so this beats alias-table setup.
 */
class CategoricalSampler
{
  public:
    explicit CategoricalSampler(const std::vector<double> &weights);

    unsigned sample(Rng &rng) const;

    /** Deterministic inverse-CDF pick for a unit value in [0, 1). */
    unsigned pickByUnit(double unit) const;

    unsigned size() const { return static_cast<unsigned>(_cdf.size()); }

  private:
    std::vector<double> _cdf;
};

} // namespace ibp

#endif // IBP_UTIL_RNG_HH
