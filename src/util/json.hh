/**
 * @file
 * Minimal JSON value type with a writer and a recursive-descent
 * parser.
 *
 * The report subsystem persists run artifacts (result tables,
 * telemetry, environment manifests) as JSON so external tooling and
 * the baseline regression gate can consume them without linking
 * against libibp. Only the subset of JSON the artifact schema needs
 * is implemented: null, bool, finite doubles, strings, arrays, and
 * objects that preserve insertion order. No external dependency is
 * pulled in.
 */

#ifndef IBP_UTIL_JSON_HH
#define IBP_UTIL_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ibp {

/**
 * Thrown by the typed accessors on a type mismatch or a missing
 * key/index. Parsing external JSON (artifacts, checkpoints) must be
 * able to recover from schema drift, so these are exceptions rather
 * than panics; code that has already validated the shape may treat
 * one escaping as a bug.
 */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** Thrown by Json::parse on malformed input. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &message, std::size_t offset);

    /** Byte offset into the parsed text where the error was found. */
    std::size_t offset() const { return _offset; }

  private:
    std::size_t _offset;
};

/**
 * A JSON document node. Numbers are stored as doubles (the artifact
 * schema never needs integers beyond 2^53). Object keys keep their
 * insertion order so written artifacts stay human-diffable.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : _type(Type::Null) {}
    Json(bool value) : _type(Type::Bool), _bool(value) {}
    Json(double value) : _type(Type::Number), _number(value) {}
    Json(int value) : Json(static_cast<double>(value)) {}
    Json(unsigned value) : Json(static_cast<double>(value)) {}
    Json(std::uint64_t value) : Json(static_cast<double>(value)) {}
    Json(std::string value)
        : _type(Type::String), _string(std::move(value))
    {
    }
    Json(const char *value) : Json(std::string(value)) {}

    static Json array();
    static Json object();

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    /** Typed accessors; throw JsonError on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t index) const;
    void push(Json value);

    /** Object access. */
    bool contains(const std::string &key) const;
    /** Throws JsonError when @p key is absent; use contains()
     * first. */
    const Json &at(const std::string &key) const;
    /** Returns @p fallback when @p key is absent or null. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    void set(const std::string &key, Json value);
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Serialise. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits a compact single line.
     */
    std::string dump(unsigned indent = 0) const;

    /** Parse @p text; throws JsonParseError on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, unsigned indent,
                unsigned depth) const;

    Type _type;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Json> _array;
    std::vector<std::pair<std::string, Json>> _object;
};

/** Escape a string for embedding in JSON (no surrounding quotes). */
std::string jsonEscape(const std::string &text);

} // namespace ibp

#endif // IBP_UTIL_JSON_HH
