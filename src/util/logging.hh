/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic()  - an internal invariant was violated (a libibp bug); aborts.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            malformed file); exits with status 1.
 * warn()   - something suspicious but survivable happened.
 * inform() - neutral status output.
 */

#ifndef IBP_UTIL_LOGGING_HH
#define IBP_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ibp {

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation detail of IBP_ASSERT. */
[[noreturn]] void panicAssert(const char *file, int line,
                              const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert an internal invariant with a formatted explanation.
 * Unlike assert(), stays active in release builds: every violation in
 * an experiment harness must be loud, or results silently rot.
 */
#define IBP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::ibp::panicAssert(__FILE__, __LINE__, #cond,               \
                               __VA_ARGS__);                            \
        }                                                               \
    } while (0)

} // namespace ibp

#endif // IBP_UTIL_LOGGING_HH
