/**
 * @file
 * Bit-manipulation helpers used throughout the predictor library.
 *
 * All predictor keys, indices and tags are assembled from 32-bit
 * addresses via the operations here, so the semantics are pinned down
 * carefully (and unit-tested bit-exactly in tests/util/bits_test.cc).
 */

#ifndef IBP_UTIL_BITS_HH
#define IBP_UTIL_BITS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"

namespace ibp {

/** A 32-bit code address (SPARC-style word-aligned PC or target). */
using Addr = std::uint32_t;

/**
 * Extract bits [first, first+count) of @p value, i.e. @p count bits
 * starting at bit @p first (bit 0 = LSB). count == 0 yields 0;
 * count >= 64 yields the whole shifted value.
 */
constexpr std::uint64_t
bitsRange(std::uint64_t value, unsigned first, unsigned count)
{
    if (count == 0 || first >= 64)
        return 0;
    const std::uint64_t shifted = value >> first;
    if (count >= 64)
        return shifted;
    return shifted & ((std::uint64_t{1} << count) - 1);
}

/** A mask with the low @p count bits set. */
constexpr std::uint64_t
lowMask(unsigned count)
{
    if (count >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << count) - 1;
}

/** True iff @p value is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    IBP_ASSERT(value != 0, "floorLog2 of zero");
    return 63 - std::countl_zero(value);
}

/** ceil(log2(value)); value must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return value <= 1 ? 0 : floorLog2(value - 1) + 1;
}

/**
 * XOR-fold @p value down to @p width bits by splitting it into
 * @p width-bit chunks and xoring them together. Used by the FoldXor
 * target-address compressor (paper section 4.1) and key folding.
 */
constexpr std::uint64_t
xorFold(std::uint64_t value, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value;
    std::uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & lowMask(width);
        value >>= width;
    }
    return folded;
}

/**
 * 64-bit FNV-1a hash with a caller-chosen seed (offset basis).
 * Two independent seeds give the 128-bit keys used by unconstrained
 * full-precision tables (see DESIGN.md section 1).
 */
constexpr std::uint64_t
fnv1a64(const std::uint64_t *words, unsigned count, std::uint64_t seed)
{
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    std::uint64_t hash = seed;
    for (unsigned i = 0; i < count; ++i) {
        std::uint64_t word = words[i];
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= word & 0xff;
            hash *= prime;
            word >>= 8;
        }
    }
    return hash;
}

/** Mix a 64-bit value into well-distributed bits (SplitMix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t value)
{
    value ^= value >> 30;
    value *= 0xbf58476d1ce4e5b9ULL;
    value ^= value >> 27;
    value *= 0x94d049bb133111ebULL;
    value ^= value >> 31;
    return value;
}

} // namespace ibp

#endif // IBP_UTIL_BITS_HH
