#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace ibp {

JsonParseError::JsonParseError(const std::string &message,
                               std::size_t offset)
    : std::runtime_error("json parse error at byte " +
                         std::to_string(offset) + ": " + message),
      _offset(offset)
{
}

Json
Json::array()
{
    Json json;
    json._type = Type::Array;
    return json;
}

Json
Json::object()
{
    Json json;
    json._type = Type::Object;
    return json;
}

bool
Json::asBool() const
{
    if (_type != Type::Bool)
        throw JsonError("json value is not a bool");
    return _bool;
}

double
Json::asNumber() const
{
    if (_type != Type::Number)
        throw JsonError("json value is not a number");
    return _number;
}

std::uint64_t
Json::asUint() const
{
    const double value = asNumber();
    if (value < 0.0)
        throw JsonError("json number is negative");
    return static_cast<std::uint64_t>(value);
}

const std::string &
Json::asString() const
{
    if (_type != Type::String)
        throw JsonError("json value is not a string");
    return _string;
}

std::size_t
Json::size() const
{
    if (_type == Type::Array)
        return _array.size();
    if (_type == Type::Object)
        return _object.size();
    throw JsonError("json value is not a container");
}

const Json &
Json::at(std::size_t index) const
{
    if (_type != Type::Array)
        throw JsonError("json value is not an array");
    if (index >= _array.size()) {
        throw JsonError("json index " + std::to_string(index) +
                        " out of range");
    }
    return _array[index];
}

void
Json::push(Json value)
{
    IBP_ASSERT(_type == Type::Array, "json value is not an array");
    _array.push_back(std::move(value));
}

bool
Json::contains(const std::string &key) const
{
    if (_type != Type::Object)
        throw JsonError("json value is not an object");
    for (const auto &[name, value] : _object) {
        if (name == key)
            return true;
    }
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    if (_type != Type::Object)
        throw JsonError("json value is not an object");
    for (const auto &[name, value] : _object) {
        if (name == key)
            return value;
    }
    throw JsonError("json object has no key '" + key + "'");
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    if (!contains(key) || at(key).isNull())
        return fallback;
    return at(key).asNumber();
}

std::string
Json::stringOr(const std::string &key,
               const std::string &fallback) const
{
    if (!contains(key) || at(key).isNull())
        return fallback;
    return at(key).asString();
}

void
Json::set(const std::string &key, Json value)
{
    IBP_ASSERT(_type == Type::Object, "json value is not an object");
    for (auto &[name, existing] : _object) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    _object.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (_type != Type::Object)
        throw JsonError("json value is not an object");
    return _object;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Shortest representation that round-trips through a double. */
std::string
formatNumber(double value)
{
    IBP_ASSERT(std::isfinite(value),
               "json cannot represent non-finite number");
    // Integers (the common case: branch counts, row indices) print
    // without a fractional part or exponent.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // Trim to the shortest precision that still round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
        if (std::strtod(probe, nullptr) == value)
            return probe;
    }
    return buf;
}

} // namespace

void
Json::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    std::string pad, closePad;
    if (indent) {
        pad.assign(1, '\n');
        pad.append(indent * (depth + 1), ' ');
        closePad.assign(1, '\n');
        closePad.append(indent * depth, ' ');
    }
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::Number:
        out += formatNumber(_number);
        break;
      case Type::String:
        out += '"';
        out += jsonEscape(_string);
        out += '"';
        break;
      case Type::Array:
        if (_array.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < _array.size(); ++i) {
            if (i)
                out += indent ? "," : ",";
            out += pad;
            _array[i].dumpTo(out, indent, depth + 1);
        }
        out += closePad;
        out += ']';
        break;
      case Type::Object:
        if (_object.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < _object.size(); ++i) {
            if (i)
                out += ",";
            out += pad;
            out += '"';
            out += jsonEscape(_object[i].first);
            out += indent ? "\": " : "\":";
            _object[i].second.dumpTo(out, indent, depth + 1);
        }
        out += closePad;
        out += '}';
        break;
    }
}

std::string
Json::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string_view-ish cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    Json
    parse()
    {
        Json value = parseValue();
        skipWhitespace();
        if (_pos != _text.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw JsonParseError(message, _pos);
    }

    void
    skipWhitespace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consumeLiteral(const char *literal)
    {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (_text.compare(_pos, len, literal) != 0)
            return false;
        _pos += len;
        return true;
    }

    Json
    parseValue()
    {
        skipWhitespace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("invalid literal");
            return Json(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("invalid literal");
            return Json(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return Json();
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json object = Json::object();
        skipWhitespace();
        if (peek() == '}') {
            ++_pos;
            return object;
        }
        while (true) {
            skipWhitespace();
            const std::string key = parseString();
            skipWhitespace();
            expect(':');
            object.set(key, parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return object;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json array = Json::array();
        skipWhitespace();
        if (peek() == ']') {
            ++_pos;
            return array;
        }
        while (true) {
            array.push(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return array;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            const char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            const char escape = _text[_pos++];
            switch (escape) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // Encode the BMP code point as UTF-8 (surrogate
                // pairs are not needed by the artifact schema).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-')) {
            ++_pos;
        }
        const std::string token = _text.substr(start, _pos - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() ||
            end != token.c_str() + token.size()) {
            _pos = start;
            fail("invalid number");
        }
        return Json(value);
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace ibp
