#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ibp {

void
RunningStat::push(double sample)
{
    ++_count;
    if (_count == 1) {
        _mean = _min = _max = sample;
        _m2 = 0.0;
        return;
    }
    const double delta = sample - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (sample - _mean);
    _min = std::min(_min, sample);
    _max = std::max(_max, sample);
}

double
RunningStat::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double total = 0.0;
    for (double s : samples)
        total += s;
    return total / static_cast<double>(samples.size());
}

double
geomean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        IBP_ASSERT(s > 0, "geomean of non-positive sample %f", s);
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

double
percentile(std::vector<double> samples, double pct)
{
    IBP_ASSERT(!samples.empty(), "percentile of empty sample");
    IBP_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile %f", pct);
    std::sort(samples.begin(), samples.end());
    const double rank =
        pct / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

unsigned
coverageCount(std::vector<std::uint64_t> counts, double fraction)
{
    IBP_ASSERT(fraction >= 0.0 && fraction <= 1.0,
               "coverage fraction %f", fraction);
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint64_t>());
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    if (total == 0)
        return 0;
    const double needed = fraction * static_cast<double>(total);
    std::uint64_t covered = 0;
    unsigned used = 0;
    for (auto c : counts) {
        if (static_cast<double>(covered) >= needed)
            break;
        covered += c;
        ++used;
    }
    return used;
}

} // namespace ibp
