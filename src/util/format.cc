#include "util/format.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace ibp {

std::string
formatFixed(double value, unsigned precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

ResultTable::ResultTable(std::string title, std::string rowHeader)
    : _title(std::move(title)), _rowHeader(std::move(rowHeader))
{
}

unsigned
ResultTable::addColumn(std::string label)
{
    _colLabels.push_back(std::move(label));
    for (auto &row : _cells)
        row.emplace_back();
    return numCols() - 1;
}

unsigned
ResultTable::addRow(std::string label)
{
    _rowLabels.push_back(std::move(label));
    _cells.emplace_back(numCols());
    return numRows() - 1;
}

void
ResultTable::set(unsigned row, unsigned col, double value)
{
    IBP_ASSERT(row < numRows() && col < numCols(),
               "cell (%u, %u) out of range", row, col);
    _cells[row][col] = value;
}

void
ResultTable::set(const std::string &rowLabel, const std::string &colLabel,
                 double value)
{
    int row = findRow(rowLabel);
    if (row < 0)
        row = static_cast<int>(addRow(rowLabel));
    int col = findCol(colLabel);
    if (col < 0)
        col = static_cast<int>(addColumn(colLabel));
    set(static_cast<unsigned>(row), static_cast<unsigned>(col), value);
}

std::optional<double>
ResultTable::get(unsigned row, unsigned col) const
{
    IBP_ASSERT(row < numRows() && col < numCols(),
               "cell (%u, %u) out of range", row, col);
    return _cells[row][col];
}

std::optional<double>
ResultTable::get(const std::string &rowLabel,
                 const std::string &colLabel) const
{
    const int row = findRow(rowLabel);
    const int col = findCol(colLabel);
    if (row < 0 || col < 0)
        return std::nullopt;
    return _cells[row][col];
}

const std::string &
ResultTable::rowLabel(unsigned row) const
{
    IBP_ASSERT(row < numRows(), "row %u out of range", row);
    return _rowLabels[row];
}

const std::string &
ResultTable::colLabel(unsigned col) const
{
    IBP_ASSERT(col < numCols(), "col %u out of range", col);
    return _colLabels[col];
}

int
ResultTable::findRow(const std::string &label) const
{
    const auto it =
        std::find(_rowLabels.begin(), _rowLabels.end(), label);
    if (it == _rowLabels.end())
        return -1;
    return static_cast<int>(it - _rowLabels.begin());
}

int
ResultTable::findCol(const std::string &label) const
{
    const auto it =
        std::find(_colLabels.begin(), _colLabels.end(), label);
    if (it == _colLabels.end())
        return -1;
    return static_cast<int>(it - _colLabels.begin());
}

std::string
ResultTable::formatCell(unsigned row, unsigned col) const
{
    const auto &cell = _cells[row][col];
    return cell ? formatFixed(*cell, _precision) : std::string("-");
}

std::string
ResultTable::toText() const
{
    // Compute column widths: label column + one per data column.
    std::size_t label_width = _rowHeader.size();
    for (const auto &label : _rowLabels)
        label_width = std::max(label_width, label.size());

    std::vector<std::size_t> widths(numCols());
    for (unsigned c = 0; c < numCols(); ++c) {
        widths[c] = _colLabels[c].size();
        for (unsigned r = 0; r < numRows(); ++r)
            widths[c] = std::max(widths[c], formatCell(r, c).size());
    }

    // Right-align data columns with two-space gutters.
    std::ostringstream out;
    out << "== " << _title << " ==\n";
    out << _rowHeader
        << std::string(label_width - _rowHeader.size(), ' ');
    for (unsigned c = 0; c < numCols(); ++c) {
        out << "  "
            << std::string(widths[c] - _colLabels[c].size(), ' ')
            << _colLabels[c];
    }
    out << '\n';
    for (unsigned r = 0; r < numRows(); ++r) {
        out << _rowLabels[r]
            << std::string(label_width - _rowLabels[r].size(), ' ');
        for (unsigned c = 0; c < numCols(); ++c) {
            const std::string cell = formatCell(r, c);
            out << "  " << std::string(widths[c] - cell.size(), ' ')
                << cell;
        }
        out << '\n';
    }
    return out.str();
}

std::string
ResultTable::toCsv() const
{
    std::ostringstream out;
    out << _rowHeader;
    for (const auto &label : _colLabels)
        out << ',' << label;
    out << '\n';
    for (unsigned r = 0; r < numRows(); ++r) {
        out << _rowLabels[r];
        for (unsigned c = 0; c < numCols(); ++c) {
            out << ',';
            if (_cells[r][c])
                out << formatFixed(*_cells[r][c], _precision);
        }
        out << '\n';
    }
    return out.str();
}

std::string
ResultTable::toMarkdown() const
{
    std::ostringstream out;
    out << "**" << _title << "**\n\n";
    out << "| " << _rowHeader << " |";
    for (const auto &label : _colLabels)
        out << ' ' << label << " |";
    out << "\n|---|";
    for (unsigned c = 0; c < numCols(); ++c)
        out << "---|";
    out << '\n';
    for (unsigned r = 0; r < numRows(); ++r) {
        out << "| " << _rowLabels[r] << " |";
        for (unsigned c = 0; c < numCols(); ++c)
            out << ' ' << formatCell(r, c) << " |";
        out << '\n';
    }
    return out.str();
}

void
ResultTable::print() const
{
    std::fputs(toText().c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

void
ResultTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << toCsv();
}

} // namespace ibp
