/**
 * @file
 * Saturating counters.
 *
 * Two flavours are used by the paper's predictors:
 *  - SatCounter: the classic n-bit up/down saturating counter, used as
 *    the per-entry "confidence" metapredictor counter in hybrid
 *    predictors (section 6.1) and the BPST selector.
 *  - HysteresisBit: the BTB-2bc update rule (section 3.1) - a target
 *    is replaced only after two consecutive mispredictions. As the
 *    paper notes, one bit suffices for an indirect branch.
 */

#ifndef IBP_UTIL_SAT_COUNTER_HH
#define IBP_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace ibp {

/**
 * An n-bit saturating counter (1 <= n <= 15), counting in
 * [0, 2^n - 1]. Default-constructed counters start at zero, matching
 * the paper's rule that replacing a table entry resets its confidence.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : _bits(static_cast<std::uint16_t>(bits)),
          _value(static_cast<std::uint16_t>(initial))
    {
        IBP_ASSERT(bits >= 1 && bits <= 15, "counter width %u", bits);
        IBP_ASSERT(initial <= maxValue(), "initial %u too large", initial);
    }

    unsigned value() const { return _value; }
    unsigned bits() const { return _bits; }
    unsigned maxValue() const { return (1u << _bits) - 1; }

    /** Saturating increment. */
    void
    increment()
    {
        if (_value < maxValue())
            ++_value;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (_value > 0)
            --_value;
    }

    /** Reset to zero (entry replacement). */
    void reset() { _value = 0; }

    /** True if in the upper half of the range (classic "taken" test). */
    bool isConfident() const { return _value > maxValue() / 2; }

    bool operator==(const SatCounter &other) const = default;

  private:
    std::uint16_t _bits = 2;
    std::uint16_t _value = 0;
};

/**
 * The BTB-2bc hysteresis rule: update the stored target only after two
 * consecutive misses. miss() returns true when the caller should
 * replace the stored target.
 */
class HysteresisBit
{
  public:
    /** Record a correct prediction: clear the pending-miss state. */
    void hit() { _missed = false; }

    /**
     * Record a misprediction.
     * @return true if this is the second consecutive miss and the
     *         stored target should now be replaced.
     */
    bool
    miss()
    {
        if (_missed) {
            _missed = false;
            return true;
        }
        _missed = true;
        return false;
    }

    bool pendingMiss() const { return _missed; }
    void reset() { _missed = false; }

  private:
    bool _missed = false;
};

} // namespace ibp

#endif // IBP_UTIL_SAT_COUNTER_HH
