/**
 * @file
 * Result-table assembly and rendering.
 *
 * Every bench binary builds one or more ResultTable objects (rows =
 * benchmarks/groups or parameter values, columns = predictor
 * configurations) and renders them as aligned text for the console
 * and optionally CSV for downstream plotting. Keeping rendering here
 * keeps the experiment code free of formatting noise.
 */

#ifndef IBP_UTIL_FORMAT_HH
#define IBP_UTIL_FORMAT_HH

#include <optional>
#include <string>
#include <vector>

namespace ibp {

/**
 * A rectangular table of optional numeric cells with a title, row
 * labels and column labels. Cells hold doubles; misprediction rates
 * are stored as percentages (e.g. 24.91 for 24.91%).
 */
class ResultTable
{
  public:
    ResultTable(std::string title, std::string rowHeader);

    /** Append a column; returns its index. */
    unsigned addColumn(std::string label);

    /** Append a row; returns its index. */
    unsigned addRow(std::string label);

    /** Set a cell (row and column must already exist). */
    void set(unsigned row, unsigned col, double value);

    /** Set a cell by labels, adding the row/column if missing. */
    void set(const std::string &rowLabel, const std::string &colLabel,
             double value);

    std::optional<double> get(unsigned row, unsigned col) const;
    std::optional<double> get(const std::string &rowLabel,
                              const std::string &colLabel) const;

    unsigned numRows() const
    {
        return static_cast<unsigned>(_rowLabels.size());
    }
    unsigned numCols() const
    {
        return static_cast<unsigned>(_colLabels.size());
    }

    const std::string &title() const { return _title; }
    const std::string &rowHeader() const { return _rowHeader; }
    const std::string &rowLabel(unsigned row) const;
    const std::string &colLabel(unsigned col) const;

    /** Number of digits after the decimal point when rendering. */
    void setPrecision(unsigned digits) { _precision = digits; }
    unsigned precision() const { return _precision; }

    /** Render as an aligned fixed-width text table. */
    std::string toText() const;

    /** Render as RFC-4180-ish CSV (first column = row labels). */
    std::string toCsv() const;

    /** Render as a GitHub-flavoured Markdown table. */
    std::string toMarkdown() const;

    /** Print toText() to stdout. */
    void print() const;

    /** Write toCsv() to @p path (directories must exist). */
    void writeCsv(const std::string &path) const;

  private:
    int findRow(const std::string &label) const;
    int findCol(const std::string &label) const;
    std::string formatCell(unsigned row, unsigned col) const;

    std::string _title;
    std::string _rowHeader;
    std::vector<std::string> _rowLabels;
    std::vector<std::string> _colLabels;
    std::vector<std::vector<std::optional<double>>> _cells;
    unsigned _precision = 2;
};

/** Format a double with fixed precision into a string. */
std::string formatFixed(double value, unsigned precision);

} // namespace ibp

#endif // IBP_UTIL_FORMAT_HH
