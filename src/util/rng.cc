#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace ibp {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    return mix64(state);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed with SplitMix64 as recommended by the xoshiro
    // authors; guards against the all-zero state.
    std::uint64_t sm = seed;
    for (auto &word : _state)
        word = splitMix64(sm);
    if ((_state[0] | _state[1] | _state[2] | _state[3]) == 0)
        _state[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    IBP_ASSERT(bound != 0, "nextBelow(0)");
    // Debiased multiply-shift (Lemire); the retry loop terminates with
    // overwhelming probability after one iteration.
    while (true) {
        const std::uint64_t x = next();
        const unsigned __int128 m =
            static_cast<unsigned __int128>(x) * bound;
        const std::uint64_t low = static_cast<std::uint64_t>(m);
        if (low >= bound || low >= (-bound) % bound)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    IBP_ASSERT(lo <= hi, "bad range [%lld, %lld]",
               static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double probability)
{
    return nextDouble() < probability;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0x6a09e667f3bcc909ULL);
}

ZipfSampler::ZipfSampler(unsigned n, double alpha)
{
    IBP_ASSERT(n >= 1, "empty Zipf support");
    _cdf.resize(n);
    double total = 0;
    for (unsigned r = 0; r < n; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
        _cdf[r] = total;
    }
    for (auto &c : _cdf)
        c /= total;
}

namespace {

unsigned
cdfLookup(const std::vector<double> &cdf, double u)
{
    // Binary search for the first CDF entry >= u.
    unsigned lo = 0, hi = static_cast<unsigned>(cdf.size()) - 1;
    while (lo < hi) {
        const unsigned mid = lo + (hi - lo) / 2;
        if (cdf[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

unsigned
ZipfSampler::sample(Rng &rng) const
{
    return cdfLookup(_cdf, rng.nextDouble());
}

unsigned
ZipfSampler::pickByUnit(double unit) const
{
    return cdfLookup(_cdf, unit);
}

double
ZipfSampler::probability(unsigned rank) const
{
    IBP_ASSERT(rank < _cdf.size(), "rank %u out of range", rank);
    return rank == 0 ? _cdf[0] : _cdf[rank] - _cdf[rank - 1];
}

CategoricalSampler::CategoricalSampler(const std::vector<double> &weights)
{
    IBP_ASSERT(!weights.empty(), "empty categorical support");
    _cdf.resize(weights.size());
    double total = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        IBP_ASSERT(weights[i] >= 0, "negative weight");
        total += weights[i];
        _cdf[i] = total;
    }
    IBP_ASSERT(total > 0, "all-zero categorical weights");
    for (auto &c : _cdf)
        c /= total;
}

unsigned
CategoricalSampler::sample(Rng &rng) const
{
    return cdfLookup(_cdf, rng.nextDouble());
}

unsigned
CategoricalSampler::pickByUnit(double unit) const
{
    return cdfLookup(_cdf, unit);
}

} // namespace ibp
