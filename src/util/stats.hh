/**
 * @file
 * Small statistics helpers for experiment results.
 */

#ifndef IBP_UTIL_STATS_HH
#define IBP_UTIL_STATS_HH

#include <cstdint>
#include <vector>

namespace ibp {

/**
 * Numerically-stable running mean/variance accumulator (Welford).
 */
class RunningStat
{
  public:
    void push(double sample);

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Arithmetic mean of a sample vector (0 for an empty vector). */
double mean(const std::vector<double> &samples);

/** Geometric mean; all samples must be positive. */
double geomean(const std::vector<double> &samples);

/**
 * Linear-interpolated percentile in [0, 100] of an unsorted sample
 * vector (the vector is copied and sorted internally).
 */
double percentile(std::vector<double> samples, double pct);

/**
 * Number of distinct categories needed to cover @p fraction of the
 * total mass of @p counts, taking categories in decreasing-count
 * order. This is exactly the "active branch sites" statistic of
 * Tables 1/2 in the paper (sites responsible for 90/95/99/100% of
 * dynamic indirect branches).
 */
unsigned coverageCount(std::vector<std::uint64_t> counts, double fraction);

} // namespace ibp

#endif // IBP_UTIL_STATS_HH
