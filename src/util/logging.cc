#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace ibp {

namespace {

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
panicAssert(const char *file, int line, const char *cond,
            const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: assertion '%s' failed: ", file,
                 line, cond);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace ibp
